"""Platform abstraction: flat parity, partitioned semantics, identities.

The refactor's acceptance bar is bitwise: a product-1 topology runs the
partitioned machinery yet must reproduce the flat kernel byte for byte
(every policy x backfill x estimates cell, every backend), flat runs
must not change at all, and the platform axes must enter fingerprints
and cache keys only when they can change results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import run
from repro.eval.report import matrix_to_json
from repro.policies.registry import get_policy
from repro.sim import _cbackend
from repro.sim.cluster import Cluster
from repro.sim.engine import simulate
from repro.sim.job import Workload
from repro.sim.platform import (
    DISTRIBUTIONS,
    FlatPlatform,
    PartitionedPlatform,
    distribute_jobs,
    normalize_distribution,
    normalize_topology,
    platform_identity,
    simulate_partitioned,
    topology_label,
)
from repro.specs import EvaluateSpec, SimulateSpec
from repro.specs.base import SpecError
from repro.specs.fingerprint import (
    eval_cell_fingerprint,
    simulate_cell_fingerprint,
)

HAVE_C = _cbackend.load() is not None
BACKENDS = ["python"] + (["c"] if HAVE_C else [])

POLICIES = ["fcfs", "f2", "wfp3", "unicef"]  # 2 static, 2 dynamic
MODES = ["none", "easy", "conservative", "hybrid"]


def _workload(rng: np.random.Generator, n: int, max_size: int) -> Workload:
    """Bursty random workload whose jobs all fit *max_size* cores."""
    submit = np.sort(np.round(rng.uniform(0.0, n * 1.5, size=n), 1))
    runtime = np.round(rng.uniform(0.5, 60.0, size=n), 3)
    size = rng.integers(1, max_size + 1, size=n)
    estimate = runtime * rng.uniform(1.0, 4.0, size=n)
    return Workload.from_arrays(
        submit=submit, runtime=runtime, size=size, estimate=estimate
    )


# ----------------------------------------------------------------------
# canonicalisation and identity
# ----------------------------------------------------------------------
class TestNormalization:
    def test_topology_spellings(self):
        assert normalize_topology(None) is None
        assert normalize_topology(()) is None
        assert normalize_topology(4) == (4,)
        assert normalize_topology([2, 4]) == (2, 4)
        assert normalize_topology((1, 1)) == (1, 1)

    def test_topology_rejects_bad_values(self):
        with pytest.raises(ValueError, match=">= 1"):
            normalize_topology((2, 0))
        with pytest.raises(ValueError, match="topology"):
            normalize_topology(object())

    def test_distribution_default_and_rejection(self):
        assert normalize_distribution(None) == "round_robin"
        for name in DISTRIBUTIONS:
            assert normalize_distribution(name) == name
        with pytest.raises(ValueError, match="unknown distribution"):
            normalize_distribution("hash")

    def test_topology_label(self):
        assert topology_label((2, 4)) == "2x4"
        assert topology_label((8,)) == "8"

    def test_platform_identity_flat_is_none(self):
        assert platform_identity(None) is None
        assert platform_identity((1,)) is None
        assert platform_identity((1, 1), "by_size", 7) is None

    def test_platform_identity_partitioned(self):
        doc = platform_identity((2, 4), "by_size", seed=9)
        assert doc == {"topology": [2, 4], "distribution": "by_size"}
        # The seed is result-relevant only under the random strategy.
        rand = platform_identity((2, 4), "random", seed=9)
        assert rand == {"topology": [2, 4], "distribution": "random", "seed": 9}


class TestPartitionedPlatform:
    def test_leaf_layout(self):
        platform = PartitionedPlatform(64, (2, 2))
        assert platform.n_leaves == 4
        assert platform.leaf_cores == 16
        assert platform.leaf_labels == ("0.0", "0.1", "1.0", "1.1")
        assert platform.total_cores == 64
        assert platform.is_partitioned

    def test_flat_platform_single_pool(self):
        platform = FlatPlatform(32)
        assert platform.n_leaves == 1
        assert platform.total_cores == 32
        assert not platform.is_partitioned
        assert isinstance(platform.pools["0"], Cluster)

    def test_uneven_division_rejected(self):
        with pytest.raises(ValueError, match="does not divide evenly"):
            PartitionedPlatform(10, (3,))

    def test_oversized_job_named(self):
        platform = PartitionedPlatform(16, (4,))
        with pytest.raises(ValueError, match="job 1 wants 7"):
            platform.validate_sizes(np.array([2, 7, 1]))


# ----------------------------------------------------------------------
# distribution strategies
# ----------------------------------------------------------------------
class TestDistribution:
    def _platform(self) -> PartitionedPlatform:
        return PartitionedPlatform(16, (4,))

    def test_round_robin_deals_in_arrival_order(self):
        submit = np.array([3.0, 1.0, 2.0, 0.0, 4.0])
        assign = distribute_jobs(
            self._platform(),
            submit,
            np.ones(5),
            np.ones(5, dtype=np.int64),
        )
        # arrival order is 3,1,2,0,4 -> leaves 0,1,2,3,0
        assert assign.tolist() == [3, 1, 2, 0, 0]

    def test_by_size_balances_work_deterministically(self):
        platform = self._platform()
        submit = np.arange(8.0)
        size = np.array([4, 4, 1, 1, 1, 1, 1, 1], dtype=np.int64)
        proc = np.array([10.0, 10.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0])
        a = distribute_jobs(platform, submit, proc, size, distribution="by_size")
        b = distribute_jobs(platform, submit, proc, size, distribution="by_size")
        assert a.tolist() == b.tolist()
        # The two heavy jobs land on distinct leaves; the first on leaf 0.
        assert a[0] == 0 and a[1] == 1

    def test_random_is_a_pure_function_of_the_seed(self):
        platform = self._platform()
        rng = np.random.default_rng(0)
        w = _workload(rng, 64, 4)
        args = (platform, w.submit, w.runtime, w.size)
        one = distribute_jobs(*args, distribution="random", seed=5)
        two = distribute_jobs(*args, distribution="random", seed=5)
        other = distribute_jobs(*args, distribution="random", seed=6)
        assert one.tolist() == two.tolist()
        assert one.tolist() != other.tolist()
        assert one.min() >= 0 and one.max() < platform.n_leaves


# ----------------------------------------------------------------------
# flat parity: topology (1,) runs the partitioned machinery yet must be
# byte-identical to the bare kernel, for every cell and backend
# ----------------------------------------------------------------------
class TestProductOneParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("use_estimates", [False, True])
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("policy_name", POLICIES)
    def test_topology_one_matches_flat(
        self, monkeypatch, policy_name, mode, use_estimates, backend
    ):
        monkeypatch.setenv("REPRO_SIM_KERNEL", backend)
        policy = get_policy(policy_name)
        rng = np.random.default_rng(
            abs(hash((policy_name, mode, use_estimates))) % 2**32
        )
        for _ in range(2):
            n = int(rng.integers(2, 40))
            w = _workload(rng, n, 16)
            flat = simulate(
                w, policy, 16, use_estimates=use_estimates, backfill=mode
            )
            one = simulate(
                w,
                policy,
                16,
                use_estimates=use_estimates,
                backfill=mode,
                topology=(1,),
            )
            assert one.start.tobytes() == flat.start.tobytes()
            assert one.backfilled.tobytes() == flat.backfilled.tobytes()
            assert one.n_events == flat.n_events
            assert flat.leaf is None
            assert one.leaf is not None and not one.leaf.any()


# ----------------------------------------------------------------------
# partitioned semantics: conservation, composition, merging
# ----------------------------------------------------------------------
def _assert_leaf_conservation(
    start: np.ndarray,
    runtime: np.ndarray,
    size: np.ndarray,
    leaf: np.ndarray,
    leaf_cores: int,
) -> None:
    """Per-leaf busy cores never exceed the leaf's capacity."""
    for leaf_id in np.unique(leaf):
        mask = leaf == leaf_id
        s, r, z = start[mask], runtime[mask], size[mask]
        events = np.unique(np.concatenate([s, s + r]))
        for t in events:
            busy = int(z[(s <= t) & (t < s + r)].sum())
            assert busy <= leaf_cores, (
                f"leaf {leaf_id} oversubscribed at t={t}: {busy} > {leaf_cores}"
            )


class TestPartitionedSemantics:
    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    @pytest.mark.parametrize("mode", MODES)
    def test_per_leaf_conservation(self, distribution, mode):
        rng = np.random.default_rng(abs(hash((distribution, mode))) % 2**32)
        w = _workload(rng, 80, 8)  # fits 32/(2,2) = 8-core leaves
        result = simulate(
            w,
            get_policy("fcfs"),
            32,
            backfill=mode,
            topology=(2, 2),
            distribution=distribution,
            platform_seed=3,
        )
        assert result.leaf is not None
        assert np.all(result.start >= w.submit)
        _assert_leaf_conservation(
            result.start, w.runtime, w.size, result.leaf, leaf_cores=8
        )

    def test_partition_composes_from_independent_leaf_runs(self):
        """Leaves share no state: the merged result must equal running
        each leaf's job subset through the flat engine at leaf_cores."""
        rng = np.random.default_rng(17)
        w = _workload(rng, 60, 8)
        policy = get_policy("f2")
        platform = PartitionedPlatform(32, (4,))
        assign = distribute_jobs(
            platform, w.submit, w.runtime, w.size, distribution="round_robin"
        )
        merged = simulate(
            w, policy, 32, backfill="easy", topology=(4,)
        )
        assert merged.leaf is not None
        assert (merged.leaf == assign).all()
        for leaf_id in range(platform.n_leaves):
            idx = np.flatnonzero(assign == leaf_id)
            sub = Workload.from_arrays(
                submit=w.submit[idx], runtime=w.runtime[idx], size=w.size[idx]
            )
            alone = simulate(sub, policy, platform.leaf_cores, backfill="easy")
            assert alone.start.tobytes() == merged.start[idx].tobytes()
            assert alone.backfilled.tobytes() == merged.backfilled[idx].tobytes()

    def test_simulate_partitioned_counters_are_summed(self):
        rng = np.random.default_rng(5)
        w = _workload(rng, 40, 4)
        platform = PartitionedPlatform(16, (2, 2))
        outcome = simulate_partitioned(
            platform,
            w.submit,
            w.runtime,
            w.runtime,
            w.size,
            static_scores=np.arange(len(w), dtype=float),
            backfill="easy",
        )
        assert np.isfinite(outcome.start).all()
        assert outcome.n_events >= len(w)
        assert outcome.leaf.shape == (len(w),)

    def test_oversized_job_rejected_end_to_end(self):
        w = Workload.from_arrays(
            submit=[0.0, 1.0], runtime=[5.0, 5.0], size=[1, 12]
        )
        with pytest.raises(ValueError, match="job 1 wants 12"):
            simulate(w, get_policy("fcfs"), 16, topology=(2,))


class TestWorkerDeterminism:
    @pytest.mark.parametrize("distribution", ["round_robin", "random"])
    def test_matrix_bytes_identical_across_worker_counts(
        self, tmp_path, distribution
    ):
        spec = EvaluateSpec(
            trace="tests/data/ctc_tiny.swf",
            nmax=1024,
            window_jobs=100,
            policies=("fcfs", "f1"),
            backfill=("easy", "hybrid"),
            topology=(2, 2),
            distribution=distribution,
            seed=11,
        )
        serial = run(spec, workers=1)
        parallel = run(spec, workers=4)
        assert matrix_to_json(serial) == matrix_to_json(parallel)


# ----------------------------------------------------------------------
# fingerprints and cache keys
# ----------------------------------------------------------------------
class TestFingerprints:
    def test_flat_simulate_spec_payload_has_no_platform_keys(self):
        payload = SimulateSpec(policy="fcfs")._fingerprint_payload()
        assert "topology" not in payload
        assert "distribution" not in payload
        assert "hetero" not in payload

    def test_product_one_fingerprints_as_flat(self):
        flat = SimulateSpec(policy="fcfs").fingerprint()
        one = SimulateSpec(policy="fcfs", topology=(1,)).fingerprint()
        assert one == flat
        eflat = EvaluateSpec(trace="tests/data/ctc_tiny.swf").fingerprint()
        eone = EvaluateSpec(
            trace="tests/data/ctc_tiny.swf", topology=(1, 1)
        ).fingerprint()
        assert eone == eflat

    def test_partitioned_topology_forks_fingerprints(self):
        flat = SimulateSpec(policy="fcfs").fingerprint()
        topo = SimulateSpec(policy="fcfs", topology=(2, 4)).fingerprint()
        other = SimulateSpec(policy="fcfs", topology=(4, 2)).fingerprint()
        by_size = SimulateSpec(
            policy="fcfs", topology=(2, 4), distribution="by_size"
        ).fingerprint()
        assert len({flat, topo, other, by_size}) == 4

    def test_seed_enters_only_under_random_distribution(self):
        a = SimulateSpec(policy="fcfs", topology=(2,), seed=1).fingerprint()
        b = SimulateSpec(policy="fcfs", topology=(2,), seed=2).fingerprint()
        # The generated-model source already keys on the seed, so pin the
        # platform-level rule at the cell-fingerprint layer instead:
        assert a != b  # model seed forks regardless
        key = lambda seed, dist: simulate_cell_fingerprint(
            workload_fingerprint="w",
            policy="FCFS",
            backfill="none",
            nmax=8,
            use_estimates=False,
            tau=10.0,
            platform=platform_identity((2,), dist, seed),
        )
        assert key(1, "round_robin") == key(2, "round_robin")
        assert key(1, "random") != key(2, "random")

    def test_cell_fingerprints_without_platform_are_unchanged(self):
        """Omitting the kwarg and passing None must hash identically —
        that is what keeps every historical cache entry valid."""
        kwargs = dict(
            window_fingerprint="w",
            policy="FCFS",
            backfill="easy",
            nmax=64,
            use_estimates=False,
            tau=10.0,
            cell_format=3,
        )
        assert eval_cell_fingerprint(**kwargs) == eval_cell_fingerprint(
            platform=None, **kwargs
        )

    def test_hetero_enters_simulate_fingerprint(self):
        flat = SimulateSpec(policy="fcfs").fingerprint()
        het = SimulateSpec(
            policy="fcfs", hetero=("cpu:256", "gpu:64:8")
        ).fingerprint()
        assert flat != het

    def test_topology_hetero_mutually_exclusive(self):
        with pytest.raises(SpecError, match="at most one of topology / hetero"):
            SimulateSpec(policy="fcfs", topology=(2,), hetero=("cpu:256",))

    def test_bad_topology_and_distribution_are_spec_errors(self):
        with pytest.raises(SpecError, match=">= 1"):
            SimulateSpec(policy="fcfs", topology=(0,))
        with pytest.raises(SpecError, match="unknown distribution"):
            SimulateSpec(policy="fcfs", distribution="hash")
        with pytest.raises(SpecError, match="unknown distribution"):
            EvaluateSpec(distribution="hash")

"""Edge-case tests for the online engine: simultaneity, overruns, events."""

import numpy as np
import pytest

from repro.policies.classic import FCFS, SPT
from repro.sim.engine import simulate
from repro.sim.job import Workload

from conftest import assert_valid_schedule


class TestSimultaneousEvents:
    def test_completion_and_arrival_same_instant(self):
        """Cores freed at t must be visible to a job arriving at t."""
        wl = Workload.from_arrays(
            submit=[0.0, 10.0],
            runtime=[10.0, 5.0],
            size=[4, 4],
        )
        result = simulate(wl, FCFS(), 4)
        assert result.start[1] == 10.0  # no extra event round-trip

    def test_many_simultaneous_arrivals(self):
        wl = Workload.from_arrays(
            submit=[5.0] * 8,
            runtime=[10.0] * 8,
            size=[1] * 8,
        )
        result = simulate(wl, FCFS(), 4)
        starts = np.sort(result.start)
        np.testing.assert_allclose(starts, [5.0] * 4 + [15.0] * 4)

    def test_many_simultaneous_completions(self):
        wl = Workload.from_arrays(
            submit=[0.0, 0.0, 0.0, 1.0],
            runtime=[10.0, 10.0, 10.0, 2.0],
            size=[1, 1, 2, 4],
        )
        result = simulate(wl, FCFS(), 4)
        assert result.start[3] == 10.0  # all three completions batched


class TestTieBreaking:
    def test_equal_scores_fcfs_by_submit(self):
        # identical runtimes -> SPT ties -> earlier submit wins
        wl = Workload.from_arrays(
            submit=[0.0, 1.0, 2.0],
            runtime=[5.0, 5.0, 5.0],
            size=[4, 4, 4],
        )
        result = simulate(wl, SPT(), 4)
        assert result.start[0] < result.start[1] < result.start[2]

    def test_equal_scores_and_submits_by_index(self):
        wl = Workload.from_arrays(
            submit=[0.0, 0.0],
            runtime=[5.0, 5.0],
            size=[4, 4],
        )
        result = simulate(wl, SPT(), 4)
        assert result.start[0] < result.start[1]


class TestEstimateOverruns:
    def test_underestimated_running_job_blocks_shadow_correctly(self):
        """A running job past its estimate keeps the machine consistent."""
        wl = Workload.from_arrays(
            submit=[0.0, 1.0, 2.0, 3.0],
            runtime=[50.0, 20.0, 10.0, 10.0],
            size=[3, 4, 1, 1],
            estimate=[5.0, 20.0, 10.0, 10.0],  # J0 overruns 10x
        )
        result = simulate(wl, FCFS(), 4, use_estimates=True, backfill=True)
        assert_valid_schedule(result)
        # J1 cannot start before J0 actually ends
        assert result.start[1] >= 50.0

    def test_all_jobs_overrun(self):
        wl = Workload.from_arrays(
            submit=[0.0, 1.0, 2.0],
            runtime=[100.0, 100.0, 100.0],
            size=[2, 2, 2],
            estimate=[1.0, 1.0, 1.0],
        )
        result = simulate(wl, FCFS(), 4, use_estimates=True, backfill=True)
        assert_valid_schedule(result)


class TestEventAccounting:
    def test_n_events_reasonable(self):
        wl = Workload.from_arrays(
            submit=[0.0, 1.0, 2.0],
            runtime=[5.0, 5.0, 5.0],
            size=[4, 4, 4],
        )
        result = simulate(wl, FCFS(), 4)
        # at least one event per arrival; bounded by arrivals+completions
        assert 3 <= result.n_events <= 6

    def test_empty_schedule_zero_events(self):
        result = simulate(Workload.from_arrays([], [], []), FCFS(), 4)
        assert result.n_events == 0


class TestExtremeShapes:
    def test_single_core_machine(self):
        wl = Workload.from_arrays(
            submit=[0.0, 0.0, 0.0],
            runtime=[1.0, 2.0, 3.0],
            size=[1, 1, 1],
        )
        result = simulate(wl, SPT(), 1)
        np.testing.assert_allclose(np.sort(result.start), [0.0, 1.0, 3.0])

    def test_all_jobs_machine_sized(self):
        wl = Workload.from_arrays(
            submit=[0.0] * 5,
            runtime=[2.0] * 5,
            size=[16] * 5,
        )
        result = simulate(wl, FCFS(), 16)
        np.testing.assert_allclose(np.sort(result.start), [0, 2, 4, 6, 8])

    def test_very_long_idle_gaps(self):
        wl = Workload.from_arrays(
            submit=[0.0, 1e9],
            runtime=[1.0, 1.0],
            size=[1, 1],
        )
        result = simulate(wl, FCFS(), 4)
        assert result.start[1] == 1e9

    def test_sub_second_runtimes(self):
        wl = Workload.from_arrays(
            submit=[0.0, 0.1, 0.2],
            runtime=[0.5, 0.25, 0.125],
            size=[4, 4, 4],
        )
        result = simulate(wl, FCFS(), 4)
        assert_valid_schedule(result)
        assert result.ave_bsld >= 1.0

    def test_heavy_queue_does_not_misorder(self):
        """200 equal jobs through a 1-wide machine keep FCFS order."""
        n = 200
        wl = Workload.from_arrays(
            submit=np.arange(n, dtype=float),
            runtime=np.full(n, 3.0),
            size=np.ones(n, dtype=int),
        )
        result = simulate(wl, FCFS(), 1)
        assert np.all(np.diff(result.start) > 0)

"""Algebraic-equivalence properties of the function space.

The paper's artifact notes: "algebraic equivalent functions can be
enumerated and, in this case, their fitness value will be equal."  These
tests pin down the equivalences structurally (same values for matched
coefficients) and through the regression (same rank error after
independent fits).
"""

import numpy as np
import pytest

from repro.core.distribution import ScoreDistribution
from repro.core.functions import FunctionSpec
from repro.core.regression import RegressionConfig, fit_function


def grid():
    rng = np.random.default_rng(5)
    r = rng.uniform(1.0, 1e4, 300)
    n = rng.integers(1, 256, 300).astype(float)
    s = rng.uniform(1.0, 1e5, 300)
    return r, n, s


class TestStructuralEquivalence:
    def test_multiply_equals_divide_by_inverse(self):
        """(c1 a(r)) * (c2 id(n)) == (c1 a(r)) / (c2' inv(n)) with c2' = 1/c2."""
        r, n, s = grid()
        mul = FunctionSpec("log", "id", "log", "*", "+")
        div = FunctionSpec("log", "inv", "log", "/", "+")
        coeffs_mul = np.array([0.3, 2.0, 5.0])
        coeffs_div = np.array([0.3, 0.5, 5.0])  # 1/c2
        np.testing.assert_allclose(
            mul.evaluate(coeffs_mul, r, n, s),
            div.evaluate(coeffs_div, r, n, s),
            rtol=1e-10,
        )

    def test_inv_of_inv_is_id_on_domain(self):
        r, n, s = grid()
        a = FunctionSpec("inv", "id", "id", "+", "+")
        vals = a.evaluate(np.array([1.0, 0.0, 0.0]), 1.0 / r, n, s)
        np.testing.assert_allclose(vals, r, rtol=1e-9)

    def test_sum_commutes_in_first_operator(self):
        """(c1 α(r)) + (c2 β(n)) symmetric under swapping r/n slots when
        the data happens to be symmetric — verified by exchanging base
        functions and coefficients."""
        r, n, s = grid()
        ab = FunctionSpec("log", "sqrt", "id", "+", "+")
        ba = FunctionSpec("sqrt", "log", "id", "+", "+")
        va = ab.evaluate(np.array([2.0, 3.0, 4.0]), r, n, s)
        vb = ba.evaluate(np.array([3.0, 2.0, 4.0]), n, r, s)
        np.testing.assert_allclose(va, vb, rtol=1e-12)


class TestFittedEquivalence:
    @pytest.fixture(scope="class")
    def dist(self):
        r, n, s = grid()
        truth = FunctionSpec("id", "id", "log", "*", "+")
        y = truth.evaluate(np.array([1e-3, 1e-2, 4.0]), r, n, s)
        return ScoreDistribution(runtime=r, size=n, submit=s, score=y)

    def test_equivalent_specs_reach_equal_fitness(self, dist):
        """r*n fitted directly or as r / inv(n): equal rank error."""
        cfg = RegressionConfig(weighted=False)
        direct = fit_function(FunctionSpec("id", "id", "log", "*", "+"), dist, cfg)
        via_inv = fit_function(FunctionSpec("id", "inv", "log", "/", "+"), dist, cfg)
        assert direct.rank_error == pytest.approx(0.0, abs=1e-5)
        assert via_inv.rank_error == pytest.approx(direct.rank_error, abs=1e-4)

    def test_swapped_size_runtime_bases_not_equivalent(self, dist):
        """Sanity: genuinely different shapes do NOT tie (the space is
        not degenerate)."""
        cfg = RegressionConfig(weighted=False)
        truth = fit_function(FunctionSpec("id", "id", "log", "*", "+"), dist, cfg)
        other = fit_function(FunctionSpec("inv", "inv", "log", "*", "+"), dist, cfg)
        assert other.rank_error > truth.rank_error + 1e-6


class TestOperatorPrecedence:
    def test_left_associativity_matters(self):
        """(A + B) * C != A + (B * C) in general — guards against a
        precedence regression silently changing the whole space."""
        r, n, s = grid()
        spec = FunctionSpec("id", "id", "id", "+", "*")
        coeffs = np.array([1.0, 1.0, 1.0])
        left = spec.evaluate(coeffs, r, n, s)
        right_assoc = r + n * s
        assert not np.allclose(left, right_assoc)
        np.testing.assert_allclose(left, (r + n) * s)

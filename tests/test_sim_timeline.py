"""Tests for schedule timeline analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policies.classic import FCFS
from repro.sim.engine import simulate
from repro.sim.job import Workload
from repro.sim.timeline import (
    StepProfile,
    busy_cores_profile,
    profile_average,
    queue_length_profile,
    to_gantt_csv,
)

from conftest import random_workload


@pytest.fixture
def simple_result():
    wl = Workload.from_arrays(
        submit=[0.0, 0.0, 5.0],
        runtime=[10.0, 4.0, 10.0],
        size=[2, 2, 4],
    )
    return simulate(wl, FCFS(), 4)


class TestStepProfile:
    def test_at(self):
        p = StepProfile(time=np.array([0.0, 10.0]), value=np.array([2.0, 0.0]))
        assert p.at(-1.0) == 0.0
        assert p.at(0.0) == 2.0
        assert p.at(9.99) == 2.0
        assert p.at(10.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            StepProfile(time=np.array([0.0, 0.0]), value=np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            StepProfile(time=np.array([0.0]), value=np.array([1.0, 2.0]))

    def test_peak(self):
        p = StepProfile(time=np.array([0.0, 1.0]), value=np.array([3.0, 7.0]))
        assert p.peak == 7.0


class TestBusyCores:
    def test_simple_schedule(self, simple_result):
        prof = busy_cores_profile(simple_result)
        # J0 (2 cores) and J1 (2 cores) run [0,10] and [0,4]
        assert prof.at(0.0) == 4
        assert prof.at(4.5) == 2
        # J2 (4 cores) waits for J0: runs [10, 20]
        assert prof.at(12.0) == 4
        assert prof.at(21.0) == 0

    def test_peak_bounded_by_nmax(self, simple_result):
        assert busy_cores_profile(simple_result).peak <= 4

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**16))
    def test_peak_bounded_property(self, seed):
        """Independent conservation check on random schedules."""
        rng = np.random.default_rng(seed)
        wl = random_workload(rng, n=30, nmax=8)
        result = simulate(wl, FCFS(), 8, backfill=True)
        prof = busy_cores_profile(result)
        assert prof.peak <= 8
        assert prof.value[-1] == pytest.approx(0.0)  # all work completes

    def test_total_area_matches_workload(self, simple_result):
        prof = busy_cores_profile(simple_result)
        horizon = simple_result.makespan
        avg = profile_average(prof, 0.0, horizon)
        assert avg * horizon == pytest.approx(simple_result.workload.area)


class TestQueueLength:
    def test_counts_waiting_jobs(self, simple_result):
        prof = queue_length_profile(simple_result)
        # J2 arrives at 5, starts at 10 -> queue length 1 in between
        assert prof.at(7.0) == 1
        assert prof.at(11.0) == 0

    def test_never_negative(self, simple_result):
        prof = queue_length_profile(simple_result)
        assert np.all(prof.value >= -1e-9)


class TestProfileAverage:
    def test_flat(self):
        p = StepProfile(time=np.array([0.0]), value=np.array([5.0]))
        assert profile_average(p, 0.0, 10.0) == 5.0

    def test_step(self):
        p = StepProfile(time=np.array([0.0, 5.0]), value=np.array([0.0, 10.0]))
        assert profile_average(p, 0.0, 10.0) == 5.0

    def test_empty(self):
        p = StepProfile(time=np.empty(0), value=np.empty(0))
        assert profile_average(p, 0.0, 1.0) == 0.0

    def test_bad_interval(self):
        p = StepProfile(time=np.array([0.0]), value=np.array([1.0]))
        with pytest.raises(ValueError):
            profile_average(p, 5.0, 5.0)


class TestGanttCsv:
    def test_header_and_rows(self, simple_result):
        csv = to_gantt_csv(simple_result)
        lines = csv.strip().splitlines()
        assert lines[0] == "job_id,submit,start,finish,size,backfilled"
        assert len(lines) == 4

    def test_roundtrippable_numbers(self, simple_result):
        csv = to_gantt_csv(simple_result)
        row = csv.strip().splitlines()[1].split(",")
        assert float(row[2]) == simple_result.start[0]
        assert int(row[4]) == int(simple_result.workload.size[0])

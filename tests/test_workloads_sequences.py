"""Tests for sequence extraction (the paper's 15-day windows)."""

import numpy as np
import pytest

from repro.sim.job import Workload
from repro.workloads.lublin import lublin_workload
from repro.workloads.sequences import extract_sequences, sequence_windows


class TestSequenceWindows:
    def test_exact_fit_abuts(self):
        wins = sequence_windows(30.0, 3, 10.0)
        assert wins == [(0.0, 10.0), (10.0, 20.0), (20.0, 30.0)]

    def test_slack_spreads_windows(self):
        wins = sequence_windows(40.0, 3, 10.0)
        assert wins[0] == (0.0, 10.0)
        assert wins[-1][1] == pytest.approx(40.0)
        # gaps equal
        gaps = [wins[i + 1][0] - wins[i][1] for i in range(2)]
        assert gaps[0] == pytest.approx(gaps[1]) == pytest.approx(5.0)

    def test_single_window(self):
        assert sequence_windows(100.0, 1, 10.0) == [(0.0, 10.0)]

    def test_too_short_rejected(self):
        with pytest.raises(ValueError, match="cannot host"):
            sequence_windows(25.0, 3, 10.0)

    def test_no_overlap_property(self):
        wins = sequence_windows(1000.0, 7, 100.0)
        for (a0, a1), (b0, b1) in zip(wins[:-1], wins[1:]):
            assert a1 <= b0


class TestExtractSequences:
    @pytest.fixture(scope="class")
    def stream(self):
        return lublin_workload(30000, nmax=256, seed=5)

    def test_count_and_rebasing(self, stream):
        days = stream.span / 86400.0
        seqs = extract_sequences(stream, 4, days / 8)
        assert len(seqs) == 4
        for seq in seqs:
            assert seq.submit[0] == 0.0
            assert seq.span <= days / 8 * 86400.0 + 1e-6

    def test_non_overlap_via_job_ids(self, stream):
        seqs = extract_sequences(stream, 4, stream.span / 86400.0 / 8)
        seen: set[int] = set()
        for seq in seqs:
            ids = set(seq.job_ids.tolist())
            assert not (ids & seen)
            seen |= ids

    def test_names(self, stream):
        seqs = extract_sequences(stream, 2, stream.span / 86400.0 / 4)
        assert "[seq 0]" in seqs[0].name
        assert "[seq 1]" in seqs[1].name

    def test_attributes_preserved(self, stream):
        seqs = extract_sequences(stream, 2, stream.span / 86400.0 / 4)
        seq = seqs[0]
        original = stream.select(np.isin(stream.job_ids, seq.job_ids))
        np.testing.assert_array_equal(seq.runtime, original.runtime)
        np.testing.assert_array_equal(seq.size, original.size)

    def test_sparse_window_rejected(self):
        # 3 jobs at the very start; windows later in the span are empty
        wl = Workload.from_arrays(
            [0.0, 1.0, 2e6], [10.0, 10.0, 10.0], [1, 1, 1]
        )
        with pytest.raises(ValueError, match="trace too sparse"):
            extract_sequences(wl, 3, 1.0)

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            extract_sequences(Workload.from_arrays([], [], []), 2, 1.0)

    def test_too_many_sequences_rejected(self, stream):
        with pytest.raises(ValueError, match="cannot host"):
            extract_sequences(stream, 1000, 1.0)

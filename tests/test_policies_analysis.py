"""Tests for policy-space analysis (rank agreement)."""

import numpy as np
import pytest

from repro.policies.analysis import agreement_matrix, policy_scores, rank_agreement
from repro.policies.classic import FCFS, LPT, SPT
from repro.policies.learned import F1, F3
from repro.workloads.lublin import lublin_workload


@pytest.fixture(scope="module")
def workload():
    return lublin_workload(400, nmax=256, seed=8)


class TestPolicyScores:
    def test_shape(self, workload):
        out = policy_scores(FCFS(), workload)
        assert out.shape == (len(workload),)

    def test_default_now_after_last_arrival(self, workload):
        from repro.policies.adhoc import WFP3

        # all waits positive => all WFP scores strictly negative
        out = policy_scores(WFP3(), workload)
        assert np.all(out < 0)

    def test_estimates_toggle(self, workload):
        from repro.workloads.tsafrir import apply_tsafrir

        wl = apply_tsafrir(workload, seed=1)
        by_r = policy_scores(SPT(), wl, use_estimates=False)
        by_e = policy_scores(SPT(), wl, use_estimates=True)
        assert not np.array_equal(by_r, by_e)

    def test_empty_rejected(self):
        from repro.sim.job import Workload

        with pytest.raises(ValueError):
            policy_scores(FCFS(), Workload.from_arrays([], [], []))


class TestRankAgreement:
    def test_self_agreement_is_one(self, workload):
        assert rank_agreement(SPT(), SPT(), workload) == pytest.approx(1.0)

    def test_opposite_policies(self, workload):
        assert rank_agreement(SPT(), LPT(), workload) == pytest.approx(-1.0)

    def test_unrelated_policies_mid_range(self, workload):
        tau = rank_agreement(FCFS(), SPT(), workload)
        assert -0.5 < tau < 0.5

    def test_f3_is_fcfs_like_on_long_spans(self, workload):
        """The huge log10(s) constant makes F3 order nearly by arrival
        when submits span hours — the short-window behaviour observed in
        the experiments."""
        tau = rank_agreement(FCFS(), F3(), workload)
        assert tau > 0.8

    def test_f1_less_fcfs_like_than_f3(self, workload):
        """F1's small constant (870) lets the size term reorder more."""
        tau_f1 = rank_agreement(FCFS(), F1(), workload)
        tau_f3 = rank_agreement(FCFS(), F3(), workload)
        assert tau_f1 < tau_f3


class TestAgreementMatrix:
    def test_structure(self, workload):
        names, mat = agreement_matrix([FCFS(), SPT(), LPT()], workload)
        assert names == ["FCFS", "SPT", "LPT"]
        np.testing.assert_allclose(np.diag(mat), 1.0)
        np.testing.assert_allclose(mat, mat.T)
        assert mat[1, 2] == pytest.approx(-1.0)  # SPT vs LPT

    def test_empty_rejected(self, workload):
        with pytest.raises(ValueError):
            agreement_matrix([], workload)

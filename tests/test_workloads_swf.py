"""Tests for SWF parsing and serialisation."""

import gzip

import numpy as np
import pytest

from repro.sim.job import Workload
from repro.workloads.lublin import lublin_workload
from repro.workloads.swf import (
    ZERO_RUNTIME_EPSILON,
    SwfAccounting,
    SwfStream,
    iter_swf_jobs,
    open_swf,
    parse_swf_text,
    read_swf,
    write_swf,
)

SAMPLE = """\
; Computer: Test Machine
; MaxProcs: 128
; Note: synthetic sample
1 0 5 100 4 -1 -1 8 3600 -1 1 1 1 -1 1 -1 -1 -1
2 10 0 50 2 -1 -1 -1 -1 -1 1 1 1 -1 1 -1 -1 -1
3 20 0 -1 4 -1 -1 4 600 -1 0 1 1 -1 1 -1 -1 -1
4 30 0 25 0 -1 -1 0 -1 -1 5 1 1 -1 1 -1 -1 -1
"""


class TestParse:
    def test_header_metadata(self):
        wl = parse_swf_text(SAMPLE)
        assert wl.name == "Test Machine"
        assert wl.nmax == 128
        assert wl.extra["header"]["Note"] == "synthetic sample"

    def test_field_mapping(self):
        wl = parse_swf_text(SAMPLE)
        job1 = wl.select(wl.job_ids == 1)
        assert job1.submit[0] == 0.0
        assert job1.runtime[0] == 100.0
        assert job1.size[0] == 8  # requested procs preferred
        assert job1.estimate[0] == 3600.0

    def test_fallbacks(self):
        wl = parse_swf_text(SAMPLE)
        job2 = wl.select(wl.job_ids == 2)
        assert job2.size[0] == 2  # falls back to allocated procs
        assert job2.estimate[0] == 50.0  # falls back to runtime

    def test_invalid_jobs_dropped(self):
        wl = parse_swf_text(SAMPLE)
        # job 3: runtime -1; job 4: no procs at all -> both dropped
        assert set(wl.job_ids.tolist()) == {1, 2}
        assert wl.extra["dropped"] == 2

    def test_keep_failed_filter(self):
        text = SAMPLE.replace("2 10 0 50 2 -1 -1 -1 -1 -1 1", "2 10 0 50 2 -1 -1 -1 -1 -1 0")
        wl = parse_swf_text(text, keep_failed=False)
        assert set(wl.job_ids.tolist()) == {1}

    def test_dropped_and_filtered_reported_separately(self):
        # job 2's status becomes 0 (failed): a *schedulable* row removed
        # by deliberate filtering, not an unschedulable one.
        text = SAMPLE.replace("2 10 0 50 2 -1 -1 -1 -1 -1 1", "2 10 0 50 2 -1 -1 -1 -1 -1 0")
        wl = parse_swf_text(text, keep_failed=False)
        assert wl.extra["dropped"] == 2  # jobs 3 and 4: unschedulable rows
        assert wl.extra["filtered"] == 1  # job 2: status-filtered

    def test_keep_failed_true_filters_nothing(self):
        wl = parse_swf_text(SAMPLE, keep_failed=True)
        assert wl.extra["filtered"] == 0
        assert wl.extra["dropped"] == 2

    def test_minus_one_markers_in_request_fields(self):
        # field 8 (req procs) = -1 -> size falls back to field 5;
        # field 9 (req time) = -1 -> estimate falls back to runtime.
        wl = parse_swf_text("9 0 0 120 6 -1 -1 -1 -1 -1 1\n")
        assert wl.size[0] == 6
        assert wl.estimate[0] == 120.0

    def test_eleven_field_line_padded(self):
        # the PWA allows truncated lines; missing trailing fields read -1
        wl = parse_swf_text("5 3 0 60 2 -1 -1 4 600 -1 1\n")
        assert len(wl) == 1
        assert wl.size[0] == 4
        assert wl.estimate[0] == 600.0

    def test_maxprocs_header_parsed(self):
        wl = parse_swf_text("; MaxProcs: 4096\n1 0 0 10 1 -1 -1 1 10 -1 1\n")
        assert wl.nmax == 4096

    def test_maxnodes_fallback_and_bad_maxprocs(self):
        text = "; MaxProcs: unknown\n; MaxNodes: 64\n1 0 0 10 1 -1 -1 1 10 -1 1\n"
        assert parse_swf_text(text).nmax == 64

    def test_short_line_rejected(self):
        with pytest.raises(ValueError, match="expected >= 11"):
            parse_swf_text("1 2 3\n")

    def test_non_numeric_rejected(self):
        with pytest.raises(ValueError, match="non-numeric"):
            parse_swf_text("1 0 x 100 4 -1 -1 8 3600 -1 1\n")

    def test_empty_text(self):
        wl = parse_swf_text("; Computer: empty\n")
        assert len(wl) == 0

    def test_blank_lines_ignored(self):
        wl = parse_swf_text("\n\n" + SAMPLE + "\n\n")
        assert len(wl) == 2


class TestZeroRuntime:
    """Completed sub-second jobs (runtime recorded as 0 — common in raw
    PWA traces) must be clamped and kept, not silently dropped."""

    COMPLETED_ZERO = "7 40 3 0 4 -1 -1 4 600 -1 1 -1 -1 -1 -1 -1 -1 -1"
    FAILED_ZERO = "8 50 3 0 4 -1 -1 4 600 -1 0 -1 -1 -1 -1 -1 -1 -1"

    def test_completed_zero_runtime_kept_and_clamped(self):
        wl = parse_swf_text(self.COMPLETED_ZERO + "\n")
        assert len(wl) == 1
        assert wl.runtime[0] == ZERO_RUNTIME_EPSILON
        assert wl.extra["zero_runtime"] == 1
        assert wl.extra["dropped"] == 0

    def test_failed_zero_runtime_still_dropped(self):
        wl = parse_swf_text(self.FAILED_ZERO + "\n")
        assert len(wl) == 0
        assert wl.extra["dropped"] == 1
        assert wl.extra["zero_runtime"] == 0

    def test_negative_runtime_never_clamped(self):
        wl = parse_swf_text(self.COMPLETED_ZERO.replace(" 3 0 ", " 3 -1 ") + "\n")
        assert len(wl) == 0
        assert wl.extra["dropped"] == 1

    def test_estimate_fallback_uses_clamped_runtime(self):
        # req time -1 -> estimate falls back to the *clamped* runtime.
        line = self.COMPLETED_ZERO.replace(" 600 ", " -1 ")
        wl = parse_swf_text(line + "\n")
        assert wl.estimate[0] == max(ZERO_RUNTIME_EPSILON, 1.0)

    def test_sample_without_zero_runtime_reports_zero(self):
        assert parse_swf_text(SAMPLE).extra["zero_runtime"] == 0

    def test_stream_accounting_matches_batch(self, tmp_path):
        text = SAMPLE + self.COMPLETED_ZERO + "\n" + self.FAILED_ZERO + "\n"
        path = tmp_path / "zero.swf"
        path.write_text(text)
        stream = SwfStream(path)
        jobs = list(stream.jobs())
        wl = parse_swf_text(text)
        assert len(jobs) == len(wl) == 3
        assert stream.accounting.zero_runtime == wl.extra["zero_runtime"] == 1
        # a second pass resets instead of accumulating
        list(stream.jobs())
        assert stream.accounting.zero_runtime == 1


class TestGzip:
    """Raw PWA downloads are .swf.gz: every reader must sniff the gzip
    magic bytes and decompress transparently."""

    def test_read_swf_gz_matches_plain(self, tmp_path):
        gz = tmp_path / "sample.swf.gz"
        gz.write_bytes(gzip.compress(SAMPLE.encode()))
        plain = parse_swf_text(SAMPLE)
        back = read_swf(gz)
        assert len(back) == len(plain)
        np.testing.assert_array_equal(back.submit, plain.submit)
        np.testing.assert_array_equal(back.runtime, plain.runtime)
        assert back.nmax == plain.nmax == 128

    def test_magic_bytes_not_extension_decide(self, tmp_path):
        # gzip content behind a plain .swf name still opens
        disguised = tmp_path / "disguised.swf"
        disguised.write_bytes(gzip.compress(SAMPLE.encode()))
        assert len(read_swf(disguised)) == 2

    def test_swf_stream_on_gz(self, tmp_path):
        gz = tmp_path / "fixture.swf.gz"
        gz.write_bytes(gzip.compress(open(FIXTURE, "rb").read()))
        stream = SwfStream(gz)
        assert stream.name == "CTC SP2"
        assert stream.machine_size == 338
        jobs = list(stream.jobs())
        assert len(jobs) == len(read_swf(FIXTURE))

    def test_gz_name_fallback_strips_both_suffixes(self, tmp_path):
        gz = tmp_path / "anon.swf.gz"
        gz.write_bytes(
            gzip.compress(b"1 0 -1 10 2 -1 -1 2 20 -1 1 -1 -1 -1 -1 -1 -1 -1\n")
        )
        assert SwfStream(gz).name == "anon"
        assert read_swf(gz).name == "anon"

    def test_open_swf_plain_text(self, tmp_path):
        p = tmp_path / "plain.swf"
        p.write_text(SAMPLE)
        with open_swf(p) as fh:
            assert fh.readline().startswith(";")

    def test_write_swf_gz_round_trip(self, tmp_path):
        wl = lublin_workload(50, nmax=64, seed=9)
        gz = tmp_path / "out.swf.gz"
        write_swf(wl, gz)
        assert gz.read_bytes()[:2] == b"\x1f\x8b"
        back = read_swf(gz)
        np.testing.assert_array_equal(back.submit, wl.submit)
        np.testing.assert_array_equal(back.runtime, wl.runtime)
        np.testing.assert_array_equal(back.estimate, wl.estimate)
        np.testing.assert_array_equal(back.size, wl.size)
        assert back.nmax == 64

    def test_write_swf_gz_is_deterministic(self, tmp_path):
        wl = lublin_workload(10, nmax=16, seed=3)
        a, b = tmp_path / "a.swf.gz", tmp_path / "b.swf.gz"
        write_swf(wl, a)
        write_swf(wl, b)
        assert a.read_bytes() == b.read_bytes()


class TestWrite:
    def test_roundtrip(self, tmp_path):
        wl = lublin_workload(50, nmax=64, seed=9)
        path = tmp_path / "out.swf"
        write_swf(wl, path)
        back = read_swf(path)
        assert len(back) == len(wl)
        assert back.nmax == 64
        np.testing.assert_allclose(back.submit, wl.submit, atol=0.01)
        np.testing.assert_allclose(back.runtime, wl.runtime, atol=0.01)
        np.testing.assert_array_equal(back.size, wl.size)
        np.testing.assert_allclose(back.estimate, wl.estimate, atol=0.01)

    def test_fractional_values_round_trip_exactly(self):
        """Fractional submit/runtime must survive a write/read cycle bit
        for bit — regression for the old 2-decimal truncation."""
        wl = Workload.from_arrays(
            submit=[0.0, 10.123456789012345, 20.000000953674316],
            runtime=[1.5, 7.0 / 3.0, 100.25],
            size=[1, 2, 4],
            estimate=[2.75, 2.5000001, 101.0],
            nmax=8,
        )
        back = parse_swf_text(write_swf(wl))
        np.testing.assert_array_equal(back.submit, wl.submit)
        np.testing.assert_array_equal(back.runtime, wl.runtime)
        np.testing.assert_array_equal(back.estimate, wl.estimate)
        np.testing.assert_array_equal(back.size, wl.size)

    def test_lublin_round_trip_exact(self, tmp_path):
        wl = lublin_workload(50, nmax=64, seed=9)
        path = tmp_path / "out.swf"
        write_swf(wl, path)
        back = read_swf(path)
        np.testing.assert_array_equal(back.submit, wl.submit)
        np.testing.assert_array_equal(back.runtime, wl.runtime)
        np.testing.assert_array_equal(back.estimate, wl.estimate)

    def test_custom_header(self):
        wl = lublin_workload(3, seed=0)
        text = write_swf(wl, header={"Acknowledge": "nobody"})
        assert "; Acknowledge: nobody" in text

    def test_returns_text_without_path(self):
        wl = lublin_workload(3, seed=0)
        text = write_swf(wl)
        assert text.count("\n") >= 4

    def test_read_from_disk(self, tmp_path):
        p = tmp_path / "sample.swf"
        p.write_text(SAMPLE)
        wl = read_swf(p)
        assert len(wl) == 2


FIXTURE = "tests/data/ctc_tiny.swf"


class TestIterSwfJobs:
    """The streaming parser must agree with the batch parser everywhere —
    parse_swf_text is built on iter_swf_jobs, and these tests pin the
    shared accounting contract."""

    def test_batch_parity_on_fixture(self):
        text = open(FIXTURE, encoding="utf-8").read()
        wl = parse_swf_text(text)
        acc = SwfAccounting()
        jobs = list(iter_swf_jobs(text, accounting=acc))
        assert len(jobs) == len(wl)
        np.testing.assert_array_equal([j.job_id for j in jobs], wl.job_ids)
        np.testing.assert_array_equal([j.submit for j in jobs], wl.submit)
        np.testing.assert_array_equal([j.runtime for j in jobs], wl.runtime)
        np.testing.assert_array_equal(
            np.asarray([j.size for j in jobs]).astype(np.int64), wl.size
        )
        np.testing.assert_array_equal([j.estimate for j in jobs], wl.estimate)
        assert acc.dropped == wl.extra["dropped"]
        assert acc.filtered == wl.extra["filtered"]
        assert acc.header == wl.extra["header"]
        assert acc.yielded == len(wl)

    def test_accounting_matches_batch_on_sample(self):
        # job 2's status becomes 0 (failed): schedulable but filtered.
        text = SAMPLE.replace(
            "2 10 0 50 2 -1 -1 -1 -1 -1 1", "2 10 0 50 2 -1 -1 -1 -1 -1 0"
        )
        acc = SwfAccounting()
        jobs = list(iter_swf_jobs(text, keep_failed=False, accounting=acc))
        wl = parse_swf_text(text, keep_failed=False)
        assert len(jobs) == len(wl) == 1
        assert (acc.dropped, acc.filtered) == (
            wl.extra["dropped"],
            wl.extra["filtered"],
        ) == (2, 1)

    def test_accepts_line_iterables(self):
        from_text = list(iter_swf_jobs(SAMPLE))
        from_lines = list(iter_swf_jobs(iter(SAMPLE.splitlines())))
        assert from_text == from_lines

    def test_estimate_floor_applied(self):
        line = "1 0 -1 0.25 4 -1 -1 4 0.5 -1 1 -1 -1 -1 -1 -1 -1 -1"
        (job,) = iter_swf_jobs(line)
        assert job.estimate == 1.0

    def test_short_line_names_lineno(self):
        with pytest.raises(ValueError, match="line 2"):
            list(iter_swf_jobs("; ok\n1 2 3\n"))

    def test_non_numeric_names_lineno(self):
        bad = SAMPLE.replace("1 0 5 100", "one 0 5 100", 1)
        with pytest.raises(ValueError, match="non-numeric"):
            list(iter_swf_jobs(bad))

    def test_counts_final_only_after_exhaustion(self):
        acc = SwfAccounting()
        it = iter_swf_jobs(SAMPLE, accounting=acc)
        next(it)
        partial = acc.dropped
        list(it)
        assert acc.dropped >= partial
        assert acc.dropped == 2  # jobs 3 (runtime -1) and 4 (size 0)


class TestSwfStream:
    def test_header_read_without_consuming_jobs(self):
        stream = SwfStream(FIXTURE)
        assert stream.name == "CTC SP2"
        assert stream.machine_size == 338
        assert stream.accounting.yielded == 0  # no job rows parsed yet

    def test_jobs_match_read_swf(self):
        stream = SwfStream(FIXTURE)
        jobs = list(stream.jobs())
        wl = read_swf(FIXTURE)
        assert len(jobs) == len(wl)
        np.testing.assert_array_equal([j.submit for j in jobs], wl.submit)
        assert stream.accounting.dropped == wl.extra["dropped"]

    def test_name_falls_back_to_stem(self, tmp_path):
        path = tmp_path / "anon.swf"
        path.write_text("1 0 -1 10 2 -1 -1 2 20 -1 1 -1 -1 -1 -1 -1 -1 -1\n")
        stream = SwfStream(path)
        assert stream.name == "anon"
        assert stream.machine_size == 0

    def test_keep_failed_flag_respected(self, tmp_path):
        path = tmp_path / "mixed.swf"
        path.write_text(
            SAMPLE.replace(
                "2 10 0 50 2 -1 -1 -1 -1 -1 1", "2 10 0 50 2 -1 -1 -1 -1 -1 0"
            )
        )
        assert len(list(SwfStream(path).jobs())) == 2
        assert len(list(SwfStream(path, keep_failed=False).jobs())) == 1

    def test_second_pass_does_not_double_count(self):
        stream = SwfStream(FIXTURE)
        list(stream.jobs())
        first = (
            stream.accounting.dropped,
            stream.accounting.filtered,
            stream.accounting.yielded,
        )
        list(stream.jobs())
        assert (
            stream.accounting.dropped,
            stream.accounting.filtered,
            stream.accounting.yielded,
        ) == first
        assert stream.name == "CTC SP2"  # header survives the reset

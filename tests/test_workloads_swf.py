"""Tests for SWF parsing and serialisation."""

import numpy as np
import pytest

from repro.workloads.lublin import lublin_workload
from repro.workloads.swf import parse_swf_text, read_swf, write_swf

SAMPLE = """\
; Computer: Test Machine
; MaxProcs: 128
; Note: synthetic sample
1 0 5 100 4 -1 -1 8 3600 -1 1 1 1 -1 1 -1 -1 -1
2 10 0 50 2 -1 -1 -1 -1 -1 1 1 1 -1 1 -1 -1 -1
3 20 0 -1 4 -1 -1 4 600 -1 0 1 1 -1 1 -1 -1 -1
4 30 0 25 0 -1 -1 0 -1 -1 5 1 1 -1 1 -1 -1 -1
"""


class TestParse:
    def test_header_metadata(self):
        wl = parse_swf_text(SAMPLE)
        assert wl.name == "Test Machine"
        assert wl.nmax == 128
        assert wl.extra["header"]["Note"] == "synthetic sample"

    def test_field_mapping(self):
        wl = parse_swf_text(SAMPLE)
        job1 = wl.select(wl.job_ids == 1)
        assert job1.submit[0] == 0.0
        assert job1.runtime[0] == 100.0
        assert job1.size[0] == 8  # requested procs preferred
        assert job1.estimate[0] == 3600.0

    def test_fallbacks(self):
        wl = parse_swf_text(SAMPLE)
        job2 = wl.select(wl.job_ids == 2)
        assert job2.size[0] == 2  # falls back to allocated procs
        assert job2.estimate[0] == 50.0  # falls back to runtime

    def test_invalid_jobs_dropped(self):
        wl = parse_swf_text(SAMPLE)
        # job 3: runtime -1; job 4: no procs at all -> both dropped
        assert set(wl.job_ids.tolist()) == {1, 2}
        assert wl.extra["dropped"] == 2

    def test_keep_failed_filter(self):
        text = SAMPLE.replace("2 10 0 50 2 -1 -1 -1 -1 -1 1", "2 10 0 50 2 -1 -1 -1 -1 -1 0")
        wl = parse_swf_text(text, keep_failed=False)
        assert set(wl.job_ids.tolist()) == {1}

    def test_short_line_rejected(self):
        with pytest.raises(ValueError, match="expected >= 11"):
            parse_swf_text("1 2 3\n")

    def test_non_numeric_rejected(self):
        with pytest.raises(ValueError, match="non-numeric"):
            parse_swf_text("1 0 x 100 4 -1 -1 8 3600 -1 1\n")

    def test_empty_text(self):
        wl = parse_swf_text("; Computer: empty\n")
        assert len(wl) == 0

    def test_blank_lines_ignored(self):
        wl = parse_swf_text("\n\n" + SAMPLE + "\n\n")
        assert len(wl) == 2


class TestWrite:
    def test_roundtrip(self, tmp_path):
        wl = lublin_workload(50, nmax=64, seed=9)
        path = tmp_path / "out.swf"
        write_swf(wl, path)
        back = read_swf(path)
        assert len(back) == len(wl)
        assert back.nmax == 64
        np.testing.assert_allclose(back.submit, wl.submit, atol=0.01)
        np.testing.assert_allclose(back.runtime, wl.runtime, atol=0.01)
        np.testing.assert_array_equal(back.size, wl.size)
        np.testing.assert_allclose(back.estimate, wl.estimate, atol=0.01)

    def test_custom_header(self):
        wl = lublin_workload(3, seed=0)
        text = write_swf(wl, header={"Acknowledge": "nobody"})
        assert "; Acknowledge: nobody" in text

    def test_returns_text_without_path(self):
        wl = lublin_workload(3, seed=0)
        text = write_swf(wl)
        assert text.count("\n") >= 4

    def test_read_from_disk(self, tmp_path):
        p = tmp_path / "sample.swf"
        p.write_text(SAMPLE)
        wl = read_swf(p)
        assert len(wl) == 2

"""Tests for the experiment report rendering."""

import numpy as np
import pytest

from repro.experiments.dynamic import DynamicExperimentResult
from repro.experiments.paper_data import paper_row
from repro.experiments.report import render_comparison, render_statistics, render_table


@pytest.fixture
def result():
    return DynamicExperimentResult(
        name="model_256_actual",
        policy_names=("FCFS", "F1"),
        samples={
            "FCFS": np.array([100.0, 200.0, 300.0]),
            "F1": np.array([1.0, 2.0, 3.0]),
        },
        nmax=256,
        use_estimates=False,
        backfill=False,
        n_sequences=3,
        days=0.5,
    )


class TestRenderStatistics:
    def test_artifact_blocks_present(self, result):
        text = render_statistics(result)
        assert "Medians:" in text
        assert "Means:" in text
        assert "Standard Deviations:" in text
        assert "FCFS=200.00" in text
        assert "F1=2.00" in text

    def test_configuration_line(self, result):
        text = render_statistics(result)
        assert "actual runtimes" in text
        assert "backfilling disabled" in text

    def test_custom_header(self, result):
        text = render_statistics(result, header="Custom title")
        assert text.startswith("Custom title")


class TestRenderComparison:
    def test_both_rows(self, result):
        text = render_comparison(result, paper_row("model_256_actual"))
        assert "measured" in text
        assert "paper" in text
        assert "5846.87" in text  # paper's FCFS median
        assert "200.00" in text  # measured FCFS median

    def test_respects_paper_column_order(self, result):
        text = render_comparison(result, paper_row("model_256_actual"))
        head = text.splitlines()[1]
        assert head.index("FCFS") < head.index("F1")


class TestRenderTable:
    def test_grid(self):
        rows = {
            "row_a": {"FCFS": 10.0, "F1": 1.0},
            "row_b": {"FCFS": 20.0, "F1": 2.0},
        }
        text = render_table(rows, columns=("FCFS", "F1"), title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "10.00" in lines[2]
        assert "2.00" in lines[3]

    def test_missing_cell_dash(self):
        text = render_table({"r": {"FCFS": 1.0}}, columns=("FCFS", "F1"))
        assert "-" in text.splitlines()[-1]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_table({})

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.policies.base import Policy
from repro.sim.job import Workload


@pytest.fixture
def rng():
    """Deterministic generator for tests needing randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_workload() -> Workload:
    """Four-job workload with hand-checkable schedule on 4 cores."""
    return Workload.from_arrays(
        submit=[0.0, 1.0, 2.0, 2.0],
        runtime=[10.0, 10.0, 5.0, 20.0],
        size=[3, 4, 1, 1],
        name="tiny",
        nmax=4,
    )


@pytest.fixture
def medium_workload(rng) -> Workload:
    """A moderately loaded random workload on 32 cores."""
    return random_workload(rng, n=120, nmax=32)


def random_workload(
    rng: np.random.Generator,
    n: int = 50,
    nmax: int = 16,
    *,
    horizon: float = 500.0,
    max_runtime: float = 100.0,
) -> Workload:
    """Random rigid-job workload: bursty arrivals, log-uniform runtimes."""
    submit = np.sort(rng.uniform(0.0, horizon, size=n))
    runtime = np.exp(rng.uniform(0.0, np.log(max_runtime), size=n))
    size = rng.integers(1, nmax + 1, size=n)
    estimate = runtime * rng.uniform(1.0, 10.0, size=n)
    return Workload.from_arrays(
        submit=submit, runtime=runtime, size=size, estimate=estimate, nmax=nmax
    )


class TablePolicy(Policy):
    """Static policy whose score is an explicit per-job table.

    Keys on the submit time (unique in the workloads we build), which
    lets tests impose an arbitrary priority order through the standard
    policy interface — used for cross-checking the engine against the
    fixed-priority list scheduler.
    """

    name = "TABLE"
    dynamic = False

    def __init__(self, submit_to_priority: dict[float, float]) -> None:
        self._table = dict(submit_to_priority)

    def scores(self, now, submit, proc, size):
        return np.asarray([self._table[float(s)] for s in submit], dtype=float)


class DynamicWrapper(Policy):
    """Re-scores an inner static policy every pass (forces the dynamic path)."""

    def __init__(self, inner: Policy) -> None:
        self._inner = inner
        self.name = f"dyn:{inner.name}"
        self.dynamic = True

    def scores(self, now, submit, proc, size):
        return self._inner.scores(now, submit, proc, size)


def assert_no_oversubscription(result, nmax: int) -> None:
    """Replay a schedule and verify core conservation at every instant."""
    start = result.start
    finish = result.finish
    size = result.workload.size
    events = []
    for s, f, n in zip(start, finish, size):
        events.append((s, int(n)))
        events.append((f, -int(n)))
    # Releases before allocations at equal times (engine frees cores first).
    events.sort(key=lambda e: (e[0], e[1]))
    used = 0
    for _, delta in events:
        used += delta
        assert used <= nmax, f"oversubscription: {used} > {nmax}"
    assert used == 0


def assert_valid_schedule(result) -> None:
    """Basic sanity of any ScheduleResult."""
    wl = result.workload
    assert np.all(np.isfinite(result.start))
    assert np.all(result.start >= wl.submit - 1e-9)
    assert_no_oversubscription(result, result.config.nmax)

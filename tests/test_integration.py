"""End-to-end integration tests: the full §3 procedure at small scale.

These are the tests that certify the *reproduction*, not just the parts:
train policies from simulation observations, then verify they schedule
better than the baselines they are supposed to beat.
"""

import numpy as np
import pytest

import repro
from repro.core.pipeline import PipelineConfig, obtain_policies
from repro.core.regression import RegressionConfig
from repro.experiments.dynamic import model_stream_for_span, run_dynamic_experiment


@pytest.fixture(scope="module")
def trained():
    np.seterr(all="ignore")
    config = PipelineConfig(
        n_tuples=6,
        trials_per_tuple=192,
        seed=2024,
        regression=RegressionConfig(
            max_points=2000, x0_magnitudes=(1e-3, 1.0), max_nfev=120
        ),
    )
    return obtain_policies(config)


class TestTrainedPolicies:
    def test_top_shape_is_size_plus_submit_family(self, trained):
        """The best fits combine a size term with a submit term, as in
        Table 3 (the exact base functions may differ run to run)."""
        top5 = [f.spec for f in trained.fitted[:5]]
        assert any(sp.op2 == "+" for sp in top5)

    def test_submit_coefficient_positive(self, trained):
        """score grows with s: later tasks are worse first choices, the
        origin of Table 3's large positive log10(s) terms."""
        best_additive = next(
            f
            for f in trained.fitted
            if f.spec.op1 == "*" and f.spec.op2 == "+" and f.spec.gamma == "log"
        )
        assert best_additive.coeffs[2] > 0

    def test_trained_policy_beats_fcfs_out_of_sample(self, trained):
        """The money test: policies learned from (S,Q) tuples schedule a
        *different* long workload far better than FCFS."""
        wl = model_stream_for_span(2 * 0.5 * 86400.0, 256, seed=777)
        res = run_dynamic_experiment(
            wl,
            ["FCFS", trained.policies[0]],
            256,
            n_sequences=2,
            days=0.5,
        )
        med = res.medians()
        assert med["P1"] < med["FCFS"]

    def test_trained_policy_competitive_with_published_f1(self, trained):
        """Learned-here vs the paper's published F1 on a fresh stream:
        same order of magnitude (both are 'good' policies)."""
        wl = model_stream_for_span(2 * 0.5 * 86400.0, 256, seed=31337)
        res = run_dynamic_experiment(
            wl,
            ["F1", trained.policies[0], "FCFS"],
            256,
            n_sequences=2,
            days=0.5,
        )
        med = res.medians()
        assert med["P1"] < med["FCFS"]
        assert med["P1"] < 50 * max(med["F1"], 1.0)


class TestPublicApiRoundTrip:
    def test_quickstart_sequence(self):
        """The README quickstart, as a test."""
        wl = repro.lublin_workload(500, nmax=256, seed=42)
        result = repro.simulate(wl, repro.get_policy("F1"), nmax=256)
        assert result.ave_bsld >= 1.0

    def test_swf_to_schedule(self, tmp_path):
        wl = repro.synthetic_trace("ctc_sp2", seed=0, n_jobs=300)
        path = tmp_path / "ctc.swf"
        repro.write_swf(wl, path)
        back = repro.read_swf(path)
        result = repro.simulate(
            back, repro.get_policy("F2"), back.nmax, use_estimates=True, backfill=True
        )
        assert np.all(np.isfinite(result.start))

    def test_sequences_to_experiment(self):
        wl = repro.lublin_workload(4000, nmax=256, seed=9)
        days = wl.span / 86400.0 / 5
        seqs = repro.extract_sequences(wl, 2, days)
        assert len(seqs) == 2

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestPaperOrderingShape:
    """The qualitative Table 4 claims at smoke scale with a pinned seed."""

    @pytest.fixture(scope="class")
    def row(self):
        from repro.experiments.scale import SCALES
        from repro.experiments.table4 import run_row

        return run_row("model_256_actual", SCALES["smoke"], seed=1)

    def test_learned_beat_every_adhoc(self, row):
        med = row.medians()
        best_learned = min(med["F1"], med["F2"], med["F3"], med["F4"])
        best_adhoc = min(med["FCFS"], med["WFP"], med["UNI"], med["SPT"])
        assert best_learned <= best_adhoc

    def test_fcfs_is_bad(self, row):
        med = row.medians()
        assert med["FCFS"] >= max(med["F1"], med["F2"])

"""Tests for permutation trials and Eq. 3 scores (repro.core.trials)."""

import numpy as np
import pytest

from repro.core.taskgen import generate_tuples
from repro.core.trials import run_trials
from repro.sim.job import Workload
from repro.core.taskgen import TaskSetTuple


@pytest.fixture(scope="module")
def tup():
    return generate_tuples(1, seed=42)[0]


@pytest.fixture(scope="module")
def result(tup):
    return run_trials(tup, 256, 128, seed=0)


class TestScores:
    def test_scores_sum_to_one(self, result):
        """Balanced blocks make Eq. 3 scores an exact partition of unity."""
        assert result.scores.sum() == pytest.approx(1.0)

    def test_scores_positive(self, result):
        assert np.all(result.scores > 0)

    def test_scores_near_uniform(self, result):
        """Figure 1: most scores hover around 1/|Q| = 0.031."""
        mean = 1.0 / 32
        assert abs(result.scores.mean() - mean) < 1e-12
        assert np.all(result.scores < 5 * mean)
        assert result.scores.std() < mean

    def test_balanced_head_counts(self, result):
        """Every task heads the same number of permutations."""
        heads, counts = np.unique(result.first_task, return_counts=True)
        assert len(heads) == 32
        assert len(set(counts.tolist())) == 1

    def test_trial_budget_rounded_to_blocks(self, tup):
        with pytest.warns(UserWarning, match="adjusted to 96"):
            res = run_trials(tup, 256, 100, seed=0)  # 100 -> 3 blocks of 32
        assert res.n_trials == 96

    def test_minimum_one_block(self, tup):
        with pytest.warns(UserWarning, match="adjusted to 32"):
            res = run_trials(tup, 256, 1, seed=0)
        assert res.n_trials == 32

    def test_exact_budget_does_not_warn(self, tup):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_trials(tup, 256, 64, seed=0)  # exactly 2 blocks of 32

    def test_features_match_q(self, tup, result):
        np.testing.assert_array_equal(result.runtime, tup.Q.runtime)
        np.testing.assert_array_equal(result.submit, tup.Q.submit)
        np.testing.assert_array_equal(result.size, tup.Q.size.astype(float))

    def test_observations_shape(self, result):
        obs = result.observations()
        assert obs.shape == (32, 4)
        np.testing.assert_array_equal(obs[:, 3], result.scores)

    def test_avebsld_positive(self, result):
        assert np.all(result.trial_avebsld >= 1.0)

    def test_reproducible(self, tup):
        a = run_trials(tup, 256, 64, seed=9)
        b = run_trials(tup, 256, 64, seed=9)
        np.testing.assert_array_equal(a.scores, b.scores)

    def test_unbalanced_mode(self, tup):
        res = run_trials(tup, 256, 200, seed=0, balanced=False)
        assert res.n_trials == 200
        assert res.scores.sum() == pytest.approx(1.0)

    def test_oversized_job_rejected(self, tup):
        with pytest.raises(ValueError, match="larger than the machine"):
            run_trials(tup, 2, 32, seed=0)


class TestScoreSemantics:
    def test_blocking_job_scores_worse(self):
        """A huge early job must have a higher (worse) score than tiny jobs.

        Construct a tuple where one probe job occupies the whole machine
        for a long time: permutations that run it first delay everyone,
        inflating AVEbsld, hence its Eq. 3 score.
        """
        nmax = 8
        S = Workload.from_arrays([0.0] * 2, [50.0] * 2, [4, 4])
        q_submit = np.linspace(1.0, 10.0, 8)
        q_runtime = np.array([1000.0] + [5.0] * 7)
        q_size = np.array([8] + [1] * 7)
        Q = Workload.from_arrays(q_submit, q_runtime, q_size)
        tup = TaskSetTuple(S=S, Q=Q, index=0)
        res = run_trials(tup, nmax, 64 * 8, seed=1)
        monster = res.scores[0]
        others = np.delete(res.scores, 0)
        assert monster > others.max()

    def test_identical_jobs_score_uniformly(self):
        """With fully symmetric probe jobs every permutation yields the
        same AVEbsld (slot-exchange argument), so Eq. 3 is exactly
        uniform.  This pins down that no hidden asymmetry (tie-breaks,
        ordering bugs) leaks into the scores."""
        S = Workload.from_arrays([0.0], [200.0], [4])
        Q = Workload.from_arrays(
            np.linspace(1.0, 8.0, 8), np.full(8, 100.0), np.full(8, 4)
        )
        res = run_trials(TaskSetTuple(S=S, Q=Q, index=0), 4, 64, seed=2)
        np.testing.assert_allclose(res.scores, 1.0 / 8, atol=1e-12)

    def test_area_correlates_with_score_statistically(self):
        """Pooled over realistic tuples, bigger (r*n) tasks carry higher
        scores — the congestion effect the paper's weighting targets.
        Pinned seed; the correlation is a statistical property, not a
        per-instance guarantee."""
        from scipy.stats import spearmanr

        from repro.core.taskgen import generate_tuples

        tuples = generate_tuples(12, seed=123)
        results = [run_trials(t, 256, 512, seed=i) for i, t in enumerate(tuples)]
        informative = [r for r in results if r.scores.std() > 1e-12]
        assert len(informative) >= 4  # most tuples show contention
        area = np.concatenate([r.runtime * r.size for r in informative])
        score = np.concatenate([r.scores for r in informative])
        rho = spearmanr(area, score).statistic
        assert rho > 0.05

"""Tests for repro.util.validation."""

import numpy as np
import pytest

from repro.util.validation import (
    check_finite,
    check_in_range,
    check_positive,
    check_positive_int,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 1.5) == 1.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0)

    def test_allow_zero(self):
        assert check_positive("x", 0, allow_zero=True) == 0.0

    def test_rejects_negative_even_with_zero_allowed(self):
        with pytest.raises(ValueError):
            check_positive("x", -1, allow_zero=True)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            check_positive("x", float("nan"))

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            check_positive("x", float("inf"))

    def test_coerces_to_float(self):
        assert isinstance(check_positive("x", 3), float)


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int("n", 4) == 4

    def test_accepts_numpy_int(self):
        assert check_positive_int("n", np.int64(4)) == 4

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int("n", True)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int("n", 4.0)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int("n", 0)

    def test_allow_zero(self):
        assert check_positive_int("n", 0, allow_zero=True) == 0


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("p", 0.0, 0.0, 1.0) == 0.0
        assert check_in_range("p", 1.0, 0.0, 1.0) == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_in_range("p", 0.0, 0.0, 1.0, inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValueError, match=r"\[0.0, 1.0\]"):
            check_in_range("p", 1.5, 0.0, 1.0)


class TestCheckFinite:
    def test_passes_finite(self):
        arr = np.arange(5.0)
        out = check_finite("a", arr)
        np.testing.assert_array_equal(out, arr)

    def test_rejects_nan_with_index(self):
        arr = np.array([0.0, np.nan, 1.0])
        with pytest.raises(ValueError, match="flat index 1"):
            check_finite("a", arr)

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_finite("a", np.array([np.inf]))

    def test_empty_ok(self):
        check_finite("a", np.array([]))

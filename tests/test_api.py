"""Tests for the repro.api facade (spec execution, sweeps, caching)."""

import numpy as np
import pytest

import repro
from repro import api
from repro.eval.matrix import MatrixConfig, MatrixResult, run_matrix
from repro.runtime import ArtifactCache
from repro.specs import (
    EvaluateSpec,
    SimulateSpec,
    SpecError,
    SweepSpec,
    Table4Spec,
    TrainSpec,
)

TINY_TRAIN = dict(n_tuples=2, trials_per_tuple=16, nmax=32, regression_max_points=400)


@pytest.fixture()
def tiny_swf(tmp_path):
    """A small on-disk SWF trace (deterministic)."""
    wl = repro.lublin_workload(160, nmax=32, seed=7)
    path = tmp_path / "tiny.swf"
    repro.write_swf(wl, path)
    return path


class TestRunDispatch:
    def test_non_spec_rejected(self):
        with pytest.raises(SpecError, match="takes a Spec"):
            api.run({"spec": "train"})

    def test_train(self):
        result = api.run(TrainSpec(**TINY_TRAIN))
        assert result.policies
        assert result.config.n_tuples == 2

    def test_train_matches_direct_pipeline(self):
        spec = TrainSpec(**TINY_TRAIN)
        direct = repro.obtain_policies(spec.to_pipeline_config())
        via_api = api.run(spec)
        np.testing.assert_array_equal(
            direct.distribution.score, via_api.distribution.score
        )

    def test_simulate_matches_direct_engine(self):
        spec = SimulateSpec(policy="F1", jobs=120, nmax=32, seed=3)
        report = api.run(spec)
        wl = repro.apply_tsafrir(
            repro.lublin_workload(120, 32, seed=3), seed=4
        )
        direct = repro.simulate(wl, repro.get_policy("F1"), 32)
        assert report.ave_bsld == pytest.approx(direct.ave_bsld)
        assert report.n_jobs == 120
        assert not report.cached

    def test_evaluate_matches_direct_matrix(self, tiny_swf):
        spec = EvaluateSpec(
            trace=str(tiny_swf),
            policies=("fcfs", "f1"),
            backfill=("none",),
            window_jobs=40,
        )
        via_api = api.run(spec)
        direct = run_matrix(
            repro.read_swf(tiny_swf),
            MatrixConfig(
                policies=("fcfs", "f1"), backfill=("none",), window_jobs=40
            ),
        )
        assert isinstance(via_api, MatrixResult)
        assert via_api.cells == direct.cells

    def test_evaluate_stream_matches_batch(self, tiny_swf):
        batch = api.run(
            EvaluateSpec(trace=str(tiny_swf), window_jobs=40, stream=False)
        )
        streamed = api.run(
            EvaluateSpec(trace=str(tiny_swf), window_jobs=40, stream=True)
        )
        assert batch.cells == streamed.cells
        assert batch.trace_name == streamed.trace_name

    def test_table4(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        results = api.run(Table4Spec(rows=("ctc_sp2_actual",)))
        assert len(results) == 1
        assert results[0].name == "ctc_sp2_actual"

    def test_run_file(self, tmp_path, tiny_swf):
        path = tmp_path / "eval.toml"
        path.write_text(
            f'spec = "evaluate"\ntrace = "{tiny_swf}"\nwindow_jobs = 40\n',
            encoding="utf-8",
        )
        from_file = api.run_file(path)
        from_flags = api.run(EvaluateSpec(trace=str(tiny_swf), window_jobs=40))
        assert from_file.cells == from_flags.cells


class TestCaching:
    def test_simulate_cache_round_trip(self, tmp_path):
        spec = SimulateSpec(policy="F1", jobs=100, nmax=32)
        cache = ArtifactCache(tmp_path / "cache")
        cold = api.run(spec, cache=cache)
        warm = api.run(spec, cache=cache)
        assert not cold.cached and warm.cached
        assert warm.line() == cold.line()
        assert cold.ave_bsld == warm.ave_bsld

    def test_simulate_cache_is_content_addressed(self, tmp_path):
        # Same workload content via a renamed file -> same cache entry.
        wl = repro.lublin_workload(80, nmax=32, seed=1)
        a, b = tmp_path / "a.swf", tmp_path / "b.swf"
        repro.write_swf(wl, a)
        repro.write_swf(wl, b)
        cache = ArtifactCache(tmp_path / "cache")
        first = api.run(SimulateSpec(swf=str(a), policy="F1"), cache=cache)
        second = api.run(SimulateSpec(swf=str(b), policy="F1"), cache=cache)
        assert not first.cached and second.cached

    def test_evaluate_cached_rerun_simulates_nothing(self, tiny_swf, tmp_path):
        spec = EvaluateSpec(trace=str(tiny_swf), window_jobs=40)
        cache = ArtifactCache(tmp_path / "cache")
        cold = api.run(spec, cache=cache)
        warm = api.run(spec, cache=cache)
        assert cold.n_simulated > 0 and cold.n_cached == 0
        assert warm.n_simulated == 0 and warm.n_cached == cold.n_simulated

    def test_train_cache_via_path(self, tmp_path):
        spec = TrainSpec(**TINY_TRAIN)
        cold = api.run(spec, cache=tmp_path / "cache")
        warm = api.run(spec, cache=tmp_path / "cache")
        np.testing.assert_array_equal(
            cold.distribution.score, warm.distribution.score
        )
        assert (tmp_path / "cache" / f"trials-{spec.distribution_key()}.npz").exists()


class TestSweep:
    def _sweep(self, tiny_swf):
        return SweepSpec(
            base=EvaluateSpec(
                trace=str(tiny_swf),
                policies=("fcfs",),
                backfill=("none",),
                window_jobs=40,
            ),
            grid={
                "policies": [["fcfs"], ["f1"]],
                "backfill": [["none"], ["easy"]],
            },
        )

    def test_sweep_runs_every_grid_point(self, tiny_swf, tmp_path):
        result = api.run(self._sweep(tiny_swf), cache=tmp_path / "cache")
        assert len(result.cells) == 4
        assert all(isinstance(c.result, MatrixResult) for c in result.cells)
        # 160 jobs / 40-job windows = 4 windows x 1 policy x 1 mode each.
        assert result.n_simulated == 16
        assert result.n_cached == 0

    def test_sweep_rerun_is_fully_cached(self, tiny_swf, tmp_path):
        spec = self._sweep(tiny_swf)
        api.run(spec, cache=tmp_path / "cache")
        warm = api.run(spec, cache=tmp_path / "cache")
        assert warm.n_simulated == 0
        assert warm.n_cached == 16

    def test_extended_grid_only_simulates_new_cells(self, tiny_swf, tmp_path):
        api.run(self._sweep(tiny_swf), cache=tmp_path / "cache")
        wider = SweepSpec(
            base=self._sweep(tiny_swf).base,
            grid={
                "policies": [["fcfs"], ["f1"]],
                "backfill": [["none"], ["easy"], ["conservative"]],
            },
        )
        grown = api.run(wider, cache=tmp_path / "cache")
        # 2 new children (fcfs/conservative, f1/conservative) x 4 windows.
        assert grown.n_simulated == 8
        assert grown.n_cached == 16

    def test_sweep_matches_individual_runs(self, tiny_swf):
        sweep = api.run(self._sweep(tiny_swf))
        for cell in sweep.cells:
            assert cell.result.cells == api.run(cell.spec).cells

    def test_summary_outputs(self, tiny_swf, tmp_path):
        result = api.run(self._sweep(tiny_swf), cache=tmp_path / "cache")
        table = result.summary_table()
        assert "simulated 16, cached 0" in table
        assert "policies × backfill" in table
        csv = result.summary_csv()
        assert csv.splitlines()[0] == (
            "policies,backfill,fingerprint,n_simulated,n_cached,headline"
        )
        assert len(csv.splitlines()) == 5

    def test_sweep_over_train_specs(self, tmp_path):
        sweep = SweepSpec(
            base=TrainSpec(**TINY_TRAIN),
            grid={"seed": [0, 1]},
        )
        cold = api.run(sweep, cache=tmp_path / "cache")
        assert cold.n_simulated == 2 and cold.n_cached == 0
        warm = api.run(sweep, cache=tmp_path / "cache")
        assert warm.n_simulated == 0 and warm.n_cached == 2


class TestProgress:
    def test_progress_callback_sees_phases(self, tiny_swf, tmp_path):
        seen = []
        api.run(
            self_sweep_spec(tiny_swf),
            cache=tmp_path / "cache",
            progress=lambda phase, done, total: seen.append(phase),
        )
        assert "sweep" in seen
        assert "cells" in seen


def self_sweep_spec(tiny_swf):
    """Module-level helper so TestProgress stays tiny."""
    return SweepSpec(
        base=EvaluateSpec(
            trace=str(tiny_swf),
            policies=("fcfs",),
            backfill=("none",),
            window_jobs=40,
        ),
        grid={"policies": [["fcfs"], ["f1"]]},
    )

"""Tests for repro.eval.windows (trace slicing invariants)."""

import numpy as np
import pytest

from repro.eval.windows import (
    Window,
    slice_windows,
    stream_windows,
    workload_fingerprint,
)
from repro.workloads.lublin import lublin_workload
from repro.workloads.traces import synthetic_trace


@pytest.fixture(scope="module")
def trace():
    return synthetic_trace("ctc_sp2", n_jobs=230, seed=3)


class TestJobWindows:
    def test_partition_except_short_tail(self, trace):
        ws = slice_windows(trace, jobs=50)
        # 230 jobs -> 4 full windows + a 30-job tail window (>= min_jobs)
        assert [w.n_jobs for w in ws] == [50, 50, 50, 50, 30]
        covered = np.concatenate([w.workload.job_ids for w in ws])
        assert len(covered) == len(trace)

    def test_short_tail_dropped(self, trace):
        ws = slice_windows(trace, jobs=50, min_jobs=40)
        assert [w.n_jobs for w in ws] == [50, 50, 50, 50]

    def test_windows_rebased_and_ordered(self, trace):
        ws = slice_windows(trace, jobs=50)
        for w in ws:
            assert w.workload.submit[0] == 0.0
        t0s = [w.t0 for w in ws]
        assert t0s == sorted(t0s)
        assert all(b > a for a, b in zip(t0s, t0s[1:]))

    def test_windows_disjoint_in_trace_order(self, trace):
        ws = slice_windows(trace, jobs=50)
        ids = [set(w.workload.job_ids.tolist()) for w in ws]
        for a in range(len(ids)):
            for b in range(a + 1, len(ids)):
                assert not (ids[a] & ids[b])

    def test_warmup_trimming(self, trace):
        ws = slice_windows(trace, jobs=50, warmup=10)
        assert all(w.warmup == 10 for w in ws)
        assert all(w.n_scored == w.n_jobs - 10 for w in ws)

    def test_warmup_swallows_window(self, trace):
        with pytest.raises(ValueError, match="leaves nothing after warmup"):
            slice_windows(trace, jobs=8, warmup=8)

    def test_max_windows_truncates(self, trace):
        ws = slice_windows(trace, jobs=50, max_windows=2)
        assert [w.index for w in ws] == [0, 1]

    def test_naming(self, trace):
        ws = slice_windows(trace, jobs=100)
        assert ws[0].workload.name == f"{trace.name}[w0]"
        assert ws[1].workload.name == f"{trace.name}[w1]"


class TestTimeWindows:
    def test_durations_respected(self, trace):
        seconds = trace.span / 4 + 1.0
        ws = slice_windows(trace, seconds=seconds)
        assert len(ws) >= 2
        for w in ws:
            assert w.workload.span < seconds + 1e-9

    def test_all_jobs_covered_when_dense(self):
        wl = lublin_workload(400, nmax=64, seed=1)
        ws = slice_windows(wl, seconds=wl.span / 3 + 1.0, min_jobs=1)
        covered = sum(w.n_jobs for w in ws)
        assert covered == len(wl)

    def test_sparse_epochs_skipped(self):
        # two dense bursts separated by a dead epoch
        submit = np.concatenate([np.linspace(0, 10, 20), np.linspace(1000, 1010, 20)])
        wl = lublin_workload(40, nmax=64, seed=2)
        wl = type(wl)(
            submit=submit,
            runtime=wl.runtime,
            size=wl.size,
            estimate=wl.estimate,
            job_ids=np.arange(40),
            nmax=64,
        )
        ws = slice_windows(wl, seconds=100.0)
        assert len(ws) == 2
        assert all(w.n_jobs == 20 for w in ws)


class TestValidation:
    def test_exactly_one_axis(self, trace):
        with pytest.raises(ValueError, match="exactly one"):
            slice_windows(trace, jobs=10, seconds=100.0)
        with pytest.raises(ValueError, match="exactly one"):
            slice_windows(trace)

    def test_empty_workload_rejected(self, trace):
        empty = trace.select(np.zeros(len(trace), dtype=bool))
        with pytest.raises(ValueError, match="empty"):
            slice_windows(empty, jobs=10)

    def test_negative_warmup_rejected(self, trace):
        with pytest.raises(ValueError, match="warmup"):
            slice_windows(trace, jobs=10, warmup=-1)

    def test_window_warmup_guard(self, trace):
        ws = slice_windows(trace, jobs=50)
        with pytest.raises(ValueError, match="no.*scored|leaves no"):
            Window(index=0, workload=ws[0].workload, warmup=50, t0=0.0)


class TestFingerprint:
    def test_depends_only_on_arrays(self, trace):
        renamed = trace.with_name("something else")
        assert workload_fingerprint(trace) == workload_fingerprint(renamed)

    def test_sensitive_to_content(self, trace):
        bumped = trace.with_estimates(trace.estimate * 2.0)
        assert workload_fingerprint(trace) != workload_fingerprint(bumped)

    def test_window_fingerprint_includes_warmup(self, trace):
        a = slice_windows(trace, jobs=50)[0]
        b = slice_windows(trace, jobs=50, warmup=5)[0]
        assert a.fingerprint() != b.fingerprint()


class TestStreamWindows:
    """Lazy slicing must be indistinguishable from batch slicing —
    identical fingerprints mean identical per-cell cache keys."""

    FIXTURE = "tests/data/ctc_tiny.swf"

    @staticmethod
    def _fingerprints(windows):
        return [(w.index, w.t0, w.workload.name, w.fingerprint()) for w in windows]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"jobs": 50},
            {"jobs": 50, "warmup": 5},
            {"jobs": 30, "max_windows": 3},
            {"jobs": 50, "min_jobs": 45},
        ],
    )
    def test_job_window_parity_with_slice(self, kwargs):
        from repro.workloads.swf import read_swf

        wl = read_swf(self.FIXTURE)
        batch = slice_windows(wl, **kwargs)
        lazy = list(stream_windows(wl, **kwargs))
        assert self._fingerprints(batch) == self._fingerprints(lazy)

    def test_time_window_parity_with_slice(self):
        from repro.workloads.swf import read_swf

        wl = read_swf(self.FIXTURE)
        seconds = wl.span / 7 + 1.0
        batch = slice_windows(wl, seconds=seconds, min_jobs=1)
        lazy = list(stream_windows(wl, seconds=seconds, min_jobs=1))
        assert self._fingerprints(batch) == self._fingerprints(lazy)

    def test_parity_from_file_stream(self):
        from repro.workloads.swf import SwfStream, read_swf

        wl = read_swf(self.FIXTURE)
        batch = slice_windows(wl, jobs=50, warmup=5)
        stream = SwfStream(self.FIXTURE)
        lazy = list(
            stream_windows(
                stream.jobs(),
                jobs=50,
                warmup=5,
                name=stream.name,
                nmax=stream.machine_size,
            )
        )
        assert self._fingerprints(batch) == self._fingerprints(lazy)
        assert all(w.workload.nmax == wl.nmax for w in lazy)

    def test_max_windows_stops_consuming_the_source(self, trace):
        seen = []

        def rows():
            for row in zip(
                trace.job_ids.tolist(),
                trace.submit.tolist(),
                trace.runtime.tolist(),
                trace.size.tolist(),
                trace.estimate.tolist(),
            ):
                seen.append(row)
                yield row

        ws = list(stream_windows(rows(), jobs=50, max_windows=2, name=trace.name))
        assert [w.index for w in ws] == [0, 1]
        # exactly the two windows' jobs were pulled; the rest never left disk
        assert len(seen) == 100

    def test_lazy_yielding(self, trace):
        gen = stream_windows(trace, jobs=50)
        first = next(gen)
        assert first.index == 0
        assert first.workload.name == f"{trace.name}[w0]"

    def test_out_of_order_stream_rejected(self):
        rows = [
            (0, 10.0, 5.0, 1, 5.0),
            (1, 3.0, 5.0, 1, 5.0),
        ]
        with pytest.raises(ValueError, match="submit-sorted"):
            list(stream_windows(iter(rows), jobs=2, min_jobs=1))

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            list(stream_windows(iter(()), jobs=10))

    def test_validation_is_eager(self, trace):
        # bad parameters raise at call time, not at first consumption
        with pytest.raises(ValueError, match="exactly one"):
            stream_windows(trace, jobs=10, seconds=100.0)
        with pytest.raises(ValueError, match="leaves nothing after warmup"):
            stream_windows(trace, jobs=8, warmup=8)

    def test_warmup_and_scoring_accounting(self, trace):
        ws = list(stream_windows(trace, jobs=50, warmup=10))
        assert all(w.warmup == 10 for w in ws)
        assert all(w.n_scored == w.n_jobs - 10 for w in ws)

    def test_oversized_job_in_dropped_tail_still_rejected(self, trace):
        # the batch path validates the whole trace before slicing; the
        # stream must catch an oversized job even when its window would
        # be dropped as a too-short tail
        import dataclasses

        bad_sizes = trace.size.copy()
        bad_sizes[-1] = 10_000  # lands in the dropped 1-job tail below
        bad = dataclasses.replace(trace, size=bad_sizes)
        gen = stream_windows(bad, jobs=len(bad) - 1, nmax=trace.nmax)
        with pytest.raises(ValueError, match="needs 10000 cores"):
            list(gen)

    def test_nmax_zero_skips_job_validation(self, trace):
        # unknown machine size: validation is the matrix's job, not ours
        ws = list(stream_windows(trace, jobs=50, nmax=0))
        assert len(ws) > 0

    def test_sparse_gap_fast_forward_matches_slice(self):
        # a huge idle gap spans ~100k empty slots; the stream must jump
        # them, and land in exactly the slots searchsorted would pick
        submit = np.concatenate(
            [np.linspace(0.0, 9.0, 20), np.linspace(1.0e5, 1.0e5 + 9.0, 20)]
        )
        wl = lublin_workload(40, nmax=64, seed=2)
        wl = type(wl)(
            submit=submit,
            runtime=wl.runtime,
            size=wl.size,
            estimate=wl.estimate,
            job_ids=np.arange(40),
            nmax=64,
        )
        batch = slice_windows(wl, seconds=1.0, min_jobs=1)
        lazy = list(stream_windows(wl, seconds=1.0, min_jobs=1))
        assert self._fingerprints(batch) == self._fingerprints(lazy)

"""Tests for repro.eval.windows (trace slicing invariants)."""

import numpy as np
import pytest

from repro.eval.windows import Window, slice_windows, workload_fingerprint
from repro.workloads.lublin import lublin_workload
from repro.workloads.traces import synthetic_trace


@pytest.fixture(scope="module")
def trace():
    return synthetic_trace("ctc_sp2", n_jobs=230, seed=3)


class TestJobWindows:
    def test_partition_except_short_tail(self, trace):
        ws = slice_windows(trace, jobs=50)
        # 230 jobs -> 4 full windows + a 30-job tail window (>= min_jobs)
        assert [w.n_jobs for w in ws] == [50, 50, 50, 50, 30]
        covered = np.concatenate([w.workload.job_ids for w in ws])
        assert len(covered) == len(trace)

    def test_short_tail_dropped(self, trace):
        ws = slice_windows(trace, jobs=50, min_jobs=40)
        assert [w.n_jobs for w in ws] == [50, 50, 50, 50]

    def test_windows_rebased_and_ordered(self, trace):
        ws = slice_windows(trace, jobs=50)
        for w in ws:
            assert w.workload.submit[0] == 0.0
        t0s = [w.t0 for w in ws]
        assert t0s == sorted(t0s)
        assert all(b > a for a, b in zip(t0s, t0s[1:]))

    def test_windows_disjoint_in_trace_order(self, trace):
        ws = slice_windows(trace, jobs=50)
        ids = [set(w.workload.job_ids.tolist()) for w in ws]
        for a in range(len(ids)):
            for b in range(a + 1, len(ids)):
                assert not (ids[a] & ids[b])

    def test_warmup_trimming(self, trace):
        ws = slice_windows(trace, jobs=50, warmup=10)
        assert all(w.warmup == 10 for w in ws)
        assert all(w.n_scored == w.n_jobs - 10 for w in ws)

    def test_warmup_swallows_window(self, trace):
        with pytest.raises(ValueError, match="leaves nothing after warmup"):
            slice_windows(trace, jobs=8, warmup=8)

    def test_max_windows_truncates(self, trace):
        ws = slice_windows(trace, jobs=50, max_windows=2)
        assert [w.index for w in ws] == [0, 1]

    def test_naming(self, trace):
        ws = slice_windows(trace, jobs=100)
        assert ws[0].workload.name == f"{trace.name}[w0]"
        assert ws[1].workload.name == f"{trace.name}[w1]"


class TestTimeWindows:
    def test_durations_respected(self, trace):
        seconds = trace.span / 4 + 1.0
        ws = slice_windows(trace, seconds=seconds)
        assert len(ws) >= 2
        for w in ws:
            assert w.workload.span < seconds + 1e-9

    def test_all_jobs_covered_when_dense(self):
        wl = lublin_workload(400, nmax=64, seed=1)
        ws = slice_windows(wl, seconds=wl.span / 3 + 1.0, min_jobs=1)
        covered = sum(w.n_jobs for w in ws)
        assert covered == len(wl)

    def test_sparse_epochs_skipped(self):
        # two dense bursts separated by a dead epoch
        submit = np.concatenate([np.linspace(0, 10, 20), np.linspace(1000, 1010, 20)])
        wl = lublin_workload(40, nmax=64, seed=2)
        wl = type(wl)(
            submit=submit,
            runtime=wl.runtime,
            size=wl.size,
            estimate=wl.estimate,
            job_ids=np.arange(40),
            nmax=64,
        )
        ws = slice_windows(wl, seconds=100.0)
        assert len(ws) == 2
        assert all(w.n_jobs == 20 for w in ws)


class TestValidation:
    def test_exactly_one_axis(self, trace):
        with pytest.raises(ValueError, match="exactly one"):
            slice_windows(trace, jobs=10, seconds=100.0)
        with pytest.raises(ValueError, match="exactly one"):
            slice_windows(trace)

    def test_empty_workload_rejected(self, trace):
        empty = trace.select(np.zeros(len(trace), dtype=bool))
        with pytest.raises(ValueError, match="empty"):
            slice_windows(empty, jobs=10)

    def test_negative_warmup_rejected(self, trace):
        with pytest.raises(ValueError, match="warmup"):
            slice_windows(trace, jobs=10, warmup=-1)

    def test_window_warmup_guard(self, trace):
        ws = slice_windows(trace, jobs=50)
        with pytest.raises(ValueError, match="no.*scored|leaves no"):
            Window(index=0, workload=ws[0].workload, warmup=50, t0=0.0)


class TestFingerprint:
    def test_depends_only_on_arrays(self, trace):
        renamed = trace.with_name("something else")
        assert workload_fingerprint(trace) == workload_fingerprint(renamed)

    def test_sensitive_to_content(self, trace):
        bumped = trace.with_estimates(trace.estimate * 2.0)
        assert workload_fingerprint(trace) != workload_fingerprint(bumped)

    def test_window_fingerprint_includes_warmup(self, trace):
        a = slice_windows(trace, jobs=50)[0]
        b = slice_windows(trace, jobs=50, warmup=5)[0]
        assert a.fingerprint() != b.fingerprint()

"""Randomized bit-parity: every executor backend vs the serial loop.

The runtime's headline contract — results are **bit-identical** for any
``(workers, chunk_size, backend)`` — is asserted here the same way
``tests/test_sim_kernel_parity.py`` pins the simulation kernel: seeded
random inputs, exhaustive small sweeps, and ``tobytes()`` comparisons
rather than approximate ones.  Two work kinds are swept, matching the
two dispatch surfaces of :class:`~repro.runtime.TrialRunner`:

* **training trials** (``run_tuple_trials``) — the paper's §3 pipeline,
  seeded per tuple index;
* **evaluation matrices** (``TrialRunner.map`` via ``run_matrix``) —
  pure cells reassembled by index, including the streamed path.

Alongside results, the *telemetry merge* contract rides the same sweep:
worker registries merge additively into the parent, so every counter a
parallel run reports equals the serial run's, on every backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import PipelineConfig, build_distribution
from repro.eval.matrix import MatrixConfig, run_matrix
from repro.eval.windows import stream_windows
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.runtime import BACKEND_NAMES
from repro.workloads.traces import synthetic_trace

WORKER_COUNTS = (1, 2, 4)

TRIAL_FIELDS = ("runtime", "size", "submit", "scores", "first_task", "trial_avebsld")

#: Counters that must merge additively to the serial totals.
MERGED_COUNTERS = (
    "sim.runs",
    "sim.events",
    "sim.jobs_completed",
    "listsched.trials",
    "listsched.jobs",
)


def _trial_bytes(results) -> list[tuple[bytes, ...]]:
    return [
        tuple(np.asarray(getattr(r, f)).tobytes() for f in TRIAL_FIELDS)
        for r in results
    ]


def _matrix_bytes(result) -> list[tuple]:
    return [
        (
            c.window,
            c.policy,
            c.backfill,
            np.float64(c.ave_bsld).tobytes(),
            np.float64(c.utilization).tobytes(),
            np.float64(c.makespan).tobytes(),
            c.backfilled,
            c.seed,
        )
        for c in result.cells
    ]


def _pipeline_config(rng: np.random.Generator) -> PipelineConfig:
    return PipelineConfig(
        n_tuples=int(rng.integers(3, 7)),
        trials_per_tuple=int(rng.integers(8, 25)),
        nmax=int(rng.choice([16, 32])),
        s_size=4,
        q_size=int(rng.integers(3, 7)),
        seed=int(rng.integers(0, 2**16)),
        balanced_trials=bool(rng.integers(0, 2)),
    )


class TestTrialParity:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    @pytest.mark.parametrize("case", range(2))
    def test_trials_bit_identical_across_backends(self, backend, case, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_QUEUE_DIR", str(tmp_path / "queue"))
        rng = np.random.default_rng(abs(hash(("trials", case))) % 2**32)
        config = _pipeline_config(rng)
        chunk = int(rng.integers(1, 4))
        _, serial, _ = build_distribution(config)
        reference = _trial_bytes(serial)
        for workers in WORKER_COUNTS:
            _, results, _ = build_distribution(
                config, workers=workers, chunk_size=chunk, backend=backend
            )
            assert _trial_bytes(results) == reference, (
                f"backend={backend} workers={workers} chunk={chunk} diverged"
            )


class TestMatrixParity:
    @pytest.fixture(scope="class")
    def trace(self):
        return synthetic_trace("ctc_sp2", n_jobs=160, seed=11)

    @pytest.fixture(scope="class")
    def config(self):
        return MatrixConfig(
            policies=("fcfs", "f1"),
            backfill=("none", "easy"),
            window_jobs=40,
            warmup=4,
            seed=3,
        )

    @pytest.fixture(scope="class")
    def reference(self, trace, config):
        return _matrix_bytes(run_matrix(trace, config))

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_matrix_bit_identical(
        self, backend, workers, trace, config, reference, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_QUEUE_DIR", str(tmp_path / "queue"))
        result = run_matrix(
            trace, config, workers=workers, chunk_size=2, backend=backend
        )
        assert _matrix_bytes(result) == reference

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_streamed_matrix_bit_identical(
        self, backend, trace, config, reference, tmp_path, monkeypatch
    ):
        """The streamed path reuses one runner across flushes — exactly
        where the persistent local pool (and queue reuse) must still be
        invisible in the bytes."""
        monkeypatch.setenv("REPRO_QUEUE_DIR", str(tmp_path / "queue"))
        windows = stream_windows(
            trace, jobs=config.window_jobs, warmup=config.warmup
        )
        result = run_matrix(
            windows, config, workers=2, chunk_size=1, backend=backend
        )
        assert _matrix_bytes(result) == reference


class TestTelemetryMerge:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_merged_counters_equal_serial(
        self, backend, workers, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_QUEUE_DIR", str(tmp_path / "queue"))
        config = PipelineConfig(
            n_tuples=4, trials_per_tuple=12, nmax=16, s_size=4, q_size=4, seed=9
        )
        serial = MetricsRegistry()
        with use_registry(serial):
            build_distribution(config)
        parallel = MetricsRegistry()
        with use_registry(parallel):
            build_distribution(config, workers=workers, backend=backend)
        for name in MERGED_COUNTERS:
            assert parallel.value(name) == serial.value(name), (
                f"{name}: backend={backend} workers={workers}"
            )
        # The per-chunk compute timer covers every chunk exactly once on
        # the fanned-out paths (the workers=1 inline loop records no
        # chunks on backends that allow the serial shortcut).
        if workers > 1 or backend == "workqueue":
            assert parallel.timer_count("runtime.chunk") >= 1
            assert parallel.timer_count("runtime.shard.wall") == (
                parallel.timer_count("runtime.chunk")
            )

"""Tests for the weighted nonlinear regression (Eqs. 4-5)."""

import numpy as np
import pytest

from repro.core.distribution import ScoreDistribution
from repro.core.functions import FunctionSpec
from repro.core.regression import RegressionConfig, fit_all, fit_function, rank_error


def planted_distribution(spec, coeffs, n=400, noise=0.0, seed=0):
    """Observations generated from a known member of the space."""
    rng = np.random.default_rng(seed)
    r = rng.uniform(1.0, 1e4, n)
    size = rng.integers(1, 256, n).astype(float)
    s = rng.uniform(1.0, 1e5, n)
    y = spec.evaluate(np.asarray(coeffs), r, size, s)
    y = y + noise * rng.standard_normal(n)
    return ScoreDistribution(runtime=r, size=size, submit=s, score=y)


class TestRankError:
    def test_zero_for_perfect_fit(self):
        y = np.array([1.0, 2.0])
        assert rank_error(y, y) == 0.0

    def test_mean_absolute(self):
        assert rank_error(np.array([1.0, 3.0]), np.array([0.0, 0.0])) == 2.0

    def test_nonfinite_penalised(self):
        assert rank_error(np.array([np.inf]), np.array([0.0])) > 1e5

    def test_all_bad_is_inf(self):
        assert rank_error(np.array([np.nan, np.inf]), np.zeros(2)) > 1e5


class TestFitFunction:
    def test_recovers_planted_linear(self):
        """Additive spec is exactly solvable; coefficients must be found."""
        spec = FunctionSpec("log", "id", "log", "+", "+")
        dist = planted_distribution(spec, (0.5, -0.01, 2.0))
        fit = fit_function(spec, dist, RegressionConfig(weighted=False))
        assert fit.rank_error < 1e-4
        np.testing.assert_allclose(fit.coeffs, (0.5, -0.01, 2.0), rtol=1e-3)

    def test_recovers_planted_product_form(self):
        """The paper's family: (c1 a(r))·(c2 b(n)) + c3 g(s)."""
        spec = FunctionSpec("id", "id", "log", "*", "+")
        dist = planted_distribution(spec, (1e-3, 1e-2, 5.0))
        fit = fit_function(spec, dist, RegressionConfig(weighted=False))
        # product coefficients are only identified up to c1*c2
        c1, c2, c3 = fit.coeffs
        assert c1 * c2 == pytest.approx(1e-5, rel=1e-3)
        assert c3 == pytest.approx(5.0, rel=1e-3)
        assert fit.rank_error < 1e-4

    def test_weighting_changes_fit(self):
        spec = FunctionSpec("id", "id", "log", "*", "+")
        truth = FunctionSpec("log", "id", "log", "*", "+")
        dist = planted_distribution(truth, (1e-2, 1e-2, 3.0), noise=0.01)
        weighted = fit_function(spec, dist, RegressionConfig(weighted=True))
        unweighted = fit_function(spec, dist, RegressionConfig(weighted=False))
        assert weighted.coeffs != unweighted.coeffs

    def test_never_raises_on_hostile_spec(self):
        """Division shapes can blow up; the fit must degrade gracefully."""
        spec = FunctionSpec("inv", "inv", "inv", "/", "/")
        dist = planted_distribution(FunctionSpec("id", "id", "id", "+", "+"), (1, 1, 1))
        fit = fit_function(spec, dist)
        assert fit.spec == spec  # returned, not raised
        assert np.isfinite(fit.rank_error) or fit.rank_error == float("inf")

    def test_subsample_bound_respected(self):
        spec = FunctionSpec("id", "id", "id", "+", "+")
        dist = planted_distribution(spec, (1, 1, 1), n=500)
        fit = fit_function(spec, dist, RegressionConfig(max_points=100))
        assert fit.n_observations == 100


class TestFitAll:
    @pytest.fixture(scope="class")
    def planted(self):
        spec = FunctionSpec("id", "id", "log", "*", "+")
        return spec, planted_distribution(spec, (1e-3, 1e-2, 5.0), noise=1e-4)

    def test_truth_ranks_first_among_subset(self, planted):
        truth, dist = planted
        specs = [
            truth,
            FunctionSpec("inv", "id", "log", "*", "+"),
            FunctionSpec("log", "log", "inv", "+", "+"),
            FunctionSpec("sqrt", "inv", "id", "/", "+"),
        ]
        ranked = fit_all(dist, specs=specs, config=RegressionConfig(weighted=False))
        assert ranked[0].spec == truth

    def test_sorted_by_rank_error(self, planted):
        _, dist = planted
        specs = [
            FunctionSpec("id", "id", "log", "*", "+"),
            FunctionSpec("inv", "inv", "inv", "+", "+"),
            FunctionSpec("log", "id", "id", "+", "*"),
        ]
        ranked = fit_all(dist, specs=specs)
        errors = [f.rank_error for f in ranked]
        assert errors == sorted(errors)

    def test_progress_callback(self, planted):
        _, dist = planted
        seen = []
        fit_all(
            dist,
            specs=[FunctionSpec("id", "id", "id", "+", "+")] * 3,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_bases_filter(self, planted):
        _, dist = planted
        config = RegressionConfig(bases=("id", "log"), max_points=50, x0_magnitudes=(1e-3,))
        ranked = fit_all(dist, config=config)
        assert len(ranked) == 2**3 * 9  # 2 bases^3 slots * 9 operator combos
        for f in ranked:
            assert {f.spec.alpha, f.spec.beta, f.spec.gamma} <= {"id", "log"}

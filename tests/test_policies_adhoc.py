"""Tests for the smart ad-hoc policies WFP3 and UNICEF (Table 2)."""

import numpy as np
import pytest

from repro.policies.adhoc import UNICEF, WFP3


class TestWFP3:
    def test_formula(self):
        # score = -(w/r)^3 * n
        p = WFP3()
        out = p.scores(100.0, np.array([0.0]), np.array([10.0]), np.array([4.0]))
        assert out[0] == pytest.approx(-((100.0 / 10.0) ** 3) * 4.0)

    def test_dynamic_flag(self):
        assert WFP3().dynamic is True

    def test_zero_wait_is_zero(self):
        out = WFP3().scores(5.0, np.array([5.0]), np.array([10.0]), np.array([4.0]))
        assert out[0] == 0.0

    def test_wait_clamped_nonnegative(self):
        # job "arriving in the future" must not get a positive score boost
        out = WFP3().scores(0.0, np.array([10.0]), np.array([10.0]), np.array([4.0]))
        assert out[0] == 0.0

    def test_longer_wait_higher_priority(self):
        p = WFP3()
        waited = p.score_job(100.0, 0.0, 10.0, 4)
        fresh = p.score_job(100.0, 90.0, 10.0, 4)
        assert waited < fresh  # lower score runs first

    def test_bigger_job_higher_priority_at_equal_wait_ratio(self):
        """The n factor boosts large jobs, preventing their starvation."""
        p = WFP3()
        small = p.score_job(100.0, 0.0, 10.0, 1)
        big = p.score_job(100.0, 0.0, 10.0, 128)
        assert big < small

    def test_short_job_favoured(self):
        p = WFP3()
        short = p.score_job(100.0, 0.0, 1.0, 4)
        long = p.score_job(100.0, 0.0, 100.0, 4)
        assert short < long

    def test_subsecond_runtime_guard(self):
        out = WFP3().scores(100.0, np.array([0.0]), np.array([0.001]), np.array([1.0]))
        assert np.isfinite(out[0])


class TestUNICEF:
    def test_formula(self):
        # score = -w / (log2(n) * r), n=4 -> log2 = 2
        out = UNICEF().scores(20.0, np.array([0.0]), np.array([10.0]), np.array([4.0]))
        assert out[0] == pytest.approx(-20.0 / (2.0 * 10.0))

    def test_dynamic_flag(self):
        assert UNICEF().dynamic is True

    def test_serial_job_no_division_by_zero(self):
        """log2(1) = 0 would explode; the guard clamps the denominator."""
        out = UNICEF().scores(20.0, np.array([0.0]), np.array([10.0]), np.array([1.0]))
        assert np.isfinite(out[0])
        assert out[0] < 0

    def test_small_jobs_favoured(self):
        """UNI gives fast turnaround to small jobs (paper §4)."""
        p = UNICEF()
        small = p.score_job(100.0, 0.0, 10.0, 2)
        big = p.score_job(100.0, 0.0, 10.0, 256)
        assert small < big

    def test_short_jobs_favoured(self):
        p = UNICEF()
        short = p.score_job(100.0, 0.0, 1.0, 4)
        long = p.score_job(100.0, 0.0, 1000.0, 4)
        assert short < long

    def test_zero_wait_neutral(self):
        out = UNICEF().scores(0.0, np.array([0.0]), np.array([10.0]), np.array([4.0]))
        assert out[0] == 0.0

    def test_wait_clamped(self):
        out = UNICEF().scores(0.0, np.array([50.0]), np.array([10.0]), np.array([4.0]))
        assert out[0] == 0.0

"""Doc lint: every library module documents itself.

A lightweight, dependency-free substitute for ``pydocstyle``: every
module under ``src/repro`` must open with a module docstring, and the
two subsystems whose correctness rests on cross-cutting contracts —
:mod:`repro.runtime` and :mod:`repro.eval` — must *state* those
contracts (results bit-identical for any worker count; caching keyed by
content fingerprints) in their module docstrings, so the invariants
survive refactors as documentation and not just as test assertions.

The CI workflow runs the same checks as a standalone lint step, so a
missing docstring fails fast even when the test suite is skipped.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Spellings that count as stating the determinism invariant.
DETERMINISM_MARKERS = ("bit-identical", "determinis", "pure function", "pure:")
#: Spellings that count as stating the caching invariant.
CACHE_MARKERS = ("cache", "content-addressed", "fingerprint")


def module_files() -> list[Path]:
    files = sorted(SRC.rglob("*.py"))
    assert files, f"no modules found under {SRC}"
    return files


def module_docstring(path: Path) -> str | None:
    return ast.get_docstring(ast.parse(path.read_text(encoding="utf-8")))


def test_every_module_has_a_docstring():
    missing = [
        str(path.relative_to(SRC.parent))
        for path in module_files()
        if not module_docstring(path)
    ]
    assert not missing, f"modules without a module docstring: {missing}"


def test_runtime_and_eval_docstrings_state_invariants():
    """Each runtime/eval module mentions determinism or caching; the
    package entry points state both explicitly."""
    lax_failures = []
    for sub in ("runtime", "eval"):
        for path in sorted((SRC / sub).glob("*.py")):
            doc = (module_docstring(path) or "").lower()
            if not any(
                marker in doc for marker in DETERMINISM_MARKERS + CACHE_MARKERS
            ):
                lax_failures.append(str(path.relative_to(SRC.parent)))
    assert not lax_failures, (
        "runtime/eval modules must document their determinism or caching"
        f" contract: {lax_failures}"
    )
    for package in ("runtime", "eval"):
        doc = (module_docstring(SRC / package / "__init__.py") or "").lower()
        assert any(m in doc for m in DETERMINISM_MARKERS), package
        assert any(m in doc for m in CACHE_MARKERS), package


def test_public_eval_functions_documented():
    """The evaluation subsystem's public callables all carry docstrings
    (it is the newest subsystem and the docs/ guide links into it)."""
    undocumented = []
    for path in sorted((SRC / "eval").glob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.ClassDef)):
                if node.name.startswith("_"):
                    continue
                if not ast.get_docstring(node):
                    undocumented.append(f"{path.name}:{node.name}")
    assert not undocumented, f"undocumented public API: {undocumented}"

"""Tests for conservative backfilling and the availability profile."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policies.classic import FCFS
from repro.sim.conservative import AvailabilityProfile, conservative_starts
from repro.sim.engine import simulate
from repro.sim.job import Workload

from conftest import assert_valid_schedule, random_workload


class TestAvailabilityProfile:
    def test_empty_machine(self):
        p = AvailabilityProfile(0.0, 8, [], [])
        assert p.free_at(0.0) == 8
        assert p.earliest_start(8, 100.0) == 0.0

    def test_running_job_blocks(self):
        p = AvailabilityProfile(0.0, 8, [10.0], [6])
        assert p.free_at(0.0) == 2
        assert p.free_at(10.0) == 8
        assert p.earliest_start(4, 5.0) == 10.0
        assert p.earliest_start(2, 5.0) == 0.0

    def test_staircase(self):
        p = AvailabilityProfile(0.0, 8, [5.0, 10.0], [4, 4])
        assert p.free_at(0.0) == 0
        assert p.free_at(5.0) == 4
        assert p.free_at(10.0) == 8
        assert p.earliest_start(6, 1.0) == 10.0

    def test_past_query_rejected(self):
        p = AvailabilityProfile(5.0, 8, [], [])
        with pytest.raises(ValueError):
            p.free_at(0.0)

    def test_oversubscribed_running_rejected(self):
        with pytest.raises(ValueError):
            AvailabilityProfile(0.0, 4, [10.0], [8])

    def test_reserve_consumes(self):
        p = AvailabilityProfile(0.0, 8, [], [])
        p.reserve(0.0, 10.0, 6)
        assert p.free_at(0.0) == 2
        assert p.free_at(10.0) == 8
        assert p.earliest_start(4, 5.0) == 10.0

    def test_hole_found_between_reservations(self):
        p = AvailabilityProfile(0.0, 8, [], [])
        p.reserve(10.0, 10.0, 8)  # busy [10, 20)
        # a job of duration <= 10 fits before the reservation
        assert p.earliest_start(8, 10.0) == 0.0
        # longer jobs must wait until after it
        assert p.earliest_start(8, 11.0) == 20.0

    def test_oversized_request(self):
        p = AvailabilityProfile(0.0, 4, [], [])
        with pytest.raises(ValueError):
            p.earliest_start(8, 1.0)

    def test_overlapping_reservation_guard(self):
        p = AvailabilityProfile(0.0, 4, [], [])
        p.reserve(0.0, 10.0, 4)
        with pytest.raises(RuntimeError):
            p.reserve(5.0, 2.0, 1)


class TestConservativeStarts:
    def test_head_starts_when_fits(self):
        started = conservative_starts(0.0, 4, [7], [2], [10.0], [], [])
        assert started == [7]

    def test_backfill_into_hole(self):
        # running: 3 cores until t=10. head needs 4 -> reserved at 10.
        # short 1-core job fits now without delaying the head.
        started = conservative_starts(
            0.0, 4, [1, 2], [4, 1], [100.0, 5.0], [10.0], [3]
        )
        assert started == [2]

    def test_strictness_versus_easy(self):
        """A job that EASY admits (fits in `extra`) is refused when it
        would delay the *second* queued job's reservation."""
        # running: 2 cores until t=10; free=2.
        # head needs 4 -> starts at 10. second job needs 2, duration 10:
        # conservative reserves it at t=10.. wait: at t=10 head takes 4
        # of 4 -> second waits until 10+100. A 2-core long backfill
        # candidate would NOT delay the head (extra=0 under EASY -> also
        # refused there), but a 1-core long candidate delays nobody under
        # EASY; conservative refuses it if it pushes the second job.
        started = conservative_starts(
            0.0,
            4,
            [1, 2, 3],
            [4, 2, 1],
            [100.0, 5.0, 200.0],
            [10.0],
            [2],
        )
        # head (1) reserved at t=10; job 2 reserved at t=110 (after head);
        # hmm job 2 (2 cores, 5s) could run at t=0 in the 2 free cores
        # without delaying the head -> starts now.
        assert 2 in started
        assert 1 not in started

    def test_empty_queue(self):
        assert conservative_starts(0.0, 4, [], [], [], [], []) == []


class TestEngineConservativeMode:
    def test_mode_validation(self):
        wl = Workload.from_arrays([0.0], [1.0], [1])
        with pytest.raises(ValueError, match="backfill mode"):
            simulate(wl, FCFS(), 4, backfill="aggressive-ish")

    def test_hand_checked_scenario(self):
        """Conservative agrees with EASY on the worked example of
        test_sim_engine (no second-reservation conflicts there)."""
        wl = Workload.from_arrays(
            submit=[0.0, 1.0, 2.0, 2.0],
            runtime=[10.0, 10.0, 5.0, 20.0],
            size=[3, 4, 1, 1],
        )
        result = simulate(wl, FCFS(), 4, backfill="conservative")
        np.testing.assert_allclose(result.start, [0.0, 10.0, 2.0, 20.0])

    def test_conservative_never_delays_any_fcfs_reservation(self):
        """Strict invariant with exact runtimes: under conservative
        backfilling + FCFS, no job starts later than it would under
        plain FCFS (replan keeps all reservations at least as early)."""
        for seed in range(6):
            rng = np.random.default_rng(seed)
            wl = random_workload(rng, n=40, nmax=8)
            plain = simulate(wl, FCFS(), 8, backfill=False)
            cons = simulate(wl, FCFS(), 8, backfill="conservative")
            assert np.all(cons.start <= plain.start + 1e-6), f"seed {seed}"

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**16))
    def test_valid_schedules(self, seed):
        rng = np.random.default_rng(seed)
        wl = random_workload(rng, n=30, nmax=8)
        result = simulate(wl, FCFS(), 8, backfill="conservative", use_estimates=True)
        assert_valid_schedule(result)

    def test_true_means_easy(self):
        wl = Workload.from_arrays([0.0], [1.0], [1])
        r = simulate(wl, FCFS(), 4, backfill=True)
        assert r.config.backfill_mode == "easy"

"""Tests for classical policies (Table 2 plus extras)."""

import numpy as np
import pytest

from repro.policies.classic import FCFS, LAF, LPT, SAF, SPT, SmallestSizeFirst

SUBMIT = np.array([0.0, 10.0, 20.0])
PROC = np.array([100.0, 50.0, 200.0])
SIZE = np.array([4.0, 2.0, 1.0])


def order(policy, now=0.0):
    return np.argsort(policy.scores(now, SUBMIT, PROC, SIZE), kind="stable")


class TestFCFS:
    def test_score_is_submit(self):
        np.testing.assert_array_equal(FCFS().scores(0.0, SUBMIT, PROC, SIZE), SUBMIT)

    def test_order(self):
        np.testing.assert_array_equal(order(FCFS()), [0, 1, 2])

    def test_static(self):
        assert FCFS().dynamic is False

    def test_time_invariant(self):
        a = FCFS().scores(0.0, SUBMIT, PROC, SIZE)
        b = FCFS().scores(1e6, SUBMIT, PROC, SIZE)
        np.testing.assert_array_equal(a, b)


class TestSPT:
    def test_score_is_proc(self):
        np.testing.assert_array_equal(SPT().scores(0.0, SUBMIT, PROC, SIZE), PROC)

    def test_order_shortest_first(self):
        np.testing.assert_array_equal(order(SPT()), [1, 0, 2])

    def test_uses_given_proc_not_runtime(self):
        """The engine decides whether proc is r or e; SPT just uses it."""
        est = np.array([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(SPT().scores(0.0, SUBMIT, est, SIZE), est)


class TestLPT:
    def test_order_longest_first(self):
        np.testing.assert_array_equal(order(LPT()), [2, 0, 1])

    def test_is_negation_of_spt(self):
        np.testing.assert_array_equal(
            LPT().scores(0.0, SUBMIT, PROC, SIZE),
            -SPT().scores(0.0, SUBMIT, PROC, SIZE),
        )


class TestAreaPolicies:
    def test_saf_score(self):
        np.testing.assert_array_equal(
            SAF().scores(0.0, SUBMIT, PROC, SIZE), PROC * SIZE
        )

    def test_saf_order(self):
        # areas: 400, 100, 200
        np.testing.assert_array_equal(order(SAF()), [1, 2, 0])

    def test_laf_is_negation(self):
        np.testing.assert_array_equal(
            LAF().scores(0.0, SUBMIT, PROC, SIZE),
            -SAF().scores(0.0, SUBMIT, PROC, SIZE),
        )

    def test_ssf_orders_by_size(self):
        np.testing.assert_array_equal(order(SmallestSizeFirst()), [2, 1, 0])


class TestPolicyInterface:
    @pytest.mark.parametrize(
        "policy", [FCFS(), SPT(), LPT(), SAF(), LAF(), SmallestSizeFirst()]
    )
    def test_score_job_scalar_matches_vector(self, policy):
        vec = policy.scores(5.0, SUBMIT, PROC, SIZE)
        for i in range(3):
            scalar = policy.score_job(5.0, SUBMIT[i], PROC[i], int(SIZE[i]))
            assert scalar == pytest.approx(vec[i])

    @pytest.mark.parametrize(
        "policy", [FCFS(), SPT(), LPT(), SAF(), LAF(), SmallestSizeFirst()]
    )
    def test_all_static(self, policy):
        assert policy.dynamic is False

    @pytest.mark.parametrize(
        "policy", [FCFS(), SPT(), LPT(), SAF(), LAF(), SmallestSizeFirst()]
    )
    def test_output_shape_and_dtype(self, policy):
        out = policy.scores(0.0, SUBMIT, PROC, SIZE)
        assert out.shape == SUBMIT.shape
        assert out.dtype == np.float64

"""Tests for the learned policies F1-F4 (Table 3) and NonlinearPolicy."""

import numpy as np
import pytest

from repro.core.functions import FittedFunction, FunctionSpec
from repro.policies.learned import F1, F2, F3, F4, NonlinearPolicy, paper_policies


class TestPublishedFormulas:
    """Each Fi must compute exactly its Table 3 expression."""

    R = np.array([100.0, 1000.0])
    N = np.array([4.0, 64.0])
    S = np.array([50.0, 5000.0])

    def test_f1(self):
        expected = np.log10(self.R) * self.N + 8.70e2 * np.log10(self.S)
        np.testing.assert_allclose(F1().scores(0.0, self.S, self.R, self.N), expected)

    def test_f2(self):
        expected = np.sqrt(self.R) * self.N + 2.56e4 * np.log10(self.S)
        np.testing.assert_allclose(F2().scores(0.0, self.S, self.R, self.N), expected)

    def test_f3(self):
        expected = self.R * self.N + 6.86e6 * np.log10(self.S)
        np.testing.assert_allclose(F3().scores(0.0, self.S, self.R, self.N), expected)

    def test_f4(self):
        expected = self.R * np.sqrt(self.N) + 5.30e5 * np.log10(self.S)
        np.testing.assert_allclose(F4().scores(0.0, self.S, self.R, self.N), expected)

    @pytest.mark.parametrize("policy", [F1(), F2(), F3(), F4()])
    def test_static(self, policy):
        assert policy.dynamic is False

    @pytest.mark.parametrize("policy", [F1(), F2(), F3(), F4()])
    def test_log_guard_at_zero_submit(self, policy):
        """First job of a re-based sequence has s=0; scores stay finite."""
        out = policy.scores(0.0, np.array([0.0]), np.array([100.0]), np.array([4.0]))
        assert np.isfinite(out[0])

    @pytest.mark.parametrize("policy", [F1(), F2(), F3(), F4()])
    def test_earlier_submit_higher_priority(self, policy):
        early = policy.score_job(0.0, 10.0, 100.0, 4)
        late = policy.score_job(0.0, 1e6, 100.0, 4)
        assert early < late

    @pytest.mark.parametrize("policy", [F1(), F2(), F3(), F4()])
    def test_smaller_job_higher_priority_at_equal_submit(self, policy):
        small = policy.score_job(0.0, 100.0, 10.0, 2)
        big = policy.score_job(0.0, 100.0, 1e4, 256)
        assert small < big


class TestSubmitDominance:
    """Figures 3b/3c: the log10(s) coefficient dominates task size."""

    @pytest.mark.parametrize("policy", [F2(), F3(), F4()])
    def test_old_big_job_beats_fresh_small_job(self, policy):
        # A task submitted at s=1 with the largest r,n of the training
        # domain still outranks a tiny task submitted much later.
        old_big = policy.score_job(0.0, 1.0, 2.7e4, 256)
        fresh_small = policy.score_job(0.0, 1e5, 1.0, 1)
        assert old_big < fresh_small

    def test_f1_size_term_can_compete(self):
        """F1's small constant (870) lets job size matter across moderate
        submit gaps — this is what differentiates it from near-FCFS."""
        big = F1().score_job(0.0, 100.0, 2.7e4, 256)  # log10(r)*n ~ 1134
        later_small = F1().score_job(0.0, 200.0, 10.0, 1)
        assert later_small < big


class TestPaperPolicies:
    def test_order_and_names(self):
        names = [p.name for p in paper_policies()]
        assert names == ["F4", "F3", "F2", "F1"]

    def test_fresh_instances(self):
        a, b = paper_policies(), paper_policies()
        assert a[0] is not b[0]


class TestNonlinearPolicy:
    def _fitted(self):
        spec = FunctionSpec(alpha="id", beta="id", gamma="log", op1="*", op2="+")
        return FittedFunction(
            spec=spec,
            coeffs=(1.0, 1.0, 6.86e6),
            rank_error=0.001,
            weighted_sse=0.1,
            n_observations=10,
        )

    def test_matches_f3_shape(self):
        policy = NonlinearPolicy(self._fitted())
        r, n, s = np.array([100.0]), np.array([8.0]), np.array([50.0])
        np.testing.assert_allclose(
            policy.scores(0.0, s, r, n), F3().scores(0.0, s, r, n), rtol=1e-12
        )

    def test_default_name(self):
        assert NonlinearPolicy(self._fitted()).name == "NL[id(r)*id(n)+log(s)]"

    def test_custom_name(self):
        assert NonlinearPolicy(self._fitted(), name="P1").name == "P1"

    def test_describe(self):
        text = NonlinearPolicy(self._fitted()).describe()
        assert "id(runtime)" in text and "fitness=" in text

    def test_static(self):
        assert NonlinearPolicy(self._fitted()).dynamic is False

    def test_fitted_accessor(self):
        f = self._fitted()
        assert NonlinearPolicy(f).fitted is f

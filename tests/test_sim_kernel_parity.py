"""Randomized bit-parity: the unified kernel vs the frozen legacy loops.

``tests/oracle_sim.py`` holds verbatim copies of the pre-kernel
``engine.simulate`` / ``simulate_fixed_priority`` loops.  Every test here
compares kernel output against the oracle **bitwise** (``tobytes``), not
approximately: bit-identical results are the refactor's acceptance bar
(the runtime layer's caching contract keys on exact bytes).

The sweep covers {static/dynamic policy} x {none/easy/conservative
backfill} x {actual/estimated runtimes} x nmax in {1, 17, 256} on seeded
random workloads, on every available kernel backend (pure Python always;
the compiled C backend when a toolchain is present).
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from oracle_sim import oracle_fixed_priority, oracle_simulate

from repro.obs import MetricsRegistry, use_registry
from repro.policies.registry import get_policy
from repro.sim import _cbackend
from repro.sim.engine import simulate
from repro.sim.job import Workload
from repro.sim.kernel import fixed_priority_batch, simulate_events
from repro.sim.listsched import (
    simulate_fixed_priority,
    simulate_fixed_priority_batch,
)

HAVE_C = _cbackend.load() is not None

#: Kernel backends to sweep: the pure-Python loop always; the compiled
#: backend whenever it is buildable on this host.
BACKENDS = ["python"] + (["c"] if HAVE_C else [])

POLICIES = ["fcfs", "f2", "wfp3", "unicef"]  # 2 static, 2 dynamic
MODES = [False, "easy", "conservative"]
NMAXES = [1, 17, 256]


def _random_workload(rng: np.random.Generator, n: int, nmax: int) -> Workload:
    """Bursty arrivals (duplicates likely), mixed runtimes and widths."""
    submit = np.sort(np.round(rng.uniform(0.0, n * 1.5, size=n), 1))
    runtime = np.round(rng.uniform(0.5, 80.0, size=n), 3)
    size = rng.integers(1, nmax + 1, size=n)
    estimate = runtime * rng.uniform(1.0, 5.0, size=n)
    return Workload.from_arrays(
        submit=submit, runtime=runtime, size=size, estimate=estimate, nmax=nmax
    )


def _kernel_outcome(workload, policy, nmax, *, use_estimates, backfill):
    """Drive the kernel exactly the way engine.simulate does."""
    from repro.sim.engine import normalize_backfill

    procs = workload.estimate if use_estimates else workload.runtime
    if policy.dynamic:
        return simulate_events(
            workload.submit,
            workload.runtime,
            procs,
            workload.size,
            nmax,
            scorer=policy.scores,
            backfill=normalize_backfill(backfill),
        )
    scores = policy.scores(
        float(workload.submit[0]) if len(workload) else 0.0,
        workload.submit,
        procs,
        workload.size,
    )
    return simulate_events(
        workload.submit,
        workload.runtime,
        procs,
        workload.size,
        nmax,
        static_scores=scores,
        backfill=normalize_backfill(backfill),
    )


def _assert_bit_identical(got, want) -> None:
    assert got.start.tobytes() == want.start.tobytes()
    assert got.backfilled.tobytes() == want.backfilled.tobytes()
    assert got.n_events == want.n_events
    assert got.n_backfill_passes == want.n_backfill_passes


class TestEngineParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("nmax", NMAXES)
    @pytest.mark.parametrize("use_estimates", [False, True])
    @pytest.mark.parametrize("backfill", MODES)
    @pytest.mark.parametrize("policy_name", POLICIES)
    def test_random_sweep(
        self, monkeypatch, policy_name, backfill, use_estimates, nmax, backend
    ):
        monkeypatch.setenv("REPRO_SIM_KERNEL", backend)
        policy = get_policy(policy_name)
        rng = np.random.default_rng(
            abs(hash((policy_name, str(backfill), use_estimates, nmax))) % 2**32
        )
        for trial in range(3):
            n = int(rng.integers(1, 50))
            w = _random_workload(rng, n, nmax)
            want = oracle_simulate(
                w, policy, nmax, use_estimates=use_estimates, backfill=backfill
            )
            got = _kernel_outcome(
                w, policy, nmax, use_estimates=use_estimates, backfill=backfill
            )
            _assert_bit_identical(got, want)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("backfill", MODES)
    def test_all_simultaneous_arrivals(self, monkeypatch, backfill, backend):
        monkeypatch.setenv("REPRO_SIM_KERNEL", backend)
        rng = np.random.default_rng(7)
        policy = get_policy("spt")
        w = Workload.from_arrays(
            submit=np.zeros(40),
            runtime=np.round(rng.uniform(1.0, 50.0, 40), 2),
            size=rng.integers(1, 17, 40),
            nmax=16,
        )
        want = oracle_simulate(w, policy, 16, backfill=backfill)
        got = _kernel_outcome(
            w, policy, 16, use_estimates=False, backfill=backfill
        )
        _assert_bit_identical(got, want)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_one_job_and_empty(self, monkeypatch, backend):
        monkeypatch.setenv("REPRO_SIM_KERNEL", backend)
        policy = get_policy("fcfs")
        one = Workload.from_arrays(submit=[5.0], runtime=[3.0], size=[2], nmax=4)
        for backfill in MODES:
            want = oracle_simulate(one, policy, 4, backfill=backfill)
            got = _kernel_outcome(
                one, policy, 4, use_estimates=False, backfill=backfill
            )
            _assert_bit_identical(got, want)
        empty = Workload.from_arrays(submit=[], runtime=[], size=[], nmax=4)
        result = simulate(empty, policy, 4)
        assert result.start.size == 0 and result.n_events == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_simulate_wrapper_matches_oracle(self, monkeypatch, backend):
        """The public engine.simulate (telemetry, ScheduleResult wiring)."""
        monkeypatch.setenv("REPRO_SIM_KERNEL", backend)
        rng = np.random.default_rng(11)
        w = _random_workload(rng, 60, 32)
        for policy_name in ("saf", "unicef"):
            policy = get_policy(policy_name)
            want = oracle_simulate(w, policy, 32, backfill="easy")
            registry = MetricsRegistry()
            with use_registry(registry):
                result = simulate(w, policy, 32, backfill="easy")
            assert result.start.tobytes() == want.start.tobytes()
            assert result.backfilled.tobytes() == want.backfilled.tobytes()
            assert result.n_events == want.n_events
            # Telemetry counter names/semantics are part of the contract.
            assert registry.value("sim.runs") == 1
            assert registry.value("sim.events") == want.n_events
            assert registry.value("sim.jobs_completed") == len(w)
            assert registry.value("sim.backfill_passes") == want.n_backfill_passes
            assert registry.value("sim.backfilled") == int(want.backfilled.sum())


class TestListschedParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("nmax", NMAXES)
    def test_random_priorities(self, monkeypatch, nmax, backend):
        monkeypatch.setenv("REPRO_SIM_KERNEL", backend)
        rng = np.random.default_rng(nmax)
        for trial in range(5):
            m = int(rng.integers(1, 60))
            submit = np.round(rng.uniform(0.0, m * 2.0, m), 1)  # unsorted
            runtime = np.round(rng.uniform(0.5, 40.0, m), 2)
            size = rng.integers(1, nmax + 1, m)
            # Coarse priorities so ties (equal priority, equal submit)
            # actually occur and exercise the index tie-break.
            priority = rng.integers(0, 4, m).astype(float)
            want = oracle_fixed_priority(submit, runtime, size, priority, nmax)
            got = simulate_fixed_priority(submit, runtime, size, priority, nmax)
            assert got.tobytes() == want.tobytes()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batch_matches_per_trial(self, monkeypatch, backend):
        monkeypatch.setenv("REPRO_SIM_KERNEL", backend)
        rng = np.random.default_rng(0)
        m, n_trials = 48, 33
        submit = np.round(rng.uniform(0.0, 50.0, m), 1)
        runtime = np.round(rng.uniform(0.5, 40.0, m), 2)
        size = rng.integers(1, 9, m)
        priorities = np.stack([rng.permutation(m).astype(float) for _ in range(n_trials)])
        batch = simulate_fixed_priority_batch(
            submit, runtime, size, priorities, 16
        )
        for t in range(n_trials):
            row = simulate_fixed_priority(submit, runtime, size, priorities[t], 16)
            assert batch[t].tobytes() == row.tobytes()

    def test_batch_telemetry_matches_loop(self):
        rng = np.random.default_rng(1)
        m, n_trials = 10, 7
        submit = np.sort(rng.uniform(0, 10, m))
        runtime = rng.uniform(1, 5, m)
        size = rng.integers(1, 4, m)
        priorities = np.stack([rng.permutation(m).astype(float) for _ in range(n_trials)])
        loop_reg = MetricsRegistry()
        with use_registry(loop_reg):
            for t in range(n_trials):
                simulate_fixed_priority(submit, runtime, size, priorities[t], 8)
        batch_reg = MetricsRegistry()
        with use_registry(batch_reg):
            simulate_fixed_priority_batch(submit, runtime, size, priorities, 8)
        for counter in ("listsched.trials", "listsched.jobs"):
            assert batch_reg.value(counter) == loop_reg.value(counter)


class TestNaNValidation:
    def test_fixed_priority_rejects_nan(self):
        submit = np.array([0.0, 1.0, 2.0, 3.0])
        runtime = np.ones(4)
        size = np.ones(4, dtype=np.int64)
        priority = np.array([1.0, 2.0, np.nan, 4.0])
        with pytest.raises(ValueError, match="priority for job 2 is NaN"):
            simulate_fixed_priority(submit, runtime, size, priority, 4)

    def test_batch_rejects_nan_naming_trial(self):
        submit = np.array([0.0, 1.0])
        runtime = np.ones(2)
        size = np.ones(2, dtype=np.int64)
        priorities = np.array([[0.0, 1.0], [np.nan, 1.0], [1.0, 0.0]])
        with pytest.raises(ValueError, match=r"priority for job 0 \(trial 1\) is NaN"):
            simulate_fixed_priority_batch(submit, runtime, size, priorities, 4)

    def test_kernel_boundary_rejects_nan_scores(self):
        submit = np.array([0.0, 1.0, 2.0])
        runtime = np.ones(3)
        size = np.ones(3, dtype=np.int64)
        scores = np.array([0.5, np.nan, 1.5])
        with pytest.raises(ValueError, match="score for job 1 is NaN"):
            simulate_events(
                submit, runtime, runtime, size, 4, static_scores=scores
            )

    def test_engine_rejects_nan_scoring_policy(self, tiny_workload):
        from conftest import TablePolicy

        table = {float(s): 1.0 for s in tiny_workload.submit}
        table[float(tiny_workload.submit[0])] = float("nan")
        with pytest.raises(ValueError, match="is NaN"):
            simulate(tiny_workload, TablePolicy(table), 4)


class TestBackfillPassCost:
    """Satellite: the per-pass Python list rebuilds are gone.

    The old engine rebuilt ``run_idx = list(expected_end)`` plus four
    per-candidate Python lists on *every* backfill pass.  With identical
    pass counts (bit-parity guarantees them), kernel wall-time per
    ``sim.backfill_passes`` must beat the legacy loop's on the same
    workload — measured A/B on this host, so the assertion is about the
    ratio, not absolute speed.
    """

    def test_wall_time_per_backfill_pass_improved(self):
        rng = np.random.default_rng(42)
        w = _random_workload(rng, 800, 32)
        policy = get_policy("fcfs")

        def run_kernel():
            registry = MetricsRegistry()
            with use_registry(registry):
                t0 = time.perf_counter()
                result = simulate(w, policy, 32, use_estimates=True, backfill="easy")
                elapsed = time.perf_counter() - t0
            return elapsed, registry.value("sim.backfill_passes"), result

        def run_oracle():
            t0 = time.perf_counter()
            out = oracle_simulate(w, policy, 32, use_estimates=True, backfill="easy")
            return time.perf_counter() - t0, out.n_backfill_passes, out

        simulate(w, policy, 32, use_estimates=True, backfill="easy")  # warm-up
        kernel_time, kernel_passes, result = min(
            (run_kernel() for _ in range(3)), key=lambda r: r[0]
        )
        oracle_time, oracle_passes, want = min(
            (run_oracle() for _ in range(3)), key=lambda r: r[0]
        )
        assert kernel_passes == oracle_passes > 0
        assert result.start.tobytes() == want.start.tobytes()
        kernel_per_pass = kernel_time / kernel_passes
        oracle_per_pass = oracle_time / oracle_passes
        if HAVE_C:
            # The compiled path must be far past "no list rebuilds".
            assert kernel_per_pass < oracle_per_pass / 3
        else:
            # Pure Python still wins via the vectorised shadow + arrays,
            # but leave noise headroom on shared CI runners.
            assert kernel_per_pass < oracle_per_pass * 1.2


class TestCBackendGate:
    def test_invalid_backend_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_KERNEL", "fortran")
        with pytest.raises(ValueError, match="REPRO_SIM_KERNEL"):
            simulate_events(
                np.array([0.0]),
                np.array([1.0]),
                np.array([1.0]),
                np.array([1], dtype=np.int64),
                1,
                static_scores=np.array([0.0]),
            )

    @pytest.mark.skipif(not HAVE_C, reason="no C toolchain on this host")
    def test_c_backend_used_when_forced(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_KERNEL", "c")
        out = fixed_priority_batch(
            np.array([0.0, 0.0]),
            np.array([2.0, 2.0]),
            np.array([1, 1], dtype=np.int64),
            np.array([[0.0, 1.0]]),
            1,
        )
        assert out.tolist() == [[0.0, 2.0]]


class TestProfileDustRegression:
    """Near-equal availability-profile breakpoints must not crash.

    Two running jobs can end at floats closer than the profile's 1e-12
    equality tolerance (here 70.07 and 70.07000000000001).  Two bugs
    lurked behind that: reserve()'s epsilon lower bound decremented the
    near-duplicate breakpoint *before* the reserved start (one
    earliest_start never vetted — spurious "oversubscribes the profile"),
    and the starts-now test `t <= now + 1e-9` started jobs whose slot sat
    behind a release event that had not happened yet.  This workload used
    to crash every implementation; now all three must agree byte-for-byte.
    """

    SUBMIT = [1.0, 2.7, 3.3, 5.2, 5.2, 5.7, 9.5, 9.9, 10.2, 11.9, 15.1,
              18.1, 20.6, 20.6, 22.2, 24.0, 24.6, 25.7, 26.0, 27.3, 27.8,
              30.6, 30.9, 31.4, 34.1, 35.7, 36.5, 38.3, 43.1, 43.8, 45.1,
              47.1, 49.2, 51.0, 51.5]
    RUNTIME = [69.07, 57.095, 25.679, 54.883, 7.343, 64.063, 25.492, 2.932,
               49.895, 17.431, 19.647, 56.081, 30.392, 16.399, 20.392,
               76.435, 45.924, 54.723, 35.725, 42.862, 53.604, 8.985,
               34.967, 22.798, 61.453, 75.802, 6.536, 26.495, 9.551,
               20.348, 3.597, 76.181, 60.311, 78.682, 66.945]
    SIZE = [6, 166, 75, 29, 162, 41, 232, 40, 205, 245, 151, 17, 98, 56,
            242, 56, 151, 118, 29, 16, 251, 164, 77, 107, 103, 13, 176,
            145, 248, 228, 61, 103, 52, 209, 224]

    def _workload(self) -> Workload:
        return Workload.from_arrays(
            submit=np.array(self.SUBMIT),
            runtime=np.array(self.RUNTIME),
            size=np.array(self.SIZE, dtype=np.int64),
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("mode", ["conservative", "hybrid"])
    def test_dust_breakpoints_schedule_cleanly(self, monkeypatch, mode, backend):
        monkeypatch.setenv("REPRO_SIM_KERNEL", backend)
        w = self._workload()
        policy = get_policy("fcfs")
        got = simulate(w, policy, 256, backfill=mode)
        assert np.isfinite(got.start).all()
        if mode == "conservative":
            want = oracle_simulate(w, policy, 256, backfill="conservative")
            assert got.start.tobytes() == want.start.tobytes()
            assert got.backfilled.tobytes() == want.backfilled.tobytes()
            assert got.n_events == want.n_events

"""Tests for the repro.obs telemetry layer.

The load-bearing contract: telemetry **never forks a result**.  Reports
written with ``--telemetry`` are byte-identical to reports written
without it, at any worker count; merged worker metrics equal serial
metrics; manifest identities are stable across cache directories.  The
unit tests pin the metrics/tracing/manifest building blocks with
injected clocks so durations are deterministic.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import api
from repro.cli import main
from repro.obs import (
    MANIFEST_NAME,
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    Tracer,
    build_manifest,
    current_registry,
    read_manifest,
    render_manifest,
    span,
    use_registry,
    use_tracer,
    write_manifest,
)
from repro.runtime.cache import ArtifactCache
from repro.specs import EvaluateSpec

TINY_SWF = Path(__file__).parent / "data" / "ctc_tiny.swf"


class FakeClock:
    """Deterministic ``now=`` stand-in: each call advances by *step*."""

    def __init__(self, step: float = 1.0) -> None:
        self.t = 0.0
        self.step = step

    def __call__(self) -> float:
        self.t += self.step
        return self.t


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_gauges_timers(self):
        reg = MetricsRegistry(now=FakeClock())
        reg.inc("jobs")
        reg.inc("jobs", 4)
        reg.set_gauge("util", 0.5)
        reg.set_gauge("util", 0.75)
        with reg.timer("phase"):
            pass  # fake clock: enter=1, exit=2 -> 1s
        reg.add_time("phase", 3.0)
        assert reg.value("jobs") == 5
        assert reg.gauge("util") == 0.75
        assert reg.timer_seconds("phase") == 4.0
        assert reg.timer_count("phase") == 2
        doc = reg.to_dict()
        assert doc["counters"]["jobs"] == 5
        assert doc["timers"]["phase"]["max"] == 3.0

    def test_merge_is_additive_for_counters_and_timers(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.inc("n", 2)
        b.inc("n", 3)
        b.inc("only_b")
        a.add_time("t", 1.0)
        b.add_time("t", 2.0)
        a.set_gauge("g", 1.0)
        b.set_gauge("g", 9.0)
        a.merge(b.to_dict())
        assert a.value("n") == 5
        assert a.value("only_b") == 1
        assert a.timer_seconds("t") == 3.0
        assert a.timer_count("t") == 2
        assert a.gauge("g") == 9.0  # gauges are last-write

    def test_merge_order_independent_for_counters(self):
        parts = []
        for k in range(3):
            reg = MetricsRegistry()
            reg.inc("n", k + 1)
            reg.add_time("t", float(k))
            parts.append(reg.to_dict())
        fwd, rev = MetricsRegistry(), MetricsRegistry()
        for part in parts:
            fwd.merge(part)
        for part in reversed(parts):
            rev.merge(part)
        assert fwd.to_dict()["counters"] == rev.to_dict()["counters"]
        assert fwd.to_dict()["timers"] == rev.to_dict()["timers"]

    def test_delta_snapshots_counter_increments(self):
        reg = MetricsRegistry()
        reg.inc("cache.hits", 2)
        snap = reg.delta()
        assert snap.since() == {}
        reg.inc("cache.hits", 3)
        reg.inc("cache.misses")
        assert snap.since() == {"cache.hits": 3, "cache.misses": 1}
        assert snap.value("cache.hits") == 3
        assert snap.value("cache.misses") == 1
        assert snap.value("never") == 0

    def test_null_registry_is_inert(self):
        null = NullRegistry()
        null.inc("n", 5)
        null.set_gauge("g", 1.0)
        null.add_time("t", 1.0)
        with null.timer("t"):
            pass
        null.merge({"counters": {"n": 9}})
        assert not null.enabled
        assert null.value("n") == 0
        assert null.to_dict() == {"counters": {}, "gauges": {}, "timers": {}}

    def test_ambient_registry_installs_and_restores(self):
        assert current_registry() is NULL_REGISTRY
        reg = MetricsRegistry()
        with use_registry(reg):
            assert current_registry() is reg
            current_registry().inc("seen")
        assert current_registry() is NULL_REGISTRY
        assert reg.value("seen") == 1


# ----------------------------------------------------------------------
# tracing
# ----------------------------------------------------------------------
class TestTracer:
    def test_spans_nest_and_aggregate(self):
        tracer = Tracer(now=FakeClock())
        with tracer.span("outer", kind="x"):
            with tracer.span("inner"):
                pass
        with tracer.span("outer"):
            pass
        # outer #1: start=1 end=4; inner: start=2 end=3; outer #2: 5..6
        assert tracer.phase_seconds() == {"outer": 4.0}
        records = tracer.to_records()
        assert [r["name"] for r in records] == ["outer", "inner", "outer"]
        assert records[0]["parent"] is None
        assert records[1]["parent"] == records[0]["id"]
        assert records[0]["attrs"] == {"kind": "x"}

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer(now=FakeClock())
        with tracer.span("a"):
            with tracer.span("b", cells=3):
                pass
        path = tracer.write_jsonl(tmp_path / "spans.jsonl")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["name"] for r in lines] == ["a", "b"]
        assert lines[1]["attrs"] == {"cells": 3}

    def test_module_level_span_is_noop_without_tracer(self):
        with span("ignored", anything=1):
            pass  # must not raise, must not record anywhere

    def test_module_level_span_records_into_ambient(self):
        tracer = Tracer(now=FakeClock())
        with use_tracer(tracer):
            with span("phase"):
                pass
        assert list(tracer.phase_seconds()) == ["phase"]


# ----------------------------------------------------------------------
# manifests
# ----------------------------------------------------------------------
class TestManifest:
    def _registry(self):
        reg = MetricsRegistry()
        reg.inc("sim.jobs_completed", 100)
        reg.inc("sim.events", 250)
        reg.inc("sim.runs", 2)
        reg.inc("cache.hits", 3)
        reg.inc("cache.misses", 1)
        return reg

    def test_build_write_read_roundtrip(self, tmp_path):
        tracer = Tracer(now=FakeClock())
        with tracer.span("execute"):
            pass
        doc = build_manifest(
            registry=self._registry(),
            tracer=tracer,
            command="evaluate",
            workers=4,
            wall_seconds=2.0,
        )
        assert doc["simulation"]["jobs_simulated"] == 100
        assert doc["jobs_per_sec"] == 50.0
        assert doc["cache"]["hits"] == 3
        assert doc["phases"] == {"execute": 1.0}
        path = write_manifest(tmp_path, doc)
        assert path.name == MANIFEST_NAME
        assert read_manifest(tmp_path) == read_manifest(path)
        assert read_manifest(tmp_path)["command"] == "evaluate"

    def test_read_manifest_names_the_flag_when_missing(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="--telemetry"):
            read_manifest(tmp_path)

    def test_render_mentions_the_headlines(self, tmp_path):
        doc = build_manifest(
            registry=self._registry(), command="evaluate", wall_seconds=2.0
        )
        text = render_manifest(doc)
        assert "100 jobs" in text
        assert "3 hits / 1 misses" in text
        assert "50 jobs/sec" in text

    def test_spec_identity_is_stable_across_cache_dirs(self, tmp_path):
        fingerprints = []
        for cache_dir in ("cache_a", "cache_b"):
            tele = tmp_path / f"tele_{cache_dir}"
            assert (
                main(
                    [
                        "evaluate",
                        "--trace",
                        str(TINY_SWF),
                        "--window-jobs",
                        "50",
                        "--warmup",
                        "5",
                        "--bootstrap",
                        "0",
                        "--cache",
                        str(tmp_path / cache_dir),
                        "--telemetry",
                        str(tele),
                    ]
                )
                == 0
            )
            fingerprints.append(read_manifest(tele)["spec"]["fingerprint"])
        assert fingerprints[0] == fingerprints[1]


# ----------------------------------------------------------------------
# the never-forks-a-result contract, end to end
# ----------------------------------------------------------------------
def _evaluate_cli(tmp_path: Path, tag: str, *extra: str) -> Path:
    out = tmp_path / tag
    argv = [
        "evaluate",
        "--trace",
        str(TINY_SWF),
        "--window-jobs",
        "50",
        "--warmup",
        "5",
        "--bootstrap",
        "200",
        "--output-dir",
        str(out),
        *extra,
    ]
    assert main(argv) == 0
    return out


class TestTelemetryNeverForksAResult:
    @pytest.mark.parametrize("workers", ["1", "4"])
    def test_reports_byte_identical_with_and_without(
        self, tmp_path, capsys, workers
    ):
        plain = _evaluate_cli(tmp_path, f"plain{workers}", "--workers", workers)
        plain_stdout = capsys.readouterr().out.replace(f"plain{workers}", "OUT")
        tele = _evaluate_cli(
            tmp_path,
            f"tele{workers}",
            "--workers",
            workers,
            "--telemetry",
            str(tmp_path / f"tdir{workers}"),
        )
        tele_stdout = capsys.readouterr().out.replace(f"tele{workers}", "OUT")
        for name in ("eval_matrix.json", "eval_matrix.csv", "eval_matrix_deltas.csv"):
            assert (plain / name).read_bytes() == (tele / name).read_bytes(), name
        assert plain_stdout == tele_stdout
        manifest = read_manifest(tmp_path / f"tdir{workers}")
        assert manifest["simulation"]["jobs_simulated"] > 0
        assert (tmp_path / f"tdir{workers}" / "spans.jsonl").is_file()
        assert (tmp_path / f"tdir{workers}" / "metrics.json").is_file()

    def test_merged_parallel_metrics_equal_serial(self, tmp_path):
        spec = EvaluateSpec(
            trace=str(TINY_SWF),
            window_jobs=50,
            warmup=5,
            bootstrap=0,
            policies=("fcfs", "f1"),
            backfill=("none", "easy"),
        )
        counters = {}
        for workers in (1, 4):
            registry = MetricsRegistry()
            with use_registry(registry):
                api.run(spec, workers=workers)
            counters[workers] = registry.to_dict()["counters"]
        assert counters[1] == counters[4]
        assert counters[1]["sim.jobs_completed"] > 0
        assert counters[1]["eval.cells.simulated"] == 16


# ----------------------------------------------------------------------
# cache accounting and the stats verb
# ----------------------------------------------------------------------
class TestCacheMetrics:
    def test_cache_counters_and_delta(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        assert cache.load_json("k") is None  # miss
        cache.store_json("k", {"x": 1})
        snap = cache.metrics.delta()
        assert cache.load_json("k") == {"x": 1}  # hit
        assert cache.hits == 1
        assert cache.misses == 1
        assert snap.since()["cache.hits"] == 1
        assert cache.metrics.value("cache.bytes_stored") > 0
        assert cache.metrics.value("cache.bytes_loaded") > 0

    def test_injected_registry_is_used(self, tmp_path):
        shared = MetricsRegistry()
        cache = ArtifactCache(tmp_path / "cache", metrics=shared)
        cache.load_json("missing")
        assert shared.value("cache.misses") == 1


class TestStatsVerb:
    def test_stats_renders_a_run_manifest(self, tmp_path, capsys):
        tele = tmp_path / "tele"
        _evaluate_cli(tmp_path, "run", "--telemetry", str(tele))
        capsys.readouterr()
        assert main(["stats", str(tele)]) == 0
        out = capsys.readouterr().out
        assert "run manifest" in out
        assert "fingerprint=" in out
        assert "jobs/sec" in out

    def test_stats_without_manifest_names_the_flag(self, tmp_path):
        with pytest.raises(SystemExit, match="--telemetry"):
            main(["stats", str(tmp_path)])

"""Fault-injection tests for the workqueue executor backend.

The claims under test, from strongest to weakest:

1. **Crash resume** — SIGKILL a worker mid-sweep (via the
   ``$REPRO_QUEUE_FAULT`` injection hook), and the run still completes
   with a final ``eval_matrix.json`` byte-identical to a serial run's:
   the dead worker's lease goes stale, another worker takes it over,
   and re-execution of a pure chunk recomputes the same bytes.
2. **Protocol pieces** — lease claims are exclusive (``O_EXCL``), stale
   leases are taken over, live leases are not, heartbeats keep a slow
   chunk's lease alive, and double completion (two workers finishing
   the same task) is idempotent because results land by atomic rename.
3. **Honest failure** — when workers die faster than the respawn budget
   allows, the dispatcher raises instead of hanging or returning a
   partial result.
"""

import json
import os
import time

import pytest

from repro.eval.matrix import MatrixConfig, run_matrix
from repro.eval.report import write_matrix_report
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.runtime import ExecutorConfig, TrialRunner
from repro.runtime.workqueue import (
    FaultSpec,
    claim_task,
    load_result,
    parse_fault,
    store_result,
    task_ids,
    work_loop,
    write_task,
)
from repro.workloads.traces import synthetic_trace

#: Small but real: 4 windows x 2 policies x 2 backfill modes = 16 cells.
CONFIG = MatrixConfig(
    policies=("fcfs", "f1"),
    backfill=("none", "easy"),
    window_jobs=50,
    warmup=5,
)


@pytest.fixture(scope="module")
def trace():
    return synthetic_trace("ctc_sp2", n_jobs=200, seed=7)


@pytest.fixture(scope="module")
def serial_report(trace, tmp_path_factory):
    out = tmp_path_factory.mktemp("serial")
    write_matrix_report(out, run_matrix(trace, CONFIG))
    return out / "eval_matrix.json"


def _queue_env(monkeypatch, tmp_path, fault=None, lease="1.0", respawns=None):
    monkeypatch.setenv("REPRO_QUEUE_DIR", str(tmp_path / "queue"))
    monkeypatch.setenv("REPRO_QUEUE_LEASE_TIMEOUT", lease)
    if fault is not None:
        monkeypatch.setenv("REPRO_QUEUE_FAULT", fault)
    else:
        monkeypatch.delenv("REPRO_QUEUE_FAULT", raising=False)
    if respawns is not None:
        monkeypatch.setenv("REPRO_QUEUE_MAX_RESPAWNS", respawns)
    else:
        monkeypatch.delenv("REPRO_QUEUE_MAX_RESPAWNS", raising=False)


class TestKillResume:
    def test_sigkill_mid_sweep_resumes_byte_identical(
        self, trace, serial_report, tmp_path, monkeypatch
    ):
        """The headline: a worker dies mid-run, the run loses nothing."""
        _queue_env(monkeypatch, tmp_path, fault="kill-once:2")
        registry = MetricsRegistry()
        with use_registry(registry):
            result = run_matrix(
                trace, CONFIG, workers=2, chunk_size=1, backend="workqueue"
            )
        out = tmp_path / "chaos"
        write_matrix_report(out, result)
        assert (out / "eval_matrix.json").read_bytes() == serial_report.read_bytes()
        # The fault demonstrably fired and the retry machinery engaged.
        assert registry.value("runtime.queue.worker_deaths") >= 1
        assert registry.value("runtime.queue.takeovers") >= 1
        assert registry.value("runtime.queue.respawns") >= 1
        assert registry.value("runtime.queue.tasks") == 16

    def test_single_worker_kill_resumes(self, trace, tmp_path, monkeypatch):
        """workers=1 still runs through the queue, so even the only
        worker dying is survivable via respawn."""
        _queue_env(monkeypatch, tmp_path, fault="kill-once:1")
        result = run_matrix(
            trace, CONFIG, workers=1, chunk_size=4, backend="workqueue"
        )
        reference = run_matrix(trace, CONFIG)
        assert [c.ave_bsld for c in result.cells] == [
            c.ave_bsld for c in reference.cells
        ]

    def test_respawn_budget_exhaustion_raises(self, tmp_path, monkeypatch):
        """kill-every:1 means no worker ever completes a task; the
        dispatcher must fail loudly, not hang."""
        _queue_env(
            monkeypatch, tmp_path, fault="kill-every:1", lease="0.2", respawns="2"
        )
        runner = TrialRunner(
            ExecutorConfig(workers=1, chunk_size=1, backend="workqueue")
        )
        with pytest.raises(RuntimeError, match="respawn budget"):
            runner.map(abs, [1, -2, 3])


class TestLeaseProtocol:
    @pytest.fixture()
    def run_dir(self, tmp_path):
        for sub in ("tasks", "leases", "results"):
            (tmp_path / sub).mkdir()
        return str(tmp_path)

    def test_claim_is_exclusive(self, run_dir):
        first = claim_task(run_dir, "task-00000", lease_timeout=30.0, worker_id="a")
        second = claim_task(run_dir, "task-00000", lease_timeout=30.0, worker_id="b")
        assert first is not None and not first.takeover
        assert second is None

    def test_stale_lease_takeover(self, run_dir):
        claim = claim_task(run_dir, "task-00000", lease_timeout=0.5, worker_id="a")
        # Backdate the heartbeat: the claimant "died" long ago.
        stale = time.time() - 60.0
        os.utime(claim.lease_path, (stale, stale))
        steal = claim_task(run_dir, "task-00000", lease_timeout=0.5, worker_id="b")
        assert steal is not None and steal.takeover

    def test_live_lease_not_stolen(self, run_dir):
        claim_task(run_dir, "task-00000", lease_timeout=30.0, worker_id="a")
        assert (
            claim_task(run_dir, "task-00000", lease_timeout=30.0, worker_id="b")
            is None
        )

    def test_heartbeat_keeps_slow_chunk_alive(self, run_dir, monkeypatch):
        """A chunk that computes longer than the lease timeout is not
        stolen, because the heartbeat keeps touching the lease."""
        monkeypatch.setenv("REPRO_QUEUE_LEASE_TIMEOUT", "0.4")
        write_task(run_dir, "task-00000", time.sleep, (1.0,))

        import multiprocessing

        worker = multiprocessing.get_context().Process(
            target=work_loop, args=(run_dir,), kwargs={"lease_timeout": 0.4}
        )
        worker.start()
        try:
            time.sleep(0.8)  # two lease timeouts into the slow chunk
            steal = claim_task(
                run_dir, "task-00000", lease_timeout=0.4, worker_id="thief"
            )
            assert steal is None, "heartbeating lease must not be stealable"
        finally:
            worker.join(timeout=10.0)
            assert worker.exitcode == 0
        doc = load_result(run_dir, "task-00000")
        assert doc is not None and not doc["takeover"]

    def test_double_completion_is_idempotent(self, run_dir):
        """Two workers finishing the same pure task both write the same
        payload; the atomic rename means the entry is never torn and a
        single read sees exactly one complete document."""
        payload = ([(0, 42)], None)
        store_result(run_dir, "task-00000", payload, takeover=False)
        store_result(run_dir, "task-00000", payload, takeover=True)
        doc = load_result(run_dir, "task-00000")
        assert doc["payload"] == payload
        # Exactly one result file, no temp leftovers.
        names = os.listdir(os.path.join(run_dir, "results"))
        assert names == ["task-00000.pkl"]

    def test_task_ids_ordered(self, run_dir):
        for i in (2, 0, 1):
            write_task(run_dir, f"task-{i:05d}", abs, (i,))
        assert task_ids(run_dir) == ["task-00000", "task-00001", "task-00002"]


class TestFaultSpec:
    def test_parse(self):
        assert parse_fault("kill-once:3") == FaultSpec("kill-once", 3)
        assert parse_fault("kill-every:2") == FaultSpec("kill-every", 2)
        assert parse_fault(None) is None
        assert parse_fault("") is None

    @pytest.mark.parametrize("bad", ["kill", "kill-once", "kill-once:0", "boom:1"])
    def test_invalid(self, bad):
        with pytest.raises(ValueError):
            parse_fault(bad)


class TestMergedTelemetry:
    def test_counters_survive_a_kill(self, trace, tmp_path, monkeypatch):
        """Merged counters equal a serial run's even after a worker died:
        the parent reads each task's result document exactly once, and
        metrics a killed worker never shipped die with it."""
        serial = MetricsRegistry()
        with use_registry(serial):
            run_matrix(trace, CONFIG)

        _queue_env(monkeypatch, tmp_path, fault="kill-once:3")
        chaotic = MetricsRegistry()
        with use_registry(chaotic):
            run_matrix(trace, CONFIG, workers=2, chunk_size=1, backend="workqueue")

        for name in ("sim.runs", "sim.events", "sim.jobs_completed"):
            assert chaotic.value(name) == serial.value(name), name

"""Tests for the heterogeneous-platform prototype (paper future work)."""

import numpy as np
import pytest

from repro.policies.classic import FCFS, SPT
from repro.sim.engine import simulate
from repro.sim.hetero import (
    HeteroJob,
    HeteroPlatform,
    Variant,
    hetero_simulate,
)
from repro.sim.job import Workload


def cpu_job(job_id, submit, runtime, size, gpu=None):
    variants = {"cpu": Variant(runtime=runtime, size=size)}
    if gpu is not None:
        variants["gpu"] = Variant(runtime=gpu[0], size=gpu[1])
    return HeteroJob(job_id=job_id, submit=submit, variants=variants)


class TestDataTypes:
    def test_variant_validation(self):
        with pytest.raises(ValueError):
            Variant(runtime=0.0, size=1)
        with pytest.raises(ValueError):
            Variant(runtime=1.0, size=0)

    def test_job_needs_variants(self):
        with pytest.raises(ValueError):
            HeteroJob(job_id=1, submit=0.0, variants={})

    def test_job_reference_must_exist(self):
        with pytest.raises(ValueError, match="reference"):
            HeteroJob(
                job_id=1,
                submit=0.0,
                variants={"gpu": Variant(1.0, 1)},
                reference="cpu",
            )

    def test_platform_needs_pools(self):
        with pytest.raises(ValueError):
            HeteroPlatform({})

    def test_validate_rejects_unrunnable(self):
        platform = HeteroPlatform({"cpu": 4})
        job = cpu_job(1, 0.0, 10.0, 8)  # needs 8 CPU cores, pool has 4
        with pytest.raises(ValueError, match="no variant fits"):
            platform.validate([job])


class TestDispatch:
    def test_single_job_picks_faster_arch(self):
        job = HeteroJob(
            job_id=0,
            submit=0.0,
            variants={"cpu": Variant(100.0, 4), "gpu": Variant(10.0, 1)},
        )
        result = hetero_simulate([job], FCFS(), HeteroPlatform({"cpu": 8, "gpu": 2}))
        assert result.chosen_arch == ["gpu"]
        assert result.executed_runtime[0] == 10.0
        assert result.ave_bsld == 1.0

    def test_falls_back_when_fast_pool_busy(self):
        jobs = [
            HeteroJob(
                job_id=i,
                submit=0.0,
                variants={"cpu": Variant(50.0, 4), "gpu": Variant(10.0, 2)},
            )
            for i in range(2)
        ]
        result = hetero_simulate(jobs, FCFS(), HeteroPlatform({"cpu": 4, "gpu": 2}))
        # first job takes the GPU (finishes at 10); second compares
        # cpu finish (0+50) vs waiting — it dispatches to cpu now.
        assert sorted(result.chosen_arch) == ["cpu", "gpu"]
        assert np.all(result.start == 0.0)

    def test_earliest_finish_not_greedy_speed(self):
        """Variant choice minimises finish time, not raw runtime."""
        job = HeteroJob(
            job_id=0,
            submit=0.0,
            variants={"cpu": Variant(10.0, 1), "gpu": Variant(10.0, 1)},
        )
        result = hetero_simulate([job], FCFS(), HeteroPlatform({"cpu": 1, "gpu": 1}))
        # tie on finish time -> deterministic alphabetical pick
        assert result.chosen_arch == ["cpu"]

    def test_head_blocking(self):
        # head needs the whole cpu pool; a later gpu-capable job waits.
        jobs = [
            cpu_job(0, 0.0, 10.0, 4),
            cpu_job(1, 1.0, 10.0, 4),
            HeteroJob(
                job_id=2,
                submit=2.0,
                variants={"cpu": Variant(5.0, 1), "gpu": Variant(1.0, 1)},
            ),
        ]
        result = hetero_simulate(jobs, FCFS(), HeteroPlatform({"cpu": 4, "gpu": 1}))
        # J1 blocks at t=1..10; J2 behind it despite free GPU until J1 starts
        assert result.start[1] == 10.0
        assert result.start[2] == 10.0
        assert result.chosen_arch[2] == "gpu"

    def test_dispatch_counts(self):
        jobs = [cpu_job(i, float(i), 5.0, 1) for i in range(4)]
        result = hetero_simulate(jobs, FCFS(), HeteroPlatform({"cpu": 4, "gpu": 2}))
        assert result.dispatch_counts == {"cpu": 4, "gpu": 0}

    def test_empty(self):
        result = hetero_simulate([], FCFS(), HeteroPlatform({"cpu": 4}))
        assert len(result.start) == 0


class TestEquivalenceWithHomogeneousEngine:
    def test_single_pool_matches_engine(self, rng):
        """cpu-only hetero == homogeneous engine without backfilling."""
        n, nmax = 40, 8
        submit = np.sort(rng.uniform(0, 200, n))
        runtime = rng.uniform(1, 50, n)
        size = rng.integers(1, nmax + 1, n)

        hjobs = [
            cpu_job(i, float(submit[i]), float(runtime[i]), int(size[i]))
            for i in range(n)
        ]
        hres = hetero_simulate(hjobs, SPT(), HeteroPlatform({"cpu": nmax}))

        wl = Workload.from_arrays(submit, runtime, size, nmax=nmax)
        eres = simulate(wl, SPT(), nmax)
        np.testing.assert_allclose(hres.start, eres.start)

    def test_policy_ordering_respected(self):
        # both jobs queued behind a blocker; SPT runs the short one first
        jobs = [
            cpu_job(0, 0.0, 20.0, 2),
            cpu_job(1, 1.0, 50.0, 2),
            cpu_job(2, 1.0, 5.0, 2),
        ]
        result = hetero_simulate(jobs, SPT(), HeteroPlatform({"cpu": 2}))
        assert result.start[2] < result.start[1]


class TestHeteroSpeedup:
    def test_gpu_pool_reduces_slowdown(self, rng):
        """Adding a GPU pool with faster variants must help a congested
        CPU platform — the motivation of the future-work direction."""
        n = 60
        submit = np.sort(rng.uniform(0, 100, n))
        jobs_cpu_only = []
        jobs_hybrid = []
        for i in range(n):
            runtime = float(rng.uniform(20, 60))
            size = int(rng.integers(1, 4))
            jobs_cpu_only.append(cpu_job(i, float(submit[i]), runtime, size))
            jobs_hybrid.append(
                cpu_job(
                    i, float(submit[i]), runtime, size, gpu=(runtime / 5.0, 1)
                )
            )
        base = hetero_simulate(jobs_cpu_only, FCFS(), HeteroPlatform({"cpu": 4}))
        hybrid = hetero_simulate(
            jobs_hybrid, FCFS(), HeteroPlatform({"cpu": 4, "gpu": 2})
        )
        assert hybrid.ave_bsld < base.ave_bsld
        assert hybrid.dispatch_counts["gpu"] > 0

"""Tests for the trace acquisition registry and `repro fetch` path.

Everything runs against a ``file://``-backed fixture registry built from
the bundled ``tests/data/ctc_tiny.swf``, so the whole download → verify
→ resolve → evaluate pipeline is exercised without any network.
"""

import dataclasses
import gzip
import hashlib
import json
import os
from pathlib import Path
from types import SimpleNamespace

import numpy as np
import pytest

from repro import api
from repro.cli import main
from repro.eval import matrix_to_json, paper_comparison_doc, render_paper_comparison
from repro.specs import EvaluateSpec, SimulateSpec, SpecError
from repro.traces import (
    ChecksumMismatchError,
    TraceUnavailableError,
    UnknownTraceError,
    cached_trace_path,
    fetch_trace,
    get_source,
    is_trace_ref,
    load_registry_file,
    paper_prefix_for,
    resolve_trace_ref,
    trace_cache_dir,
    trace_ref_name,
    trace_sources,
    verify_cached,
)
from repro.workloads.swf import parse_swf_text, read_swf, write_swf

FIXTURE = Path(__file__).parent / "data" / "ctc_tiny.swf"


def write_registry(path: Path, entries: dict) -> None:
    path.write_text(json.dumps(entries), encoding="utf-8")


@pytest.fixture
def fx(tmp_path, monkeypatch):
    """A file://-backed fixture registry + empty trace cache."""
    raw = FIXTURE.read_bytes()
    source_dir = tmp_path / "archive"
    source_dir.mkdir()
    gz = source_dir / "fixture.swf.gz"
    gz.write_bytes(gzip.compress(raw))
    sha = hashlib.sha256(raw).hexdigest()
    registry = tmp_path / "registry.json"
    write_registry(
        registry,
        {
            "fixture": {
                "display_name": "CTC SP2 (bundled fixture)",
                "url": gz.as_uri(),
                "sha256": sha,
                "license": "bundled test fixture; freely redistributable",
                "paper_row": "ctc_sp2",
            }
        },
    )
    cache = tmp_path / "cache"
    monkeypatch.setenv("REPRO_TRACE_REGISTRY", str(registry))
    monkeypatch.setenv("REPRO_TRACE_DIR", str(cache))
    return SimpleNamespace(
        raw=raw, gz=gz, sha=sha, registry=registry, cache=cache, tmp=tmp_path
    )


class TestRegistry:
    def test_builtin_paper_traces_registered(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_REGISTRY", raising=False)
        sources = trace_sources()
        for key in ("curie", "anl_intrepid", "sdsc_blue", "ctc_sp2"):
            assert key in sources
            assert sources[key].url.endswith(".swf.gz")
            assert len(sources[key].sha256) == 64
            assert "workload" in sources[key].license  # PWA licensing note

    def test_overlay_extends_and_overrides(self, fx):
        sources = trace_sources()
        assert "fixture" in sources  # overlay entry
        assert "curie" in sources  # built-ins survive
        assert sources["fixture"].url == fx.gz.as_uri()

    def test_unknown_name_lists_registered(self, fx):
        with pytest.raises(UnknownTraceError, match="fixture"):
            get_source("nope")

    def test_ref_parsing(self):
        assert is_trace_ref("pwa:curie")
        assert not is_trace_ref("/tmp/curie.swf")
        assert trace_ref_name("pwa:curie") == "curie"
        with pytest.raises(ValueError, match="empty"):
            trace_ref_name("pwa:")

    def test_registry_file_validation(self, tmp_path):
        bad = tmp_path / "bad.json"
        write_registry(bad, {"x": {"url": "file:///x"}})
        with pytest.raises(ValueError, match="lacks sha256"):
            load_registry_file(bad)
        write_registry(bad, {"x": {"url": "u", "sha256": "0" * 64, "bogus": 1}})
        with pytest.raises(ValueError, match="unknown key"):
            load_registry_file(bad)
        write_registry(bad, {"x": {"url": "u", "sha256": "xyz"}})
        with pytest.raises(ValueError, match="64 lowercase hex"):
            load_registry_file(bad)
        write_registry(
            bad, {"x": {"url": "u", "sha256": "0" * 64, "paper_row": 123}}
        )
        with pytest.raises(ValueError, match="paper_row must be a string"):
            load_registry_file(bad)

    def test_paper_prefix_resolution(self, fx):
        assert paper_prefix_for("pwa:fixture") == "ctc_sp2"
        assert paper_prefix_for("pwa:curie") == "curie"
        assert paper_prefix_for("/some/file.swf") is None
        assert paper_prefix_for(None, "curie") == "curie"
        assert paper_prefix_for(None, None) is None


class TestFetch:
    def test_fetch_downloads_decompresses_verifies(self, fx):
        result = fetch_trace("fixture")
        assert not result.was_cached
        assert result.path == fx.cache / "fixture.swf"
        assert result.path.read_bytes() == fx.raw  # decompressed, byte-exact
        assert result.sha256 == fx.sha

    def test_refetch_is_idempotent_and_offline(self, fx):
        fetch_trace("fixture")
        fx.gz.unlink()  # no source any more: a re-fetch must not download
        result = fetch_trace("fixture")
        assert result.was_cached
        assert result.path.read_bytes() == fx.raw

    def test_checksum_mismatch_rejected_and_nothing_cached(self, fx):
        write_registry(
            fx.registry,
            {"fixture": {"url": fx.gz.as_uri(), "sha256": "0" * 64}},
        )
        with pytest.raises(ChecksumMismatchError, match="expected sha256"):
            fetch_trace("fixture")
        assert not (fx.cache / "fixture.swf").exists()
        assert list(fx.cache.glob("*.tmp*")) == []  # no partial files left

    def test_interrupted_download_recovery(self, fx):
        # A killed fetch leaves a stale temp file and possibly a truncated
        # destination from some earlier epoch; the next fetch must sweep
        # the temp file and replace the corrupt entry atomically.
        import subprocess
        import sys

        dead = subprocess.Popen([sys.executable, "-c", "pass"])
        dead.wait()
        fx.cache.mkdir(parents=True)
        dest = fx.cache / "fixture.swf"
        dest.write_bytes(fx.raw[: len(fx.raw) // 2])  # truncated
        stale = fx.cache / f"fixture.swf.tmp{dead.pid}"
        stale.write_bytes(b"partial download")
        result = fetch_trace("fixture")
        assert not result.was_cached  # the corrupt entry was not trusted
        assert dest.read_bytes() == fx.raw
        assert not stale.exists()

    def test_concurrent_fetch_temp_file_left_alone(self, fx):
        # A temp file owned by a *live* process is a concurrent fetch in
        # progress and must not be swept.
        import subprocess
        import sys

        live = subprocess.Popen([sys.executable, "-c", "import time; time.sleep(30)"])
        try:
            fx.cache.mkdir(parents=True)
            inflight = fx.cache / f"fixture.swf.tmp{live.pid}"
            inflight.write_bytes(b"concurrent download in progress")
            result = fetch_trace("fixture")
            assert result.path.read_bytes() == fx.raw
            assert inflight.exists()  # the live fetch was not disturbed
        finally:
            live.kill()
            live.wait()

    def test_tampered_cache_detected_on_refetch(self, fx):
        fetch_trace("fixture")
        (fx.cache / "fixture.swf").write_bytes(b"; tampered\n")
        result = fetch_trace("fixture")
        assert not result.was_cached
        assert (fx.cache / "fixture.swf").read_bytes() == fx.raw

    def test_force_redownloads(self, fx):
        fetch_trace("fixture")
        result = fetch_trace("fixture", force=True)
        assert not result.was_cached

    def test_uncompressed_source_accepted(self, fx):
        # registries may point at plain .swf URLs too: magic sniffing, not
        # the extension, decides decompression
        plain = fx.tmp / "archive" / "plain.swf"
        plain.write_bytes(fx.raw)
        write_registry(
            fx.registry, {"fixture": {"url": plain.as_uri(), "sha256": fx.sha}}
        )
        result = fetch_trace("fixture")
        assert result.path.read_bytes() == fx.raw

    def test_dead_url_raises_fetch_error(self, fx):
        write_registry(
            fx.registry,
            {
                "fixture": {
                    "url": (fx.tmp / "gone.swf.gz").as_uri(),
                    "sha256": fx.sha,
                }
            },
        )
        with pytest.raises(ValueError, match="cannot download"):
            fetch_trace("fixture")

    def test_cache_dir_env_and_argument(self, fx):
        explicit = fx.tmp / "elsewhere"
        result = fetch_trace("fixture", directory=explicit)
        assert result.path.parent == explicit
        assert trace_cache_dir() == fx.cache
        assert cached_trace_path("fixture") == fx.cache / "fixture.swf"


class TestResolve:
    def test_plain_paths_pass_through(self, fx):
        assert resolve_trace_ref("some/file.swf") == "some/file.swf"

    def test_missing_trace_names_fetch_command(self, fx):
        with pytest.raises(TraceUnavailableError, match="repro-sched fetch fixture"):
            resolve_trace_ref("pwa:fixture")

    def test_resolves_to_verified_cache_path(self, fx):
        fetch_trace("fixture")
        path = resolve_trace_ref("pwa:fixture")
        assert Path(path) == fx.cache / "fixture.swf"

    def test_corrupt_cache_is_unavailable(self, fx):
        fetch_trace("fixture")
        (fx.cache / "fixture.swf").write_bytes(b"garbage")
        with pytest.raises(TraceUnavailableError):
            resolve_trace_ref("pwa:fixture")
        assert verify_cached("fixture") is None


class TestSpecIntegration:
    def spec(self, **kw):
        kw.setdefault("trace", "pwa:fixture")
        kw.setdefault("policies", ("fcfs", "f1"))
        kw.setdefault("backfill", ("none",))
        kw.setdefault("window_jobs", 50)
        kw.setdefault("warmup", 5)
        kw.setdefault("bootstrap", 50)
        return EvaluateSpec(**kw)

    def test_unknown_ref_rejected_at_construction(self, fx):
        with pytest.raises(SpecError, match="unknown trace"):
            self.spec(trace="pwa:nope")
        with pytest.raises(SpecError, match="unknown trace"):
            SimulateSpec(swf="pwa:nope")

    def test_fingerprint_independent_of_cache_location(self, fx, monkeypatch):
        fp_before_fetch = self.spec().fingerprint()
        fetch_trace("fixture")
        assert self.spec().fingerprint() == fp_before_fetch
        monkeypatch.setenv("REPRO_TRACE_DIR", str(fx.tmp / "other-cache"))
        assert self.spec().fingerprint() == fp_before_fetch

    def test_fingerprint_is_content_addressed(self, fx):
        fp_original = self.spec().fingerprint()
        sim_fp_original = SimulateSpec(swf="pwa:fixture").fingerprint()
        # same content behind a different URL: identity unchanged
        mirror = fx.tmp / "mirror.swf.gz"
        mirror.write_bytes(fx.gz.read_bytes())
        write_registry(
            fx.registry, {"fixture": {"url": mirror.as_uri(), "sha256": fx.sha}}
        )
        assert self.spec().fingerprint() == fp_original
        assert SimulateSpec(swf="pwa:fixture").fingerprint() == sim_fp_original
        # different content hash: identity forks
        write_registry(
            fx.registry,
            {"fixture": {"url": mirror.as_uri(), "sha256": "f" * 64}},
        )
        assert self.spec().fingerprint() != fp_original
        assert SimulateSpec(swf="pwa:fixture").fingerprint() != sim_fp_original

    def test_pwa_and_path_fingerprints_differ_but_reports_match(self, fx):
        """The spec identity spells the source differently (content hash
        vs path), but the executed result is byte-identical because the
        bytes are."""
        fetch_trace("fixture")
        by_ref = api.run(self.spec())
        by_path = api.run(self.spec(trace=str(FIXTURE)))
        assert matrix_to_json(by_ref) == matrix_to_json(by_path)

    def test_streamed_pwa_evaluation_matches_materialised(self, fx):
        fetch_trace("fixture")
        batch = api.run(self.spec())
        stream = api.run(self.spec(stream=True))
        assert matrix_to_json(batch) == matrix_to_json(stream)

    def test_cache_hits_across_fresh_refetch(self, fx, tmp_path):
        """Byte-identical reports whether the trace came from the cache
        or a fresh fetch — per-cell artifacts are content-addressed."""
        fetch_trace("fixture")
        cache = tmp_path / "artifacts"
        cold = api.run(self.spec(), cache=cache)
        assert cold.n_simulated > 0
        warm = api.run(self.spec(), cache=cache)
        # wipe the trace cache and re-fetch from the archive
        (fx.cache / "fixture.swf").unlink()
        fetch_trace("fixture")
        refetched = api.run(self.spec(), cache=cache)
        assert refetched.n_simulated == 0
        assert refetched.n_cached == cold.n_simulated
        assert matrix_to_json(warm) == matrix_to_json(refetched)

    def test_simulate_spec_pwa_ref(self, fx):
        fetch_trace("fixture")
        report = api.run(SimulateSpec(swf="pwa:fixture", policy="fcfs"))
        assert report.n_jobs == len(read_swf(FIXTURE))
        assert report.nmax == 338

    def test_unavailable_trace_error_reaches_api_callers(self, fx):
        with pytest.raises(ValueError, match="repro-sched fetch"):
            api.run(self.spec())


class TestGzRoundTripThroughFetch:
    def test_write_swf_gz_fetch_parse_round_trip(self, fx, tmp_path):
        """A workload written with write_swf to .gz, registered, fetched
        and re-parsed comes back bit-identical."""
        wl = parse_swf_text(FIXTURE.read_text())
        gz = tmp_path / "round.swf.gz"
        text = write_swf(wl, gz)
        write_registry(
            fx.registry,
            {
                "round": {
                    "url": gz.as_uri(),
                    "sha256": hashlib.sha256(text.encode()).hexdigest(),
                }
            },
        )
        result = fetch_trace("round")
        back = read_swf(result.path)
        np.testing.assert_array_equal(back.submit, wl.submit)
        np.testing.assert_array_equal(back.runtime, wl.runtime)
        np.testing.assert_array_equal(back.estimate, wl.estimate)
        np.testing.assert_array_equal(back.size, wl.size)


class TestPaperComparison:
    def run_fixture(self, fx, **kw):
        fetch_trace("fixture")
        kw.setdefault("backfill", ("none", "easy"))
        return api.run(
            EvaluateSpec(
                trace="pwa:fixture",
                policies=("fcfs", "f1"),
                window_jobs=50,
                warmup=5,
                bootstrap=50,
                **kw,
            )
        )

    def test_doc_maps_modes_to_paper_rows(self, fx):
        result = self.run_fixture(fx)
        doc = paper_comparison_doc(result, "ctc_sp2")
        assert doc["none"]["row"] == "ctc_sp2_actual"
        assert doc["easy"]["row"] == "ctc_sp2_backfill"
        cell = doc["none"]["policies"]["FCFS"]
        assert cell["paper"] == pytest.approx(439.72)
        assert cell["ratio"] == pytest.approx(cell["measured"] / cell["paper"])

    def test_estimates_variant_selected(self, fx):
        result = self.run_fixture(fx, backfill=("none",), estimates=True)
        doc = paper_comparison_doc(result, "ctc_sp2")
        assert doc["none"]["row"] == "ctc_sp2_estimates"

    def test_render_block_and_absence(self, fx):
        result = self.run_fixture(fx)
        block = render_paper_comparison(result, "ctc_sp2")
        assert "paper-vs-measured" in block
        assert "ctc_sp2_actual" in block
        assert render_paper_comparison(result, "no_such_trace") is None

    def test_json_paper_block(self, fx):
        result = self.run_fixture(fx)
        doc = json.loads(matrix_to_json(result, paper="ctc_sp2"))
        assert doc["paper"]["prefix"] == "ctc_sp2"
        assert "FCFS" in doc["paper"]["comparison"]["none"]["policies"]
        # without the paper argument the document is unchanged
        assert "paper" not in json.loads(matrix_to_json(result))


class TestFetchCli:
    def test_bare_fetch_lists_registry(self, fx, capsys):
        assert main(["fetch"]) == 0
        out = capsys.readouterr().out
        assert "pwa:fixture" in out
        assert "not fetched" in out
        assert "license" in out

    def test_fetch_then_evaluate_end_to_end(self, fx, capsys, tmp_path):
        assert main(["fetch", "fixture"]) == 0
        out = capsys.readouterr().out
        assert "sha256 verified" in out
        out_dir = tmp_path / "report"
        assert (
            main(
                [
                    "evaluate",
                    "--trace",
                    "pwa:fixture",
                    "--policies",
                    "fcfs,f1",
                    "--window-jobs",
                    "50",
                    "--warmup",
                    "5",
                    "--bootstrap",
                    "50",
                    "--output-dir",
                    str(out_dir),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "paper-vs-measured" in out
        doc = json.loads((out_dir / "eval_matrix.json").read_text())
        assert doc["paper"]["prefix"] == "ctc_sp2"

    def test_fetch_unknown_name_exits_cleanly(self, fx):
        with pytest.raises(SystemExit, match="unknown trace"):
            main(["fetch", "nope"])

    def test_evaluate_unfetched_ref_names_fetch(self, fx):
        with pytest.raises(SystemExit, match="repro-sched fetch fixture"):
            main(["evaluate", "--trace", "pwa:fixture", "--window-jobs", "50"])

    def test_synthetic_fallback_flag(self, fx, capsys):
        # overlay an unfetched entry whose name has a synthetic stand-in
        write_registry(
            fx.registry,
            {"ctc_sp2": {"url": fx.gz.as_uri(), "sha256": fx.sha}},
        )
        code = main(
            [
                "evaluate",
                "--trace",
                "pwa:ctc_sp2",
                "--synthetic-fallback",
                "--jobs",
                "200",
                "--window-jobs",
                "50",
                "--warmup",
                "5",
                "--bootstrap",
                "50",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "falling back to the synthetic stand-in 'ctc_sp2'" in captured.err
        assert "Evaluation matrix" in captured.out

    def test_synthetic_fallback_without_stand_in_fails(self, fx):
        with pytest.raises(SystemExit, match="no synthetic stand-in"):
            main(
                [
                    "evaluate",
                    "--trace",
                    "pwa:fixture",
                    "--synthetic-fallback",
                    "--window-jobs",
                    "50",
                ]
            )

    def test_fetch_dir_flag(self, fx, tmp_path, capsys):
        target = tmp_path / "elsewhere"
        assert main(["fetch", "fixture", "--dir", str(target)]) == 0
        assert (target / "fixture.swf").exists()

    def test_simulate_pwa_ref(self, fx, capsys):
        main(["fetch", "fixture"])
        capsys.readouterr()
        assert main(["simulate", "--swf", "pwa:fixture", "--policy", "fcfs"]) == 0
        assert "nmax=338" in capsys.readouterr().out

    def test_analyze_pwa_ref(self, fx, capsys):
        main(["fetch", "fixture"])
        capsys.readouterr()
        assert main(["analyze", "--swf", "pwa:fixture"]) == 0
        assert "CTC SP2" in capsys.readouterr().out

    def test_analyze_unfetched_ref_names_fetch(self, fx):
        with pytest.raises(SystemExit, match="repro-sched fetch"):
            main(["analyze", "--swf", "pwa:fixture"])

    def test_info_lists_pwa_traces(self, fx, capsys):
        assert main(["info"]) == 0
        assert "pwa:fixture" in capsys.readouterr().out

"""Tests for repro.util.stats."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import ascii_boxplot, boxplot_stats, summarize

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.median == 2.5
        assert s.mean == 2.5
        assert s.min == 1.0 and s.max == 4.0

    def test_single_value_std_zero(self):
        s = summarize([5.0])
        assert s.std == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_std_is_sample_std(self):
        vals = [1.0, 3.0]
        assert summarize(vals).std == pytest.approx(np.std(vals, ddof=1))

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_bounds_property(self, vals):
        s = summarize(vals)
        assert s.min <= s.median <= s.max
        assert s.min <= s.mean <= s.max


class TestBoxplotStats:
    def test_quartiles(self):
        s = boxplot_stats(list(range(1, 101)))
        assert s.q1 == pytest.approx(25.75)
        assert s.median == pytest.approx(50.5)
        assert s.q3 == pytest.approx(75.25)

    def test_no_outliers_uniform(self):
        s = boxplot_stats(list(range(10)))
        assert s.outliers == ()
        assert s.whisker_low == 0.0
        assert s.whisker_high == 9.0

    def test_outlier_detected(self):
        vals = [1.0] * 10 + [2.0] * 10 + [100.0]
        s = boxplot_stats(vals)
        assert 100.0 in s.outliers
        assert s.whisker_high <= 2.0 + 1.5 * s.iqr + 1e-9

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            boxplot_stats([])

    def test_constant_sample(self):
        s = boxplot_stats([3.0, 3.0, 3.0])
        assert s.median == 3.0
        assert s.iqr == 0.0
        assert s.outliers == ()

    @given(st.lists(finite_floats, min_size=2, max_size=60))
    def test_whiskers_inside_fences(self, vals):
        s = boxplot_stats(vals)
        assert s.whisker_low >= s.q1 - 1.5 * s.iqr - 1e-6
        assert s.whisker_high <= s.q3 + 1.5 * s.iqr + 1e-6
        assert s.whisker_low <= s.median <= s.whisker_high

    @given(st.lists(finite_floats, min_size=2, max_size=60))
    def test_outliers_outside_fences(self, vals):
        s = boxplot_stats(vals)
        for o in s.outliers:
            assert o < s.q1 - 1.5 * s.iqr or o > s.q3 + 1.5 * s.iqr


class TestAsciiBoxplot:
    def test_renders_all_labels(self):
        out = ascii_boxplot({"A": [1, 2, 3], "LONGNAME": [2, 3, 4]})
        assert "A " in out
        assert "LONGNAME" in out
        assert "#" in out  # median marker

    def test_log_scale(self):
        out = ascii_boxplot({"x": [1, 10, 100, 1000]}, log10=True)
        assert "#" in out

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_boxplot({})

    def test_median_annotation(self):
        out = ascii_boxplot({"p": [5.0, 5.0, 5.0]})
        assert "median=5.00" in out

"""Tests for repro.util.stats."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    ascii_boxplot,
    bootstrap_mean_ci,
    boxplot_stats,
    summarize,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.median == 2.5
        assert s.mean == 2.5
        assert s.min == 1.0 and s.max == 4.0

    def test_single_value_std_zero(self):
        s = summarize([5.0])
        assert s.std == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_std_is_sample_std(self):
        vals = [1.0, 3.0]
        assert summarize(vals).std == pytest.approx(np.std(vals, ddof=1))

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_bounds_property(self, vals):
        s = summarize(vals)
        assert s.min <= s.median <= s.max
        assert s.min <= s.mean <= s.max


class TestBoxplotStats:
    def test_quartiles(self):
        s = boxplot_stats(list(range(1, 101)))
        assert s.q1 == pytest.approx(25.75)
        assert s.median == pytest.approx(50.5)
        assert s.q3 == pytest.approx(75.25)

    def test_no_outliers_uniform(self):
        s = boxplot_stats(list(range(10)))
        assert s.outliers == ()
        assert s.whisker_low == 0.0
        assert s.whisker_high == 9.0

    def test_outlier_detected(self):
        vals = [1.0] * 10 + [2.0] * 10 + [100.0]
        s = boxplot_stats(vals)
        assert 100.0 in s.outliers
        assert s.whisker_high <= 2.0 + 1.5 * s.iqr + 1e-9

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            boxplot_stats([])

    def test_constant_sample(self):
        s = boxplot_stats([3.0, 3.0, 3.0])
        assert s.median == 3.0
        assert s.iqr == 0.0
        assert s.outliers == ()

    @given(st.lists(finite_floats, min_size=2, max_size=60))
    def test_whiskers_inside_fences(self, vals):
        s = boxplot_stats(vals)
        assert s.whisker_low >= s.q1 - 1.5 * s.iqr - 1e-6
        assert s.whisker_high <= s.q3 + 1.5 * s.iqr + 1e-6
        assert s.whisker_low <= s.median <= s.whisker_high

    @given(st.lists(finite_floats, min_size=2, max_size=60))
    def test_outliers_outside_fences(self, vals):
        s = boxplot_stats(vals)
        for o in s.outliers:
            assert o < s.q1 - 1.5 * s.iqr or o > s.q3 + 1.5 * s.iqr


class TestAsciiBoxplot:
    def test_renders_all_labels(self):
        out = ascii_boxplot({"A": [1, 2, 3], "LONGNAME": [2, 3, 4]})
        assert "A " in out
        assert "LONGNAME" in out
        assert "#" in out  # median marker

    def test_log_scale(self):
        out = ascii_boxplot({"x": [1, 10, 100, 1000]}, log10=True)
        assert "#" in out

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_boxplot({})

    def test_median_annotation(self):
        out = ascii_boxplot({"p": [5.0, 5.0, 5.0]})
        assert "median=5.00" in out


class TestBootstrapMeanCI:
    def test_deterministic_for_fixed_seed(self):
        rng = np.random.default_rng(4)
        sample = rng.normal(3.0, 1.0, size=40)
        a = bootstrap_mean_ci(sample, n_boot=500, seed=11)
        b = bootstrap_mean_ci(sample, n_boot=500, seed=11)
        assert a == b

    def test_different_seed_different_draws(self):
        rng = np.random.default_rng(4)
        sample = rng.normal(3.0, 1.0, size=40)
        a = bootstrap_mean_ci(sample, n_boot=500, seed=11)
        b = bootstrap_mean_ci(sample, n_boot=500, seed=12)
        assert (a.lo, a.hi) != (b.lo, b.hi)

    def test_point_is_sample_mean_and_bracketed(self):
        sample = [1.0, 2.0, 3.0, 4.0, 5.0]
        ci = bootstrap_mean_ci(sample, n_boot=400, seed=0)
        assert ci.point == pytest.approx(3.0)
        assert ci.lo <= ci.point <= ci.hi
        assert ci.defined and ci.n == 5 and ci.n_boot == 400

    def test_shifted_sample_is_significant(self):
        rng = np.random.default_rng(7)
        sample = rng.normal(10.0, 0.5, size=50)
        ci = bootstrap_mean_ci(sample, n_boot=400, seed=0)
        assert ci.significant is True
        assert ci.lo > 0

    def test_zero_centred_sample_is_not_significant(self):
        rng = np.random.default_rng(7)
        half = rng.normal(0.0, 1.0, size=100)
        sample = np.concatenate([half, -half])  # exactly mean-zero
        ci = bootstrap_mean_ci(sample, n_boot=400, seed=0)
        assert ci.significant is False

    def test_single_value_degenerates_to_point(self):
        ci = bootstrap_mean_ci([42.0], n_boot=400, seed=0)
        assert ci.point == 42.0
        assert not ci.defined
        assert ci.significant is None
        assert ci.n_boot == 0

    def test_n_boot_zero_disables(self):
        ci = bootstrap_mean_ci([1.0, 2.0, 3.0], n_boot=0)
        assert ci.point == 2.0
        assert not ci.defined and ci.significant is None

    def test_wider_level_never_narrows(self):
        rng = np.random.default_rng(5)
        sample = rng.normal(0.0, 1.0, size=60)
        narrow = bootstrap_mean_ci(sample, n_boot=500, level=0.5, seed=3)
        wide = bootstrap_mean_ci(sample, n_boot=500, level=0.99, seed=3)
        assert wide.lo <= narrow.lo and narrow.hi <= wide.hi

    def test_level_validated(self):
        with pytest.raises(ValueError, match="level"):
            bootstrap_mean_ci([1.0, 2.0], level=1.0)
        with pytest.raises(ValueError, match="level"):
            bootstrap_mean_ci([1.0, 2.0], level=0.0)

    def test_negative_n_boot_rejected(self):
        with pytest.raises(ValueError, match="n_boot"):
            bootstrap_mean_ci([1.0, 2.0], n_boot=-1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            bootstrap_mean_ci([])

    def test_seed_accepts_generator(self):
        from repro.util.rng import as_generator

        sample = [1.0, 5.0, 2.0, 8.0]
        a = bootstrap_mean_ci(sample, n_boot=100, seed=as_generator(3))
        b = bootstrap_mean_ci(sample, n_boot=100, seed=as_generator(3))
        assert a == b

"""Tests for repro.sim.cluster."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.cluster import Cluster


class TestClusterBasics:
    def test_initial_state(self):
        c = Cluster(16)
        assert c.free == 16
        assert c.busy == 0
        assert c.running_jobs == 0

    def test_allocate_release(self):
        c = Cluster(16)
        c.allocate(1, 10)
        assert c.free == 6
        assert c.busy == 10
        assert c.running_jobs == 1
        freed = c.release(1)
        assert freed == 10
        assert c.free == 16

    def test_fits(self):
        c = Cluster(4)
        c.allocate(1, 3)
        assert c.fits(1)
        assert not c.fits(2)

    def test_oversubscription_rejected(self):
        c = Cluster(4)
        c.allocate(1, 3)
        with pytest.raises(RuntimeError, match="oversubscription"):
            c.allocate(2, 2)

    def test_job_larger_than_machine(self):
        c = Cluster(4)
        with pytest.raises(ValueError):
            c.allocate(1, 5)

    def test_double_allocation_rejected(self):
        c = Cluster(8)
        c.allocate(1, 2)
        with pytest.raises(RuntimeError, match="already holds"):
            c.allocate(1, 2)

    def test_release_unknown_rejected(self):
        c = Cluster(8)
        with pytest.raises(RuntimeError, match="no allocation"):
            c.release(99)

    def test_bad_nmax(self):
        with pytest.raises(ValueError):
            Cluster(0)

    def test_reset(self):
        c = Cluster(8)
        c.allocate(1, 4)
        c.reset()
        assert c.free == 8
        assert c.running_jobs == 0


class TestConservationProperty:
    @given(st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=50))
    def test_free_plus_busy_invariant(self, sizes):
        """Random allocate/release sequences preserve free + busy == nmax."""
        c = Cluster(32)
        rng = np.random.default_rng(0)
        live: dict[int, int] = {}
        for key, size in enumerate(sizes):
            if live and rng.random() < 0.4:
                victim = int(rng.choice(list(live)))
                c.release(victim)
                del live[victim]
            if c.fits(size):
                c.allocate(key, size)
                live[key] = size
            assert c.free + c.busy == 32
            assert c.busy == sum(live.values())
        for key in list(live):
            c.release(key)
        assert c.free == 32

"""Tests for the synthetic trace stand-ins (Table 5)."""

import numpy as np
import pytest

from repro.workloads.traces import TRACES, synthetic_trace, trace_names


class TestSpecs:
    def test_table5_vitals_verbatim(self):
        """The published vitals must be transcribed exactly."""
        assert TRACES["curie"].cores == 93312
        assert TRACES["curie"].n_jobs == 312826
        assert TRACES["curie"].utilization == pytest.approx(0.620)
        assert TRACES["anl_intrepid"].cores == 163840
        assert TRACES["anl_intrepid"].n_jobs == 68936
        assert TRACES["anl_intrepid"].utilization == pytest.approx(0.596)
        assert TRACES["sdsc_blue"].cores == 1152
        assert TRACES["sdsc_blue"].n_jobs == 243306
        assert TRACES["sdsc_blue"].utilization == pytest.approx(0.767)
        assert TRACES["ctc_sp2"].cores == 338
        assert TRACES["ctc_sp2"].n_jobs == 77222
        assert TRACES["ctc_sp2"].utilization == pytest.approx(0.852)

    def test_years(self):
        years = {k: TRACES[k].year for k in TRACES}
        assert years == {
            "curie": 2011,
            "anl_intrepid": 2009,
            "sdsc_blue": 2003,
            "ctc_sp2": 1997,
        }

    def test_order(self):
        assert trace_names() == ["curie", "anl_intrepid", "sdsc_blue", "ctc_sp2"]


@pytest.fixture(scope="module", params=trace_names())
def trace(request):
    return request.param, synthetic_trace(request.param, seed=1, n_jobs=4000)


class TestGeneratedTraces:
    def test_utilization_calibrated(self, trace):
        key, wl = trace
        assert wl.utilization(TRACES[key].cores) == pytest.approx(
            TRACES[key].utilization, rel=1e-6
        )

    def test_sizes_fit_machine(self, trace):
        key, wl = trace
        assert int(wl.size.max()) <= TRACES[key].cores
        assert int(wl.size.min()) >= 1

    def test_estimates_attached(self, trace):
        _, wl = trace
        assert np.all(wl.estimate >= wl.runtime)
        assert not np.array_equal(wl.estimate, wl.runtime)

    def test_reproducible(self, trace):
        key, wl = trace
        again = synthetic_trace(key, seed=1, n_jobs=4000)
        np.testing.assert_array_equal(wl.submit, again.submit)
        np.testing.assert_array_equal(wl.estimate, again.estimate)

    def test_nmax_carried(self, trace):
        key, wl = trace
        assert wl.nmax == TRACES[key].cores


class TestTraceCharacter:
    def test_intrepid_block_allocation(self):
        wl = synthetic_trace("anl_intrepid", seed=0, n_jobs=3000)
        assert np.all(wl.size % 512 == 0)
        assert int(wl.size.min()) >= 512

    def test_sdsc_node_quantum(self):
        wl = synthetic_trace("sdsc_blue", seed=0, n_jobs=3000)
        parallel = wl.size[wl.size > 1]
        assert np.all(parallel % 8 == 0)

    def test_curie_many_small_jobs(self):
        wl = synthetic_trace("curie", seed=0, n_jobs=5000)
        assert np.mean(wl.size == 1) > 0.2
        assert np.median(wl.size) <= 16

    def test_ctc_small_machine_profile(self):
        wl = synthetic_trace("ctc_sp2", seed=0, n_jobs=5000)
        assert wl.size.max() <= 338
        assert np.mean(wl.size == 1) > 0.25

    def test_machines_differ(self):
        """The four stand-ins are genuinely different workload types."""
        med_sizes = {
            k: float(np.median(synthetic_trace(k, seed=0, n_jobs=2000).size))
            for k in trace_names()
        }
        assert med_sizes["anl_intrepid"] >= 512
        assert med_sizes["ctc_sp2"] < med_sizes["anl_intrepid"]


class TestErrors:
    def test_unknown_trace(self):
        with pytest.raises(KeyError, match="available"):
            synthetic_trace("bluegene_q")

    def test_bad_job_count(self):
        with pytest.raises(ValueError):
            synthetic_trace("curie", n_jobs=0)

"""Tests for the end-to-end policy-obtaining pipeline."""

import numpy as np
import pytest

from repro.core.pipeline import PipelineConfig, build_distribution, obtain_policies
from repro.core.regression import RegressionConfig
from repro.policies.learned import NonlinearPolicy

SMALL = PipelineConfig(
    n_tuples=2,
    trials_per_tuple=32,
    seed=0,
    regression=RegressionConfig(max_points=200, x0_magnitudes=(1e-3,), max_nfev=60),
)


@pytest.fixture(scope="module")
def result():
    np.seterr(all="ignore")
    return obtain_policies(SMALL)


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = PipelineConfig()
        assert cfg.nmax == 256
        assert cfg.s_size == 16
        assert cfg.q_size == 32
        assert cfg.top_k == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(n_tuples=0)


class TestBuildDistribution:
    def test_shapes(self):
        tuples, trials, dist = build_distribution(SMALL)
        assert len(tuples) == 2
        assert len(trials) == 2
        assert len(dist) == 2 * 32

    def test_progress(self):
        seen = []
        build_distribution(SMALL, lambda stage, d, t: seen.append(stage))
        assert seen == ["trials", "trials"]


class TestObtainPolicies:
    def test_all_576_ranked(self, result):
        assert len(result.fitted) == 576
        errors = [f.rank_error for f in result.fitted]
        assert errors == sorted(errors)

    def test_top_k_policies(self, result):
        assert len(result.policies) == 4
        assert all(isinstance(p, NonlinearPolicy) for p in result.policies)
        assert [p.name for p in result.policies] == ["P1", "P2", "P3", "P4"]

    def test_best_accessor(self, result):
        assert result.best is result.fitted[0]

    def test_best_fits_well(self, result):
        """Top candidate approximates scores to a few percent of the mean."""
        assert result.best.rank_error < 0.5 / 32

    def test_policies_usable_in_simulator(self, result):
        import repro

        wl = repro.lublin_workload(100, nmax=256, seed=3)
        sched = repro.simulate(wl, result.policies[0], 256)
        assert np.all(np.isfinite(sched.start))

    def test_report(self, result):
        text = result.report(2)
        assert text.count("rank") == 2
        assert "fitness=" in text

    def test_reproducible(self):
        np.seterr(all="ignore")
        again = obtain_policies(SMALL)
        np.testing.assert_array_equal(
            again.distribution.score, obtain_policies(SMALL).distribution.score
        )

    def test_learned_top_structure_is_papers_family(self, result):
        """The best-ranked shapes should be 'size-term + submit-term'
        combinations, the family Table 3 reports (op2 is + or the
        algebraically equivalent alternatives)."""
        top = result.fitted[0].spec
        assert top.gamma in ("log", "sqrt", "id")  # a growing submit term

"""Tests for hold-out validation of fitted functions."""

import numpy as np
import pytest

from repro.core.distribution import ScoreDistribution
from repro.core.functions import FittedFunction, FunctionSpec
from repro.core.regression import RegressionConfig, fit_function
from repro.core.validation import holdout_report, train_test_split


def make_dist(n=200, seed=0):
    rng = np.random.default_rng(seed)
    r = rng.uniform(1, 1e4, n)
    size = rng.integers(1, 256, n).astype(float)
    s = rng.uniform(1, 1e5, n)
    spec = FunctionSpec("id", "id", "log", "*", "+")
    y = spec.evaluate(np.array([1e-4, 1e-2, 3.0]), r, size, s)
    y += 0.01 * rng.standard_normal(n)
    return ScoreDistribution(runtime=r, size=size, submit=s, score=y)


class TestTrainTestSplit:
    def test_sizes(self):
        train, test = train_test_split(make_dist(100), 0.25, seed=1)
        assert len(test) == 25
        assert len(train) == 75

    def test_disjoint_and_complete(self):
        dist = make_dist(60)
        train, test = train_test_split(dist, 0.5, seed=2)
        merged = np.sort(np.concatenate([train.runtime, test.runtime]))
        np.testing.assert_array_equal(merged, np.sort(dist.runtime))

    def test_deterministic(self):
        d = make_dist(50)
        a_train, _ = train_test_split(d, 0.2, seed=3)
        b_train, _ = train_test_split(d, 0.2, seed=3)
        np.testing.assert_array_equal(a_train.runtime, b_train.runtime)

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(make_dist(10), 0.0)

    def test_too_small(self):
        with pytest.raises(ValueError):
            train_test_split(make_dist(2), 0.5)


class TestHoldoutReport:
    def test_healthy_fit_small_gap(self):
        dist = make_dist(400)
        train, test = train_test_split(dist, 0.25, seed=0)
        spec = FunctionSpec("id", "id", "log", "*", "+")
        fitted = fit_function(spec, train, RegressionConfig(weighted=False))
        entries = holdout_report([fitted], train, test)
        assert len(entries) == 1
        e = entries[0]
        assert e.test_error < 5 * max(e.train_error, 1e-6)
        assert abs(e.generalisation_gap) == pytest.approx(
            e.test_error - e.train_error
        )

    def test_sorted_by_test_error(self):
        dist = make_dist(300)
        train, test = train_test_split(dist, 0.3, seed=1)
        good = fit_function(
            FunctionSpec("id", "id", "log", "*", "+"),
            train,
            RegressionConfig(weighted=False),
        )
        bad = fit_function(
            FunctionSpec("inv", "inv", "inv", "+", "+"),
            train,
            RegressionConfig(weighted=False),
        )
        entries = holdout_report([bad, good], train, test)
        errors = [e.test_error for e in entries]
        assert errors == sorted(errors)
        assert entries[0].fitted.spec == good.spec

    def test_nonfinite_coefficients_skipped(self):
        dist = make_dist(100)
        train, test = train_test_split(dist, 0.3, seed=2)
        broken = FittedFunction(
            spec=FunctionSpec("id", "id", "id", "+", "+"),
            coeffs=(float("nan"),) * 3,
            rank_error=float("inf"),
            weighted_sse=float("inf"),
            n_observations=0,
        )
        assert holdout_report([broken], train, test) == []

    def test_empty_rejected(self):
        dist = make_dist(100)
        train, test = train_test_split(dist, 0.3)
        with pytest.raises(ValueError):
            holdout_report([], train, test)

    def test_top_k_limits(self):
        dist = make_dist(100)
        train, test = train_test_split(dist, 0.3)
        f = fit_function(
            FunctionSpec("id", "id", "id", "+", "+"),
            train,
            RegressionConfig(weighted=False),
        )
        entries = holdout_report([f] * 5, train, test, top_k=2)
        assert len(entries) == 2

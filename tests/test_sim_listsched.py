"""Tests for the fixed-priority trial simulator (repro.sim.listsched)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.listsched import simulate_fixed_priority


def starts(submit, runtime, size, priority, nmax):
    return simulate_fixed_priority(
        np.asarray(submit, float),
        np.asarray(runtime, float),
        np.asarray(size, int),
        np.asarray(priority, float),
        nmax,
    )


class TestBasics:
    def test_empty(self):
        out = simulate_fixed_priority(
            np.array([]), np.array([]), np.array([]), np.array([]), 4
        )
        assert len(out) == 0

    def test_single_job_starts_at_submit(self):
        out = starts([5.0], [10.0], [2], [0], 4)
        assert out[0] == 5.0

    def test_sequential_when_machine_full(self):
        out = starts([0.0, 0.0], [10.0, 10.0], [4, 4], [0, 1], 4)
        np.testing.assert_array_equal(out, [0.0, 10.0])

    def test_parallel_when_fits(self):
        out = starts([0.0, 0.0], [10.0, 10.0], [2, 2], [0, 1], 4)
        np.testing.assert_array_equal(out, [0.0, 0.0])

    def test_priority_reorders(self):
        # Lower priority value runs first even if submitted later (after arrival).
        out = starts([0.0, 0.0], [10.0, 10.0], [4, 4], [1, 0], 4)
        np.testing.assert_array_equal(out, [10.0, 0.0])

    def test_head_blocking_no_backfill(self):
        """A small job never overtakes a blocked higher-priority job."""
        # J0 occupies 3/4 cores until t=10; J1 (prio 1) needs 4 -> blocked;
        # J2 (prio 2) needs 1 and would fit, but must wait for J1.
        out = starts(
            [0.0, 0.0, 0.0], [10.0, 5.0, 1.0], [3, 4, 1], [0, 1, 2], 4
        )
        np.testing.assert_array_equal(out, [0.0, 10.0, 15.0])

    def test_not_yet_arrived_head_does_not_block(self):
        """The top-priority job cannot reserve the machine before arriving."""
        # J0 (prio 0) arrives at t=100; J1 (prio 1) arrives at 0 and runs now.
        out = starts([100.0, 0.0], [10.0, 10.0], [4, 4], [0, 1], 4)
        assert out[1] == 0.0
        assert out[0] == 100.0

    def test_arrived_head_preempts_queue_position(self):
        """Once a late high-priority job arrives it jumps the waiting queue."""
        # machine busy until t=20 (J0); J1 arrives t=1 (prio 2), J2 arrives
        # t=5 (prio 1).  At t=20 J2 runs first despite arriving later.
        out = starts(
            [0.0, 1.0, 5.0], [20.0, 5.0, 5.0], [4, 4, 4], [0, 2, 1], 4
        )
        np.testing.assert_array_equal(out, [0.0, 25.0, 20.0])

    def test_ties_broken_by_submit_then_index(self):
        out = starts([0.0, 0.0], [5.0, 5.0], [4, 4], [0, 0], 4)
        np.testing.assert_array_equal(out, [0.0, 5.0])

    def test_oversized_job_rejected_with_job_named(self):
        with pytest.raises(ValueError, match=r"job 0 needs 8 cores"):
            starts([0.0], [1.0], [8], [0], 4)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            simulate_fixed_priority(
                np.array([0.0]), np.array([1.0]), np.array([1, 2]), np.array([0]), 4
            )

    def test_idle_gap_jumps_to_next_arrival(self):
        out = starts([0.0, 1000.0], [5.0, 5.0], [1, 1], [0, 1], 4)
        np.testing.assert_array_equal(out, [0.0, 1000.0])


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_schedule_validity(self, data):
        n = data.draw(st.integers(2, 25))
        nmax = data.draw(st.integers(1, 8))
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        submit = np.sort(rng.uniform(0, 50, n))
        runtime = rng.uniform(0.5, 20, n)
        size = rng.integers(1, nmax + 1, n)
        priority = rng.permutation(n).astype(float)
        out = starts(submit, runtime, size, priority, nmax)
        # every job starts after its arrival
        assert np.all(out >= submit - 1e-9)
        # no oversubscription at any event
        events = sorted(
            [(s, int(k)) for s, k in zip(out, size)]
            + [(s + r, -int(k)) for s, r, k in zip(out, runtime, size)],
            key=lambda e: (e[0], e[1]),
        )
        used = 0
        for _, delta in events:
            used += delta
            assert used <= nmax

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**16))
    def test_work_conserving_single_core_no_idle(self, seed):
        """On 1 core with all jobs at t=0, the machine never idles."""
        rng = np.random.default_rng(seed)
        n = 8
        runtime = rng.uniform(1, 10, n)
        out = starts(np.zeros(n), runtime, np.ones(n, int), rng.permutation(n), 1)
        order = np.argsort(out)
        finish = out + runtime
        assert out[order[0]] == 0.0
        for a, b in zip(order[:-1], order[1:]):
            assert out[b] == pytest.approx(finish[a])

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**16))
    def test_priority_zero_starts_first_among_simultaneous(self, seed):
        rng = np.random.default_rng(seed)
        n = 10
        runtime = rng.uniform(1, 10, n)
        size = rng.integers(1, 5, n)
        priority = rng.permutation(n).astype(float)
        out = starts(np.zeros(n), runtime, size, priority, 4)
        head = int(np.argmin(priority))
        assert out[head] == pytest.approx(out.min())

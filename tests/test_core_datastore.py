"""Tests for the resumable on-disk training data store."""

import numpy as np
import pytest

from repro.core.datastore import TrainingDataStore
from repro.core.distribution import ScoreDistribution


@pytest.fixture
def store(tmp_path):
    return TrainingDataStore(tmp_path / "campaign")


class TestLayout:
    def test_directories_created(self, store):
        assert store.task_sets.is_dir()
        assert store.training_data.is_dir()

    def test_empty_store(self, store):
        assert store.tuple_indices() == []
        assert store.next_index() == 0
        with pytest.raises(ValueError, match="no training data"):
            store.gather()


class TestGeneration:
    def test_generate_writes_both_files(self, store):
        written = store.generate(2, trials_per_tuple=32, seed=0)
        assert written == [0, 1]
        for i in written:
            assert (store.task_sets / f"tuple-{i}.csv").exists()
            assert (store.training_data / f"trial-{i}.csv").exists()

    def test_artifact_file_format(self, store):
        store.generate(1, trials_per_tuple=32, seed=0)
        tuple_line = (store.task_sets / "tuple-0.csv").read_text().splitlines()[0]
        assert len(tuple_line.split(",")) == 3  # runtime,#procs,submit
        trial_line = (store.training_data / "trial-0.csv").read_text().splitlines()[0]
        assert len(trial_line.split(",")) == 4  # + score

    def test_resumable_indices(self, store):
        store.generate(2, trials_per_tuple=32, seed=0)
        more = store.generate(2, trials_per_tuple=32, seed=0)
        assert more == [2, 3]
        assert store.tuple_indices() == [0, 1, 2, 3]

    def test_resume_continues_same_campaign(self, tmp_path):
        """2 then 2 more tuples == 4 in one shot (same seed)."""
        one_shot = TrainingDataStore(tmp_path / "a")
        one_shot.generate(4, trials_per_tuple=32, seed=5)
        resumed = TrainingDataStore(tmp_path / "b")
        resumed.generate(2, trials_per_tuple=32, seed=5)
        resumed.generate(2, trials_per_tuple=32, seed=5)
        da = one_shot.gather()
        db = resumed.gather()
        np.testing.assert_allclose(da.runtime, db.runtime)
        np.testing.assert_allclose(da.score, db.score)


class TestRoundTrip:
    def test_load_tuple(self, store):
        store.generate(1, trials_per_tuple=32, seed=1)
        tup = store.load_tuple(0)
        assert len(tup.S) == 16
        assert len(tup.Q) == 32
        assert tup.index == 0

    def test_gather_shapes(self, store):
        store.generate(3, trials_per_tuple=32, seed=2)
        dist = store.gather()
        assert len(dist) == 3 * 32
        # Eq. 3 partition of unity per tuple
        assert dist.score[:32].sum() == pytest.approx(1.0)

    def test_gather_to_csv_loadable(self, store):
        store.generate(1, trials_per_tuple=32, seed=3)
        path = store.gather_to_csv()
        assert path.name == "score-distribution.csv"
        back = ScoreDistribution.from_csv(path)
        assert len(back) == 32

    def test_gathered_data_fits(self, store):
        """End-to-end: a stored campaign feeds the regression."""
        from repro.core.functions import FunctionSpec
        from repro.core.regression import RegressionConfig, fit_function

        store.generate(2, trials_per_tuple=64, seed=4)
        dist = store.gather()
        fit = fit_function(
            FunctionSpec("id", "id", "log", "*", "+"),
            dist,
            RegressionConfig(max_points=100, x0_magnitudes=(1e-3,)),
        )
        assert np.isfinite(fit.rank_error)

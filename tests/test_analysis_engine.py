"""Tests for the static-analysis rule engine (``repro-sched lint``).

Covers: every rule against a known-bad and known-clean fixture tree
(tests/analysis_fixtures/), suppression semantics (valid / missing
reason / unknown id / marker-in-string), config handling, the three
output formats and their JSON schema, the CLI verb, and the self-lint
gate — ``repro-sched lint src/`` must exit 0, which is also what makes
the REP009 docstring rule the successor of the old test_docstrings.py.
"""

import json
from pathlib import Path

import pytest

from repro import cli
from repro.analysis import (
    ENGINE_RULE_ID,
    JSON_SCHEMA_VERSION,
    LintConfig,
    LintConfigError,
    LintEngine,
    all_rules,
    load_config,
    render_github,
    render_json,
    render_terminal,
    rule_ids,
    run_lint,
    scan_suppressions,
)
from repro.analysis.config import parse_table

FIXTURES = Path(__file__).parent / "analysis_fixtures"
SRC = Path(__file__).parents[1] / "src"

ALL_RULE_IDS = (
    "REP001", "REP002", "REP003", "REP004", "REP005",
    "REP006", "REP007", "REP008", "REP009",
)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_ids_complete_and_sorted():
    assert tuple(rule_ids()) == ALL_RULE_IDS
    rules = all_rules()
    assert [r.id for r in rules] == sorted(r.id for r in rules)


def test_rules_carry_contract_metadata():
    for rule in all_rules():
        assert rule.contract, rule.id
        assert rule.rationale, rule.id
        assert rule.backstop, rule.id
        assert rule.severity in ("warning", "error")


def test_fresh_instances_per_call():
    assert all_rules()[0] is not all_rules()[0]


# ----------------------------------------------------------------------
# per-rule fixtures: one bad and one clean tree per rule
# ----------------------------------------------------------------------
@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_rule_flags_bad_and_passes_clean(rule_id):
    tree = FIXTURES / rule_id.lower()
    assert tree.is_dir(), tree
    result = run_lint([tree], select=[rule_id])
    assert result.files_scanned >= 2, "need a bad and a clean fixture"
    assert result.findings, f"{rule_id} found nothing in {tree}"
    for finding in result.findings:
        assert finding.rule == rule_id
        assert Path(finding.path).name.startswith("bad"), (
            f"{rule_id} flagged a clean fixture: {finding}"
        )
    assert result.exit_code == 1


def test_rep001_flags_every_spelling():
    result = run_lint([FIXTURES / "rep001" / "bad.py"], select=["REP001"])
    # import random, from numpy.random import shuffle, random.shuffle,
    # np.random.seed, np.random.rand, bare default_rng()
    assert len(result.findings) == 6


def test_rep003_is_path_gated():
    # The same registry read outside sim/core/eval is legal.
    result = run_lint([FIXTURES / "rep003"], select=["REP003"])
    flagged = {Path(f.path).parent.name for f in result.findings}
    assert flagged == {"sim"}


def test_rep007_allows_int_literal_powers():
    result = run_lint(
        [FIXTURES / "rep007" / "sim" / "clean.py"], select=["REP007"]
    )
    assert result.findings == []


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
def test_valid_suppression_silences_but_records():
    result = run_lint([FIXTURES / "suppress" / "valid.py"], select=["REP001"])
    assert result.exit_code == 0
    assert result.active == []
    assert len(result.suppressed) == 1
    finding = result.suppressed[0]
    assert finding.rule == "REP001"
    assert "justified escape hatch" in finding.suppress_reason


def test_missing_reason_keeps_finding_active_and_adds_rep000():
    result = run_lint(
        [FIXTURES / "suppress" / "missing_reason.py"], select=["REP001"]
    )
    assert result.exit_code == 1
    rules = sorted(f.rule for f in result.active)
    assert rules == [ENGINE_RULE_ID, "REP001"]
    assert result.suppressed == []
    assert any("requires a one-line" in f.message for f in result.active)


def test_unknown_rule_id_in_suppression_is_rep000():
    result = run_lint([FIXTURES / "suppress" / "unknown_rule.py"])
    assert result.exit_code == 1
    assert [f.rule for f in result.active] == [ENGINE_RULE_ID]
    assert "REP999" in result.active[0].message


def test_marker_inside_string_is_not_a_suppression():
    result = run_lint(
        [FIXTURES / "suppress" / "in_string.py"], select=["REP001"]
    )
    assert result.exit_code == 1
    assert len(result.active) == 1
    assert result.suppressed == []


def test_scan_suppressions_parses_multi_rule_markers():
    source = "x = 1  # repro: allow[REP004, rep006] spans two rules\n"
    sups = scan_suppressions(source)
    assert sups[1].rules == ("REP004", "REP006")
    assert sups[1].valid


def test_syntax_error_becomes_rep000(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def broken(:\n", encoding="utf-8")
    result = run_lint([broken])
    assert result.exit_code == 1
    assert [f.rule for f in result.findings] == [ENGINE_RULE_ID]
    assert "could not parse" in result.findings[0].message


# ----------------------------------------------------------------------
# config
# ----------------------------------------------------------------------
def test_parse_table_rejects_unknown_keys():
    with pytest.raises(LintConfigError) as err:
        parse_table({"selekt": ["REP001"]}, source="pyproject.toml")
    assert "selekt" in str(err.value)
    assert "select" in str(err.value)  # names the valid keys


def test_rule_rejects_unknown_options():
    rule = all_rules()[0]
    with pytest.raises(LintConfigError) as err:
        rule.configure({"not_an_option": 1})
    assert "not_an_option" in str(err.value)


def test_engine_rejects_unknown_rule_id_in_config():
    with pytest.raises(ValueError) as err:
        LintEngine(config=LintConfig(ignore=("REP999",)))
    assert "REP999" in str(err.value)


def test_config_exclude_skips_paths():
    cfg = LintConfig(exclude=("bad.py",))
    result = LintEngine(config=cfg).lint_paths([FIXTURES / "rep004"])
    assert result.findings == []
    assert result.files_scanned == 1  # clean.py only


def test_select_and_ignore_filter_rules():
    tree = FIXTURES / "rep006"
    assert run_lint([tree], select=["REP001"]).findings == []
    ignored = run_lint([tree], ignore=["REP006", "REP009"])
    assert all(f.rule not in ("REP006", "REP009") for f in ignored.findings)


def test_load_config_reads_pyproject(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        '[tool.repro-lint]\nignore = ["rep008"]\n', encoding="utf-8"
    )
    cfg = load_config(start=tmp_path)
    assert cfg.ignore == ("REP008",)
    assert not cfg.enabled("REP008")
    assert cfg.enabled("REP001")


def test_rep009_contract_packages_configurable():
    cfg = LintConfig(
        rule_options={"REP009": {"contract_packages": []}},
        select=("REP009",),
    )
    result = LintEngine(config=cfg).lint_paths(
        [FIXTURES / "rep009" / "runtime"]
    )
    # With no contract packages, the marker-less docstring passes.
    assert result.findings == []


# ----------------------------------------------------------------------
# reporters
# ----------------------------------------------------------------------
def test_json_report_schema():
    result = run_lint([FIXTURES / "rep006"], select=["REP006"])
    doc = json.loads(render_json(result))
    assert doc["schema"] == JSON_SCHEMA_VERSION
    assert doc["tool"] == "repro-lint"
    assert doc["files_scanned"] == result.files_scanned
    assert set(doc["summary"]) == {"errors", "warnings", "suppressed"}
    assert doc["summary"]["errors"] == len(result.active)
    assert doc["rules"]["REP006"]["contract"]
    for finding in doc["findings"]:
        assert set(finding) == {
            "rule", "path", "line", "col", "message", "severity",
            "suppressed", "suppress_reason",
        }


def test_json_report_includes_suppressed_findings():
    result = run_lint([FIXTURES / "suppress" / "valid.py"], select=["REP001"])
    doc = json.loads(render_json(result))
    assert doc["summary"]["errors"] == 0
    assert doc["summary"]["suppressed"] == 1
    assert doc["findings"][0]["suppressed"] is True
    assert doc["findings"][0]["suppress_reason"]


def test_github_format_emits_annotations():
    result = run_lint([FIXTURES / "rep006" / "bad.py"], select=["REP006"])
    out = render_github(result)
    assert "::error file=" in out
    assert "title=REP006" in out


def test_terminal_format_lists_findings_and_summary():
    result = run_lint([FIXTURES / "rep006" / "bad.py"], select=["REP006"])
    out = render_terminal(result)
    assert "REP006 error:" in out
    assert "error(s)" in out


# ----------------------------------------------------------------------
# CLI verb
# ----------------------------------------------------------------------
def test_cli_lint_bad_fixture_exits_nonzero(capsys):
    rc = cli.main(
        ["lint", str(FIXTURES / "rep001" / "bad.py"), "--select", "REP001"]
    )
    assert rc == 1
    assert "REP001" in capsys.readouterr().out


def test_cli_lint_json_format(capsys):
    rc = cli.main(
        [
            "lint",
            str(FIXTURES / "rep001" / "clean.py"),
            "--select",
            "REP001",
            "--format",
            "json",
        ]
    )
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == JSON_SCHEMA_VERSION


def test_cli_lint_list_rules(capsys):
    rc = cli.main(["lint", "--list-rules"])
    assert rc == 0
    out = capsys.readouterr().out
    for rule_id in ALL_RULE_IDS:
        assert rule_id in out


def test_cli_lint_unknown_path_is_a_clean_error():
    with pytest.raises(SystemExit, match="lint path not found"):
        cli.main(["lint", "no/such/dir"])


# ----------------------------------------------------------------------
# self-lint: the repo's own source obeys its own contracts
# ----------------------------------------------------------------------
def test_src_lints_clean():
    result = run_lint([SRC])
    assert result.exit_code == 0, render_terminal(result)
    # Every suppression in src/ carries a justification by construction;
    # growth of this count is watched by scripts/check_lint_baseline.py.
    for finding in result.suppressed:
        assert finding.suppress_reason


def test_src_docstring_invariants_hold():
    # The REP009 successor of the old tests/test_docstrings.py gate.
    result = run_lint([SRC], select=["REP009"])
    assert result.exit_code == 0, render_terminal(result)

"""Hybrid (K-reservation) backfilling: oracle cases and mode identities.

Hybrid sits between EASY and conservative: the first
``HYBRID_RESERVATION_DEPTH`` queue jobs get conservative-style
reservations, deeper jobs backfill opportunistically with none.  The
tests pin the algebra — ``depth >= len(queue)`` *is* conservative, and a
hand-computed scenario separates all three modes — plus the engine
integration (the hybrid mode always runs the Python kernel, even when
``REPRO_SIM_KERNEL=c``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.policies.registry import get_policy
from repro.sim import _cbackend
from repro.sim.backfill import (
    HYBRID_RESERVATION_DEPTH,
    easy_backfill,
    hybrid_starts,
)
from repro.sim.conservative import conservative_starts
from repro.sim.engine import normalize_backfill, simulate
from repro.sim.job import Workload

HAVE_C = _cbackend.load() is not None


class TestHybridOracle:
    """One scenario, hand-scheduled, that separates every mode.

    Machine of 6 cores at ``now=0``; running jobs end at t=5 (2 cores)
    and t=10 (3 cores), so 1 core is free.  Priority queue:

    * A — 6 cores for 2s (the blocked head; earliest full-drain t=10),
    * B — 3 cores for 4s (fits the [5, 10) window of 3 free cores),
    * C — 1 core for 6s (fits the single free core right now).

    EASY reserves only A (shadow t=10): C finishes at 6 <= 10, starts.
    Hybrid depth 1 reserves only A at [10, 12): C's [0, 6) window is
    untouched, C starts.  Hybrid depth 2 additionally reserves B at
    [5, 9) — C would collide with it, so C must wait.  Conservative
    reserves everything and agrees with depth 2.
    """

    NOW, NMAX = 0.0, 6
    RUN_END = [5.0, 10.0]
    RUN_SIZE = [2, 3]
    QUEUE = ["A", "B", "C"]
    Q_SIZE = [6, 3, 1]
    Q_PROC = [2.0, 4.0, 6.0]

    def _hybrid(self, depth: int) -> list[str]:
        return hybrid_starts(
            self.NOW,
            self.NMAX,
            self.QUEUE,
            self.Q_SIZE,
            self.Q_PROC,
            self.RUN_END,
            self.RUN_SIZE,
            depth=depth,
        )

    def test_easy_starts_the_thin_job(self):
        started = easy_backfill(
            self.NOW,
            1,  # free cores
            self.Q_SIZE[0],
            self.QUEUE[1:],
            self.Q_SIZE[1:],
            self.Q_PROC[1:],
            self.RUN_END,
            self.RUN_SIZE,
        )
        assert started == ["C"]

    def test_depth_one_behaves_like_easy_here(self):
        assert self._hybrid(1) == ["C"]

    def test_depth_two_protects_the_middle_reservation(self):
        assert self._hybrid(2) == []

    def test_conservative_agrees_with_full_depth(self):
        conservative = conservative_starts(
            self.NOW,
            self.NMAX,
            self.QUEUE,
            self.Q_SIZE,
            self.Q_PROC,
            self.RUN_END,
            self.RUN_SIZE,
        )
        assert conservative == []
        assert self._hybrid(len(self.QUEUE)) == conservative

    def test_depth_below_one_rejected(self):
        with pytest.raises(ValueError, match="depth must be >= 1"):
            self._hybrid(0)


class TestFullDepthIdentity:
    """``hybrid_starts(depth >= len(queue))`` == ``conservative_starts``
    on randomized queues — epsilon for epsilon."""

    def test_random_queues(self):
        rng = np.random.default_rng(23)
        for _ in range(50):
            nmax = int(rng.integers(2, 32))
            n_run = int(rng.integers(0, 4))
            # Running jobs must fit the machine: draw each size from the
            # capacity that is still unclaimed.
            run_size = []
            free = nmax
            for _ in range(n_run):
                if free < 1:
                    break
                s = int(rng.integers(1, free + 1))
                run_size.append(s)
                free -= s
            run_end = np.round(
                rng.uniform(0.5, 20.0, size=len(run_size)), 2
            ).tolist()
            n_q = int(rng.integers(1, 8))
            queue = list(range(n_q))
            q_size = rng.integers(1, nmax + 1, size=n_q).tolist()
            q_proc = np.round(rng.uniform(0.1, 15.0, size=n_q), 2).tolist()
            args = (0.0, nmax, queue, q_size, q_proc, run_end, run_size)
            assert hybrid_starts(*args, depth=n_q) == conservative_starts(*args)
            assert hybrid_starts(*args, depth=n_q + 5) == conservative_starts(*args)


class TestEngineIntegration:
    def test_mode_token_canonicalisation(self):
        assert normalize_backfill("hybrid") == "hybrid"
        with pytest.raises(ValueError):
            normalize_backfill("hybridd")

    def _small_workloads(self, count: int = 8):
        """Workloads short enough that the queue never exceeds the
        reservation depth, making hybrid provably conservative."""
        rng = np.random.default_rng(31)
        for _ in range(count):
            n = int(rng.integers(1, HYBRID_RESERVATION_DEPTH + 1))
            submit = np.sort(np.round(rng.uniform(0, 10, n), 1))
            runtime = np.round(rng.uniform(0.5, 20.0, n), 2)
            size = rng.integers(1, 9, n)
            yield Workload.from_arrays(submit=submit, runtime=runtime, size=size)

    @pytest.mark.parametrize("policy_name", ["fcfs", "unicef"])
    def test_small_queues_match_conservative(self, policy_name):
        policy = get_policy(policy_name)
        for w in self._small_workloads():
            hybrid = simulate(w, policy, 8, backfill="hybrid")
            conservative = simulate(w, policy, 8, backfill="conservative")
            assert hybrid.start.tobytes() == conservative.start.tobytes()
            assert hybrid.backfilled.tobytes() == conservative.backfilled.tobytes()

    def test_hybrid_diverges_from_easy_and_conservative_at_scale(self):
        """On a long congested workload the three modes genuinely differ
        (otherwise the new mode would be a synonym)."""
        rng = np.random.default_rng(7)
        n = 300
        w = Workload.from_arrays(
            submit=np.sort(np.round(rng.uniform(0, 50, n), 1)),
            runtime=np.round(rng.uniform(1.0, 60.0, n), 2),
            size=rng.integers(1, 17, n),
        )
        policy = get_policy("f2")
        outs = {
            mode: simulate(w, policy, 16, backfill=mode).start.tobytes()
            for mode in ("easy", "hybrid", "conservative")
        }
        assert outs["hybrid"] != outs["easy"]
        assert outs["hybrid"] != outs["conservative"]

    @pytest.mark.skipif(not HAVE_C, reason="no C toolchain on this host")
    def test_c_backend_request_falls_back_to_python(self, monkeypatch):
        """The C kernel implements modes 0-2 only; hybrid must run the
        Python path under REPRO_SIM_KERNEL=c, byte-identical to an
        explicit python run."""
        rng = np.random.default_rng(3)
        w = Workload.from_arrays(
            submit=np.sort(np.round(rng.uniform(0, 20, 60), 1)),
            runtime=np.round(rng.uniform(0.5, 30.0, 60), 2),
            size=rng.integers(1, 9, 60),
        )
        policy = get_policy("fcfs")
        monkeypatch.setenv("REPRO_SIM_KERNEL", "python")
        want = simulate(w, policy, 8, backfill="hybrid")
        monkeypatch.setenv("REPRO_SIM_KERNEL", "c")
        got = simulate(w, policy, 8, backfill="hybrid")
        assert got.start.tobytes() == want.start.tobytes()
        assert got.n_events == want.n_events

"""Tests for the parallel execution runtime (repro.runtime).

The load-bearing guarantees: (1) serial and parallel runs are
bit-identical for any worker count and chunk size, (2) a second pipeline
run with the same config loads from the artifact cache without
re-simulating, (3) sharding and progress aggregation obey their
contracts.
"""

import numpy as np
import pytest

import repro.core.pipeline as pipeline_mod
from repro.core.datastore import load_trial_artifact, save_trial_artifact
from repro.core.pipeline import (
    PipelineConfig,
    build_distribution,
    distribution_cache_key,
)
from repro.runtime import (
    ArtifactCache,
    ExecutorConfig,
    ProgressAggregator,
    TrialRunner,
    config_fingerprint,
    plan_shards,
    resolve_workers,
)

#: Small enough for process fan-out in a test, big enough to shard.
SMALL = PipelineConfig(n_tuples=3, trials_per_tuple=32, seed=5)

RESULT_FIELDS = ("runtime", "size", "submit", "scores", "first_task", "trial_avebsld")


def assert_results_identical(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        for field in RESULT_FIELDS:
            np.testing.assert_array_equal(getattr(ra, field), getattr(rb, field))


class TestResolveWorkers:
    def test_int_passthrough(self):
        assert resolve_workers(3) == 3

    def test_numeric_string(self):
        assert resolve_workers("2") == 2

    def test_auto(self):
        assert resolve_workers("auto") >= 1

    @pytest.mark.parametrize("bad", [0, -1, "nope", "0"])
    def test_invalid(self, bad):
        with pytest.raises(ValueError):
            resolve_workers(bad)


class TestExecutorConfig:
    def test_defaults_are_serial(self):
        cfg = ExecutorConfig()
        assert cfg.n_workers == 1

    def test_chunk_default_gives_four_chunks_per_worker(self):
        cfg = ExecutorConfig(workers=2)
        assert cfg.chunk_for(80) == 10
        assert cfg.chunk_for(1) == 1

    def test_explicit_chunk_wins(self):
        assert ExecutorConfig(workers=2, chunk_size=7).chunk_for(100) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutorConfig(workers=0)
        with pytest.raises(ValueError):
            ExecutorConfig(chunk_size=0)


class TestPlanShards:
    def test_partition(self):
        shards = plan_shards(10, 3)
        assert [list(s) for s in shards] == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]

    def test_covers_every_index_once(self):
        for n, chunk in [(1, 1), (7, 7), (7, 100), (32, 5)]:
            flat = [i for shard in plan_shards(n, chunk) for i in shard]
            assert flat == list(range(n))

    def test_empty(self):
        assert plan_shards(0, 4) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_shards(-1, 2)
        with pytest.raises(ValueError):
            plan_shards(5, 0)


class TestProgressAggregator:
    def test_monotone_and_capped(self):
        seen = []
        agg = ProgressAggregator(lambda p, d, t: seen.append((p, d, t)), "x", 4)
        agg.advance(3)
        agg.advance(3)  # over-report is clamped to total
        assert seen == [("x", 3, 4), ("x", 4, 4)]

    def test_none_callback(self):
        ProgressAggregator(None, "x", 1).advance()  # must not raise


class TestSerialParallelEquivalence:
    @pytest.fixture(scope="class")
    def serial(self):
        np.seterr(all="ignore")
        return build_distribution(SMALL)

    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("chunk_size", [1, 2])
    def test_bit_identical(self, serial, workers, chunk_size):
        _, serial_results, serial_dist = serial
        _, par_results, par_dist = build_distribution(
            SMALL, workers=workers, chunk_size=chunk_size
        )
        assert_results_identical(serial_results, par_results)
        np.testing.assert_array_equal(serial_dist.score, par_dist.score)
        np.testing.assert_array_equal(serial_dist.runtime, par_dist.runtime)

    def test_parallel_progress_contract(self, serial):
        seen = []
        build_distribution(
            SMALL,
            lambda phase, done, total: seen.append((phase, done, total)),
            workers=2,
            chunk_size=1,
        )
        assert all(phase == "trials" for phase, _, _ in seen)
        dones = [done for _, done, _ in seen]
        assert dones == sorted(dones)
        assert seen[-1] == ("trials", SMALL.n_tuples, SMALL.n_tuples)


class TestTrialRunnerMap:
    def test_serial_order_and_progress(self):
        seen = []
        runner = TrialRunner()
        out = runner.map(
            abs, [-3, 1, -2], progress=lambda p, d, t: seen.append((p, d, t))
        )
        assert out == [3, 1, 2]
        assert seen == [("tasks", 1, 3), ("tasks", 2, 3), ("tasks", 3, 3)]

    def test_parallel_preserves_item_order(self):
        runner = TrialRunner(ExecutorConfig(workers=2))
        assert runner.map(abs, list(range(-6, 0))) == [6, 5, 4, 3, 2, 1]


class TestArtifactPersistence:
    def test_round_trip_is_lossless(self, tmp_path):
        np.seterr(all="ignore")
        _, results, dist = build_distribution(SMALL)
        path = save_trial_artifact(tmp_path / "artifact.npz", results, dist)
        loaded_results, loaded_dist = load_trial_artifact(path)
        assert_results_identical(results, loaded_results)
        np.testing.assert_array_equal(dist.score, loaded_dist.score)

    def test_version_guard(self, tmp_path):
        np.seterr(all="ignore")
        _, results, dist = build_distribution(SMALL)
        path = save_trial_artifact(tmp_path / "artifact.npz", results, dist)
        with np.load(path) as data:
            arrays = dict(data)
        arrays["format_version"] = np.array([999])
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="format"):
            load_trial_artifact(path)


class TestCache:
    def test_fingerprint_stable_and_order_free(self):
        assert config_fingerprint({"a": 1, "b": 2}) == config_fingerprint(
            {"b": 2, "a": 1}
        )
        assert config_fingerprint({"a": 1}) != config_fingerprint({"a": 2})

    def test_key_ignores_execution_knobs(self):
        base = distribution_cache_key(SMALL)
        assert base == distribution_cache_key(PipelineConfig(**vars(SMALL)))
        assert base != distribution_cache_key(
            PipelineConfig(n_tuples=3, trials_per_tuple=32, seed=6)
        )

    def test_invalid_key_rejected(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        with pytest.raises(ValueError):
            cache.path_for("../escape")

    def test_second_run_hits_cache_without_simulating(self, tmp_path, monkeypatch):
        np.seterr(all="ignore")
        cache = ArtifactCache(tmp_path / "cache")
        tuples1, results1, dist1 = build_distribution(SMALL, cache=cache)
        assert cache.misses == 1 and cache.hits == 0

        def no_simulation(*args, **kwargs):
            raise AssertionError("cache hit expected; trials were re-simulated")

        monkeypatch.setattr(
            pipeline_mod.TrialRunner, "run_tuple_trials", no_simulation
        )
        seen = []
        tuples2, results2, dist2 = build_distribution(
            SMALL, lambda p, d, t: seen.append((p, d, t)), cache=cache
        )
        assert cache.hits == 1
        assert_results_identical(results1, results2)
        np.testing.assert_array_equal(dist1.score, dist2.score)
        # tuples are regenerated deterministically, progress still completes
        assert len(tuples2) == len(tuples1)
        np.testing.assert_array_equal(tuples1[0].Q.runtime, tuples2[0].Q.runtime)
        assert seen == [("trials", SMALL.n_tuples, SMALL.n_tuples)]

    def test_cache_accepts_plain_directory(self, tmp_path):
        np.seterr(all="ignore")
        build_distribution(SMALL, cache=tmp_path / "cache2")
        assert ArtifactCache(tmp_path / "cache2").load(
            distribution_cache_key(SMALL)
        ) is not None

    def test_serial_and_parallel_share_one_entry(self, tmp_path):
        np.seterr(all="ignore")
        cache = ArtifactCache(tmp_path / "cache3")
        build_distribution(SMALL, cache=cache, workers=2)
        _, _, dist = build_distribution(SMALL, cache=cache)  # serial run, same key
        assert cache.hits == 1
        assert len(list(cache.root.iterdir())) == 1
        np.testing.assert_array_equal(dist.score, build_distribution(SMALL)[2].score)

    @pytest.mark.parametrize("junk", [b"not an npz", b"PK\x03\x04truncated zip"])
    def test_corrupt_entry_is_a_miss(self, tmp_path, junk):
        cache = ArtifactCache(tmp_path)
        key = distribution_cache_key(SMALL)
        cache.path_for(key).write_bytes(junk)
        assert cache.load(key) is None


class TestJsonEntries:
    def test_round_trip_and_accounting(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.load_json("abc123") is None
        assert cache.misses == 1
        path = cache.store_json("abc123", {"x": 1, "nested": [1.5, "s"]})
        assert path.exists()
        assert cache.load_json("abc123") == {"x": 1, "nested": [1.5, "s"]}
        assert cache.hits == 1

    def test_keyspaces_do_not_collide(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store_json("samekey", {"kind": "json"})
        # the npz keyspace with the same key is untouched
        assert not cache.path_for("samekey").exists()
        assert cache.json_path_for("samekey") != cache.path_for("samekey")

    def test_invalid_key_rejected(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        with pytest.raises(ValueError):
            cache.store_json("../escape", {})

    def test_corrupt_json_is_a_miss_then_replaced(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.json_path_for("k").write_text("{ torn", encoding="utf-8")
        assert cache.load_json("k") is None
        cache.store_json("k", [1, 2])
        assert cache.load_json("k") == [1, 2]

"""Concurrent-writer safety of the ArtifactCache.

The workqueue backend's retry semantics lean on one property: two
processes storing the *same* content-addressed key at the same time can
never produce a torn or duplicated entry, because every store writes a
``tmp<pid>`` sibling and ``os.replace``\\ s it into place.  These tests
prove that claim under real multi-process contention instead of taking
the docstring's word for it: a barrier lines all writers up, they hammer
the same key, and readers racing alongside must only ever observe
either a miss or one complete, valid entry — never a partial file.
"""

import json
import multiprocessing
import os

import numpy as np
import pytest

from repro.core.distribution import ScoreDistribution
from repro.core.pipeline import PipelineConfig, build_distribution
from repro.core.trials import TrialScoreResult
from repro.runtime import ArtifactCache

KEY = "deadbeef" * 4


def _trial_payload(seed: int):
    """A small, valid (results, distribution) pair; identical per seed."""
    rng = np.random.default_rng(seed)
    # Per the TrialScoreResult contract every field is |Q|-long except
    # the per-trial ones; 8 probe tasks, 4 trials.
    result = TrialScoreResult(
        runtime=rng.uniform(1.0, 10.0, 8),
        size=rng.integers(1, 4, 8).astype(np.int64),
        submit=np.sort(rng.uniform(0.0, 5.0, 8)),
        scores=rng.uniform(0.0, 1.0, 8),
        first_task=rng.integers(0, 8, 4).astype(np.int64),
        trial_avebsld=rng.uniform(1.0, 3.0, 4),
    )
    results = [result]
    return results, ScoreDistribution.from_trial_results(results)


def _store_npz_worker(directory, barrier, seed):
    cache = ArtifactCache(directory)
    results, dist = _trial_payload(seed)
    barrier.wait(timeout=30)
    for _ in range(5):
        cache.store(KEY, results, dist)


def _store_json_worker(directory, barrier, payload):
    cache = ArtifactCache(directory)
    barrier.wait(timeout=30)
    for _ in range(50):
        cache.store_json(KEY, payload)


def _reader_worker(directory, barrier, out_queue):
    """Race loads against the writers; every load must be None or valid."""
    cache = ArtifactCache(directory)
    barrier.wait(timeout=30)
    bad = 0
    for _ in range(50):
        entry = cache.load_json(KEY)
        if entry is not None and entry.get("tag") not in ("a", "b"):
            bad += 1
    out_queue.put(bad)


def _spawn(target, args):
    proc = multiprocessing.get_context().Process(target=target, args=args)
    proc.start()
    return proc


class TestConcurrentWriters:
    def test_same_npz_key_two_processes(self, tmp_path):
        """Two processes storing the same trials key concurrently leave
        exactly one complete, loadable entry and no temp litter."""
        ctx = multiprocessing.get_context()
        barrier = ctx.Barrier(2)
        procs = [
            _spawn(_store_npz_worker, (str(tmp_path), barrier, 42)),
            _spawn(_store_npz_worker, (str(tmp_path), barrier, 42)),
        ]
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        cache = ArtifactCache(tmp_path)
        entry = cache.load(KEY)
        assert entry is not None, "entry must be complete and loadable"
        results, dist = entry
        expected_results, _ = _trial_payload(42)
        np.testing.assert_array_equal(results[0].scores, expected_results[0].scores)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [f"trials-{KEY}.npz"], f"torn/leftover files: {names}"

    def test_same_json_key_writers_and_readers(self, tmp_path):
        """Concurrent JSON writers with racing readers: a reader only
        ever sees a miss or one writer's complete document."""
        ctx = multiprocessing.get_context()
        barrier = ctx.Barrier(3)
        out = ctx.Queue()
        procs = [
            _spawn(_store_json_worker, (str(tmp_path), barrier, {"tag": "a"})),
            _spawn(_store_json_worker, (str(tmp_path), barrier, {"tag": "b"})),
            _spawn(_reader_worker, (str(tmp_path), barrier, out)),
        ]
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        assert out.get(timeout=10) == 0, "reader observed a torn entry"
        entry = json.loads(
            (tmp_path / f"eval-{KEY}.json").read_text(encoding="utf-8")
        )
        assert entry in ({"tag": "a"}, {"tag": "b"})
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [f"eval-{KEY}.json"], f"torn/leftover files: {names}"

    def test_workqueue_cells_share_a_cache_safely(self, tmp_path, monkeypatch):
        """End to end: two full pipeline runs through different backends
        against one cache directory — the second is a pure hit, and the
        store raced by retries never duplicates an entry."""
        monkeypatch.setenv("REPRO_QUEUE_DIR", str(tmp_path / "queue"))
        config = PipelineConfig(
            n_tuples=3, trials_per_tuple=12, nmax=16, s_size=4, q_size=4, seed=2
        )
        cache_dir = tmp_path / "cache"
        cache = ArtifactCache(cache_dir)
        _, first, _ = build_distribution(
            config, workers=2, backend="workqueue", cache=cache
        )
        assert cache.misses == 1 and cache.hits == 0
        _, second, _ = build_distribution(
            config, workers=2, backend="local", cache=cache
        )
        assert cache.hits == 1
        np.testing.assert_array_equal(first[0].scores, second[0].scores)
        entries = [p.name for p in cache_dir.iterdir() if p.name.startswith("trials-")]
        assert len(entries) == 1

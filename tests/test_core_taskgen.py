"""Tests for (S, Q) tuple generation."""

import numpy as np
import pytest

from repro.core.taskgen import TaskSetTuple, generate_tuples, split_tuple
from repro.workloads.lublin import LublinParams, lublin_workload


class TestSplitTuple:
    def test_sizes(self):
        wl = lublin_workload(48, seed=0)
        tup = split_tuple(wl, 16, 32)
        assert len(tup.S) == 16
        assert len(tup.Q) == 32

    def test_s_before_q(self):
        wl = lublin_workload(48, seed=0)
        tup = split_tuple(wl, 16, 32)
        assert tup.S.submit[-1] <= tup.Q.submit[0]

    def test_too_small_workload(self):
        wl = lublin_workload(10, seed=0)
        with pytest.raises(ValueError, match="need 48"):
            split_tuple(wl, 16, 32)

    def test_invalid_ordering_rejected(self):
        wl = lublin_workload(48, seed=0)
        good = split_tuple(wl, 16, 32)
        with pytest.raises(ValueError, match="before the first Q job"):
            TaskSetTuple(S=good.Q, Q=good.S, index=0)  # swapped

    def test_names(self):
        wl = lublin_workload(48, seed=0, name="w")
        tup = split_tuple(wl, 16, 32)
        assert tup.S.name.endswith("/S")
        assert tup.Q.name.endswith("/Q")


class TestGenerateTuples:
    def test_paper_defaults(self):
        tuples = generate_tuples(3, seed=0)
        assert len(tuples) == 3
        for t in tuples:
            assert len(t.S) == 16
            assert len(t.Q) == 32
            t.S.validate_for_machine(256)
            t.Q.validate_for_machine(256)

    def test_indices(self):
        tuples = generate_tuples(3, seed=0)
        assert [t.index for t in tuples] == [0, 1, 2]

    def test_independent_tuples(self):
        a, b = generate_tuples(2, seed=0)
        assert not np.array_equal(a.Q.runtime, b.Q.runtime)

    def test_reproducible(self):
        a = generate_tuples(2, seed=7)
        b = generate_tuples(2, seed=7)
        np.testing.assert_array_equal(a[0].Q.runtime, b[0].Q.runtime)
        np.testing.assert_array_equal(a[1].S.submit, b[1].S.submit)

    def test_custom_sizes(self):
        tuples = generate_tuples(1, s_size=4, q_size=8, seed=0)
        assert len(tuples[0].S) == 4
        assert len(tuples[0].Q) == 8

    def test_custom_params(self):
        params = LublinParams(serial_prob=1.0, pow2_prob=0.0)
        tuples = generate_tuples(1, seed=0, params=params)
        assert np.all(tuples[0].Q.size == 1)

    def test_custom_factory(self):
        calls = []

        def factory(n_jobs, nmax, seed):
            calls.append((n_jobs, nmax))
            return lublin_workload(n_jobs, nmax, seed=seed)

        generate_tuples(2, nmax=64, workload_factory=factory, seed=0)
        assert calls == [(48, 64), (48, 64)]

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            generate_tuples(0)

"""Tests for experiment scale presets."""

import pytest

from repro.experiments.scale import SCALES, Scale, current_scale, get_scale


class TestPresets:
    def test_inventory(self):
        assert set(SCALES) == {"smoke", "small", "medium", "paper"}

    def test_paper_scale_matches_paper(self):
        p = SCALES["paper"]
        assert p.n_sequences == 10
        assert p.days == 15.0
        assert p.trials_per_tuple == 256000
        assert 256000 in p.fig2_trial_counts
        assert 512000 in p.fig2_trial_counts

    def test_scales_ordered_by_cost(self):
        order = ["smoke", "small", "medium", "paper"]
        for a, b in zip(order[:-1], order[1:]):
            assert SCALES[a].n_sequences * SCALES[a].days <= (
                SCALES[b].n_sequences * SCALES[b].days
            )
            assert SCALES[a].trials_per_tuple <= SCALES[b].trials_per_tuple

    def test_get_scale_unknown(self):
        with pytest.raises(KeyError, match="available"):
            get_scale("galactic")

    def test_validation(self):
        with pytest.raises(ValueError):
            Scale(
                name="bad",
                n_sequences=0,
                days=1.0,
                trace_jobs=10,
                n_tuples=1,
                trials_per_tuple=1,
                regression_max_points=10,
                fig2_trial_counts=(1,),
                fig2_repeats=1,
            )


class TestCurrentScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale().name == "small"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert current_scale().name == "smoke"

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(KeyError):
            current_scale()

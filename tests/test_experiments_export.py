"""Tests for CSV export of figure/table data."""

import numpy as np
import pytest

from repro.experiments.dynamic import DynamicExperimentResult
from repro.experiments.export import (
    experiment_to_csv,
    fig1_to_csv,
    fig2_to_csv,
    fig3_to_csv,
    write_all,
)
from repro.experiments.figures import (
    Fig1Result,
    Fig2Result,
    fig3_policy_maps,
)


@pytest.fixture
def fig1():
    return Fig1Result(
        panels=[np.array([0.03, 0.04]), np.array([0.02, 0.05])], q_size=2
    )


@pytest.fixture
def fig2():
    return Fig2Result(
        trial_counts=(32, 64), normalized_std=np.array([0.5, 0.3]), repeats=4
    )


@pytest.fixture
def experiment():
    return DynamicExperimentResult(
        name="demo",
        policy_names=("FCFS", "F1"),
        samples={"FCFS": np.array([10.0, 20.0]), "F1": np.array([1.0, 2.0])},
        nmax=256,
        use_estimates=False,
        backfill=False,
        n_sequences=2,
        days=1.0,
    )


class TestFig1Csv:
    def test_rows(self, fig1):
        csv = fig1_to_csv(fig1)
        lines = csv.strip().splitlines()
        assert lines[0].startswith("# mean_line=0.5")
        assert lines[1] == "panel,task_id,score"
        assert len(lines) == 2 + 4

    def test_values_roundtrip(self, fig1):
        csv = fig1_to_csv(fig1)
        row = csv.strip().splitlines()[2].split(",")
        assert float(row[2]) == 0.03


class TestFig2Csv:
    def test_series(self, fig2):
        csv = fig2_to_csv(fig2)
        assert "trials,normalized_std" in csv
        assert "32,0.5" in csv
        assert "64,0.3" in csv


class TestFig3Csv:
    def test_long_format(self):
        maps = fig3_policy_maps("rn", resolution=4)
        csv = fig3_to_csv(maps)
        lines = csv.strip().splitlines()
        assert lines[1] == "policy,r,n,priority"
        # 4 policies x 4x4 grid
        assert len(lines) == 2 + 4 * 16

    def test_values_normalized(self):
        maps = fig3_policy_maps("ns", resolution=4)
        csv = fig3_to_csv(maps)
        values = [float(l.split(",")[3]) for l in csv.strip().splitlines()[2:]]
        assert min(values) >= 0.0 and max(values) <= 1.0


class TestExperimentCsv:
    def test_samples(self, experiment):
        csv = experiment_to_csv(experiment)
        assert "policy,sequence,ave_bsld" in csv
        assert "FCFS,0,10" in csv
        assert "F1,1,2" in csv

    def test_metadata_comment(self, experiment):
        head = experiment_to_csv(experiment).splitlines()[0]
        assert "experiment=demo" in head
        assert "nmax=256" in head


class TestWriteAll:
    def test_writes_everything(self, tmp_path, fig1, fig2, experiment):
        maps = [fig3_policy_maps("rn", resolution=4)]
        paths = write_all(
            tmp_path / "out",
            fig1=fig1,
            fig2=fig2,
            fig3_panels=maps,
            experiments=[experiment],
        )
        names = sorted(p.name for p in paths)
        assert names == [
            "experiment_demo.csv",
            "fig1_trial_scores.csv",
            "fig2_convergence.csv",
            "fig3_rn.csv",
        ]
        for p in paths:
            assert p.exists() and p.stat().st_size > 0

    def test_empty_call_creates_dir_only(self, tmp_path):
        out = write_all(tmp_path / "empty")
        assert out == []
        assert (tmp_path / "empty").is_dir()

"""Tests for repro.sim.backfill (EASY aggressive backfilling)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.backfill import easy_backfill, shadow_schedule


class TestShadowSchedule:
    def test_single_running_job(self):
        shadow, extra = shadow_schedule(
            now=0.0, free=1, head_size=4, running_end=[10.0], running_size=[3]
        )
        assert shadow == 10.0
        assert extra == 0

    def test_extra_cores(self):
        # head needs 2; when the size-3 job ends, 1+3=4 available -> extra 2
        shadow, extra = shadow_schedule(0.0, 1, 2, [10.0], [3])
        assert shadow == 10.0
        assert extra == 2

    def test_accumulates_until_enough(self):
        shadow, extra = shadow_schedule(
            0.0, 0, 4, running_end=[5.0, 10.0, 20.0], running_size=[2, 2, 2]
        )
        assert shadow == 10.0  # 2 at t=5, 4 at t=10
        assert extra == 0

    def test_past_expected_ends_clamped_to_now(self):
        """Overrunning jobs (estimate expired) count as ending now."""
        shadow, extra = shadow_schedule(100.0, 0, 2, [50.0], [4])
        assert shadow == 100.0
        assert extra == 2

    def test_head_fits_now_rejected(self):
        with pytest.raises(ValueError, match="head fits now"):
            shadow_schedule(0.0, 4, 4, [10.0], [1])

    def test_never_enough_cores_raises_value_error(self):
        # An unsatisfiable head is an input-validation failure, not an
        # internal invariant violation: it points at the missing
        # validate_for_machine call instead of dying mid-simulation.
        with pytest.raises(ValueError, match="can ever become free"):
            shadow_schedule(0.0, 0, 8, [10.0], [2])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            shadow_schedule(0.0, 0, 2, [10.0], [2, 3])


class TestEasyBackfill:
    def _scenario(self):
        """free=2, head needs 4; one running job (size 3) ends at t=10."""
        return dict(
            now=0.0,
            free=2,
            head_size=4,
            running_end=[10.0],
            running_size=[3],
        )

    def test_short_job_backfills(self):
        chosen = easy_backfill(
            candidates=[7], cand_size=[2], cand_proc=[5.0], **self._scenario()
        )
        assert chosen == [7]

    def test_long_wide_job_blocked(self):
        # ends after shadow (10) and needs 2 > extra (2+3-4 = 1)
        chosen = easy_backfill(
            candidates=[7], cand_size=[2], cand_proc=[50.0], **self._scenario()
        )
        assert chosen == []

    def test_long_narrow_job_uses_extra(self):
        # extra = 1, so a 1-core job may run past the shadow
        chosen = easy_backfill(
            candidates=[7], cand_size=[1], cand_proc=[50.0], **self._scenario()
        )
        assert chosen == [7]

    def test_extra_budget_consumed(self):
        # two 1-core long jobs: only the first fits in extra=1
        chosen = easy_backfill(
            candidates=[7, 8],
            cand_size=[1, 1],
            cand_proc=[50.0, 50.0],
            **self._scenario(),
        )
        assert chosen == [7]

    def test_short_jobs_do_not_consume_extra(self):
        # short jobs return cores before the shadow; both fit in free=2
        chosen = easy_backfill(
            candidates=[7, 8],
            cand_size=[1, 1],
            cand_proc=[5.0, 5.0],
            **self._scenario(),
        )
        assert chosen == [7, 8]

    def test_candidate_bigger_than_free_skipped(self):
        chosen = easy_backfill(
            candidates=[7, 8],
            cand_size=[3, 1],
            cand_proc=[1.0, 1.0],
            **self._scenario(),
        )
        assert chosen == [8]

    def test_exact_fit_at_shadow_boundary(self):
        # job ends exactly at the shadow time -> allowed
        chosen = easy_backfill(
            candidates=[7], cand_size=[2], cand_proc=[10.0], **self._scenario()
        )
        assert chosen == [7]

    def test_priority_order_respected(self):
        """Earlier candidates get first pick of the free cores."""
        chosen = easy_backfill(
            candidates=[5, 6, 7],
            cand_size=[2, 1, 1],
            cand_proc=[5.0, 5.0, 5.0],
            **self._scenario(),
        )
        assert chosen == [5]  # free=2 consumed; later 1-core jobs skipped

    @settings(max_examples=80, deadline=None)
    @given(st.data())
    def test_head_never_delayed(self, data):
        """Backfilled jobs leave >= head_size cores available at the shadow.

        This is THE safety property of EASY: the reservation made for the
        queue head is honoured no matter what gets backfilled.
        """
        nmax = data.draw(st.integers(4, 32))
        n_running = data.draw(st.integers(1, 6))
        running_size = [data.draw(st.integers(1, nmax // 2)) for _ in range(n_running)]
        while sum(running_size) > nmax:
            running_size.pop()
        if not running_size:
            running_size = [nmax]
        running_end = [data.draw(st.floats(1.0, 100.0)) for _ in running_size]
        free = nmax - sum(running_size)
        head_size = data.draw(st.integers(free + 1, nmax))
        n_cand = data.draw(st.integers(0, 8))
        cand = list(range(n_cand))
        cand_size = [data.draw(st.integers(1, nmax)) for _ in cand]
        cand_proc = [data.draw(st.floats(0.5, 200.0)) for _ in cand]

        shadow, _ = shadow_schedule(0.0, free, head_size, running_end, running_size)
        chosen = easy_backfill(
            0.0, free, head_size, cand, cand_size, cand_proc, running_end, running_size
        )

        # Cores available at the shadow instant after starting chosen jobs:
        avail = free
        for e, s in zip(running_end, running_size):
            if max(e, 0.0) <= shadow + 1e-9:
                avail += s
        for i in chosen:
            if 0.0 + cand_proc[i] > shadow + 1e-9:
                avail -= cand_size[i]  # still occupying cores at the shadow
        assert avail >= head_size

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_chosen_fit_now(self, data):
        """The chosen set never exceeds the currently free cores."""
        nmax = 16
        running_size = [8]
        running_end = [50.0]
        free = nmax - 8
        head_size = data.draw(st.integers(free + 1, nmax))
        n_cand = data.draw(st.integers(1, 10))
        cand = list(range(n_cand))
        cand_size = [data.draw(st.integers(1, 8)) for _ in cand]
        cand_proc = [data.draw(st.floats(0.5, 200.0)) for _ in cand]
        chosen = easy_backfill(
            0.0, free, head_size, cand, cand_size, cand_proc, running_end, running_size
        )
        assert sum(cand_size[i] for i in chosen) <= free

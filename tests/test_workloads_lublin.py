"""Tests for the Lublin-Feitelson workload model reimplementation."""

import numpy as np
import pytest

from repro.workloads.lublin import (
    LublinParams,
    daily_cycle_intensity,
    lublin_workload,
    sample_arrivals,
    sample_runtimes,
    sample_sizes,
    scale_to_utilization,
    two_stage_uniform,
)


@pytest.fixture(scope="module")
def big_workload():
    return lublin_workload(20000, nmax=256, seed=7)


class TestParams:
    def test_defaults_are_lublin99(self):
        p = LublinParams()
        assert p.serial_prob == 0.244
        assert p.pow2_prob == 0.576
        assert (p.a1, p.b1, p.a2, p.b2) == (4.2, 0.94, 312.0, 0.03)
        assert (p.pa, p.pb) == (-0.0054, 0.78)
        assert (p.aarr, p.barr) == (10.23, 0.4871)

    def test_uhi_tracks_machine(self):
        assert LublinParams(nmax=256).uhi == 8.0
        assert LublinParams(nmax=1024).uhi == 10.0

    def test_effective_umed_capped(self):
        # tiny machine: break-point pulled below uhi
        p = LublinParams(nmax=16)  # uhi = 4
        assert p.effective_umed == 3.0

    def test_for_machine(self):
        p = LublinParams().for_machine(1024)
        assert p.nmax == 1024
        assert p.serial_prob == 0.244

    def test_validation(self):
        with pytest.raises(ValueError):
            LublinParams(serial_prob=1.5)
        with pytest.raises(ValueError):
            LublinParams(a1=-1.0)


class TestTwoStageUniform:
    def test_bounds(self, rng):
        out = two_stage_uniform(rng, 5000, 1.0, 3.0, 8.0, 0.7)
        assert out.min() >= 1.0 and out.max() <= 8.0

    def test_stage_proportions(self, rng):
        out = two_stage_uniform(rng, 20000, 0.0, 1.0, 10.0, 0.8)
        low_frac = np.mean(out <= 1.0)
        assert 0.77 < low_frac < 0.83

    def test_bad_breakpoints(self, rng):
        with pytest.raises(ValueError):
            two_stage_uniform(rng, 10, 5.0, 3.0, 8.0, 0.5)


class TestSizes:
    def test_range(self, rng):
        sizes = sample_sizes(rng, 10000, LublinParams(nmax=256))
        assert sizes.min() >= 1 and sizes.max() <= 256
        assert sizes.dtype == np.int64

    def test_serial_fraction(self, rng):
        p = LublinParams(nmax=256)
        sizes = sample_sizes(rng, 40000, p)
        serial = np.mean(sizes == 1)
        # serial_prob plus a sliver from round(2^u) == 1
        assert 0.22 < serial < 0.32

    def test_power_of_two_mass(self, rng):
        """The hallmark pow2 spikes: far more mass than adjacent sizes."""
        sizes = sample_sizes(rng, 40000, LublinParams(nmax=256))
        parallel = sizes[sizes > 1]
        pow2 = np.mean((parallel & (parallel - 1)) == 0)
        assert pow2 > 0.5

    def test_machine_scaling(self, rng):
        big = sample_sizes(rng, 20000, LublinParams(nmax=1024))
        assert big.max() > 256  # larger machine hosts larger jobs

    def test_no_serial_when_prob_zero(self, rng):
        p = LublinParams(nmax=256, serial_prob=0.0, ulow=1.0)
        sizes = sample_sizes(rng, 5000, p)
        assert np.mean(sizes == 1) < 0.05


class TestRuntimes:
    def test_positive_and_capped(self, rng):
        sizes = sample_sizes(rng, 10000, LublinParams())
        rt = sample_runtimes(rng, sizes, LublinParams())
        assert rt.min() >= 1.0
        assert rt.max() <= LublinParams().runtime_cap

    def test_bimodal_components(self, rng):
        """Hyper-gamma: a short mode (~2^4 s) and a long mode (~2^9.4 s)."""
        sizes = np.ones(40000, dtype=np.int64)
        rt = sample_runtimes(rng, sizes, LublinParams())
        short_frac = np.mean(rt < 120.0)
        long_frac = np.mean(rt > 400.0)
        assert short_frac > 0.4  # p(serial) = pb - pa ~ 0.785
        assert long_frac > 0.1

    def test_size_runtime_correlation(self, rng):
        """Bigger jobs draw the long gamma more often (p = pa*n + pb)."""
        p = LublinParams()
        small = sample_runtimes(rng, np.full(20000, 1), p)
        large = sample_runtimes(rng, np.full(20000, 128), p)
        assert np.median(large) > np.median(small)

    def test_reproducible(self):
        a = sample_runtimes(np.random.default_rng(3), np.full(100, 4), LublinParams())
        b = sample_runtimes(np.random.default_rng(3), np.full(100, 4), LublinParams())
        np.testing.assert_array_equal(a, b)


class TestArrivals:
    def test_monotone_from_start_of_day(self, rng):
        t = sample_arrivals(rng, 5000, LublinParams())
        assert t[0] >= 8 * 3600.0  # clock opens at 8 am, midnight origin
        assert np.all(np.diff(t) >= 0)

    def test_daily_rhythm(self, rng):
        """More arrivals during working hours than at night."""
        t = sample_arrivals(rng, 60000, LublinParams(), start_of_day_s=8 * 3600)
        hour = (t / 3600.0) % 24
        day = np.mean((hour >= 9) & (hour < 17))
        night = np.mean((hour >= 0) & (hour < 8))
        # day window is 8h/24h = 1/3 of the clock but should hold far more
        assert day > 0.40
        assert day / max(night, 1e-9) > 1.5

    def test_cycle_disabled_is_pure_loggamma(self):
        p = LublinParams(daily_cycle=False)
        t = sample_arrivals(np.random.default_rng(0), 5000, p)
        gaps = np.diff(t)
        # log2 of gaps should look like Gamma(10.23, 0.4871): mean ~ 4.98
        assert 4.5 < np.log2(gaps[gaps > 0]).mean() < 5.5

    def test_empty(self, rng):
        assert len(sample_arrivals(rng, 0, LublinParams())) == 0


class TestDailyCycleIntensity:
    def test_peak_above_trough(self):
        p = LublinParams()
        peak = daily_cycle_intensity(13 * 3600.0, p)
        trough = daily_cycle_intensity(4 * 3600.0, p)
        assert peak / trough > 2.0

    def test_wraps_at_midnight(self):
        p = LublinParams()
        assert daily_cycle_intensity(0.0, p) == pytest.approx(
            daily_cycle_intensity(24 * 3600.0, p)
        )

    def test_mean_near_one(self):
        p = LublinParams()
        hours = np.linspace(0, 24 * 3600, 2000)
        assert 0.7 < float(np.mean(daily_cycle_intensity(hours, p))) < 1.3


class TestLublinWorkload:
    def test_shapes_and_validity(self, big_workload):
        assert len(big_workload) == 20000
        assert big_workload.nmax == 256
        big_workload.validate_for_machine(256)
        np.testing.assert_array_equal(big_workload.estimate, big_workload.runtime)

    def test_reproducible(self):
        a = lublin_workload(200, seed=11)
        b = lublin_workload(200, seed=11)
        np.testing.assert_array_equal(a.submit, b.submit)
        np.testing.assert_array_equal(a.runtime, b.runtime)
        np.testing.assert_array_equal(a.size, b.size)

    def test_seed_matters(self):
        a = lublin_workload(200, seed=1)
        b = lublin_workload(200, seed=2)
        assert not np.array_equal(a.runtime, b.runtime)

    def test_offered_load_reasonable(self, big_workload):
        """The default model offers a schedulable but busy machine."""
        util = big_workload.utilization(256)
        assert 0.2 < util < 1.2

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            lublin_workload(0)


class TestScaleToUtilization:
    def test_hits_target(self, big_workload):
        for target in (0.3, 0.62, 0.9):
            scaled = scale_to_utilization(big_workload, target, 256)
            assert scaled.utilization(256) == pytest.approx(target, rel=1e-6)

    def test_preserves_everything_else(self, big_workload):
        scaled = scale_to_utilization(big_workload, 0.5, 256)
        np.testing.assert_array_equal(scaled.runtime, big_workload.runtime)
        np.testing.assert_array_equal(scaled.size, big_workload.size)

    def test_preserves_relative_gaps(self, big_workload):
        scaled = scale_to_utilization(big_workload, 0.5, 256)
        g0 = np.diff(big_workload.submit[:100])
        g1 = np.diff(scaled.submit[:100])
        nz = g0 > 0
        ratios = g1[nz] / g0[nz]
        assert np.allclose(ratios, ratios[0])

    def test_invalid_target(self, big_workload):
        with pytest.raises(ValueError):
            scale_to_utilization(big_workload, 0.0, 256)

"""Tests for repro.eval.matrix and repro.eval.report."""

import json

import numpy as np
import pytest

from repro.eval.matrix import MatrixConfig, MatrixResult, run_matrix
from repro.eval.report import (
    matrix_to_csv,
    matrix_to_json,
    render_matrix_report,
    write_matrix_report,
)
from repro.experiments.export import write_all
from repro.runtime import ArtifactCache
from repro.workloads.traces import synthetic_trace


@pytest.fixture(scope="module")
def trace():
    return synthetic_trace("ctc_sp2", n_jobs=200, seed=7)


@pytest.fixture(scope="module")
def config():
    return MatrixConfig(
        policies=("fcfs", "f1"),
        backfill=("none", "easy"),
        window_jobs=50,
        warmup=5,
    )


@pytest.fixture(scope="module")
def result(trace, config):
    return run_matrix(trace, config)


class TestConfig:
    def test_policy_names_canonicalised(self):
        cfg = MatrixConfig(policies=("fcfs", "spt"), window_jobs=10)
        assert cfg.policies == ("FCFS", "SPT")

    def test_backfill_tokens_normalised(self):
        cfg = MatrixConfig(
            policies=("fcfs",), backfill=(False, True), window_jobs=10
        )
        assert cfg.backfill == ("none", "easy")

    def test_unknown_policy_rejected(self):
        with pytest.raises(KeyError, match="unknown policy"):
            MatrixConfig(policies=("nope",), window_jobs=10)

    def test_unknown_backfill_rejected(self):
        with pytest.raises(ValueError, match="unknown backfill"):
            MatrixConfig(policies=("fcfs",), backfill=("often",), window_jobs=10)

    def test_duplicate_policies_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            MatrixConfig(policies=("fcfs", "FCFS"), window_jobs=10)

    def test_exactly_one_window_axis(self):
        with pytest.raises(ValueError, match="exactly one"):
            MatrixConfig(policies=("fcfs",))
        with pytest.raises(ValueError, match="exactly one"):
            MatrixConfig(policies=("fcfs",), window_jobs=5, window_seconds=10.0)

    def test_window_knobs_validated_at_config_time(self):
        with pytest.raises(ValueError, match="window_jobs"):
            MatrixConfig(policies=("fcfs",), window_jobs=0)
        with pytest.raises(ValueError, match="window_seconds"):
            MatrixConfig(policies=("fcfs",), window_seconds=-1.0)
        with pytest.raises(ValueError, match="warmup"):
            MatrixConfig(policies=("fcfs",), window_jobs=5, warmup=-1)

    def test_backfill_vocabulary_shared_with_engine(self):
        cfg = MatrixConfig(
            policies=("fcfs",), backfill=("off",), window_jobs=10
        )
        assert cfg.backfill == ("none",)


class TestRunMatrix:
    def test_cell_count_and_order(self, result):
        assert len(result.cells) == result.n_windows * 4
        # window-major enumeration: policies x backfill cycle fastest
        head = [(c.window, c.policy, c.backfill) for c in result.cells[:5]]
        assert head == [
            (0, "FCFS", "none"),
            (0, "FCFS", "easy"),
            (0, "F1", "none"),
            (0, "F1", "easy"),
            (1, "FCFS", "none"),
        ]

    def test_shapes(self, result, config):
        assert result.n_windows == 4
        assert result.n_simulated == 16
        assert result.n_cached == 0
        for (p, b), s in result.summaries().items():
            assert p in config.policies and b in config.backfill
            assert s.n == result.n_windows

    def test_samples_and_cell_lookup(self, result):
        samples = result.samples("FCFS", "none")
        assert len(samples) == result.n_windows
        assert samples[2] == result.cell(2, "FCFS", "none").ave_bsld

    def test_warmup_accounting(self, result):
        for c in result.cells:
            assert c.n_scored == c.n_jobs - 5

    def test_paired_deltas_pair_within_mode(self, result):
        deltas = result.paired_deltas("fcfs")
        assert set(deltas) == {("F1", "none"), ("F1", "easy")}
        np.testing.assert_allclose(
            deltas[("F1", "none")],
            result.samples("F1", "none") - result.samples("FCFS", "none"),
        )

    def test_paired_deltas_unknown_baseline(self, result):
        with pytest.raises(ValueError, match="not part of this matrix"):
            result.paired_deltas("spt")

    def test_workers_bit_identical(self, trace, config, result):
        fanned = run_matrix(trace, config, workers=4)
        assert fanned.cells == result.cells

    def test_chunk_size_bit_identical(self, trace, config, result):
        chunked = run_matrix(trace, config, workers=2, chunk_size=3)
        assert chunked.cells == result.cells

    def test_oversized_job_fails_fast_with_name(self, trace, config):
        import dataclasses

        bad_sizes = trace.size.copy()
        bad_sizes[17] = trace.nmax + 1
        bad = dataclasses.replace(trace, size=bad_sizes)
        with pytest.raises(ValueError, match=rf"job {int(bad.job_ids[17])} "):
            run_matrix(bad, config)

    def test_unknown_machine_size_rejected(self, trace, config):
        anon = type(trace)(
            submit=trace.submit,
            runtime=trace.runtime,
            size=trace.size,
            estimate=trace.estimate,
            job_ids=trace.job_ids,
            nmax=0,
        )
        with pytest.raises(ValueError, match="machine size unknown"):
            run_matrix(anon, config)

    def test_explicit_nmax_overrides(self, trace):
        cfg = MatrixConfig(
            policies=("fcfs",), nmax=trace.nmax * 2, window_jobs=100
        )
        res = run_matrix(trace, cfg)
        assert res.nmax == trace.nmax * 2


class TestCache:
    def test_second_run_simulates_nothing(self, trace, config, result, tmp_path):
        first = run_matrix(trace, config, cache=tmp_path)
        assert (first.n_simulated, first.n_cached) == (16, 0)
        second = run_matrix(trace, config, workers=2, cache=tmp_path)
        assert (second.n_simulated, second.n_cached) == (0, 16)
        # cached results identical to fresh ones except the cached marker
        for a, b in zip(first.cells, second.cells):
            assert a.to_entry() == b.to_entry()
            assert not a.cached and b.cached

    def test_config_change_invalidates(self, trace, config, tmp_path):
        run_matrix(trace, config, cache=tmp_path)
        import dataclasses

        other = dataclasses.replace(config, use_estimates=True)
        res = run_matrix(trace, other, cache=tmp_path)
        assert res.n_simulated == 16

    def test_accepts_artifact_cache_instance(self, trace, config, tmp_path):
        store = ArtifactCache(tmp_path)
        run_matrix(trace, config, cache=store)
        assert store.misses == 16
        run_matrix(trace, config, cache=store)
        assert store.hits == 16

    def test_corrupt_entry_is_resimulated(self, trace, config, tmp_path):
        store = ArtifactCache(tmp_path)
        run_matrix(trace, config, cache=store)
        victim = next(tmp_path.glob("eval-*.json"))
        victim.write_text("{ not json", encoding="utf-8")
        res = run_matrix(trace, config, cache=store)
        assert res.n_simulated == 1
        assert res.n_cached == 15


class TestReport:
    def test_csv_one_row_per_cell(self, result):
        text = matrix_to_csv(result)
        lines = text.strip().splitlines()
        assert lines[0].startswith("# trace=")
        assert lines[1].startswith("window,policy,backfill")
        assert len(lines) == 2 + len(result.cells)

    def test_json_round_trip(self, result):
        doc = json.loads(matrix_to_json(result))
        assert doc["n_windows"] == result.n_windows
        assert len(doc["cells"]) == len(result.cells)
        assert doc["config"]["policies"] == ["FCFS", "F1"]
        assert "FCFS/none" in doc["summaries"]

    def test_render_mentions_all_series(self, result):
        text = render_matrix_report(result)
        assert "backfill=none" in text
        assert "backfill=easy" in text
        assert "paired Δ vs FCFS" in text
        assert "simulated 16, cached 0" in text

    def test_render_custom_baseline(self, result):
        text = render_matrix_report(result, baseline="F1")
        assert "paired Δ vs F1" in text

    def test_render_baseline_spelling_canonicalised(self, result):
        # the CLI's own default spelling is lowercase; it must not crash
        assert render_matrix_report(result, baseline="fcfs") == render_matrix_report(
            result, baseline="FCFS"
        )

    def test_write_matrix_report(self, result, tmp_path):
        paths = write_matrix_report(tmp_path, result)
        assert sorted(p.name for p in paths) == [
            "eval_matrix.csv",
            "eval_matrix.json",
            "eval_matrix_deltas.csv",
        ]
        assert all(p.exists() for p in paths)

    def test_write_matrix_report_single_policy_no_deltas(self, trace, tmp_path):
        solo = run_matrix(trace, MatrixConfig(policies=("fcfs",), window_jobs=50))
        paths = write_matrix_report(tmp_path, solo)
        assert sorted(p.name for p in paths) == ["eval_matrix.csv", "eval_matrix.json"]

    def test_write_all_wiring(self, result, tmp_path):
        paths = write_all(tmp_path, matrix=result)
        assert sorted(p.name for p in paths) == [
            "eval_matrix.csv",
            "eval_matrix.json",
            "eval_matrix_deltas.csv",
        ]


class TestStreamingMatrix:
    """run_matrix over an iterable of windows must be indistinguishable
    from the materialised path — for any worker count, with or without
    a warm cache."""

    @staticmethod
    def _windows(trace, **kw):
        from repro.eval.windows import stream_windows

        return stream_windows(trace, jobs=50, warmup=5, **kw)

    def test_streamed_cells_bit_identical(self, trace, config, result):
        streamed = run_matrix(self._windows(trace), config)
        assert streamed.cells == result.cells
        assert streamed.n_windows == result.n_windows
        assert streamed.nmax == result.nmax

    def test_streamed_workers_bit_identical(self, trace, config, result):
        fanned = run_matrix(self._windows(trace), config, workers=4)
        assert fanned.cells == result.cells

    def test_trace_name_derived_from_windows(self, trace, config, result):
        streamed = run_matrix(self._windows(trace), config)
        assert streamed.trace_name == result.trace_name == trace.name

    def test_trace_name_override(self, trace, config):
        streamed = run_matrix(self._windows(trace), config, trace_name="renamed")
        assert streamed.trace_name == "renamed"

    def test_cached_streaming_rerun_simulates_nothing(self, trace, config, tmp_path):
        warm = run_matrix(trace, config, cache=tmp_path)
        assert warm.n_simulated == 16
        again = run_matrix(self._windows(trace), config, cache=tmp_path, workers=2)
        assert (again.n_simulated, again.n_cached) == (0, 16)
        assert [c.to_entry() for c in again.cells] == [
            c.to_entry() for c in warm.cells
        ]

    def test_streaming_populates_the_same_cache(self, trace, config, tmp_path):
        first = run_matrix(self._windows(trace), config, cache=tmp_path)
        assert first.n_simulated == 16
        again = run_matrix(trace, config, cache=tmp_path)
        assert (again.n_simulated, again.n_cached) == (0, 16)

    def test_json_reports_byte_identical(self, trace, config, result):
        doc = matrix_to_json(result)
        for workers in (1, 4):
            streamed = run_matrix(self._windows(trace), config, workers=workers)
            assert matrix_to_json(streamed) == doc

    def test_empty_window_iterable_rejected(self, config):
        with pytest.raises(ValueError, match="no evaluation windows"):
            run_matrix(iter(()), config)

    def test_unknown_machine_size_rejected(self, trace, config):
        import dataclasses

        anon = dataclasses.replace(trace, nmax=0)
        from repro.eval.windows import stream_windows

        with pytest.raises(ValueError, match="machine size unknown"):
            run_matrix(stream_windows(anon, jobs=50, warmup=5), config)


class TestBootstrapDeltas:
    def test_delta_cis_deterministic_for_fixed_seed(self, result):
        a = result.delta_cis(n_boot=300)
        b = result.delta_cis(n_boot=300)
        assert a == b
        assert set(a) == {("F1", "none"), ("F1", "easy")}

    def test_delta_cis_brackets_the_point(self, result):
        for ci in result.delta_cis(n_boot=300).values():
            assert ci.defined
            assert ci.lo <= ci.point <= ci.hi
            assert ci.n == result.n_windows

    def test_delta_cis_change_with_config_seed(self, trace, config):
        import dataclasses

        reseeded = run_matrix(trace, dataclasses.replace(config, seed=99))
        a = run_matrix(trace, config).delta_cis(n_boot=300)
        b = reseeded.delta_cis(n_boot=300)
        # same samples (simulation is seed-independent), different draws
        assert any(
            a[key] != b[key] for key in a if a[key].lo != a[key].hi
        ) or all(a[key].lo == a[key].hi for key in a)

    def test_json_carries_ci_fields(self, result):
        doc = json.loads(matrix_to_json(result, n_boot=200))
        assert doc["bootstrap"] == {"baseline": "FCFS", "n_boot": 200, "level": 0.95}
        entry = doc["deltas"]["F1/none"]
        assert {"delta_ci_low", "delta_ci_high", "significant", "wins"} <= set(entry)
        assert entry["n"] == result.n_windows

    def test_deltas_csv_columns_and_determinism(self, result):
        from repro.eval.report import deltas_to_csv

        text = deltas_to_csv(result, n_boot=200)
        assert text == deltas_to_csv(result, n_boot=200)
        lines = text.strip().splitlines()
        assert "delta_ci_low,delta_ci_high,significant" in lines[1]
        assert len(lines) == 2 + 2  # one row per non-baseline series

    def test_render_report_shows_ci_and_marker_legend(self, result):
        text = render_matrix_report(result, n_boot=200)
        assert "bootstrap CI" in text
        assert "CI [" in text

    def test_single_window_reports_ci_na_without_crashing(self, trace):
        solo = run_matrix(
            trace,
            MatrixConfig(policies=("fcfs", "f1"), window_jobs=len(trace)),
        )
        assert solo.n_windows == 1
        text = render_matrix_report(solo)
        assert "CI n/a (1 window)" in text
        doc = json.loads(matrix_to_json(solo))
        entry = doc["deltas"]["F1/none"]
        assert entry["delta_ci_low"] is None
        assert entry["delta_ci_high"] is None
        assert entry["significant"] is None

    def test_bootstrap_zero_disables_cis(self, result):
        cis = result.delta_cis(n_boot=0)
        assert all(not ci.defined for ci in cis.values())
        text = render_matrix_report(result, n_boot=0)
        assert "CI n/a" in text

"""Tests for the pooled score distribution and its CSV format."""

import numpy as np
import pytest

from repro.core.distribution import ScoreDistribution
from repro.core.taskgen import generate_tuples
from repro.core.trials import run_trials


def make_dist(n=10):
    rng = np.random.default_rng(0)
    return ScoreDistribution(
        runtime=rng.uniform(1, 1e4, n),
        size=rng.integers(1, 256, n).astype(float),
        submit=rng.uniform(0, 1e5, n),
        score=rng.uniform(0, 0.1, n),
    )


class TestConstruction:
    def test_lengths_checked(self):
        with pytest.raises(ValueError):
            ScoreDistribution(
                runtime=np.ones(3),
                size=np.ones(3),
                submit=np.ones(2),
                score=np.ones(3),
            )

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            ScoreDistribution(
                runtime=np.array([np.nan]),
                size=np.ones(1),
                submit=np.ones(1),
                score=np.ones(1),
            )

    def test_len(self):
        assert len(make_dist(7)) == 7


class TestFromTrials:
    def test_pooling(self):
        tuples = generate_tuples(2, seed=0)
        results = [run_trials(t, 256, 32, seed=i) for i, t in enumerate(tuples)]
        dist = ScoreDistribution.from_trial_results(results)
        assert len(dist) == 64  # 2 tuples x 32 probe tasks
        np.testing.assert_array_equal(dist.runtime[:32], results[0].runtime)
        np.testing.assert_array_equal(dist.score[32:], results[1].scores)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ScoreDistribution.from_trial_results([])


class TestMergeSubsample:
    def test_merged(self):
        d = make_dist(5).merged_with(make_dist(5))
        assert len(d) == 10

    def test_subsample_smaller(self):
        d = make_dist(100).subsample(10)
        assert len(d) == 10

    def test_subsample_noop_when_larger(self):
        d = make_dist(10)
        assert d.subsample(100) is d

    def test_subsample_deterministic(self):
        d = make_dist(100)
        a = d.subsample(10, seed=1)
        b = d.subsample(10, seed=1)
        np.testing.assert_array_equal(a.runtime, b.runtime)


class TestCsv:
    def test_roundtrip(self, tmp_path):
        d = make_dist(20)
        path = tmp_path / "score-distribution.csv"
        d.to_csv(path)
        back = ScoreDistribution.from_csv(path)
        np.testing.assert_allclose(back.runtime, d.runtime, atol=0.1)
        np.testing.assert_allclose(back.score, d.score, rtol=1e-9)

    def test_artifact_format(self, tmp_path):
        """Columns: runtime,#processors,submit time,score (artifact A.5.1)."""
        d = ScoreDistribution(
            runtime=np.array([50.0]),
            size=np.array([8.0]),
            submit=np.array([88224.0]),
            score=np.array([0.0347251055192]),
        )
        path = tmp_path / "s.csv"
        d.to_csv(path)
        line = path.read_text().strip()
        assert line.startswith("50.0,8.0,88224.0,0.034725")

    def test_parses_artifact_sample(self, tmp_path):
        """The exact sample rows from the paper's appendix parse cleanly."""
        sample = (
            "50.0,8.0,88224.0,0.0347251055192\n"
            "3.0,4.0,88302.0,0.0292281817457\n"
            "7298.0,58.0,88334.0,0.0350921606481\n"
        )
        path = tmp_path / "artifact.csv"
        path.write_text(sample)
        d = ScoreDistribution.from_csv(path)
        assert len(d) == 3
        assert d.size[2] == 58.0

    def test_bad_column_count(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,2,3\n")
        with pytest.raises(ValueError, match="4 columns"):
            ScoreDistribution.from_csv(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            ScoreDistribution.from_csv(path)

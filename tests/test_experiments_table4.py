"""Tests for the Table 4 experiment declarations and runner."""

import numpy as np
import pytest

from repro.experiments.paper_data import PAPER_TABLE4, POLICY_COLUMNS, paper_row
from repro.experiments.scale import SCALES
from repro.experiments.table4 import (
    TABLE4_ROWS,
    build_row_workload,
    row_ids,
    run_row,
    run_rows,
)


class TestDeclarations:
    def test_eighteen_rows(self):
        assert len(TABLE4_ROWS) == 18

    def test_row_ids_match_paper_data(self):
        assert set(row_ids()) == set(PAPER_TABLE4)

    def test_paper_order(self):
        ids = row_ids()
        assert ids[0] == "model_256_actual"
        assert ids[1] == "model_1024_actual"
        assert ids[5] == "model_1024_backfill"
        assert ids[6] == "curie_actual"
        assert ids[-1] == "ctc_sp2_backfill"

    def test_modes_consistent(self):
        for row in TABLE4_ROWS:
            if row.row_id.endswith("_actual"):
                assert not row.use_estimates and not row.backfill
            elif row.row_id.endswith("_estimates"):
                assert row.use_estimates and not row.backfill
            else:
                assert row.use_estimates and row.backfill

    def test_paper_medians_attached(self):
        row = TABLE4_ROWS[0]
        assert row.paper_medians["FCFS"] == pytest.approx(5846.87)
        assert row.paper_medians["F1"] == pytest.approx(29.58)


class TestPaperData:
    def test_all_rows_have_8_columns(self):
        for rid, values in PAPER_TABLE4.items():
            assert len(values) == 8, rid

    def test_paper_row_mapping(self):
        row = paper_row("ctc_sp2_backfill")
        assert row["F2"] == pytest.approx(10.77)

    def test_unknown_row(self):
        with pytest.raises(KeyError):
            paper_row("nope")

    def test_published_headline_claims(self):
        """Shape claims the paper states in prose, asserted on its table."""
        for rid, values in PAPER_TABLE4.items():
            by = dict(zip(POLICY_COLUMNS, values))
            # learned policies beat FCFS everywhere
            best_learned = min(by["F1"], by["F2"], by["F3"], by["F4"])
            assert best_learned < by["FCFS"], rid
        # §4.2.3: F1 with backfilling > 12x better than best ad-hoc
        row = paper_row("model_256_backfill")
        best_adhoc = min(row["FCFS"], row["WFP"], row["UNI"], row["SPT"])
        assert best_adhoc / row["F1"] > 12.0


class TestBuildRowWorkload:
    def test_model_row(self):
        wl, nmax = build_row_workload(TABLE4_ROWS[0], SCALES["smoke"], seed=0)
        assert nmax == 256
        assert wl.span >= SCALES["smoke"].n_sequences * SCALES["smoke"].days * 86400.0

    def test_trace_row(self):
        row = next(r for r in TABLE4_ROWS if r.source == "ctc_sp2")
        scale = SCALES["smoke"]
        wl, nmax = build_row_workload(row, scale, seed=0)
        assert nmax == 338
        assert len(wl) >= scale.trace_jobs
        assert wl.span >= scale.n_sequences * scale.days * 86400.0

    def test_same_stream_across_modes(self):
        """Rows 1/3/5 share the workload (only the regime changes)."""
        actual = next(r for r in TABLE4_ROWS if r.row_id == "model_256_actual")
        backfill = next(r for r in TABLE4_ROWS if r.row_id == "model_256_backfill")
        wa, _ = build_row_workload(actual, SCALES["smoke"], seed=3)
        wb, _ = build_row_workload(backfill, SCALES["smoke"], seed=3)
        np.testing.assert_array_equal(wa.submit, wb.submit)
        np.testing.assert_array_equal(wa.estimate, wb.estimate)


class TestRunRow:
    @pytest.fixture(scope="class")
    def smoke_result(self):
        return run_row("model_256_actual", SCALES["smoke"], seed=0)

    def test_runs_all_policies(self, smoke_result):
        assert smoke_result.policy_names == POLICY_COLUMNS

    def test_sample_counts(self, smoke_result):
        for name in POLICY_COLUMNS:
            assert len(smoke_result.samples[name]) == SCALES["smoke"].n_sequences

    def test_by_string_id(self):
        res = run_row("ctc_sp2_actual", SCALES["smoke"], seed=0, policies=("FCFS", "F1"))
        assert res.policy_names == ("FCFS", "F1")

    def test_unknown_row(self):
        with pytest.raises(KeyError):
            run_row("model_512_actual", SCALES["smoke"])

    def test_shape_learned_beats_fcfs(self, smoke_result):
        med = smoke_result.medians()
        assert min(med["F1"], med["F2"]) <= med["FCFS"]


class TestRunRows:
    def test_matches_run_row(self):
        single = run_row("model_256_actual", SCALES["smoke"], seed=0, policies=("FCFS",))
        batch = run_rows(["model_256_actual"], SCALES["smoke"], seed=0, policies=("FCFS",))
        np.testing.assert_array_equal(
            single.samples["FCFS"], batch[0].samples["FCFS"]
        )

    def test_custom_row_object_runs_as_given(self):
        """A modified/unregistered row must run verbatim, not be re-resolved
        against the TABLE4_ROWS registry by id."""
        import dataclasses

        custom = dataclasses.replace(
            TABLE4_ROWS[0], row_id="my-custom-row", backfill=True
        )
        (result,) = run_rows([custom], SCALES["smoke"], policies=("FCFS",))
        assert result.name == "my-custom-row"
        assert result.backfill is True

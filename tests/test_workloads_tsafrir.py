"""Tests for the Tsafrir user runtime-estimate model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.lublin import lublin_workload
from repro.workloads.tsafrir import (
    POPULAR_ESTIMATES,
    TsafrirParams,
    apply_tsafrir,
    tsafrir_estimates,
)


@pytest.fixture(scope="module")
def runtimes():
    return lublin_workload(20000, nmax=256, seed=3).runtime


class TestParams:
    def test_pool_sorted(self):
        p = TsafrirParams()
        assert list(p.pool) == sorted(p.pool)

    def test_default_emax_is_pool_max(self):
        assert TsafrirParams().e_max == max(POPULAR_ESTIMATES)

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            TsafrirParams(pool=())

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            TsafrirParams(max_request_fraction=1.5)


class TestInvariants:
    def test_overestimation(self, runtimes):
        """e >= r element-wise — the model's hard invariant."""
        est = tsafrir_estimates(runtimes, seed=0)
        assert np.all(est >= runtimes)

    def test_bounded_by_emax_or_runtime(self, runtimes):
        p = TsafrirParams(e_max=18 * 3600.0)
        est = tsafrir_estimates(runtimes, seed=0, params=p)
        assert np.all(est <= np.maximum(p.e_max, runtimes))

    def test_modality(self, runtimes):
        """Estimates cluster on few popular values (Tsafrir observation 1)."""
        est = tsafrir_estimates(runtimes, seed=0)
        values, counts = np.unique(est, return_counts=True)
        top20 = np.sort(counts)[-20:].sum() / counts.sum()
        assert top20 > 0.9

    def test_head_spike_at_emax(self, runtimes):
        p = TsafrirParams(max_request_fraction=0.10)
        est = tsafrir_estimates(runtimes, seed=0, params=p)
        at_max = np.mean(est == p.e_max)
        assert at_max >= 0.08

    def test_accuracy_spread(self, runtimes):
        """r/e spreads widely below 1 (observation 3: poor accuracy)."""
        est = tsafrir_estimates(runtimes, seed=0)
        acc = runtimes / est
        assert np.all(acc <= 1.0 + 1e-12)
        assert np.percentile(acc, 75) < 0.9  # most jobs overestimate a lot
        assert acc.std() > 0.1

    def test_reproducible(self, runtimes):
        a = tsafrir_estimates(runtimes, seed=5)
        b = tsafrir_estimates(runtimes, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_seed_matters(self, runtimes):
        a = tsafrir_estimates(runtimes, seed=5)
        b = tsafrir_estimates(runtimes, seed=6)
        assert not np.array_equal(a, b)

    def test_runtime_above_emax_kept(self):
        """A job longer than the site limit keeps e = r (never killed)."""
        est = tsafrir_estimates(np.array([1e6]), seed=0)
        assert est[0] == 1e6

    def test_nonpositive_runtime_rejected(self):
        with pytest.raises(ValueError):
            tsafrir_estimates(np.array([0.0]), seed=0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.1, max_value=1e5), min_size=1, max_size=50))
    def test_invariants_property(self, rts):
        r = np.asarray(rts)
        est = tsafrir_estimates(r, seed=1)
        assert np.all(est >= r)
        assert np.all(np.isfinite(est))


class TestApplyTsafrir:
    def test_attaches_estimates(self):
        wl = lublin_workload(100, seed=0)
        wl2 = apply_tsafrir(wl, seed=1)
        assert np.all(wl2.estimate >= wl2.runtime)
        assert not np.array_equal(wl2.estimate, wl.estimate)
        # original untouched
        np.testing.assert_array_equal(wl.estimate, wl.runtime)

    def test_only_estimates_change(self):
        wl = lublin_workload(100, seed=0)
        wl2 = apply_tsafrir(wl, seed=1)
        np.testing.assert_array_equal(wl.submit, wl2.submit)
        np.testing.assert_array_equal(wl.runtime, wl2.runtime)
        np.testing.assert_array_equal(wl.size, wl2.size)

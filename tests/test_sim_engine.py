"""Tests for the online scheduling engine (repro.sim.engine)."""

import numpy as np
import pytest

from repro.policies.classic import FCFS, SPT
from repro.policies.adhoc import WFP3
from repro.sim.engine import ScheduleResult, SimulationConfig, simulate
from repro.sim.job import Workload

from conftest import assert_valid_schedule


class TestSimulationConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(nmax=0)
        with pytest.raises(ValueError):
            SimulationConfig(nmax=4, tau=0.0)


class TestBasicScheduling:
    def test_empty_workload(self):
        wl = Workload.from_arrays([], [], [])
        result = simulate(wl, FCFS(), 4)
        assert len(result.start) == 0
        assert result.policy_name == "FCFS"

    def test_single_job(self):
        wl = Workload.from_arrays([3.0], [7.0], [2])
        result = simulate(wl, FCFS(), 4)
        assert result.start[0] == 3.0
        assert result.finish[0] == 10.0
        assert result.ave_bsld == 1.0

    def test_oversized_job_rejected(self):
        wl = Workload.from_arrays([0.0], [1.0], [8])
        with pytest.raises(ValueError):
            simulate(wl, FCFS(), 4)

    def test_fcfs_order(self):
        wl = Workload.from_arrays([0.0, 1.0, 2.0], [10.0, 10.0, 10.0], [4, 4, 4])
        result = simulate(wl, FCFS(), 4)
        np.testing.assert_allclose(result.start, [0.0, 10.0, 20.0])

    def test_spt_reorders_queue(self):
        # All queued behind a blocker; SPT runs the shortest next.
        wl = Workload.from_arrays(
            [0.0, 1.0, 1.0], [10.0, 8.0, 2.0], [4, 4, 4]
        )
        result = simulate(wl, SPT(), 4)
        np.testing.assert_allclose(result.start, [0.0, 12.0, 10.0])

    def test_head_blocking_without_backfill(self):
        # J1 blocked (needs 4); J2 fits but must not overtake.
        wl = Workload.from_arrays(
            [0.0, 1.0, 1.0], [10.0, 5.0, 1.0], [3, 4, 1]
        )
        result = simulate(wl, FCFS(), 4)
        np.testing.assert_allclose(result.start, [0.0, 10.0, 15.0])

    def test_parallel_starts(self):
        wl = Workload.from_arrays([0.0, 0.0, 0.0], [5.0, 5.0, 5.0], [1, 1, 2])
        result = simulate(wl, FCFS(), 4)
        np.testing.assert_allclose(result.start, [0.0, 0.0, 0.0])

    def test_machine_idle_gap(self):
        wl = Workload.from_arrays([0.0, 100.0], [5.0, 5.0], [1, 1])
        result = simulate(wl, FCFS(), 4)
        np.testing.assert_allclose(result.start, [0.0, 100.0])


class TestBackfillScheduling:
    def test_hand_checked_easy_scenario(self):
        """Worked example (see module docstring of repro.sim.backfill)."""
        wl = Workload.from_arrays(
            submit=[0.0, 1.0, 2.0, 2.0],
            runtime=[10.0, 10.0, 5.0, 20.0],
            size=[3, 4, 1, 1],
        )
        result = simulate(wl, FCFS(), 4, backfill=True)
        # J0 [0,10] n3. J1 head blocked, shadow=10, extra=0.
        # J2 (r=5) backfills at t=2 (ends 7 <= 10). J3 (r=20) would overrun
        # the shadow and extra=0 -> waits until after J1.
        np.testing.assert_allclose(result.start, [0.0, 10.0, 2.0, 20.0])
        assert result.backfilled.tolist() == [False, False, True, False]
        assert result.backfill_count == 1

    def test_backfill_never_delays_reserved_head(self):
        wl = Workload.from_arrays(
            submit=[0.0, 1.0, 1.0],
            runtime=[10.0, 10.0, 100.0],
            size=[3, 4, 2],
        )
        plain = simulate(wl, FCFS(), 4, backfill=False)
        bf = simulate(wl, FCFS(), 4, backfill=True)
        # the blocked head (job 1) starts at the same time in both
        assert bf.start[1] == plain.start[1] == 10.0
        # and the wide long job was NOT backfilled (would delay the head)
        assert not bf.backfilled[2]

    def test_backfill_improves_utilization(self, medium_workload):
        plain = simulate(medium_workload, FCFS(), 32, backfill=False)
        bf = simulate(medium_workload, FCFS(), 32, backfill=True)
        assert bf.backfill_count > 0
        assert bf.ave_bsld <= plain.ave_bsld * 1.001

    def test_backfill_uses_estimates_for_decisions(self):
        """Overestimated candidate is refused although actual runtime fits."""
        wl = Workload.from_arrays(
            submit=[0.0, 1.0, 1.0],
            runtime=[10.0, 10.0, 2.0],  # actual: J2 would finish by t=10
            size=[2, 4, 2],
            estimate=[10.0, 10.0, 50.0],  # estimate says it will not
        )
        with_e = simulate(wl, FCFS(), 4, backfill=True, use_estimates=True)
        assert not with_e.backfilled[2]
        with_r = simulate(wl, FCFS(), 4, backfill=True, use_estimates=False)
        assert with_r.backfilled[2]

    def test_overrunning_estimate_does_not_crash(self):
        """Jobs running past their estimate are treated as ending 'now'."""
        wl = Workload.from_arrays(
            submit=[0.0, 1.0, 2.0],
            runtime=[100.0, 10.0, 10.0],
            size=[3, 4, 1],
            estimate=[5.0, 10.0, 10.0],  # J0's estimate expires at t=5
        )
        result = simulate(wl, FCFS(), 4, backfill=True, use_estimates=True)
        assert_valid_schedule(result)


class TestEstimateMode:
    def test_spt_ordering_follows_estimates(self):
        # Estimates invert the actual-runtime order.
        wl = Workload.from_arrays(
            submit=[0.0, 1.0, 1.0],
            runtime=[10.0, 2.0, 8.0],
            size=[4, 4, 4],
            estimate=[10.0, 9.0, 3.0],
        )
        by_r = simulate(wl, SPT(), 4, use_estimates=False)
        by_e = simulate(wl, SPT(), 4, use_estimates=True)
        assert by_r.start[1] < by_r.start[2]  # actual: J1 shorter
        assert by_e.start[2] < by_e.start[1]  # estimated: J2 'shorter'

    def test_execution_always_uses_actual_runtime(self):
        wl = Workload.from_arrays(
            submit=[0.0], runtime=[5.0], size=[1], estimate=[500.0]
        )
        result = simulate(wl, SPT(), 4, use_estimates=True)
        assert result.finish[0] == 5.0  # not 500


class TestDynamicPolicies:
    def test_wfp_runs_and_is_valid(self, medium_workload):
        result = simulate(medium_workload, WFP3(), 32)
        assert_valid_schedule(result)

    def test_wfp_prefers_long_waiters(self):
        # Two identical jobs queued behind a blocker; WFP favours the one
        # that waited longer (earlier submit), like FCFS here.
        wl = Workload.from_arrays(
            [0.0, 1.0, 2.0], [10.0, 5.0, 5.0], [4, 4, 4]
        )
        result = simulate(wl, WFP3(), 4)
        assert result.start[1] < result.start[2]


class TestScheduleResult:
    def test_result_metrics(self, tiny_workload):
        result = simulate(tiny_workload, FCFS(), 4)
        assert result.makespan >= float(np.max(result.finish)) - 1e-9
        assert 0.0 < result.utilization <= 1.0
        assert result.summary().n == len(tiny_workload)
        assert result.n_events > 0

    def test_wait_and_bsld_shapes(self, medium_workload):
        result = simulate(medium_workload, FCFS(), 32)
        assert result.wait.shape == (len(medium_workload),)
        assert np.all(result.bsld() >= 1.0)

    def test_length_mismatch_rejected(self, tiny_workload):
        with pytest.raises(ValueError):
            ScheduleResult(
                workload=tiny_workload,
                start=np.zeros(2),
                policy_name="x",
                config=SimulationConfig(nmax=4),
            )

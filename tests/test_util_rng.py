"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import (
    RngFactory,
    as_generator,
    sample_without_replacement,
    spawn_generators,
)


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = as_generator(7).random(5)
        b = as_generator(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.allclose(as_generator(1).random(5), as_generator(2).random(5))

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_seedsequence_accepted(self):
        seq = np.random.SeedSequence(3)
        g = as_generator(seq)
        assert isinstance(g, np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_children_independent(self):
        a, b = spawn_generators(0, 2)
        assert not np.allclose(a.random(10), b.random(10))

    def test_reproducible(self):
        a1, b1 = spawn_generators(42, 2)
        a2, b2 = spawn_generators(42, 2)
        np.testing.assert_array_equal(a1.random(5), a2.random(5))
        np.testing.assert_array_equal(b1.random(5), b2.random(5))

    def test_prefix_stability(self):
        """First children identical regardless of total spawn count."""
        few = spawn_generators(9, 2)
        many = spawn_generators(9, 6)
        np.testing.assert_array_equal(few[0].random(5), many[0].random(5))
        np.testing.assert_array_equal(few[1].random(5), many[1].random(5))

    def test_from_generator_deterministic(self):
        g1 = np.random.default_rng(5)
        g2 = np.random.default_rng(5)
        a = spawn_generators(g1, 3)
        b = spawn_generators(g2, 3)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.random(4), y.random(4))


class TestRngFactory:
    def test_same_name_same_stream(self):
        f = RngFactory(0)
        g = f.get("alpha")
        assert f.get("alpha") is g

    def test_order_independence(self):
        f1 = RngFactory(0)
        a_first = f1.get("a").random(5)
        f2 = RngFactory(0)
        f2.get("b")  # request another stream first
        a_second = f2.get("a").random(5)
        np.testing.assert_array_equal(a_first, a_second)

    def test_different_names_differ(self):
        f = RngFactory(0)
        assert not np.allclose(f.get("x").random(5), f.get("y").random(5))

    def test_seeds_are_ints(self):
        f = RngFactory(1)
        seeds = f.seeds("s", 4)
        assert len(seeds) == 4
        assert all(isinstance(s, int) for s in seeds)

    def test_root_seed_changes_streams(self):
        a = RngFactory(1).get("n").random(3)
        b = RngFactory(2).get("n").random(3)
        assert not np.allclose(a, b)


class TestSampleWithoutReplacement:
    def test_unique(self, rng):
        out = sample_without_replacement(rng, list(range(20)), 10)
        assert len(set(out.tolist())) == 10

    def test_too_large_raises(self, rng):
        with pytest.raises(ValueError):
            sample_without_replacement(rng, [1, 2], 3)

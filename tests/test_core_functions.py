"""Tests for the nonlinear function space (repro.core.functions)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.functions import (
    BASE_FUNCTION_NAMES,
    OPERATOR_NAMES,
    FittedFunction,
    FunctionSpec,
    apply_base,
    enumerate_function_space,
)


class TestBaseFunctions:
    def test_table1_inventory(self):
        assert BASE_FUNCTION_NAMES == ("id", "log", "sqrt", "inv")

    def test_id(self):
        np.testing.assert_array_equal(apply_base("id", np.array([3.0])), [3.0])

    def test_log_is_log10(self):
        np.testing.assert_allclose(apply_base("log", np.array([100.0])), [2.0])

    def test_sqrt(self):
        np.testing.assert_allclose(apply_base("sqrt", np.array([16.0])), [4.0])

    def test_inv(self):
        np.testing.assert_allclose(apply_base("inv", np.array([4.0])), [0.25])

    def test_log_guard(self):
        out = apply_base("log", np.array([0.0]))
        assert np.isfinite(out[0])

    def test_inv_guard(self):
        out = apply_base("inv", np.array([0.0]))
        assert np.isfinite(out[0])

    def test_sqrt_guard(self):
        out = apply_base("sqrt", np.array([-1.0]))
        assert out[0] == 0.0

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            apply_base("exp", np.array([1.0]))


class TestFunctionSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FunctionSpec("id", "id", "id", "^", "+")
        with pytest.raises(ValueError):
            FunctionSpec("cos", "id", "id", "+", "+")

    def test_short_name(self):
        spec = FunctionSpec("log", "id", "log", "*", "+")
        assert spec.short_name == "log(r)*id(n)+log(s)"

    def test_left_associative_evaluation(self):
        """(A op1 B) op2 C, not A op1 (B op2 C)."""
        spec = FunctionSpec("id", "id", "id", "+", "*")
        # (1*r + 1*n) * (1*s) with r=2, n=3, s=4 -> 20 (right-assoc: 14)
        out = spec.evaluate(
            np.ones(3), np.array([2.0]), np.array([3.0]), np.array([4.0])
        )
        assert out[0] == pytest.approx(20.0)

    def test_f3_structure(self):
        spec = FunctionSpec("id", "id", "log", "*", "+")
        out = spec.evaluate(
            np.array([1.0, 1.0, 6.86e6]),
            np.array([100.0]),
            np.array([8.0]),
            np.array([1000.0]),
        )
        assert out[0] == pytest.approx(800.0 + 6.86e6 * 3.0)

    def test_division_by_zero_guarded(self):
        spec = FunctionSpec("id", "id", "id", "/", "+")
        out = spec.evaluate(
            np.array([1.0, 0.0, 1.0]),  # c2 = 0 -> division by zero
            np.array([2.0]),
            np.array([3.0]),
            np.array([4.0]),
        )
        assert np.all(np.isfinite(out))

    def test_coefficients_scale_terms(self):
        spec = FunctionSpec("id", "id", "id", "+", "+")
        out = spec.evaluate(
            np.array([2.0, 3.0, 5.0]),
            np.array([1.0]),
            np.array([1.0]),
            np.array([1.0]),
        )
        assert out[0] == pytest.approx(10.0)

    def test_terms(self):
        spec = FunctionSpec("log", "sqrt", "inv", "+", "+")
        ta, tb, tc = spec.terms(np.array([100.0]), np.array([16.0]), np.array([4.0]))
        assert (ta[0], tb[0], tc[0]) == pytest.approx((2.0, 4.0, 0.25))

    @settings(max_examples=40, deadline=None)
    @given(
        st.sampled_from(BASE_FUNCTION_NAMES),
        st.sampled_from(BASE_FUNCTION_NAMES),
        st.sampled_from(BASE_FUNCTION_NAMES),
        st.sampled_from(OPERATOR_NAMES),
        st.sampled_from(OPERATOR_NAMES),
    )
    def test_every_spec_finite_on_domain(self, a, b, g, o1, o2):
        """All 576 candidates evaluate finite on the training domain."""
        spec = FunctionSpec(a, b, g, o1, o2)
        r = np.array([1.0, 100.0, 2.7e4])
        n = np.array([1.0, 16.0, 256.0])
        s = np.array([1.0, 500.0, 1.3e6])
        out = spec.evaluate(np.array([0.1, -0.2, 0.3]), r, n, s)
        assert np.all(np.isfinite(out))


class TestEnumeration:
    def test_size_is_576(self):
        assert len(enumerate_function_space()) == 4**3 * 3**2

    def test_unique(self):
        specs = enumerate_function_space()
        assert len(set(specs)) == len(specs)

    def test_deterministic_order(self):
        a = enumerate_function_space()
        b = enumerate_function_space()
        assert a == b

    def test_contains_published_structures(self):
        specs = set(enumerate_function_space())
        # F1: log(r)*n + C log(s); F2: sqrt(r)*n; F3: r*n; F4: r*sqrt(n)
        assert FunctionSpec("log", "id", "log", "*", "+") in specs
        assert FunctionSpec("sqrt", "id", "log", "*", "+") in specs
        assert FunctionSpec("id", "id", "log", "*", "+") in specs
        assert FunctionSpec("id", "sqrt", "log", "*", "+") in specs


class TestFittedFunction:
    def _make(self, coeffs=(2.0, 3.0, 4.0)):
        return FittedFunction(
            spec=FunctionSpec("id", "id", "log", "*", "+"),
            coeffs=coeffs,
            rank_error=0.01,
            weighted_sse=1.0,
            n_observations=5,
        )

    def test_callable(self):
        f = self._make()
        out = f(np.array([10.0]), np.array([2.0]), np.array([100.0]))
        assert out[0] == pytest.approx(2 * 10 * 3 * 2 + 4 * 2)

    def test_describe_format(self):
        text = self._make().describe()
        assert "x id(runtime)" in text
        assert "x id(#cores)" in text
        assert "x log(submit)" in text
        assert "fitness=0.01" in text

    def test_simplified_merges_coefficients(self):
        f = self._make(coeffs=(2.0, 3.0, 12.0))
        # c3/(c1 c2) = 12/6 = 2
        assert "+ 2·log(s)" in f.simplified()

    def test_simplified_fallback_for_other_shapes(self):
        f = FittedFunction(
            spec=FunctionSpec("id", "id", "id", "+", "+"),
            coeffs=(1.0, 1.0, 1.0),
            rank_error=0.1,
            weighted_sse=1.0,
            n_observations=5,
        )
        assert "fitness" in f.simplified()

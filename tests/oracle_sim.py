"""Frozen pre-kernel simulator loops — the golden oracle for parity tests.

These are verbatim copies (minus telemetry) of the pure-Python per-job
loops that ``repro.sim.engine.simulate`` and
``repro.sim.listsched.simulate_fixed_priority`` shipped before the
unified event-heap kernel (``repro.sim.kernel``) replaced them.  The
parity suite (``tests/test_sim_kernel_parity.py``) and the CI
byte-compare step (``scripts/check_kernel_parity.py``) run the kernel
against this module and require **bit-identical** start arrays,
backfilled masks and event counts.

Deliberately self-contained: the backfill helpers, availability profile
and queue are copied here rather than imported, so future refactors of
the live modules can never silently move the oracle.  Do not "clean up"
or optimise this file — its only value is that it does not change.
"""

from __future__ import annotations

import bisect
import heapq
import math
from typing import NamedTuple

import numpy as np

from repro.sim.engine import ScheduleResult, SimulationConfig

__all__ = [
    "OracleOutcome",
    "oracle_simulate",
    "oracle_schedule_result",
    "oracle_fixed_priority",
]


# ----------------------------------------------------------------------
# frozen copy of repro.sim.backfill (pre-kernel)
# ----------------------------------------------------------------------
def _shadow_schedule(now, free, head_size, running_end, running_size):
    if head_size <= free:
        raise ValueError("head fits now; no reservation needed")
    events = sorted(
        (max(float(e), now), int(s)) for e, s in zip(running_end, running_size)
    )
    avail = free
    for end, size in events:
        avail += size
        if avail >= head_size:
            return end, avail - head_size
    raise ValueError("queue head can never start on this machine")


def _easy_backfill(
    now, free, head_size, candidates, cand_size, cand_proc, running_end, running_size
):
    shadow, extra = _shadow_schedule(now, free, head_size, running_end, running_size)
    started = []
    for idx, size, proc in zip(candidates, cand_size, cand_proc):
        size = int(size)
        if size > free:
            continue
        if now + float(proc) <= shadow + 1e-9:
            started.append(idx)
            free -= size
        elif size <= extra:
            started.append(idx)
            free -= size
            extra -= size
        if free == 0:
            break
    return started


# ----------------------------------------------------------------------
# frozen copy of repro.sim.conservative (pre-kernel)
# ----------------------------------------------------------------------
class _AvailabilityProfile:
    __slots__ = ("nmax", "_times", "_free")

    def __init__(self, now, nmax, running_end, running_size):
        self.nmax = nmax
        events: dict[float, int] = {}
        used_now = 0
        for end, size in zip(running_end, running_size):
            end = max(float(end), now)
            used_now += int(size)
            events[end] = events.get(end, 0) + int(size)
        if used_now > nmax:
            raise ValueError(f"running jobs use {used_now} > nmax={nmax} cores")
        self._times = [now]
        self._free = [nmax - used_now]
        level = nmax - used_now
        for t in sorted(events):
            level += events[t]
            self._times.append(t)
            self._free.append(level)

    def earliest_start(self, size, duration):
        if size > self.nmax:
            raise ValueError(f"job of {size} cores never fits in {self.nmax}")
        n = len(self._times)
        for i in range(n):
            if self._free[i] < size:
                continue
            t0 = self._times[i]
            end = t0 + duration
            feasible = True
            for j in range(i + 1, n):
                if self._times[j] >= end - 1e-12:
                    break
                if self._free[j] < size:
                    feasible = False
                    break
            if feasible:
                return t0
        return self._times[-1]

    def reserve(self, start, duration, size):
        end = start + duration
        self._ensure_breakpoint(start)
        self._ensure_breakpoint(end)
        # decrement from the exact start breakpoint forward (mirrors
        # repro.sim.conservative.AvailabilityProfile.reserve): an epsilon
        # lower bound could catch a distinct breakpoint within 1e-12
        # *before* start that earliest_start never vetted
        start_i = None
        for i, t in enumerate(self._times):
            if t == start:
                start_i = i
                break
        if start_i is None:
            for i, t in enumerate(self._times):
                if abs(t - start) <= 1e-12:
                    start_i = i
                    break
        for i in range(start_i, len(self._times)):
            t = self._times[i]
            if t >= end - 1e-12:
                break
            self._free[i] -= size
            if self._free[i] < -1e-9:
                raise RuntimeError("reservation oversubscribes the profile")

    def _ensure_breakpoint(self, t):
        if t == math.inf:
            return
        for i, existing in enumerate(self._times):
            if abs(existing - t) <= 1e-12:
                return
            if existing > t:
                self._times.insert(i, t)
                self._free.insert(i, self._free[i - 1])
                return
        self._times.append(t)
        self._free.append(self.nmax)


def _conservative_starts(now, nmax, queue, q_size, q_proc, running_end, running_size):
    profile = _AvailabilityProfile(now, nmax, running_end, running_size)
    started = []
    for ident, size, proc in zip(queue, q_size, q_proc):
        size = int(size)
        proc = max(float(proc), 1e-9)
        t = profile.earliest_start(size, proc)
        profile.reserve(t, proc, size)
        # exact: slots strictly after now sit behind unprocessed
        # release events (mirrors repro.sim.conservative)
        if t == now:
            started.append(ident)
    return started


# ----------------------------------------------------------------------
# frozen copy of repro.sim.engine.simulate (pre-kernel)
# ----------------------------------------------------------------------
class _Queue:
    def __init__(self, dynamic):
        self.dynamic = dynamic
        self.items: list[int] = []
        self._keys: list[tuple[float, float, int]] = []

    def add_static(self, idx, score, submit):
        key = (score, submit, idx)
        pos = bisect.bisect_left(self._keys, key)
        self._keys.insert(pos, key)
        self.items.insert(pos, idx)

    def add_dynamic(self, idx):
        self.items.append(idx)

    def remove_started(self, started):
        if not started:
            return
        if self.dynamic:
            self.items = [i for i in self.items if i not in started]
        else:
            keep = [k for k, i in zip(self._keys, self.items) if i not in started]
            self._keys = keep
            self.items = [k[2] for k in keep]


class OracleOutcome(NamedTuple):
    """What the frozen engine loop produced for one simulation."""

    start: np.ndarray
    backfilled: np.ndarray
    n_events: int
    n_backfill_passes: int


def oracle_simulate(
    workload,
    policy,
    nmax,
    *,
    use_estimates=False,
    backfill=False,
) -> OracleOutcome:
    """Run the frozen pre-kernel engine loop; no telemetry is recorded."""
    config = SimulationConfig(nmax=nmax, use_estimates=use_estimates, backfill=backfill)
    workload.validate_for_machine(nmax)
    n = len(workload)
    start = np.full(n, np.nan)
    backfilled = np.zeros(n, dtype=bool)
    if n == 0:
        return OracleOutcome(start, backfilled, 0, 0)

    subs = workload.submit
    runs = workload.runtime
    sizes_arr = workload.size
    procs = workload.estimate if use_estimates else workload.runtime
    sizes = [int(x) for x in sizes_arr]

    free = nmax
    running_alloc: dict[int, int] = {}
    completions: list[tuple[float, int]] = []
    expected_end: dict[int, float] = {}
    queue = _Queue(dynamic=policy.dynamic)

    ai = 0
    started_count = 0
    now = float(subs[0])
    n_events = 0
    n_backfill_passes = 0

    def start_job(idx, at, via_backfill):
        nonlocal started_count, free
        free -= sizes[idx]
        assert free >= 0, "oracle oversubscription"
        running_alloc[idx] = sizes[idx]
        start[idx] = at
        heapq.heappush(completions, (at + float(runs[idx]), idx))
        expected_end[idx] = at + float(procs[idx])
        backfilled[idx] = via_backfill
        started_count += 1

    def priority_order(at):
        if not queue.dynamic:
            return queue.items
        q = np.fromiter(queue.items, dtype=np.int64, count=len(queue.items))
        scores = policy.scores(at, subs[q], procs[q], sizes_arr[q])
        order = np.lexsort((q, subs[q], scores))
        return [int(q[i]) for i in order]

    mode = config.backfill_mode

    def schedule_pass(at):
        nonlocal n_backfill_passes
        if not queue.items:
            return
        order = priority_order(at)
        started: set[int] = set()
        if mode == "conservative":
            n_backfill_passes += 1
            run_idx = list(expected_end)
            chosen = _conservative_starts(
                at,
                nmax,
                order,
                [sizes[i] for i in order],
                [float(procs[i]) for i in order],
                [expected_end[i] for i in run_idx],
                [sizes[i] for i in run_idx],
            )
            head = order[0]
            for idx in chosen:
                start_job(idx, at, via_backfill=idx != head)
                started.add(idx)
            queue.remove_started(started)
            return
        pos = 0
        while pos < len(order) and sizes[order[pos]] <= free:
            start_job(order[pos], at, via_backfill=False)
            started.add(order[pos])
            pos += 1
        if mode == "easy" and pos < len(order) and free > 0:
            head = order[pos]
            cands = order[pos + 1 :]
            if cands:
                n_backfill_passes += 1
                run_idx = list(expected_end)
                chosen = _easy_backfill(
                    at,
                    free,
                    sizes[head],
                    cands,
                    [sizes[i] for i in cands],
                    [float(procs[i]) for i in cands],
                    [expected_end[i] for i in run_idx],
                    [sizes[i] for i in run_idx],
                )
                for idx in chosen:
                    start_job(idx, at, via_backfill=True)
                    started.add(idx)
        queue.remove_started(started)

    while started_count < n:
        next_arrival = float(subs[ai]) if ai < n else np.inf
        next_completion = completions[0][0] if completions else np.inf
        if not queue.items and not running_alloc:
            event_time = next_arrival
        else:
            event_time = min(next_arrival, next_completion)
        now = max(now, event_time)
        n_events += 1

        while completions and completions[0][0] <= now:
            _, idx = heapq.heappop(completions)
            free += running_alloc.pop(idx)
            expected_end.pop(idx, None)
        if not queue.dynamic:
            batch: list[int] = []
            while ai < n and float(subs[ai]) <= now:
                batch.append(ai)
                ai += 1
            if batch:
                b = np.asarray(batch, dtype=np.int64)
                scores = policy.scores(now, subs[b], procs[b], sizes_arr[b])
                for idx, sc in zip(batch, scores):
                    queue.add_static(idx, float(sc), float(subs[idx]))
        else:
            while ai < n and float(subs[ai]) <= now:
                queue.add_dynamic(ai)
                ai += 1

        schedule_pass(now)

    return OracleOutcome(start, backfilled, n_events, n_backfill_passes)


def oracle_schedule_result(
    workload,
    policy,
    nmax,
    *,
    use_estimates=False,
    backfill=False,
    tau=None,
    topology=None,
    distribution="round_robin",
    platform_seed=0,
) -> ScheduleResult:
    """Drop-in ``simulate`` replacement built on the frozen loop.

    Used by ``scripts/check_kernel_parity.py`` to replay the evaluation
    matrix through the pre-kernel path and byte-compare its report.  The
    oracle predates the platform layer, so it models flat machines only;
    the platform kwargs are accepted for signature compatibility and a
    genuinely partitioned request is rejected.
    """
    import math as _math

    from repro.sim.metrics import DEFAULT_TAU

    if topology is not None and _math.prod(topology) != 1:
        raise ValueError("the frozen oracle models flat machines only")
    out = oracle_simulate(
        workload, policy, nmax, use_estimates=use_estimates, backfill=backfill
    )
    config = SimulationConfig(
        nmax=nmax,
        use_estimates=use_estimates,
        backfill=backfill,
        tau=DEFAULT_TAU if tau is None else tau,
    )
    return ScheduleResult(
        workload, out.start, policy.name, config, out.backfilled, out.n_events
    )


# ----------------------------------------------------------------------
# frozen copy of repro.sim.listsched.simulate_fixed_priority (pre-kernel)
# ----------------------------------------------------------------------
def oracle_fixed_priority(submit, runtime, size, priority, nmax) -> np.ndarray:
    """Run the frozen head-blocking fixed-priority loop; returns starts."""
    m = len(submit)
    if not (len(runtime) == len(size) == len(priority) == m):
        raise ValueError("attribute arrays must share one length")
    if m == 0:
        return np.empty(0, dtype=float)
    sizes = [int(x) for x in size]
    if max(sizes) > nmax:
        worst = max(range(m), key=lambda i: sizes[i])
        raise ValueError(
            f"job {worst} needs {sizes[worst]} cores"
            f" but the machine has only {nmax}"
        )

    subs = [float(x) for x in submit]
    runs = [float(x) for x in runtime]
    prios = [float(x) for x in priority]

    arrival_order = sorted(range(m), key=lambda i: (subs[i], i))
    start = [math.nan] * m

    free = nmax
    waiting: list[tuple[float, float, int]] = []
    completions: list[tuple[float, int]] = []
    ai = 0
    now = subs[arrival_order[0]]
    remaining = m

    while remaining:
        next_arrival = subs[arrival_order[ai]] if ai < m else math.inf
        next_completion = completions[0][0] if completions else math.inf
        event_time = min(next_arrival, next_completion)
        if not waiting and free == nmax:
            event_time = next_arrival
        now = max(now, event_time)

        while completions and completions[0][0] <= now:
            _, idx = heapq.heappop(completions)
            free += sizes[idx]
        while ai < m and subs[arrival_order[ai]] <= now:
            idx = arrival_order[ai]
            heapq.heappush(waiting, (prios[idx], subs[idx], idx))
            ai += 1

        while waiting and sizes[waiting[0][2]] <= free:
            _, _, idx = heapq.heappop(waiting)
            start[idx] = now
            free -= sizes[idx]
            heapq.heappush(completions, (now + runs[idx], idx))
            remaining -= 1

    return np.asarray(start, dtype=float)

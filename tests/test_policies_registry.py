"""Tests for the policy registry."""

import pytest

from repro.policies.base import Policy
from repro.policies.registry import (
    PAPER_COMPARISON_ORDER,
    available_policies,
    get_policies,
    get_policy,
    register_policy,
)


class TestGetPolicy:
    def test_known_names(self):
        for name in ("FCFS", "SPT", "WFP", "UNI", "F1", "F2", "F3", "F4"):
            policy = get_policy(name)
            assert isinstance(policy, Policy)
            assert policy.name == name or name in ("WFP", "UNI")

    def test_case_insensitive(self):
        assert get_policy("fcfs").name == "FCFS"

    def test_aliases(self):
        assert get_policy("WFP3").name == "WFP"
        assert get_policy("UNICEF").name == "UNI"

    def test_unknown_raises_with_inventory(self):
        with pytest.raises(KeyError, match="available"):
            get_policy("NOPE")

    def test_fresh_instances(self):
        assert get_policy("F1") is not get_policy("F1")


class TestGetPolicies:
    def test_preserves_order(self):
        out = get_policies(["SPT", "FCFS"])
        assert [p.name for p in out] == ["SPT", "FCFS"]

    def test_paper_order_resolvable(self):
        out = get_policies(PAPER_COMPARISON_ORDER)
        assert [p.name for p in out] == list(PAPER_COMPARISON_ORDER)


class TestPaperOrder:
    def test_columns(self):
        assert PAPER_COMPARISON_ORDER == (
            "FCFS",
            "WFP",
            "UNI",
            "SPT",
            "F4",
            "F3",
            "F2",
            "F1",
        )


class TestRegisterPolicy:
    def test_register_and_get(self):
        class Custom(Policy):
            name = "CUSTOM_TEST"

            def scores(self, now, submit, proc, size):  # pragma: no cover
                return submit

        register_policy("custom_test", Custom)
        try:
            assert get_policy("CUSTOM_TEST").name == "CUSTOM_TEST"
            assert "CUSTOM_TEST" in available_policies()
        finally:
            from repro.policies import registry

            registry._REGISTRY.pop("CUSTOM_TEST", None)

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_policy("fcfs", lambda: None)


class TestAvailable:
    def test_sorted(self):
        names = available_policies()
        assert names == sorted(names)
        assert "F1" in names and "FCFS" in names

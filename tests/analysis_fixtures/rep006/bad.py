"""Bad: wall-clock reads in a result path."""
import time
from datetime import datetime


def stamp(result):
    result["finished_at"] = time.time()
    result["day"] = datetime.now().isoformat()
    return result

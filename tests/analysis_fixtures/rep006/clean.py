"""Clean: monotonic duration probes are not wall-clock."""
import time


def timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start

"""Bad: every spelling of hidden global RNG state."""
import random
from numpy.random import shuffle

import numpy as np


def jitter(values):
    random.shuffle(values)
    np.random.seed(0)
    x = np.random.rand(3)
    rng = np.random.default_rng()
    return shuffle, x, rng

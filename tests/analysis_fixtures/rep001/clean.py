"""Clean: explicit seeded generators only."""
import numpy as np


def jitter(seed):
    rng = np.random.default_rng(seed)
    rng.shuffle(values := list(range(3)))
    return rng.random(3), values

"""Clean: module-level callables cross the process boundary."""


def work(chunk):
    return chunk


def run(pool, chunks):
    return [pool.submit(work, c) for c in chunks]

"""Bad: unpicklable callables at executor submission sites."""


def run(pool, chunks):
    def helper(chunk):
        return chunk

    futures = [pool.submit(helper, c) for c in chunks]
    mapped = pool.map(lambda c: c, chunks)
    return futures, mapped

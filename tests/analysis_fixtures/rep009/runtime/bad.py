"""A runtime helper that says nothing about its contract."""


def helper():
    return 0

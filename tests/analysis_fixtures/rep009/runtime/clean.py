"""Deterministic helper: bit-identical output for a fixed input."""


def helper():
    return 0

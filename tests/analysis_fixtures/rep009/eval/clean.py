"""Cache-aware eval helper (content-addressed artifacts)."""


def public_api(x):
    """Return *x* unchanged."""
    return x

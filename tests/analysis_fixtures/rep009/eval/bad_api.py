"""Cache-aware eval helper: an undocumented public API entry."""


def public_api(x):
    return x

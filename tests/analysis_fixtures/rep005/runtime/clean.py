"""Clean: stream into a temp file, commit with os.replace."""
import os


def save(path, payload):
    tmp = f"{path}.tmp-{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(payload)
    os.replace(tmp, path)


def save_path(path, payload):
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(payload, encoding="utf-8")
    tmp.replace(path)

"""Bad: in-place writes with no rename commit."""


def save(path, payload):
    path.write_text(payload, encoding="utf-8")


def append_log(path, line):
    with open(path, "a") as fh:
        fh.write(line)

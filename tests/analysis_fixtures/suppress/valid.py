"""A justified suppression: finding recorded but not active."""
import random  # repro: allow[REP001] fixture: demonstrates a justified escape hatch

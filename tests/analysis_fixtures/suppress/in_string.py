"""Markers inside string literals are text, not suppressions."""
MARKER = "# repro: allow[REP001] not a comment"
import random

"""A suppression without a reason: REP000 fires, violation stays active."""
import random  # repro: allow[REP001]

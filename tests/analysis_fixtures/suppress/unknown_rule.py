"""A suppression naming a rule id that does not exist."""
X = 1  # repro: allow[REP999] typo in the rule id

"""Bad: filesystem-order and hash-order iteration."""
import os


def sweep(root):
    out = []
    for name in os.listdir(root):
        out.append(name)
    for item in {"b", "a"}:
        out.append(item)
    stale = [p for p in root.glob("*.tmp")]
    return out, stale

"""Clean: sorted listings and order-insensitive consumers."""
import os


def sweep(root, names):
    out = list(sorted(os.listdir(root)))
    count = len(os.listdir(root))
    present = "marker" in os.listdir(root)
    for item in sorted({"b", "a"}):
        out.append(item)
    return out, count, present

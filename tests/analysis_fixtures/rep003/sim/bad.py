"""Bad: a result path reading metrics back out of the registry."""


def step(registry, queue, current_registry):
    if registry.value("sim.backfilled") > 0:
        queue = queue[1:]
    snap = current_registry().to_dict()
    return queue, snap

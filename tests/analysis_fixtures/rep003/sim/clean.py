"""Clean: write-only telemetry from a result path."""


def step(registry, queue):
    registry.inc("sim.events")
    with registry.timer("sim.step"):
        queue = queue[1:]
    return queue

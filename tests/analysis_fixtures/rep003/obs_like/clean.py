"""Clean: reads outside sim/, core/ and eval/ are not in scope."""


def report(registry):
    return registry.to_dict()

"""Bad: execution knobs flowing into fingerprint payloads."""


def cache_key(spec, spec_fingerprint):
    return spec_fingerprint(
        {"policy": spec.policy, "workers": spec.workers},
        backend="process",
    )


def merged_key(spec, eval_cell_fingerprint):
    base = {"trace": spec.trace}
    return eval_cell_fingerprint({**base, "chunk_size": 16})

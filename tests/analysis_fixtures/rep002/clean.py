"""Clean: fingerprints hash result-relevant fields only."""


def cache_key(spec, spec_fingerprint):
    return spec_fingerprint({"policy": spec.policy, "seed": spec.seed})


def run_config(spec, launch):
    # Execution knobs are fine anywhere *except* fingerprint payloads.
    return launch(spec, workers=8, backend="process")

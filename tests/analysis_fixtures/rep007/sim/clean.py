"""Clean: explicit multiplications and int-literal powers."""

MASK = 2 ** 63


def score(wait, proc, size):
    ratio = wait / proc
    return -(ratio * ratio * ratio) * size

"""Bad: float power in a kernel-parity module."""
import numpy as np


def score(wait, proc, size):
    return -((wait / proc) ** 3) * size + np.power(size, 0.5)

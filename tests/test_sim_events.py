"""Tests for repro.sim.events."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.events import CompletionQueue


class TestCompletionQueue:
    def test_empty(self):
        q = CompletionQueue()
        assert len(q) == 0
        assert not q
        assert q.peek_time() == math.inf
        assert q.pop_until(1e9) == []

    def test_ordered_pops(self):
        q = CompletionQueue()
        q.push(5.0, 1)
        q.push(3.0, 2)
        q.push(4.0, 3)
        assert q.peek_time() == 3.0
        assert q.pop_until(4.5) == [2, 3]
        assert q.pop_until(10.0) == [1]

    def test_simultaneous_events_batched_deterministically(self):
        q = CompletionQueue()
        q.push(2.0, 9)
        q.push(2.0, 3)
        assert q.pop_until(2.0) == [3, 9]  # index order at equal times

    def test_pop_until_exclusive_of_future(self):
        q = CompletionQueue()
        q.push(5.0, 1)
        assert q.pop_until(4.999) == []
        assert len(q) == 1

    def test_push_into_past_rejected(self):
        q = CompletionQueue()
        q.push(5.0, 1)
        q.pop_until(5.0)
        with pytest.raises(ValueError, match="before current time"):
            q.push(4.0, 2)

    def test_push_at_current_time_ok(self):
        q = CompletionQueue()
        q.push(5.0, 1)
        q.pop_until(5.0)
        q.push(5.0, 2)  # same instant is legal
        assert q.pop_until(5.0) == [2]

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=100))
    def test_pops_monotone(self, times):
        q = CompletionQueue()
        for i, t in enumerate(times):
            q.push(t, i)
        popped_times = []
        horizon = 0.0
        while q:
            horizon += max(times) / 10 + 1
            for idx in q.pop_until(horizon):
                popped_times.append(times[idx])
        assert popped_times == sorted(popped_times)
        assert len(popped_times) == len(times)

"""Theorem-backed oracle tests for the engine.

Classical single-machine scheduling results give exact, provable
expectations the simulator must honour — stronger evidence than
cross-implementation agreement because the oracle is pencil-and-paper.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policies.classic import FCFS, LPT, SPT
from repro.sim.engine import simulate
from repro.sim.job import Workload
from repro.sim.metrics import per_job_flow

runtimes_strategy = st.lists(
    st.floats(min_value=0.5, max_value=100.0), min_size=2, max_size=12
)


def single_core_batch(runtimes):
    """All jobs released at t=0 on a 1-core machine."""
    n = len(runtimes)
    return Workload.from_arrays(
        submit=np.zeros(n),
        runtime=np.asarray(runtimes, dtype=float),
        size=np.ones(n, dtype=int),
    )


class TestSptOptimality:
    """1 | r_j = 0 | sum C_j : SPT minimises total completion time."""

    @settings(max_examples=60, deadline=None)
    @given(runtimes_strategy)
    def test_spt_beats_fcfs_on_mean_flow(self, runtimes):
        wl = single_core_batch(runtimes)
        spt = simulate(wl, SPT(), 1)
        fcfs = simulate(wl, FCFS(), 1)
        flow_spt = per_job_flow(wl.submit, spt.start, wl.runtime).mean()
        flow_fcfs = per_job_flow(wl.submit, fcfs.start, wl.runtime).mean()
        assert flow_spt <= flow_fcfs + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(runtimes_strategy)
    def test_spt_beats_lpt_on_mean_flow(self, runtimes):
        wl = single_core_batch(runtimes)
        spt = simulate(wl, SPT(), 1)
        lpt = simulate(wl, LPT(), 1)
        flow_spt = per_job_flow(wl.submit, spt.start, wl.runtime).mean()
        flow_lpt = per_job_flow(wl.submit, lpt.start, wl.runtime).mean()
        assert flow_spt <= flow_lpt + 1e-9

    def test_exact_smith_value(self):
        """Closed-form check: runtimes 1,2,3 under SPT give flows 1,3,6."""
        wl = single_core_batch([3.0, 1.0, 2.0])
        result = simulate(wl, SPT(), 1)
        flows = per_job_flow(wl.submit, result.start, wl.runtime)
        assert sorted(flows.tolist()) == [1.0, 3.0, 6.0]


class TestMakespanInvariance:
    """1 || C_max : makespan is sequence-independent on one core."""

    @settings(max_examples=40, deadline=None)
    @given(runtimes_strategy)
    def test_makespan_equal_across_policies(self, runtimes):
        wl = single_core_batch(runtimes)
        makespans = {
            policy.name: simulate(wl, policy, 1).makespan
            for policy in (FCFS(), SPT(), LPT())
        }
        values = list(makespans.values())
        assert max(values) - min(values) < 1e-6
        assert values[0] == pytest.approx(sum(runtimes))


class TestWorkConservation:
    """With all jobs released at t=0 and unit sizes, an m-core machine
    keeps every core busy until fewer than m jobs remain (list
    scheduling is work-conserving)."""

    @settings(max_examples=40, deadline=None)
    @given(runtimes_strategy, st.integers(2, 4))
    def test_total_idle_bounded(self, runtimes, m):
        wl = Workload.from_arrays(
            submit=np.zeros(len(runtimes)),
            runtime=np.asarray(runtimes, dtype=float),
            size=np.ones(len(runtimes), dtype=int),
        )
        result = simulate(wl, FCFS(), m)
        # Graham bound: C_max <= sum/m + max
        assert result.makespan <= sum(runtimes) / m + max(runtimes) + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(runtimes_strategy)
    def test_no_idle_before_last_start_single_core(self, runtimes):
        wl = single_core_batch(runtimes)
        result = simulate(wl, SPT(), 1)
        order = np.argsort(result.start)
        finish = result.start + wl.runtime
        for a, b in zip(order[:-1], order[1:]):
            assert result.start[b] == pytest.approx(finish[a])


class TestFcfsMonotonicity:
    """Under FCFS with equal sizes, start times follow submit order."""

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**16), st.integers(1, 4))
    def test_starts_sorted_by_submit(self, seed, width):
        rng = np.random.default_rng(seed)
        n = 20
        wl = Workload.from_arrays(
            submit=np.sort(rng.uniform(0, 100, n)),
            runtime=rng.uniform(1, 30, n),
            size=np.full(n, width),
        )
        result = simulate(wl, FCFS(), width)  # machine fits exactly one job
        assert np.all(np.diff(result.start) >= -1e-9)

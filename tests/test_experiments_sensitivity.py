"""Tests for robustness sweeps (repro.experiments.sensitivity)."""

import pytest

from repro.experiments.scale import SCALES
from repro.experiments.sensitivity import (
    ranking_stability,
    seed_sweep,
    tau_sweep,
)
from repro.experiments.table4 import TABLE4_ROWS

ROW = next(r for r in TABLE4_ROWS if r.row_id == "model_256_actual")
SMOKE = SCALES["smoke"]


@pytest.fixture(scope="module")
def sweep():
    return seed_sweep(ROW, SMOKE, seeds=(0, 1, 2), policies=("FCFS", "F1"))


class TestSeedSweep:
    def test_structure(self, sweep):
        assert sweep.seeds == (0, 1, 2)
        assert set(sweep.medians) == {0, 1, 2}
        for med in sweep.medians.values():
            assert set(med) == {"FCFS", "F1"}

    def test_rankings(self, sweep):
        for ranking in sweep.rankings().values():
            assert sorted(ranking) == ["F1", "FCFS"]

    def test_f1_wins_across_seeds(self, sweep):
        """The paper's conclusion is seed-robust even at smoke scale."""
        winners = sweep.winner_counts()
        assert winners.get("F1", 0) >= 2

    def test_median_of_medians(self, sweep):
        mom = sweep.median_of_medians()
        assert mom["F1"] <= mom["FCFS"]

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            seed_sweep(ROW, SMOKE, seeds=())


class TestTauSweep:
    @pytest.fixture(scope="class")
    def taus(self):
        return tau_sweep(ROW, SMOKE, taus=(1.0, 10.0, 60.0), policies=("FCFS", "F1"))

    def test_structure(self, taus):
        assert set(taus) == {1.0, 10.0, 60.0}

    def test_smaller_tau_larger_slowdowns(self, taus):
        """tau bounds small-job slowdowns from above: decreasing it can
        only increase (or keep) every bounded slowdown."""
        assert taus[1.0]["FCFS"] >= taus[10.0]["FCFS"] >= taus[60.0]["FCFS"]

    def test_ranking_invariant_to_tau(self, taus):
        rankings = {t: sorted(med, key=med.get) for t, med in taus.items()}
        assert ranking_stability(rankings) == 1.0

    def test_empty_taus_rejected(self):
        with pytest.raises(ValueError):
            tau_sweep(ROW, SMOKE, taus=())


class TestRankingStability:
    def test_all_equal(self):
        assert ranking_stability({1: ["a", "b"], 2: ["a", "b"]}) == 1.0

    def test_partial(self):
        rankings = {1: ["a", "b"], 2: ["b", "a"], 3: ["a", "b"]}
        assert ranking_stability(rankings) == pytest.approx(2 / 3)

    def test_explicit_reference(self):
        rankings = {1: ["a", "b"], 2: ["b", "a"]}
        assert ranking_stability(rankings, reference=["b", "a"]) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ranking_stability({})

"""Tests for workload characterisation (repro.workloads.analysis)."""

import numpy as np
import pytest

from repro.sim.job import Workload
from repro.workloads.analysis import compare_profiles, profile_workload
from repro.workloads.lublin import LublinParams, lublin_workload
from repro.workloads.traces import TRACES, synthetic_trace
from repro.workloads.tsafrir import apply_tsafrir


@pytest.fixture(scope="module")
def lublin_profile():
    return profile_workload(lublin_workload(20000, nmax=256, seed=1))


class TestProfileWorkload:
    def test_basic_fields(self, lublin_profile):
        p = lublin_profile
        assert p.n_jobs == 20000
        assert p.span_days > 0
        assert 0 < p.serial_fraction < 1
        assert 0 < p.pow2_fraction <= 1
        assert p.size_p50 <= p.size_p95
        assert p.runtime_p50 <= p.runtime_p95

    def test_lublin_shape_properties(self, lublin_profile):
        """The published model shape, via the analysis module."""
        p = lublin_profile
        assert 0.2 < p.serial_fraction < 0.35
        assert p.pow2_fraction > 0.5
        assert p.day_night_ratio > 1.5  # daily rhythm present

    def test_perfect_estimates_accuracy_one(self, lublin_profile):
        assert lublin_profile.estimate_accuracy_p50 == pytest.approx(1.0)

    def test_tsafrir_estimates_lower_accuracy(self):
        wl = apply_tsafrir(lublin_workload(5000, seed=2), seed=3)
        p = profile_workload(wl)
        assert p.estimate_accuracy_p50 < 0.9

    def test_offered_load_matches_utilization(self):
        wl = lublin_workload(5000, nmax=256, seed=4)
        p = profile_workload(wl)
        assert p.offered_load == pytest.approx(wl.utilization(256))

    def test_explicit_nmax_override(self):
        wl = lublin_workload(1000, nmax=256, seed=5)
        a = profile_workload(wl, nmax=256)
        b = profile_workload(wl, nmax=512)
        assert b.offered_load == pytest.approx(a.offered_load / 2)

    def test_all_serial_pow2_nan(self):
        wl = Workload.from_arrays([0.0, 1.0], [10.0, 10.0], [1, 1], nmax=4)
        p = profile_workload(wl)
        assert p.serial_fraction == 1.0
        assert np.isnan(p.pow2_fraction)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            profile_workload(Workload.from_arrays([], [], []))

    def test_to_text(self, lublin_profile):
        text = lublin_profile.to_text()
        assert "serial fraction" in text
        assert "offered load" in text


class TestTraceProfiles:
    def test_trace_offered_load_matches_table5(self):
        for key in ("ctc_sp2", "sdsc_blue"):
            wl = synthetic_trace(key, seed=0, n_jobs=3000)
            p = profile_workload(wl)
            assert p.offered_load == pytest.approx(TRACES[key].utilization, rel=1e-6)

    def test_traces_distinguishable_by_profile(self):
        a = profile_workload(synthetic_trace("anl_intrepid", seed=0, n_jobs=2000))
        b = profile_workload(synthetic_trace("ctc_sp2", seed=0, n_jobs=2000))
        diffs = compare_profiles(a, b)
        assert diffs["size_p50"] > 0.5  # wildly different machines


class TestCompareProfiles:
    def test_identical_is_zero(self, lublin_profile):
        diffs = compare_profiles(lublin_profile, lublin_profile)
        assert all(v == 0.0 for v in diffs.values())

    def test_same_model_same_seed_family_close(self):
        params = LublinParams(nmax=256)
        a = profile_workload(lublin_workload(15000, 256, seed=1, params=params))
        b = profile_workload(lublin_workload(15000, 256, seed=2, params=params))
        diffs = compare_profiles(a, b)
        # two draws of one model agree on the headline shape numbers
        assert diffs["serial_fraction"] < 0.1
        assert diffs["pow2_fraction"] < 0.1

    def test_skips_nan_fields(self):
        wl = Workload.from_arrays([0.0, 1.0], [10.0, 10.0], [1, 1], nmax=4)
        p = profile_workload(wl)  # pow2 is nan
        diffs = compare_profiles(p, p)
        assert "pow2_fraction" not in diffs

"""Tests for the dynamic scheduling experiment harness."""

import numpy as np
import pytest

from repro.experiments.dynamic import model_stream_for_span, run_dynamic_experiment
from repro.policies.classic import SPT
from repro.workloads.lublin import lublin_workload


@pytest.fixture(scope="module")
def stream():
    # ~2 half-day sequences worth of the Lublin model on 64 cores
    return model_stream_for_span(2 * 0.5 * 86400.0, 64, seed=4)


@pytest.fixture(scope="module")
def result(stream):
    return run_dynamic_experiment(
        stream,
        ["FCFS", "SPT", "F1"],
        64,
        n_sequences=2,
        days=0.5,
    )


class TestModelStream:
    def test_span_sufficient(self, stream):
        assert stream.span >= 86400.0

    def test_estimates_attached(self, stream):
        assert np.any(stream.estimate > stream.runtime)
        assert np.all(stream.estimate >= stream.runtime)

    def test_without_estimates(self):
        wl = model_stream_for_span(3600.0, 64, seed=1, with_estimates=False)
        np.testing.assert_array_equal(wl.estimate, wl.runtime)

    def test_bad_span(self):
        with pytest.raises(ValueError):
            model_stream_for_span(0.0, 64)

    def test_reproducible(self):
        a = model_stream_for_span(3600.0, 64, seed=2)
        b = model_stream_for_span(3600.0, 64, seed=2)
        np.testing.assert_array_equal(a.submit, b.submit)


class TestRunDynamicExperiment:
    def test_sample_shapes(self, result):
        assert result.policy_names == ("FCFS", "SPT", "F1")
        for name in result.policy_names:
            assert result.samples[name].shape == (2,)
            assert np.all(result.samples[name] >= 1.0)

    def test_medians(self, result):
        med = result.medians()
        for name in result.policy_names:
            assert med[name] == pytest.approx(float(np.median(result.samples[name])))

    def test_summaries_and_boxstats(self, result):
        assert set(result.summaries()) == set(result.policy_names)
        assert set(result.boxstats()) == set(result.policy_names)

    def test_best_policy(self, result):
        med = result.medians()
        assert med[result.best_policy()] == min(med.values())

    def test_policy_objects_accepted(self, stream):
        res = run_dynamic_experiment(
            stream, [SPT()], 64, n_sequences=2, days=0.5
        )
        assert res.policy_names == ("SPT",)

    def test_ascii_plot(self, result):
        out = result.ascii_plot()
        assert "FCFS" in out and "F1" in out

    def test_flags_recorded(self, stream):
        res = run_dynamic_experiment(
            stream,
            ["FCFS"],
            64,
            use_estimates=True,
            backfill=True,
            n_sequences=2,
            days=0.5,
        )
        assert res.use_estimates and res.backfill

    def test_sequences_shared_across_policies(self, stream):
        """Paired design: same sequences for every policy => FCFS==FCFS."""
        a = run_dynamic_experiment(stream, ["FCFS"], 64, n_sequences=2, days=0.5)
        b = run_dynamic_experiment(stream, ["FCFS", "SPT"], 64, n_sequences=2, days=0.5)
        np.testing.assert_array_equal(a.samples["FCFS"], b.samples["FCFS"])


class TestExperimentShape:
    def test_f1_beats_fcfs_on_model(self):
        """The paper's headline ordering at reduced scale."""
        wl = model_stream_for_span(3 * 0.5 * 86400.0, 256, seed=11)
        res = run_dynamic_experiment(
            wl, ["FCFS", "F1"], 256, n_sequences=3, days=0.5
        )
        med = res.medians()
        assert med["F1"] < med["FCFS"]

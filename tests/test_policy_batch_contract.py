"""Registry-wide enforcement of the policy batch-scoring contract.

The simulation kernel (:mod:`repro.sim.kernel`) relies on every policy's
``scores`` being vectorised, elementwise and *batch-stable at the bit
level*: the engine scores a static policy's whole workload in one call
(the legacy loop scored per arrival batch), and dynamic policies get one
whole-queue call per pass (the queue's composition changes between
passes).  If a policy's score bits depended on which other jobs share
the batch, kernel results would silently diverge from the legacy loop.

See the "Batch-scoring contract" section of
:mod:`repro.policies.base`.  Every policy in the registry — including
ones registered later — is held to it by these tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.policies.registry import available_policies, get_policy

N = 64
NOW = 1000.0


def _job_arrays(name: str):
    rng = np.random.default_rng(abs(hash(name)) % 2**32)
    submit = np.sort(rng.uniform(0.0, NOW, N))
    proc = rng.uniform(0.5, 3600.0, N)
    size = rng.integers(1, 257, N).astype(np.int64)
    return submit, proc, size


def _scores(policy, now, submit, proc, size) -> np.ndarray:
    out = np.asarray(policy.scores(now, submit, proc, size), dtype=np.float64)
    assert out.shape == submit.shape
    return out


@pytest.mark.parametrize("name", sorted(available_policies()))
class TestBatchScoringContract:
    def test_chunk_stability(self, name):
        """Slicing the batch must not change any job's score bits."""
        with np.errstate(all="ignore"):
            policy = get_policy(name)
            submit, proc, size = _job_arrays(name)
            full = _scores(policy, NOW, submit, proc, size)
            for bounds in ((0, 1), (1, 17), (17, N), (0, N)):
                lo, hi = bounds
                part = _scores(
                    policy, NOW, submit[lo:hi], proc[lo:hi], size[lo:hi]
                )
                assert part.tobytes() == full[lo:hi].tobytes(), (
                    f"{name}: scores of slice [{lo}:{hi}] differ from the "
                    "full-batch scores — batch-unstable policy"
                )

    def test_subset_stability(self, name):
        """Arbitrary job subsets (the dynamic queue case) score identically."""
        with np.errstate(all="ignore"):
            policy = get_policy(name)
            submit, proc, size = _job_arrays(name)
            full = _scores(policy, NOW, submit, proc, size)
            rng = np.random.default_rng(0)
            idx = rng.permutation(N)[: N // 3]
            part = _scores(policy, NOW, submit[idx], proc[idx], size[idx])
            assert part.tobytes() == full[idx].tobytes(), (
                f"{name}: scores depend on batch composition"
            )

    def test_static_policies_are_now_independent(self, name):
        """dynamic=False means the kernel may score once, at any time."""
        with np.errstate(all="ignore"):
            policy = get_policy(name)
            if policy.dynamic:
                pytest.skip("dynamic policy: now-dependence is the point")
            submit, proc, size = _job_arrays(name)
            at_zero = _scores(policy, 0.0, submit, proc, size)
            at_late = _scores(policy, 10.0 * NOW, submit, proc, size)
            assert at_zero.tobytes() == at_late.tobytes(), (
                f"{name}: static policy's scores changed with now"
            )

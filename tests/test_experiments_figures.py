"""Tests for the Figure 1-3 regenerators."""

import numpy as np
import pytest

from repro.experiments.figures import (
    fig1_trial_score_distributions,
    fig2_trial_convergence,
    fig3_policy_maps,
)
from repro.policies.learned import F1


class TestFig1:
    @pytest.fixture(scope="class")
    def fig1(self):
        return fig1_trial_score_distributions(n_trials=96, seed=0)

    def test_two_panels_of_32(self, fig1):
        assert len(fig1.panels) == 2
        for panel in fig1.panels:
            assert panel.shape == (32,)

    def test_mean_line(self, fig1):
        assert fig1.mean_line == pytest.approx(1.0 / 32)

    def test_scores_hover_around_mean(self, fig1):
        """Figure 1: most scores slightly above or below 1/|Q|."""
        for panel in fig1.panels:
            assert panel.mean() == pytest.approx(fig1.mean_line)
            assert np.all(panel >= 0)
            assert np.all(panel < 4 * fig1.mean_line)

    def test_panels_differ(self, fig1):
        assert not np.allclose(fig1.panels[0], fig1.panels[1])


class TestFig2:
    @pytest.fixture(scope="class")
    def fig2(self):
        return fig2_trial_convergence((32, 128, 512), repeats=4, seed=0)

    def test_series_alignment(self, fig2):
        series = fig2.series()
        assert [c for c, _ in series] == [32, 128, 512]

    def test_std_decreases_with_trials(self, fig2):
        """The figure's core claim: more trials, lower estimator spread."""
        stds = fig2.normalized_std
        assert stds[0] > stds[-1]

    def test_positive(self, fig2):
        assert np.all(fig2.normalized_std > 0)

    def test_convergence_rate_roughly_sqrt(self):
        """Monte-Carlo estimator: 16x trials ~ 4x std reduction (loose)."""
        fig2 = fig2_trial_convergence((32, 512), repeats=6, seed=1)
        ratio = fig2.normalized_std[0] / fig2.normalized_std[1]
        assert 1.5 < ratio < 12.0


class TestFig3:
    def test_axis_pairs(self):
        for pair in ("rn", "rs", "ns"):
            maps = fig3_policy_maps(pair, resolution=16)
            assert maps.axis_pair == pair
            assert set(maps.maps) == {"F1", "F2", "F3", "F4"}
            for grid in maps.maps.values():
                assert grid.shape == (16, 16)

    def test_normalized_to_unit_interval(self):
        maps = fig3_policy_maps("rn", resolution=16)
        for grid in maps.maps.values():
            assert grid.min() == pytest.approx(0.0)
            assert grid.max() == pytest.approx(1.0)

    def test_rn_panel_monotone(self):
        """Fig 3a: at fixed s, priority worsens with both r and n."""
        maps = fig3_policy_maps("rn", resolution=16)
        for grid in maps.maps.values():
            assert grid[0, 0] <= grid[0, -1] + 1e-12  # more runtime -> higher
            assert grid[0, 0] <= grid[-1, 0] + 1e-12  # more cores -> higher

    def test_submit_dominates_rs_panel(self):
        """Fig 3b: older tasks (small s) dominate for F2-F4."""
        maps = fig3_policy_maps("rs", resolution=16)
        for name in ("F2", "F3", "F4"):
            grid = maps.maps[name]
            # bottom row (earliest submit) everywhere below top row
            assert np.all(grid[0, :] <= grid[-1, :] + 1e-9)

    def test_fixed_override(self):
        a = fig3_policy_maps("rn", fixed={"s": 1.0}, resolution=8, policies=[F1()])
        b = fig3_policy_maps("rn", fixed={"s": 200.0}, resolution=8, policies=[F1()])
        # different fixed submit shifts raw scores; normalized maps equal
        np.testing.assert_allclose(a.maps["F1"], b.maps["F1"], atol=1e-9)

    def test_priority_at(self):
        maps = fig3_policy_maps("rn", resolution=8)
        val = maps.priority_at("F1", 0, 0)
        assert 0.0 <= val <= 1.0

    def test_bad_pair(self):
        with pytest.raises(ValueError):
            fig3_policy_maps("xy")

"""Tests for the repro-sched command-line interface."""

from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_known(self):
        parser = build_parser()
        for cmd in (
            "train",
            "simulate",
            "evaluate",
            "table4",
            "fetch",
            "figures",
            "trace",
            "info",
        ):
            args = parser.parse_args([cmd] if cmd != "trace" else [cmd, "curie"])
            assert args.command == cmd


class TestInfo:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro 1.0.0" in out
        assert "FCFS" in out
        assert "curie" in out
        assert "model_256_actual" in out


class TestSimulate:
    def test_model_simulation(self, capsys):
        assert main(["simulate", "--policy", "F1", "--jobs", "150", "--nmax", "64"]) == 0
        out = capsys.readouterr().out
        assert "policy=F1" in out
        assert "AVEbsld=" in out

    def test_backfill_flags(self, capsys):
        code = main(
            [
                "simulate",
                "--policy",
                "FCFS",
                "--jobs",
                "100",
                "--nmax",
                "64",
                "--estimates",
                "--backfill",
            ]
        )
        assert code == 0
        assert "backfilled=" in capsys.readouterr().out

    def test_trace_simulation(self, capsys):
        assert main(["simulate", "--trace", "ctc_sp2", "--jobs", "200"]) == 0
        assert "AVEbsld=" in capsys.readouterr().out

    def test_swf_replay(self, tmp_path, capsys):
        import repro

        wl = repro.lublin_workload(50, nmax=32, seed=0)
        path = tmp_path / "t.swf"
        repro.write_swf(wl, path)
        assert main(["simulate", "--swf", str(path), "--policy", "SPT"]) == 0
        assert "jobs=50" in capsys.readouterr().out

    def test_headerless_swf_names_missing_header_and_override(self, tmp_path):
        headerless = tmp_path / "nohdr.swf"
        headerless.write_text(
            "1 0 0 10 1 -1 -1 1 10 -1 1\n2 1 0 10 1 -1 -1 1 10 -1 1\n"
        )
        with pytest.raises(SystemExit, match="MaxProcs"):
            main(["simulate", "--swf", str(headerless)])
        with pytest.raises(SystemExit, match="--nmax"):
            main(["simulate", "--swf", str(headerless)])
        # the override fixes it
        assert main(["simulate", "--swf", str(headerless), "--nmax", "4"]) == 0


class TestTrace:
    def test_emit_to_stdout(self, capsys):
        assert main(["trace", "ctc_sp2", "--jobs", "20"]) == 0
        out = capsys.readouterr().out
        assert "; Computer: CTC SP2" in out

    def test_emit_to_file(self, tmp_path, capsys):
        path = tmp_path / "curie.swf"
        assert main(["trace", "curie", "--jobs", "20", "--output", str(path)]) == 0
        assert path.exists()
        assert "20 jobs written" in capsys.readouterr().out


class TestFigures:
    def test_figure3_fast(self, capsys):
        assert main(["figures", "--figure", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3 panel rn" in out

    def test_figure1_smoke_scale(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert main(["figures", "--figure", "1"]) == 0
        assert "Figure 1" in capsys.readouterr().out


class TestTable4:
    def test_single_row_smoke(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert main(["table4", "--rows", "ctc_sp2_actual", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "Medians:" in out
        assert "paper" in out

    def test_unknown_row_rejected(self):
        with pytest.raises(SystemExit):
            main(["table4", "--rows", "bogus"])


class TestTrain:
    def test_tiny_training_run(self, capsys, tmp_path):
        out_csv = tmp_path / "dist.csv"
        code = main(
            [
                "train",
                "--tuples",
                "1",
                "--trials",
                "32",
                "--scale",
                "smoke",
                "--top",
                "2",
                "--output",
                str(out_csv),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rank 1:" in out
        assert out_csv.exists()


class TestAnalyze:
    def test_model_profile(self, capsys):
        assert main(["analyze", "--jobs", "400"]) == 0
        out = capsys.readouterr().out
        assert "serial fraction" in out
        assert "offered load" in out

    def test_agreement_matrix(self, capsys):
        assert main(["analyze", "--jobs", "300", "--agreement", "FCFS", "SPT"]) == 0
        out = capsys.readouterr().out
        assert "Kendall tau" in out
        assert "1.00" in out

    def test_trace_profile(self, capsys):
        assert main(["analyze", "--trace", "ctc_sp2", "--jobs", "300"]) == 0
        assert "CTC SP2" in capsys.readouterr().out

    def test_swf_profile(self, tmp_path, capsys):
        import repro

        wl = repro.lublin_workload(60, nmax=32, seed=0)
        path = tmp_path / "x.swf"
        repro.write_swf(wl, path)
        assert main(["analyze", "--swf", str(path)]) == 0
        assert "60 jobs" in capsys.readouterr().out


FIXTURE_SWF = str(Path(__file__).parent / "data" / "ctc_tiny.swf")


class TestEvaluate:
    def _run(self, *extra):
        return main(
            [
                "evaluate",
                "--trace",
                FIXTURE_SWF,
                "--window-jobs",
                "50",
                "--warmup",
                "5",
                *extra,
            ]
        )

    def test_swf_matrix_report(self, capsys):
        assert self._run() == 0
        out = capsys.readouterr().out
        assert "Evaluation matrix for CTC SP2" in out
        assert "backfill=none" in out
        assert "backfill=easy" in out
        assert "paired Δ vs FCFS" in out

    def test_workers_bit_identical_output(self, capsys):
        assert self._run("--workers", "1") == 0
        serial = capsys.readouterr().out
        assert self._run("--workers", "4") == 0
        fanned = capsys.readouterr().out
        assert serial == fanned

    def test_cache_second_run_free(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert self._run("--cache", cache) == 0
        assert "simulated 16, cached 0" in capsys.readouterr().out
        assert self._run("--cache", cache) == 0
        assert "simulated 0, cached 16" in capsys.readouterr().out

    def test_output_dir_written(self, capsys, tmp_path):
        out = tmp_path / "report"
        assert self._run("--output-dir", str(out)) == 0
        files = sorted(p.name for p in out.iterdir())
        assert files == [
            "eval_matrix.csv",
            "eval_matrix.json",
            "eval_matrix_deltas.csv",
        ]
        lines = (out / "eval_matrix.csv").read_text().splitlines()
        assert lines[1].startswith("window,policy,backfill")
        assert len(lines) == 2 + 16
        delta_lines = (out / "eval_matrix_deltas.csv").read_text().splitlines()
        assert delta_lines[1].startswith("policy,backfill,baseline")
        assert "delta_ci_low,delta_ci_high,significant" in delta_lines[1]

    def test_synthetic_fallback(self, capsys):
        code = main(
            [
                "evaluate",
                "--synthetic",
                "ctc_sp2",
                "--jobs",
                "150",
                "--window-jobs",
                "50",
                "--policies",
                "fcfs,spt",
                "--backfill",
                "easy",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "synthetic stand-in" in captured.err
        assert "backfill=easy" in captured.out

    def test_bad_policy_list_rejected(self):
        with pytest.raises(SystemExit, match="unknown policy"):
            self._run("--policies", "fcfs,bogus")

    def test_bad_backfill_rejected(self):
        with pytest.raises(SystemExit, match="unknown backfill"):
            self._run("--backfill", "sometimes")

    def test_conflicting_window_axes_rejected(self):
        with pytest.raises(SystemExit, match="exactly one"):
            self._run("--window-seconds", "100")

    def test_zero_window_jobs_rejected_cleanly(self):
        with pytest.raises(SystemExit, match="window_jobs"):
            main(["evaluate", "--trace", FIXTURE_SWF, "--window-jobs", "0"])

    def test_lowercase_baseline_accepted(self, capsys):
        assert self._run("--baseline", "fcfs") == 0
        assert "paired Δ vs FCFS" in capsys.readouterr().out

    def test_unknown_baseline_rejected_cleanly(self):
        with pytest.raises(SystemExit, match="unknown policy"):
            self._run("--baseline", "bogus")

    def test_missing_machine_size_rejected_cleanly(self, tmp_path):
        headerless = tmp_path / "nohdr.swf"
        headerless.write_text("1 0 0 10 1 -1 -1 1 10 -1 1\n2 1 0 10 1 -1 -1 1 10 -1 1\n")
        with pytest.raises(SystemExit, match="machine size unknown"):
            main(["evaluate", "--trace", str(headerless), "--window-jobs", "2"])


class TestFiguresExport:
    def test_output_dir_written(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        out = tmp_path / "figdata"
        assert main(["figures", "--figure", "2", "--output-dir", str(out)]) == 0
        files = sorted(p.name for p in out.iterdir())
        assert "fig2_convergence.csv" in files
        text = (out / "fig2_convergence.csv").read_text()
        assert text.splitlines()[1] == "trials,normalized_std"


class TestEvaluateStreaming:
    def _run(self, *extra):
        return main(
            [
                "evaluate",
                "--trace",
                FIXTURE_SWF,
                "--window-jobs",
                "50",
                "--warmup",
                "5",
                *extra,
            ]
        )

    def test_stream_output_identical_to_materialised(self, capsys):
        assert self._run("--no-stream") == 0
        materialised = capsys.readouterr().out
        assert self._run("--stream") == 0
        streamed = capsys.readouterr().out
        assert streamed == materialised

    def test_stream_reports_written_identically(self, capsys, tmp_path):
        assert self._run("--output-dir", str(tmp_path / "a")) == 0
        assert self._run("--stream", "--output-dir", str(tmp_path / "b")) == 0
        capsys.readouterr()
        for name in ("eval_matrix.csv", "eval_matrix.json", "eval_matrix_deltas.csv"):
            assert (tmp_path / "a" / name).read_bytes() == (
                tmp_path / "b" / name
            ).read_bytes()

    def test_stream_cached_rerun_simulates_nothing(self, capsys, tmp_path):
        assert self._run("--cache", str(tmp_path)) == 0
        capsys.readouterr()
        assert self._run("--stream", "--cache", str(tmp_path)) == 0
        assert "simulated 0, cached 16" in capsys.readouterr().out

    def test_stream_synthetic_fallback(self, capsys):
        assert (
            main(
                [
                    "evaluate",
                    "--stream",
                    "--jobs",
                    "300",
                    "--window-jobs",
                    "100",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "synthetic stand-in" in captured.err
        assert "Evaluation matrix for" in captured.out

    def test_bootstrap_ci_in_report(self, capsys):
        assert self._run("--bootstrap", "200", "--ci", "0.9") == 0
        out = capsys.readouterr().out
        assert "90% bootstrap CI" in out
        assert "CI [" in out

    def test_bootstrap_zero_marks_ci_na(self, capsys):
        assert self._run("--bootstrap", "0") == 0
        assert "CI n/a" in capsys.readouterr().out

    def test_bootstrap_deterministic_across_runs(self, capsys):
        assert self._run("--bootstrap", "200", "--seed", "3") == 0
        first = capsys.readouterr().out
        assert self._run("--bootstrap", "200", "--seed", "3", "--workers", "2") == 0
        assert capsys.readouterr().out == first

    def test_bad_ci_level_rejected(self):
        with pytest.raises(SystemExit):
            self._run("--ci", "1.5")

    def test_bad_bootstrap_rejected(self):
        with pytest.raises(SystemExit):
            self._run("--bootstrap", "-5")


class TestSimulateBackfillModes:
    """The simulate verb shares the engine's backfill-mode vocabulary."""

    BASE = ["simulate", "--policy", "FCFS", "--jobs", "100", "--nmax", "64"]

    def test_mode_tokens_accepted(self, capsys):
        for mode in ("none", "easy", "conservative"):
            assert main([*self.BASE, "--backfill", mode]) == 0
            assert "backfilled=" in capsys.readouterr().out

    def test_bare_flag_is_deprecated_easy_alias(self, capsys):
        with pytest.warns(DeprecationWarning, match="bare --backfill"):
            assert main([*self.BASE, "--backfill"]) == 0
        bare = capsys.readouterr().out
        assert main([*self.BASE, "--backfill", "easy"]) == 0
        assert bare == capsys.readouterr().out

    def test_unknown_mode_rejected(self):
        with pytest.raises(SystemExit, match="backfill"):
            main([*self.BASE, "--backfill", "sometimes"])

    def test_simulate_cache_flag(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main([*self.BASE, "--cache", cache]) == 0
        cold = capsys.readouterr().out
        assert main([*self.BASE, "--cache", cache]) == 0
        assert capsys.readouterr().out == cold

    def test_simulate_workers_flag_accepted(self, capsys):
        assert main([*self.BASE, "--workers", "2"]) == 0
        assert "policy=FCFS" in capsys.readouterr().out


class TestRunCommand:
    """`repro-sched run SPEC` reproduces the flag invocations."""

    def _write_eval_spec(self, tmp_path, **extra):
        lines = [
            'spec = "evaluate"',
            f'trace = "{FIXTURE_SWF}"',
            "window_jobs = 50",
            "warmup = 5",
        ]
        lines += [f"{k} = {v}" for k, v in extra.items()]
        path = tmp_path / "eval.toml"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path

    def test_run_evaluate_spec(self, capsys, tmp_path):
        assert main(["run", str(self._write_eval_spec(tmp_path))]) == 0
        out = capsys.readouterr().out
        assert "Evaluation matrix for CTC SP2" in out
        assert "simulated 16, cached 0" in out

    def test_run_matches_flags_byte_identically(self, capsys, tmp_path):
        spec = self._write_eval_spec(tmp_path)
        assert main(["run", str(spec), "--output-dir", str(tmp_path / "s")]) == 0
        spec_stdout = capsys.readouterr().out
        code = main(
            [
                "evaluate",
                "--trace",
                FIXTURE_SWF,
                "--window-jobs",
                "50",
                "--warmup",
                "5",
                "--output-dir",
                str(tmp_path / "f"),
            ]
        )
        assert code == 0
        flag_stdout = capsys.readouterr().out
        assert spec_stdout.replace(str(tmp_path / "s"), "") == flag_stdout.replace(
            str(tmp_path / "f"), ""
        )
        for name in ("eval_matrix.csv", "eval_matrix.json", "eval_matrix_deltas.csv"):
            assert (tmp_path / "s" / name).read_bytes() == (
                tmp_path / "f" / name
            ).read_bytes()

    def test_run_train_spec(self, capsys, tmp_path):
        path = tmp_path / "train.toml"
        path.write_text(
            'spec = "train"\nn_tuples = 1\ntrials_per_tuple = 32\n'
            'scale = "smoke"\ntop_k = 2\n',
            encoding="utf-8",
        )
        out_csv = tmp_path / "dist.csv"
        assert main(["run", str(path), "--output", str(out_csv)]) == 0
        out = capsys.readouterr().out
        assert "rank 1:" in out
        assert out_csv.exists()

    def test_run_simulate_spec(self, capsys, tmp_path):
        path = tmp_path / "sim.toml"
        path.write_text(
            'spec = "simulate"\npolicy = "F1"\njobs = 120\nnmax = 64\n',
            encoding="utf-8",
        )
        assert main(["run", str(path)]) == 0
        assert "policy=F1 jobs=120 nmax=64" in capsys.readouterr().out

    def test_run_table4_spec(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        path = tmp_path / "t4.toml"
        path.write_text(
            'spec = "table4"\nrows = ["ctc_sp2_actual"]\n', encoding="utf-8"
        )
        assert main(["run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Medians:" in out
        assert "[ctc_sp2_actual]" in out

    def test_run_missing_file_rejected(self):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["run", "no_such_spec.toml"])

    def test_run_unknown_key_rejected(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text('spec = "train"\nn_tuple = 3\n', encoding="utf-8")
        with pytest.raises(SystemExit, match="unknown key"):
            main(["run", str(path)])


class TestSweepCommand:
    def _write_sweep(self, tmp_path, modes='[["none"], ["easy"]]'):
        path = tmp_path / "sweep.toml"
        path.write_text(
            "\n".join(
                [
                    'spec = "sweep"',
                    "[base]",
                    'spec = "evaluate"',
                    f'trace = "{FIXTURE_SWF}"',
                    'policies = ["fcfs"]',
                    'backfill = ["none"]',
                    "window_jobs = 50",
                    "warmup = 5",
                    "[grid]",
                    'policies = [["fcfs"], ["f1"]]',
                    f"backfill = {modes}",
                ]
            )
            + "\n",
            encoding="utf-8",
        )
        return path

    def test_sweep_executes_grid(self, capsys, tmp_path):
        spec = self._write_sweep(tmp_path)
        cache = str(tmp_path / "cache")
        assert main(["sweep", str(spec), "--cache", cache]) == 0
        out = capsys.readouterr().out
        assert "4 evaluate spec(s)" in out
        assert "sweep totals: simulated 16, cached 0" in out

    def test_sweep_rerun_fully_cached_and_extension_incremental(
        self, capsys, tmp_path
    ):
        cache = str(tmp_path / "cache")
        spec = self._write_sweep(tmp_path)
        assert main(["sweep", str(spec), "--cache", cache]) == 0
        capsys.readouterr()
        assert main(["sweep", str(spec), "--cache", cache]) == 0
        assert "sweep totals: simulated 0, cached 16" in capsys.readouterr().out
        wider = self._write_sweep(
            tmp_path, modes='[["none"], ["easy"], ["conservative"]]'
        )
        assert main(["sweep", str(wider), "--cache", cache]) == 0
        assert "sweep totals: simulated 8, cached 16" in capsys.readouterr().out

    def test_sweep_summary_csv(self, capsys, tmp_path):
        spec = self._write_sweep(tmp_path)
        out_dir = tmp_path / "report"
        assert main(["sweep", str(spec), "--output-dir", str(out_dir)]) == 0
        capsys.readouterr()
        lines = (out_dir / "sweep_summary.csv").read_text().splitlines()
        assert lines[0].startswith("policies,backfill,")
        assert len(lines) == 5

    def test_sweep_rejects_non_sweep_spec(self, tmp_path):
        path = tmp_path / "train.toml"
        path.write_text('spec = "train"\n', encoding="utf-8")
        with pytest.raises(SystemExit, match="not a sweep"):
            main(["sweep", str(path)])

    def test_run_accepts_sweep_spec_too(self, capsys, tmp_path):
        spec = self._write_sweep(tmp_path)
        assert main(["run", str(spec)]) == 0
        assert "sweep totals:" in capsys.readouterr().out


class TestInfoSpecKinds:
    def test_info_lists_spec_kinds(self, capsys):
        assert main(["info"]) == 0
        assert "spec kinds: evaluate, simulate, sweep, table4, train" in (
            capsys.readouterr().out
        )


class TestPlatformFlags:
    def _simulate(self, *extra):
        return main(
            [
                "simulate",
                "--policy",
                "fcfs",
                "--swf",
                FIXTURE_SWF,
                "--nmax",
                "1024",
                *extra,
            ]
        )

    def test_topology_one_prints_flat_bytes(self, capsys):
        assert self._simulate() == 0
        flat = capsys.readouterr().out
        assert self._simulate("--topology", "1") == 0
        assert capsys.readouterr().out == flat
        assert "topology=" not in flat

    def test_partitioned_simulate_labels_the_platform(self, capsys):
        assert (
            self._simulate(
                "--topology", "2x2", "--distribution", "by_size", "--backfill", "hybrid"
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "topology=2x2 distribution=by_size" in out

    def test_hetero_archs_end_to_end(self, capsys):
        assert self._simulate("--hetero-archs", "cpu:1024,gpu:256:8") == 0
        out = capsys.readouterr().out
        assert "hetero=cpu:1024+gpu:256:8" in out
        assert "nmax=1280" in out  # pools summed

    def test_bad_topology_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--topology", "2xbanana"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--topology", "0"])

    def test_hetero_with_topology_rejected(self):
        with pytest.raises(SystemExit, match="at most one of topology / hetero"):
            self._simulate("--topology", "2", "--hetero-archs", "cpu:512,gpu:512")

    def test_uneven_topology_rejected_cleanly(self):
        with pytest.raises(SystemExit, match="does not divide evenly"):
            self._simulate("--topology", "3x3")

    def test_evaluate_topology_matrix(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        argv = [
            "evaluate",
            "--trace",
            FIXTURE_SWF,
            "--nmax",
            "1024",
            "--window-jobs",
            "100",
            "--policies",
            "fcfs,f1",
            "--backfill",
            "easy,hybrid",
            "--topology",
            "2x2",
            "--cache",
            cache,
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "topology=2x2 distribution=round_robin" in out
        assert "simulated 8, cached 0" in out
        assert main(argv) == 0
        assert "simulated 0, cached 8" in capsys.readouterr().out

"""Tests for repro.sim.metrics (Eq. 1 and Eq. 2 of the paper)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.metrics import (
    average_bounded_slowdown,
    bounded_slowdown,
    makespan,
    per_job_flow,
    utilization,
    waiting_times,
)

pos_floats = st.floats(min_value=0.01, max_value=1e5)


class TestWaitingTimes:
    def test_basic(self):
        w = waiting_times(np.array([0.0, 5.0]), np.array([3.0, 5.0]))
        np.testing.assert_array_equal(w, [3.0, 0.0])

    def test_negative_wait_rejected(self):
        with pytest.raises(ValueError, match="negative wait"):
            waiting_times(np.array([10.0]), np.array([5.0]))

    def test_tiny_negative_rounding_clamped(self):
        w = waiting_times(np.array([1.0]), np.array([1.0 - 1e-12]))
        assert w[0] == 0.0


class TestBoundedSlowdown:
    def test_no_wait_is_one(self):
        """A job that starts immediately has bsld exactly 1."""
        out = bounded_slowdown(np.array([0.0]), np.array([100.0]))
        assert out[0] == 1.0

    def test_paper_formula_long_job(self):
        # r=100 > tau: bsld = (w + r) / r
        out = bounded_slowdown(np.array([100.0]), np.array([100.0]), tau=10.0)
        assert out[0] == pytest.approx(2.0)

    def test_tau_bounds_small_jobs(self):
        # r=1 < tau=10: divide by tau, not r
        out = bounded_slowdown(np.array([9.0]), np.array([1.0]), tau=10.0)
        assert out[0] == pytest.approx(1.0)  # (9+1)/10 = 1
        out = bounded_slowdown(np.array([99.0]), np.array([1.0]), tau=10.0)
        assert out[0] == pytest.approx(10.0)  # (99+1)/10

    def test_small_job_vs_unbounded_slowdown(self):
        """tau prevents the blow-up the paper guards against."""
        wait, rt = np.array([1000.0]), np.array([0.1])
        unbounded = (wait + rt) / rt
        bounded = bounded_slowdown(wait, rt, tau=10.0)
        assert bounded[0] < unbounded[0]
        assert bounded[0] == pytest.approx(1000.1 / 10.0)

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            bounded_slowdown(np.array([0.0]), np.array([1.0]), tau=0.0)

    @given(
        st.lists(pos_floats, min_size=1, max_size=30),
        st.lists(pos_floats, min_size=1, max_size=30),
    )
    def test_always_at_least_one(self, waits, runtimes):
        n = min(len(waits), len(runtimes))
        out = bounded_slowdown(np.array(waits[:n]), np.array(runtimes[:n]))
        assert np.all(out >= 1.0)

    @given(st.lists(pos_floats, min_size=1, max_size=30))
    def test_monotone_in_wait(self, runtimes):
        rt = np.array(runtimes)
        low = bounded_slowdown(np.full_like(rt, 10.0), rt)
        high = bounded_slowdown(np.full_like(rt, 20.0), rt)
        assert np.all(high >= low)


class TestAverageBoundedSlowdown:
    def test_mean_of_eq1(self):
        wait = np.array([0.0, 100.0])
        rt = np.array([100.0, 100.0])
        assert average_bounded_slowdown(wait, rt) == pytest.approx((1.0 + 2.0) / 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_bounded_slowdown(np.array([]), np.array([]))


class TestMakespanUtilization:
    def test_makespan(self):
        assert makespan(np.array([0.0, 5.0]), np.array([10.0, 2.0])) == 10.0

    def test_makespan_empty(self):
        assert makespan(np.array([]), np.array([])) == 0.0

    def test_utilization_full(self):
        # one job using the whole machine for the whole horizon
        u = utilization(np.array([0.0]), np.array([10.0]), np.array([4]), nmax=4)
        assert u == pytest.approx(1.0)

    def test_utilization_horizon(self):
        u = utilization(
            np.array([0.0]), np.array([10.0]), np.array([4]), nmax=4, horizon=20.0
        )
        assert u == pytest.approx(0.5)

    def test_utilization_never_above_one_when_valid(self):
        # two serial jobs back to back on 1 core
        u = utilization(np.array([0.0, 10.0]), np.array([10.0, 10.0]), np.array([1, 1]), nmax=1)
        assert u == pytest.approx(1.0)

    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            utilization(np.array([0.0]), np.array([1.0]), np.array([1]), 1, horizon=0.0)

    def test_per_job_flow(self):
        flow = per_job_flow(np.array([0.0]), np.array([5.0]), np.array([10.0]))
        assert flow[0] == 15.0

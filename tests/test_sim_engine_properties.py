"""Property-based cross-checks of the online engine.

Three equivalences anchor the simulator's correctness:

1. engine(FCFS) == fixed-priority list scheduler with priority = arrival
   order (the two independent implementations must agree exactly);
2. engine with an arbitrary static priority table == list scheduler with
   that priority (exercises queue reordering);
3. the static (sorted-insert) and dynamic (re-sort) queue paths of the
   engine produce identical schedules for the same policy.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policies.classic import FCFS, SPT
from repro.sim.engine import simulate
from repro.sim.job import Workload
from repro.sim.listsched import simulate_fixed_priority

from conftest import DynamicWrapper, TablePolicy, assert_valid_schedule, random_workload


def _draw_workload(data, max_n=30, max_nmax=8):
    n = data.draw(st.integers(1, max_n))
    nmax = data.draw(st.integers(1, max_nmax))
    rng = np.random.default_rng(data.draw(st.integers(0, 2**20)))
    # Distinct submit times keep priority tables unambiguous.
    submit = np.cumsum(rng.uniform(0.01, 10.0, n))
    runtime = rng.uniform(0.5, 30.0, n)
    size = rng.integers(1, nmax + 1, n)
    wl = Workload.from_arrays(submit, runtime, size, nmax=nmax)
    return wl, nmax, rng


class TestEngineVsListScheduler:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_fcfs_equals_arrival_priority(self, data):
        wl, nmax, _ = _draw_workload(data)
        engine = simulate(wl, FCFS(), nmax)
        listed = simulate_fixed_priority(
            wl.submit, wl.runtime, wl.size, np.arange(len(wl), dtype=float), nmax
        )
        np.testing.assert_allclose(engine.start, listed)

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_arbitrary_priority_table(self, data):
        wl, nmax, rng = _draw_workload(data)
        priority = rng.permutation(len(wl)).astype(float)
        table = {float(s): float(p) for s, p in zip(wl.submit, priority)}
        engine = simulate(wl, TablePolicy(table), nmax)
        listed = simulate_fixed_priority(wl.submit, wl.runtime, wl.size, priority, nmax)
        np.testing.assert_allclose(engine.start, listed)


class TestStaticVsDynamicPath:
    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_paths_agree_for_static_policy(self, data):
        wl, nmax, _ = _draw_workload(data)
        static = simulate(wl, SPT(), nmax)
        dynamic = simulate(wl, DynamicWrapper(SPT()), nmax)
        np.testing.assert_allclose(static.start, dynamic.start)

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_paths_agree_with_backfill(self, data):
        wl, nmax, _ = _draw_workload(data)
        static = simulate(wl, SPT(), nmax, backfill=True)
        dynamic = simulate(wl, DynamicWrapper(SPT()), nmax, backfill=True)
        np.testing.assert_allclose(static.start, dynamic.start)
        np.testing.assert_array_equal(static.backfilled, dynamic.backfilled)


class TestEngineInvariants:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 2**20), st.booleans())
    def test_valid_schedule_all_modes(self, seed, backfill):
        rng = np.random.default_rng(seed)
        wl = random_workload(rng, n=40, nmax=8)
        result = simulate(wl, FCFS(), 8, backfill=backfill, use_estimates=True)
        assert_valid_schedule(result)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**20))
    def test_every_job_eventually_starts(self, seed):
        rng = np.random.default_rng(seed)
        wl = random_workload(rng, n=30, nmax=4)
        result = simulate(wl, SPT(), 4, backfill=True)
        assert np.all(np.isfinite(result.start))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**20))
    def test_backfilled_jobs_marked_only_with_backfill(self, seed):
        rng = np.random.default_rng(seed)
        wl = random_workload(rng, n=30, nmax=4)
        plain = simulate(wl, FCFS(), 4, backfill=False)
        assert plain.backfill_count == 0

"""Tests for the declarative spec layer (repro.specs)."""

import dataclasses
import json

import pytest

from repro.core.pipeline import PipelineConfig, distribution_cache_key
from repro.specs import (
    SPEC_SCHEMA_VERSION,
    EvaluateSpec,
    SimulateSpec,
    Spec,
    SpecError,
    SweepSpec,
    Table4Spec,
    TrainSpec,
    load_spec,
    spec_from_dict,
    spec_kinds,
)

ALL_SPECS = [
    TrainSpec(scale="smoke", seed=3),
    SimulateSpec(policy="f1", trace="curie", jobs=200, seed=1),
    EvaluateSpec(policies=("fcfs", "f1"), backfill=("none", "easy"), window_jobs=50),
    Table4Spec(rows=("ctc_sp2_actual",), scale="smoke"),
    SweepSpec(
        base=EvaluateSpec(policies=("fcfs",), backfill=("none",), window_jobs=50),
        grid={"policies": [["fcfs"], ["f1"]], "backfill": [["none"], ["easy"]]},
    ),
]


class TestRoundTrips:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.kind)
    def test_dict_round_trip(self, spec):
        clone = spec_from_dict(spec.to_dict())
        assert clone == spec
        assert clone.fingerprint() == spec.fingerprint()

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.kind)
    def test_json_file_round_trip(self, spec, tmp_path):
        path = tmp_path / f"{spec.kind}.json"
        path.write_text(json.dumps(spec.to_dict()), encoding="utf-8")
        assert load_spec(path) == spec

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.kind)
    def test_dict_is_json_serializable(self, spec):
        json.dumps(spec.to_dict())  # must not raise

    def test_toml_file_loading(self, tmp_path):
        path = tmp_path / "eval.toml"
        path.write_text(
            'spec = "evaluate"\n'
            'policies = ["fcfs", "f1"]\n'
            'backfill = ["none", "easy"]\n'
            "window_jobs = 50\n",
            encoding="utf-8",
        )
        spec = load_spec(path)
        assert spec == EvaluateSpec(
            policies=("fcfs", "f1"), backfill=("none", "easy"), window_jobs=50
        )

    def test_toml_sweep_loading(self, tmp_path):
        path = tmp_path / "sweep.toml"
        path.write_text(
            'spec = "sweep"\n'
            "[base]\n"
            'spec = "evaluate"\n'
            'policies = ["fcfs"]\n'
            'backfill = ["none"]\n'
            "window_jobs = 50\n"
            "[grid]\n"
            'policies = [["fcfs"], ["f1"]]\n'
            'backfill = [["none"], ["easy"]]\n',
            encoding="utf-8",
        )
        spec = load_spec(path)
        assert isinstance(spec, SweepSpec)
        assert len(spec.expand()) == 4
        assert spec == ALL_SPECS[4]

    def test_unsuffixed_file_tries_toml_then_json(self, tmp_path):
        toml_path = tmp_path / "spec_a"
        toml_path.write_text('spec = "train"\nseed = 2\n', encoding="utf-8")
        assert load_spec(toml_path) == TrainSpec(seed=2)
        json_path = tmp_path / "spec_b"
        json_path.write_text('{"spec": "train", "seed": 2}', encoding="utf-8")
        assert load_spec(json_path) == TrainSpec(seed=2)

    def test_garbage_file_rejected_with_path(self, tmp_path):
        path = tmp_path / "junk.toml"
        path.write_text("]]not a document[[", encoding="utf-8")
        with pytest.raises(SpecError, match="junk.toml"):
            load_spec(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read"):
            load_spec(tmp_path / "absent.toml")


class TestValidation:
    def test_unknown_key_rejected_with_names(self):
        with pytest.raises(SpecError, match=r"'n_tuple'") as err:
            spec_from_dict({"spec": "train", "n_tuple": 4})
        assert "n_tuples" in str(err.value)  # valid keys are listed

    def test_future_schema_version_rejected(self):
        with pytest.raises(SpecError, match="newer"):
            spec_from_dict(
                {"spec": "train", "schema_version": SPEC_SCHEMA_VERSION + 1}
            )

    def test_non_integer_schema_version_rejected(self):
        with pytest.raises(SpecError, match="schema_version"):
            spec_from_dict({"spec": "train", "schema_version": "2"})

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecError, match="unknown spec kind"):
            spec_from_dict({"spec": "banana"})

    def test_missing_kind_rejected(self):
        with pytest.raises(SpecError, match="'spec' key"):
            spec_from_dict({"seed": 1})

    def test_kind_mismatch_on_concrete_class(self):
        with pytest.raises(SpecError, match="expected"):
            TrainSpec.from_dict({"spec": "simulate"})

    def test_registry_lists_all_kinds(self):
        assert spec_kinds() == ["evaluate", "simulate", "sweep", "table4", "train"]

    def test_bad_field_value_wrapped_as_spec_error(self):
        with pytest.raises(SpecError, match="n_tuples"):
            TrainSpec(n_tuples=0)
        with pytest.raises(SpecError, match="scale"):
            TrainSpec(scale="galactic")
        with pytest.raises(SpecError, match="tau"):
            TrainSpec(tau=-1.0)

    def test_simulate_validation(self):
        with pytest.raises(SpecError, match="at most one"):
            SimulateSpec(swf="x.swf", trace="curie")
        with pytest.raises(SpecError, match="synthetic trace"):
            SimulateSpec(trace="nope")
        with pytest.raises(SpecError, match="backfill"):
            SimulateSpec(backfill="sideways")

    def test_evaluate_validation(self):
        with pytest.raises(SpecError, match="exactly one"):
            EvaluateSpec(window_jobs=10, window_seconds=5.0)
        with pytest.raises(SpecError, match="baseline"):
            EvaluateSpec(policies=("fcfs", "f1"), baseline="spt")
        with pytest.raises(SpecError, match="bootstrap"):
            EvaluateSpec(bootstrap=-1)
        with pytest.raises(SpecError, match="ci"):
            EvaluateSpec(ci=1.5)

    def test_table4_validation(self):
        with pytest.raises(SpecError, match="unknown Table 4 row"):
            Table4Spec(rows=("bogus",))
        with pytest.raises(SpecError, match="duplicate"):
            Table4Spec(rows=("ctc_sp2_actual", "ctc_sp2_actual"))


class TestCanonicalisation:
    def test_policy_and_backfill_spellings(self):
        spec = SimulateSpec(policy="f1", backfill=True)
        assert spec.policy == "F1"
        assert spec.backfill == "easy"
        assert spec == SimulateSpec(policy="F1", backfill="easy")

    def test_evaluate_window_default(self):
        assert EvaluateSpec().window_jobs == 5000

    def test_evaluate_canonicalises_axes(self):
        spec = EvaluateSpec(policies=("FCFS", "f1"), backfill=(False, True))
        assert spec.policies == ("FCFS", "F1")
        assert spec.backfill == ("none", "easy")


class TestFingerprints:
    def test_scale_preset_resolves_to_explicit_numbers(self):
        from repro.experiments.scale import get_scale

        smoke = get_scale("smoke")
        named = TrainSpec(scale="smoke")
        explicit = TrainSpec(
            n_tuples=smoke.n_tuples,
            trials_per_tuple=smoke.trials_per_tuple,
            regression_max_points=smoke.regression_max_points,
            scale="smoke",  # same preset for any still-unset fields
        )
        assert named.fingerprint() == explicit.fingerprint()

    def test_train_distribution_key_matches_pipeline(self):
        spec = TrainSpec(scale="smoke", seed=5)
        config = spec.to_pipeline_config()
        assert spec.distribution_key() == distribution_cache_key(config)

    def test_pipeline_key_unchanged_by_refactor(self):
        # The delegation to specs.fingerprint must keep existing cache
        # directories valid: the digest is a pure function of the config.
        config = PipelineConfig(n_tuples=2, trials_per_tuple=16, nmax=32)
        assert distribution_cache_key(config) == distribution_cache_key(
            PipelineConfig(n_tuples=2, trials_per_tuple=16, nmax=32)
        )

    def test_execution_knobs_do_not_fork_evaluate_identity(self):
        a = EvaluateSpec(window_jobs=50, stream=False)
        b = EvaluateSpec(window_jobs=50, stream=True)
        assert a.fingerprint() == b.fingerprint()

    def test_result_relevant_fields_do_fork_identity(self):
        a = EvaluateSpec(window_jobs=50)
        assert a.fingerprint() != EvaluateSpec(window_jobs=60).fingerprint()
        assert a.fingerprint() != EvaluateSpec(window_jobs=50, seed=1).fingerprint()

    def test_synthetic_fields_ignored_with_real_trace(self, tmp_path):
        a = EvaluateSpec(trace="t.swf", window_jobs=50, jobs=100)
        b = EvaluateSpec(trace="t.swf", window_jobs=50, jobs=999)
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprints_differ_across_kinds(self):
        fps = {spec.fingerprint() for spec in ALL_SPECS}
        assert len(fps) == len(ALL_SPECS)


class TestSweep:
    BASE = EvaluateSpec(policies=("fcfs",), backfill=("none",), window_jobs=50)

    def test_expansion_order_last_axis_fastest(self):
        sweep = SweepSpec(
            base=self.BASE,
            grid={"warmup": [0, 5], "seed": [0, 1, 2]},
        )
        combos = [(c.warmup, c.seed) for c in sweep.expand()]
        assert combos == [(0, 0), (0, 1), (0, 2), (5, 0), (5, 1), (5, 2)]

    def test_children_are_validated_specs(self):
        sweep = SweepSpec(base=self.BASE, grid={"policies": [["f1"]]})
        (child,) = sweep.expand()
        assert isinstance(child, EvaluateSpec)
        assert child.policies == ("F1",)

    def test_invalid_grid_point_rejected_eagerly(self):
        with pytest.raises(SpecError, match="grid point"):
            SweepSpec(base=self.BASE, grid={"warmup": [0, -3]})

    def test_unknown_axis_rejected(self):
        with pytest.raises(SpecError, match="not a field"):
            SweepSpec(base=self.BASE, grid={"sharding": [1]})

    def test_empty_axis_rejected(self):
        with pytest.raises(SpecError, match="no values"):
            SweepSpec(base=self.BASE, grid={"warmup": []})

    def test_nested_sweep_rejected(self):
        inner = SweepSpec(base=self.BASE, grid={"warmup": [0]})
        with pytest.raises(SpecError, match="nest"):
            SweepSpec(base=inner, grid={"warmup": [0]})

    def test_missing_base_rejected(self):
        with pytest.raises(SpecError, match="base"):
            SweepSpec(grid={"warmup": [0]})

    def test_fingerprint_is_children_identity(self):
        a = SweepSpec(base=self.BASE, grid={"policies": [["fcfs"], ["f1"]]})
        b = SweepSpec(base=self.BASE, grid={"policies": [["FCFS"], ["F1"]]})
        assert a.fingerprint() == b.fingerprint()
        wider = SweepSpec(
            base=self.BASE, grid={"policies": [["fcfs"], ["f1"], ["spt"]]}
        )
        assert wider.fingerprint() != a.fingerprint()

    def test_overrides_labels(self):
        sweep = SweepSpec(base=self.BASE, grid={"warmup": [0, 5]})
        assert [o for o, _ in sweep.iter_grid()] == [
            {"warmup": 0},
            {"warmup": 5},
        ]


class TestSpecDataclassHygiene:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.kind)
    def test_frozen_and_hashable(self, spec):
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.seed = 99  # type: ignore[misc]
        hash(spec)  # tuple-typed fields keep specs hashable

    def test_base_class_refuses_unknown_dispatch(self):
        assert issubclass(SpecError, ValueError)
        with pytest.raises(SpecError):
            Spec.from_dict([1, 2, 3])

"""Tests for repro.sim.job (Job and Workload containers)."""

import numpy as np
import pytest

from repro.sim.job import Job, Workload, concat_workloads


class TestJob:
    def test_basic_construction(self):
        j = Job(job_id=1, submit=0.0, runtime=10.0, size=4)
        assert j.estimate == 10.0  # defaults to runtime
        assert j.area == 40.0

    def test_explicit_estimate(self):
        j = Job(job_id=1, submit=0.0, runtime=10.0, size=4, estimate=60.0)
        assert j.estimate == 60.0

    def test_negative_submit_rejected(self):
        with pytest.raises(ValueError):
            Job(job_id=1, submit=-1.0, runtime=10.0, size=1)

    def test_zero_runtime_rejected(self):
        with pytest.raises(ValueError):
            Job(job_id=1, submit=0.0, runtime=0.0, size=1)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Job(job_id=1, submit=0.0, runtime=1.0, size=0)

    def test_bad_estimate_rejected(self):
        with pytest.raises(ValueError):
            Job(job_id=1, submit=0.0, runtime=1.0, size=1, estimate=0.0)

    def test_immutable(self):
        j = Job(job_id=1, submit=0.0, runtime=1.0, size=1)
        with pytest.raises(AttributeError):
            j.runtime = 5.0


class TestWorkloadConstruction:
    def test_from_arrays_defaults(self):
        wl = Workload.from_arrays([0, 1], [5, 5], [1, 2])
        assert len(wl) == 2
        np.testing.assert_array_equal(wl.estimate, wl.runtime)
        np.testing.assert_array_equal(wl.job_ids, [0, 1])

    def test_auto_sorts_by_submit(self):
        wl = Workload.from_arrays([5.0, 1.0, 3.0], [1, 2, 3], [1, 1, 1])
        np.testing.assert_array_equal(wl.submit, [1.0, 3.0, 5.0])
        # attributes follow their jobs through the sort
        np.testing.assert_array_equal(wl.runtime, [2.0, 3.0, 1.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length mismatch"):
            Workload.from_arrays([0, 1], [5], [1, 1])

    def test_negative_submit_rejected(self):
        with pytest.raises(ValueError):
            Workload.from_arrays([-1.0], [1.0], [1])

    def test_zero_runtime_rejected(self):
        with pytest.raises(ValueError):
            Workload.from_arrays([0.0], [0.0], [1])

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Workload.from_arrays([0.0], [1.0], [0])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Workload.from_arrays([np.nan], [1.0], [1])

    def test_empty_ok(self):
        wl = Workload.from_arrays([], [], [])
        assert len(wl) == 0
        assert wl.span == 0.0

    def test_from_jobs_roundtrip(self):
        jobs = [
            Job(job_id=10, submit=0.0, runtime=3.0, size=2, estimate=5.0),
            Job(job_id=11, submit=1.0, runtime=4.0, size=1),
        ]
        wl = Workload.from_jobs(jobs, nmax=8)
        back = wl.to_jobs()
        assert back == jobs
        assert wl.nmax == 8


class TestWorkloadDerived:
    def test_area(self):
        wl = Workload.from_arrays([0, 1], [10, 20], [2, 3])
        assert wl.area == 10 * 2 + 20 * 3

    def test_span(self):
        wl = Workload.from_arrays([2.0, 10.0], [1, 1], [1, 1])
        assert wl.span == 8.0

    def test_utilization(self):
        wl = Workload.from_arrays([0.0, 100.0], [50, 50], [2, 2], nmax=4)
        # area=200, span=100, nmax=4 -> 0.5
        assert wl.utilization() == pytest.approx(0.5)

    def test_utilization_requires_nmax(self):
        wl = Workload.from_arrays([0.0, 1.0], [1, 1], [1, 1])
        with pytest.raises(ValueError):
            wl.utilization()

    def test_select_mask(self):
        wl = Workload.from_arrays([0, 1, 2], [1, 2, 3], [1, 1, 1])
        sub = wl.select(wl.runtime > 1.5)
        assert len(sub) == 2
        np.testing.assert_array_equal(sub.runtime, [2.0, 3.0])

    def test_shifted(self):
        wl = Workload.from_arrays([100.0, 110.0], [1, 1], [1, 1])
        sh = wl.shifted()
        np.testing.assert_array_equal(sh.submit, [0.0, 10.0])

    def test_shifted_min_submit(self):
        wl = Workload.from_arrays([100.0, 110.0], [1, 1], [1, 1])
        sh = wl.shifted(min_submit=1.0)
        np.testing.assert_array_equal(sh.submit, [1.0, 11.0])

    def test_with_estimates(self):
        wl = Workload.from_arrays([0, 1], [10, 10], [1, 1])
        wl2 = wl.with_estimates(np.array([20.0, 30.0]))
        np.testing.assert_array_equal(wl2.estimate, [20.0, 30.0])
        np.testing.assert_array_equal(wl.estimate, [10.0, 10.0])  # original intact

    def test_with_estimates_length_check(self):
        wl = Workload.from_arrays([0, 1], [10, 10], [1, 1])
        with pytest.raises(ValueError):
            wl.with_estimates(np.array([20.0]))

    def test_validate_for_machine(self):
        wl = Workload.from_arrays([0.0], [1.0], [8])
        wl.validate_for_machine(8)
        with pytest.raises(ValueError, match="needs 8 cores"):
            wl.validate_for_machine(4)

    def test_with_name(self):
        wl = Workload.from_arrays([0.0], [1.0], [1]).with_name("renamed")
        assert wl.name == "renamed"


class TestConcat:
    def test_concat(self):
        a = Workload.from_arrays([0.0], [1.0], [1], nmax=4)
        b = Workload.from_arrays([5.0], [2.0], [2], nmax=8)
        c = concat_workloads([a, b])
        assert len(c) == 2
        assert c.nmax == 8
        assert len(set(c.job_ids.tolist())) == 2

    def test_concat_empty_list_raises(self):
        with pytest.raises(ValueError):
            concat_workloads([])

#!/usr/bin/env python
"""CI gate: the kernel path reproduces the legacy simulation loop's bytes.

Runs the full evaluation matrix over the bundled ``tests/data/ctc_tiny.swf``
fixture twice, in one process with fresh caches:

1. through the production path — ``engine.simulate`` on the unified
   event kernel (:mod:`repro.sim.kernel`); and
2. with the engine replaced by the *frozen pre-kernel loop* kept under
   ``tests/oracle_sim.py``;

then byte-compares the resulting ``eval_matrix.json`` reports.  Any
behavioural drift in the kernel — start times, backfill flags, event
counts, seeding, window accounting — shows up as a byte difference.

When a C toolchain is available the kernel run is additionally repeated
with ``REPRO_SIM_KERNEL=c`` and ``=python`` and both must match, so the
compiled backend is held to the same bar as the pure-Python loop.

Usage: ``python scripts/check_kernel_parity.py`` (exit 0 on parity).
"""

from __future__ import annotations

import os
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "tests"))

TRACE = REPO / "tests" / "data" / "ctc_tiny.swf"
EVALUATE_ARGS = [
    "evaluate",
    "--trace",
    str(TRACE),
    "--policies",
    "fcfs,spt,f1",
    "--backfill",
    "none,easy,conservative",
    "--window-jobs",
    "50",
    "--warmup",
    "5",
    "--workers",
    "1",  # in-process so the oracle monkeypatch reaches every cell
]


def run_matrix_json(output_dir: Path, *, use_oracle: bool, backend: str) -> bytes:
    import oracle_sim

    import repro.eval.matrix as matrix_mod
    import repro.sim.engine as engine_mod
    from repro.cli import main

    real = engine_mod.simulate
    os.environ["REPRO_SIM_KERNEL"] = backend
    if use_oracle:
        matrix_mod.simulate = oracle_sim.oracle_schedule_result
        engine_mod.simulate = oracle_sim.oracle_schedule_result
    try:
        with tempfile.TemporaryDirectory() as cache:
            rc = main(
                EVALUATE_ARGS
                + ["--cache", cache, "--output-dir", str(output_dir)]
            )
    finally:
        matrix_mod.simulate = real
        engine_mod.simulate = real
        os.environ.pop("REPRO_SIM_KERNEL", None)
    if rc not in (0, None):
        raise SystemExit(f"evaluate exited with {rc}")
    return (output_dir / "eval_matrix.json").read_bytes()


def main_check() -> int:
    from repro.sim import _cbackend

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        oracle = run_matrix_json(
            tmp_path / "oracle", use_oracle=True, backend="python"
        )
        runs = {"kernel[python]": run_matrix_json(
            tmp_path / "kernel-py", use_oracle=False, backend="python"
        )}
        if _cbackend.load() is not None:
            runs["kernel[c]"] = run_matrix_json(
                tmp_path / "kernel-c", use_oracle=False, backend="c"
            )
        else:
            print("note: no C toolchain; compiled backend not exercised")
        failed = [name for name, data in runs.items() if data != oracle]
        for name, data in runs.items():
            status = "MATCH" if data == oracle else "DIFFERS"
            print(f"{name}: {len(data)} bytes vs legacy loop -> {status}")
    if failed:
        print(f"kernel parity FAILED for: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("kernel parity OK: eval_matrix.json byte-identical to the legacy loop")
    return 0


if __name__ == "__main__":
    raise SystemExit(main_check())

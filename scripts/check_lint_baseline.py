#!/usr/bin/env python3
"""Warn when lint suppression counts grow past the checked-in baseline.

Companion to the hard-fail `repro-sched lint` CI gate, in the same
shape as scripts/check_bench_regression.py: the gate keeps `src/` free
of *active* findings, while this script watches the escape hatch — the
per-rule count of `# repro: allow[...]` suppressions — against
scripts/lint_baseline.json. Growth means the codebase is accumulating
justified-but-real contract exceptions, which deserves a reviewer's
eye without blocking the build.

Warn-only by default (GitHub `::warning` annotations); `--strict`
turns growth into a failure, `--update` rewrites the baseline from the
current tree.

Usage:
    python scripts/check_lint_baseline.py [--strict] [--update]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from collections import Counter
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "scripts" / "lint_baseline.json"
SUPPORTED_SCHEMA = 1


def current_suppressions() -> dict[str, int]:
    """Per-rule suppression counts from a fresh `lint src --format json`."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint", "src", "--format", "json"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )
    # Exit 1 means active findings; the hard gate owns that failure,
    # but the JSON document is still complete and usable here.
    doc = json.loads(proc.stdout)
    if doc.get("schema") != SUPPORTED_SCHEMA:
        raise SystemExit(
            f"lint JSON schema {doc.get('schema')!r} is not the supported"
            f" schema {SUPPORTED_SCHEMA}; update this script"
        )
    counts: Counter[str] = Counter(
        f["rule"] for f in doc["findings"] if f["suppressed"]
    )
    return dict(sorted(counts.items()))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail (exit 1) on suppression growth instead of warning",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite scripts/lint_baseline.json from the current tree",
    )
    args = parser.parse_args()

    current = current_suppressions()

    if args.update:
        BASELINE_PATH.write_text(
            json.dumps({"suppressions": current}, indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        print(f"baseline updated: {BASELINE_PATH}")
        for rule, count in current.items():
            print(f"  {rule}: {count}")
        return 0

    if not BASELINE_PATH.exists():
        print(
            f"::warning title=lint baseline::no baseline at {BASELINE_PATH};"
            " run with --update to create one"
        )
        return 0

    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    allowed: dict[str, int] = baseline.get("suppressions", {})

    grown = []
    for rule in sorted(set(current) | set(allowed)):
        now, was = current.get(rule, 0), allowed.get(rule, 0)
        marker = ""
        if now > was:
            grown.append((rule, was, now))
            marker = "  <-- grew"
        print(f"{rule}: {now} suppression(s) (baseline {was}){marker}")

    if not grown:
        print("suppression counts within baseline")
        return 0

    for rule, was, now in grown:
        print(
            f"::warning title=lint suppression growth::{rule} has {now}"
            f" `# repro: allow` suppression(s), baseline is {was} —"
            " justify the new exceptions or fix the findings, then"
            " refresh with scripts/check_lint_baseline.py --update"
        )
    if args.strict:
        print("FAIL: suppression counts grew (--strict)")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

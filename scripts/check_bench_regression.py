#!/usr/bin/env python3
"""Compare fresh benchmark JSON against committed baselines (warn-only).

CI's perf-smoke job runs the fast benchmarks, which emit
``results/BENCH_<name>.json`` (see ``benchmarks/conftest.py``), and then
this script compares each against the matching baseline in
``benchmarks/baselines/``.  Two ratios are checked per bench:

* median wall time — a slowdown beyond ``--threshold`` (default 1.5x)
  is flagged;
* derived jobs/sec — a drop below ``1/threshold`` of baseline is
  flagged.

Hosted runners' absolute speed varies wildly, so by default the check is
**warn-only**: regressions are reported (and annotated in the GitHub
log) but the exit status stays 0.  Pass ``--strict`` to turn
regressions into a non-zero exit for environments with stable hardware,
or ``--strict-bench PATTERN`` (repeatable, fnmatch on the bench name)
to hard-gate only selected benches against the looser
``--strict-threshold`` — the perf-smoke job uses this for the kernel
benches, where losing the compiled fast path is a 10-100x cliff that a
3x gate catches without flaking on runner noise.
"""

from __future__ import annotations

import argparse
import json
import sys
from fnmatch import fnmatch
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load(path: Path) -> dict | None:
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"warning: unreadable bench JSON {path}: {exc}")
        return None
    if not isinstance(doc, dict) or "schema" not in doc:
        print(f"warning: {path} is not a bench result")
        return None
    return doc


def compare(baseline: dict, result: dict, threshold: float) -> list[str]:
    """Human-readable regression findings for one bench pair (may be empty)."""
    findings = []
    base_median = (baseline.get("stats") or {}).get("median")
    new_median = (result.get("stats") or {}).get("median")
    if base_median and new_median:
        ratio = new_median / base_median
        if ratio > threshold:
            findings.append(
                f"median wall time {new_median * 1e3:.2f}ms is {ratio:.2f}x the"
                f" baseline's {base_median * 1e3:.2f}ms (threshold {threshold}x)"
            )
    base_jps = baseline.get("jobs_per_sec")
    new_jps = result.get("jobs_per_sec")
    if base_jps and new_jps:
        ratio = new_jps / base_jps
        if ratio < 1 / threshold:
            findings.append(
                f"jobs/sec {new_jps:,.0f} is {ratio:.2f}x the baseline's"
                f" {base_jps:,.0f} (floor {1 / threshold:.2f}x)"
            )
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results",
        type=Path,
        default=REPO_ROOT / "results",
        help="directory of freshly emitted BENCH_*.json (default: results/)",
    )
    parser.add_argument(
        "--baselines",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "baselines",
        help="directory of committed baselines (default: benchmarks/baselines/)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        help="slowdown ratio that counts as a regression (default 1.5)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on regressions instead of warning",
    )
    parser.add_argument(
        "--strict-bench",
        action="append",
        default=[],
        metavar="PATTERN",
        help="fnmatch pattern of bench names (e.g. 'engine_*') that are"
        " hard-gated against --strict-threshold; repeatable",
    )
    parser.add_argument(
        "--strict-threshold",
        type=float,
        default=3.0,
        help="slowdown ratio that fails a --strict-bench match (default 3.0)",
    )
    args = parser.parse_args(argv)

    baselines = sorted(args.baselines.glob("BENCH_*.json"))
    if not baselines:
        print(f"no baselines under {args.baselines}; nothing to check")
        return 0
    n_regressions = 0
    n_strict_failures = 0
    n_compared = 0
    for base_path in baselines:
        baseline = _load(base_path)
        if baseline is None:
            continue
        bench_name = base_path.stem.removeprefix("BENCH_")
        strict_gated = any(fnmatch(bench_name, pat) for pat in args.strict_bench)
        result_path = args.results / base_path.name
        if not result_path.is_file():
            print(f"warning: no fresh result for {base_path.name} (bench not run?)")
            if strict_gated:
                # A gated bench that silently stops running is itself a
                # failure — otherwise the gate can be dodged by deletion.
                print(f"::error title={base_path.stem}::strict-gated bench missing")
                n_strict_failures += 1
            continue
        result = _load(result_path)
        if result is None:
            continue
        n_compared += 1
        findings = compare(baseline, result, args.threshold)
        base_median = (baseline.get("stats") or {}).get("median") or 0
        new_median = (result.get("stats") or {}).get("median") or 0
        status = "REGRESSION" if findings else "ok"
        gate = " [strict]" if strict_gated else ""
        print(
            f"{base_path.stem}: {status}{gate}"
            f" (median {new_median * 1e3:.2f}ms vs baseline {base_median * 1e3:.2f}ms)"
        )
        for finding in findings:
            n_regressions += 1
            # ::warning:: renders as an annotation in GitHub Actions logs
            # and as a plain line everywhere else.
            print(f"::warning title={base_path.stem}::{finding}")
        if strict_gated:
            hard = compare(baseline, result, args.strict_threshold)
            for finding in hard:
                n_strict_failures += 1
                print(f"::error title={base_path.stem}::{finding}")
    print(
        f"checked {n_compared}/{len(baselines)} baseline(s),"
        f" {n_regressions} regression finding(s),"
        f" {n_strict_failures} strict failure(s)"
    )
    if n_strict_failures:
        return 1
    if n_regressions and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Run manifests: one JSON summary of what a run did and where time went.

A *run manifest* (``run_manifest.json``) is written beside every report
when telemetry is enabled (``--telemetry``): the spec identity
(canonical fingerprint plus, for ``pwa:<name>`` traces, the registry's
pinned content hash), the execution knobs (workers, backend, seed), cache
hit/miss/byte accounting, per-phase wall-time durations (from the
tracer's top-level spans), jobs/events simulated and the resulting
jobs/sec.  ``repro-sched stats RUN_DIR`` renders it back as a terminal
breakdown (:func:`render_manifest`).

Manifests are *observations*, never inputs: nothing in a manifest feeds
a cache key, a fingerprint or an RNG draw, and writing one is atomic
(temp file + rename), so a crashed run never leaves a half manifest.
The result-relevant identities inside — spec fingerprint, trace content
hash — are stable across cache directories, worker counts and telemetry
on/off, which the determinism tests pin down.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

__all__ = [
    "MANIFEST_NAME",
    "MANIFEST_SCHEMA",
    "build_manifest",
    "machine_info",
    "read_manifest",
    "render_manifest",
    "write_manifest",
]

#: Bump when the manifest layout changes incompatibly.
MANIFEST_SCHEMA = 1

#: The file name every run writes (and ``repro-sched stats`` reads).
MANIFEST_NAME = "run_manifest.json"


def machine_info() -> dict:
    """The host facts a perf number is meaningless without."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def _spec_block(spec: Any) -> dict:
    """Identity block of the executed spec (tolerates ``None``)."""
    if spec is None:
        return {}
    block: dict = {
        "kind": getattr(spec, "kind", type(spec).__name__),
        "fingerprint": spec.fingerprint(),
    }
    doc = spec.to_dict()
    block["doc"] = doc
    # Result-relevant source identity: pwa:<name> references pin the
    # registry's content hash, so the manifest attests *which bytes*
    # were evaluated, not where they were cached.
    sources = {}
    for field in ("trace", "swf"):
        ref = doc.get(field)
        if isinstance(ref, str):
            try:
                from repro.specs.simulate import trace_ref_identity

                identity = trace_ref_identity(ref)
            except Exception:  # unfetched/unknown refs: record verbatim
                identity = ref
            sources[field] = {"ref": ref, "identity": identity}
    if sources:
        block["sources"] = sources
    return block


def _platform_block(spec: Any) -> dict | None:
    """Platform identity of the executed spec, ``None`` on flat machines.

    Mirrors :func:`repro.sim.platform.platform_identity` (plus the
    heterogeneous architecture list), so flat-machine manifests carry no
    platform block at all — their bytes match the pre-platform library.
    """
    if spec is None:
        return None
    hetero = getattr(spec, "hetero", None)
    if hetero is not None:
        return {"hetero": list(hetero)}
    from repro.sim.platform import platform_identity

    return platform_identity(
        getattr(spec, "topology", None),
        getattr(spec, "distribution", None),
        getattr(spec, "seed", 0),
    )


def build_manifest(
    *,
    registry: MetricsRegistry,
    tracer: Tracer | None = None,
    spec: Any = None,
    command: str | None = None,
    workers: int | str | None = None,
    chunk_size: int | None = None,
    backend: str | None = None,
    wall_seconds: float | None = None,
) -> dict:
    """Assemble the manifest document from one run's telemetry.

    *registry* should already include the run's cache counters (merge
    ``cache.metrics`` in before calling); *wall_seconds* is the caller's
    end-to-end measurement and the denominator of ``jobs_per_sec``.
    """
    metrics = registry.to_dict()
    counters = metrics["counters"]
    phases = tracer.phase_seconds() if tracer is not None else {}
    # Jobs simulated across both engines: the online scheduler
    # (evaluate/simulate/table4 cells) and the training trial simulator.
    jobs = counters.get("sim.jobs_completed", 0) + counters.get(
        "listsched.jobs", 0
    )
    doc: dict = {
        "schema": MANIFEST_SCHEMA,
        "command": command,
        "spec": _spec_block(spec),
        "execution": {
            "workers": workers,
            "chunk_size": chunk_size,
            "backend": backend,
            "argv": list(sys.argv[1:]) if sys.argv else [],
        },
        "runtime": {
            "shards": registry.timer_count("runtime.shard.wall"),
            "queue_tasks": counters.get("runtime.queue.tasks", 0),
            "queue_takeovers": counters.get("runtime.queue.takeovers", 0),
            "queue_worker_deaths": counters.get(
                "runtime.queue.worker_deaths", 0
            ),
            "queue_respawns": counters.get("runtime.queue.respawns", 0),
        },
        "machine": machine_info(),
        "phases": phases,
        "cache": {
            "hits": counters.get("cache.hits", 0),
            "misses": counters.get("cache.misses", 0),
            "bytes_stored": counters.get("cache.bytes_stored", 0),
            "bytes_loaded": counters.get("cache.bytes_loaded", 0),
        },
        "simulation": {
            "jobs_simulated": jobs,
            "events": counters.get("sim.events", 0),
            "engine_runs": counters.get("sim.runs", 0),
            "trials": counters.get("listsched.trials", 0),
            "backfilled": counters.get("sim.backfilled", 0),
            "backfill_passes": counters.get("sim.backfill_passes", 0),
        },
        "wall_seconds": wall_seconds,
        "jobs_per_sec": (
            jobs / wall_seconds if wall_seconds and wall_seconds > 0 else None
        ),
        "metrics": metrics,
    }
    seed = getattr(spec, "seed", None)
    if seed is not None:
        doc["execution"]["seed"] = seed
    platform_block = _platform_block(spec)
    if platform_block is not None:
        doc["platform"] = platform_block
    return doc


def write_manifest(directory: str | Path, manifest: dict) -> Path:
    """Atomically write ``run_manifest.json`` into *directory*."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / MANIFEST_NAME
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    try:
        tmp.write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def read_manifest(target: str | Path) -> dict:
    """Load a manifest from a run directory or a direct file path."""
    path = Path(target)
    if path.is_dir():
        path = path / MANIFEST_NAME
    if not path.is_file():
        raise FileNotFoundError(
            f"no {MANIFEST_NAME} at {path} — run with --telemetry to write one"
        )
    doc = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(doc, dict) or "schema" not in doc:
        raise ValueError(f"{path} is not a run manifest")
    return doc


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    return f"{n:.1f} GiB"  # pragma: no cover - loop always returns


def render_manifest(doc: dict) -> str:
    """Terminal breakdown of one manifest (the ``stats`` verb's output)."""
    spec = doc.get("spec") or {}
    execution = doc.get("execution") or {}
    cache = doc.get("cache") or {}
    sim = doc.get("simulation") or {}
    machine = doc.get("machine") or {}
    lines = [
        f"run manifest (schema {doc.get('schema')})"
        + (f" — {doc['command']}" if doc.get("command") else ""),
    ]
    if spec:
        lines.append(
            f"  spec: kind={spec.get('kind')} fingerprint={spec.get('fingerprint')}"
        )
        for field, src in (spec.get("sources") or {}).items():
            lines.append(f"  {field}: {src['ref']} (identity {src['identity']})")
    platform_block = doc.get("platform") or {}
    if platform_block.get("hetero"):
        lines.append("  platform: hetero=" + ",".join(platform_block["hetero"]))
    elif platform_block.get("topology"):
        lines.append(
            "  platform: topology="
            + "x".join(str(v) for v in platform_block["topology"])
            + f" distribution={platform_block.get('distribution')}"
            + (
                f" seed={platform_block['seed']}"
                if "seed" in platform_block
                else ""
            )
        )
    lines.append(
        "  execution: workers={} backend={} seed={}".format(
            execution.get("workers"),
            execution.get("backend"),
            execution.get("seed"),
        )
    )
    runtime = doc.get("runtime") or {}
    if runtime.get("queue_tasks"):
        lines.append(
            "  workqueue: {} tasks, {} takeovers, {} worker deaths,"
            " {} respawns".format(
                runtime.get("queue_tasks", 0),
                runtime.get("queue_takeovers", 0),
                runtime.get("queue_worker_deaths", 0),
                runtime.get("queue_respawns", 0),
            )
        )
    lines.append(
        "  machine: python {} on {} ({} cores)".format(
            machine.get("python"), machine.get("machine"), machine.get("cpu_count")
        )
    )
    wall = doc.get("wall_seconds")
    if wall is not None:
        lines.append(f"  wall time: {wall:.3f}s")
    phases = doc.get("phases") or {}
    if phases:
        lines.append("  phases:")
        width = max(len(name) for name in phases)
        for name, seconds in sorted(
            phases.items(), key=lambda kv: kv[1], reverse=True
        ):
            share = f" ({seconds / wall:5.1%})" if wall else ""
            lines.append(f"    {name.ljust(width)}  {seconds:9.3f}s{share}")
    jobs = sim.get("jobs_simulated", 0)
    jps = doc.get("jobs_per_sec")
    lines.append(
        f"  simulated: {jobs} jobs, {sim.get('events', 0)} events,"
        f" {sim.get('engine_runs', 0)} engine runs,"
        f" {sim.get('trials', 0)} trials"
        + (f" -> {jps:,.0f} jobs/sec" if jps else "")
    )
    if sim.get("backfilled") or sim.get("backfill_passes"):
        lines.append(
            f"  backfill: {sim.get('backfilled', 0)} jobs backfilled over"
            f" {sim.get('backfill_passes', 0)} passes"
        )
    total = cache.get("hits", 0) + cache.get("misses", 0)
    if total:
        lines.append(
            f"  cache: {cache.get('hits', 0)} hits / {cache.get('misses', 0)}"
            f" misses ({cache.get('hits', 0) / total:.0%} hit rate),"
            f" stored {_fmt_bytes(cache.get('bytes_stored', 0))},"
            f" loaded {_fmt_bytes(cache.get('bytes_loaded', 0))}"
        )
    else:
        lines.append("  cache: not used")
    timers = (doc.get("metrics") or {}).get("timers") or {}
    if timers:
        lines.append("  timers (cumulative):")
        width = max(len(name) for name in timers)
        for name, entry in sorted(
            timers.items(), key=lambda kv: kv[1]["seconds"], reverse=True
        ):
            lines.append(
                f"    {name.ljust(width)}  {entry['seconds']:9.3f}s"
                f"  x{entry['count']}"
            )
    return "\n".join(lines)

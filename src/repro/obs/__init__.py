"""repro.obs — zero-dependency telemetry: metrics, spans, run manifests.

The observability layer of the library, in three pieces:

* :mod:`repro.obs.metrics` — a process-local
  :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges and
  monotonic timers.  Worker processes collect into their own registry
  and ship it back on the result channel (next to
  :class:`~repro.runtime.ProgressAggregator` ticks); the parent merges,
  so merged parallel metrics equal serial metrics.
* :mod:`repro.obs.tracing` — nested wall-time spans
  (``with span("eval.cell", policy=...)``) collected into an in-memory
  tree, exportable as JSONL; top-level spans become the manifest's
  per-phase durations.
* :mod:`repro.obs.manifest` — the ``run_manifest.json`` written beside
  every report under ``--telemetry`` (spec fingerprint, trace content
  hashes, seed, workers, cache hit/miss/bytes, phase timings, jobs
  simulated, jobs/sec) and its terminal renderer (``repro-sched
  stats``).

**The contract, CI-enforced:** telemetry never forks a result.  The
ambient registry/tracer default to no-op nulls, recording happens at
event/shard/cell granularity (never in a per-job inner loop), and
nothing recorded ever feeds a cache key, a spec fingerprint or an RNG
draw — a run with ``--telemetry`` produces byte-identical result
JSON/CSV to one without.
"""

from repro.obs.manifest import (
    MANIFEST_NAME,
    MANIFEST_SCHEMA,
    build_manifest,
    machine_info,
    read_manifest,
    render_manifest,
    write_manifest,
)
from repro.obs.metrics import (
    NULL_REGISTRY,
    MetricsDelta,
    MetricsRegistry,
    NullRegistry,
    current_registry,
    use_registry,
)
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    span,
    use_tracer,
)

__all__ = [
    "MANIFEST_NAME",
    "MANIFEST_SCHEMA",
    "MetricsDelta",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "Span",
    "Tracer",
    "build_manifest",
    "current_registry",
    "current_tracer",
    "machine_info",
    "read_manifest",
    "render_manifest",
    "span",
    "use_registry",
    "use_tracer",
    "write_manifest",
]

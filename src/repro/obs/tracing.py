"""Nested wall-time spans with JSONL export.

A *span* is one timed block with a name and attributes::

    with span("eval.cell", policy="f1", window=3):
        ...

Spans nest into an in-memory tree on the ambient :class:`Tracer`
(installed with :func:`use_tracer`; the default is a no-op
:data:`NULL_TRACER`, so instrumentation can stay in the code
unconditionally).  The tree exports as JSON Lines — one object per
span, depth-first, each carrying ``id``/``parent`` so the tree can be
rebuilt — and :meth:`Tracer.phase_seconds` aggregates top-level spans
into the per-phase durations the run manifest records.

Spans are parent-process-only: worker processes report through the
:mod:`repro.obs.metrics` registry channel instead (shipping a span tree
across a pickle boundary would cost more than it tells).  Like metrics,
spans never feed back into results, cache keys or RNG draws.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections.abc import Callable
from contextlib import contextmanager
from pathlib import Path

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "current_tracer",
    "span",
    "use_tracer",
]


class Span:
    """One node of the span tree."""

    __slots__ = ("name", "attrs", "start", "end", "children")

    def __init__(self, name: str, attrs: dict, start: float) -> None:
        self.name = name
        self.attrs = attrs
        self.start = start
        self.end: float | None = None
        self.children: list["Span"] = []

    @property
    def seconds(self) -> float:
        """Wall time of the span (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self, span_id: int, parent: int | None) -> dict:
        return {
            "id": span_id,
            "parent": parent,
            "name": self.name,
            "seconds": self.seconds,
            "attrs": self.attrs,
        }


class Tracer:
    """Collects a tree of spans against a monotonic clock.

    ``now=`` injection makes durations deterministic in tests.  The
    tracer is thread-confined by design: spans record the main
    process's phase structure (worker wall time arrives via metrics).
    """

    def __init__(self, now: Callable[[], float] = time.perf_counter) -> None:
        self._now = now
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    @property
    def enabled(self) -> bool:
        """Whether spans actually record (``False`` only for null)."""
        return True

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a child span of the innermost open span."""
        node = Span(name, attrs, self._now())
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.roots.append(node)
        self._stack.append(node)
        try:
            yield node
        finally:
            node.end = self._now()
            self._stack.pop()

    # -- aggregation and export ----------------------------------------
    def phase_seconds(self) -> dict[str, float]:
        """Total wall seconds per *top-level* span name.

        Multiple top-level spans with one name (e.g. per-row table4
        dispatches) sum; nested spans are deliberately excluded so the
        phases partition the run instead of double-counting.
        """
        out: dict[str, float] = {}
        for root in self.roots:
            out[root.name] = out.get(root.name, 0.0) + root.seconds
        return out

    def to_records(self) -> list[dict]:
        """Depth-first flattening, each record with ``id``/``parent``."""
        records: list[dict] = []

        def walk(node: Span, parent: int | None) -> None:
            span_id = len(records)
            records.append(node.to_dict(span_id, parent))
            for child in node.children:
                walk(child, span_id)

        for root in self.roots:
            walk(root, None)
        return records

    def to_jsonl(self) -> str:
        """One JSON object per span, depth-first (JSON Lines)."""
        return "".join(
            json.dumps(record, sort_keys=True) + "\n"
            for record in self.to_records()
        )

    def write_jsonl(self, path: str | Path) -> Path:
        """Write the JSONL export to *path* (parent dirs created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
        tmp.write_text(self.to_jsonl(), encoding="utf-8")
        os.replace(tmp, path)
        return path


class _NullSpanContext:
    """Shared no-op span context."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        pass


_NULL_SPAN = _NullSpanContext()


class NullTracer(Tracer):
    """The disabled path: spans cost one method call and record nothing."""

    @property
    def enabled(self) -> bool:
        return False

    def span(self, name: str, **attrs):  # type: ignore[override]
        return _NULL_SPAN


#: The ambient default: spans recorded into it vanish.
NULL_TRACER = NullTracer()

_current: Tracer = NULL_TRACER
_current_lock = threading.Lock()


def current_tracer() -> Tracer:
    """The ambient tracer (:data:`NULL_TRACER` unless one is in use)."""
    return _current


def span(name: str, **attrs):
    """Open a span on the ambient tracer (no-op without one in use)."""
    return _current.span(name, **attrs)


@contextmanager
def use_tracer(tracer: Tracer):
    """Install *tracer* as the ambient span sink for the enclosed block."""
    global _current
    with _current_lock:
        previous = _current
        _current = tracer
    try:
        yield tracer
    finally:
        with _current_lock:
            _current = previous

"""Process-local metrics: counters, gauges and monotonic timers.

:class:`MetricsRegistry` is the library's one metrics sink.  Counters
and gauges are plain dict entries; timers accumulate
``(seconds, count, max)`` from a monotonic clock (``time.perf_counter``
by default — inject ``now=`` for deterministic tests).  A registry
serialises losslessly to plain JSON (:meth:`MetricsRegistry.to_dict`)
and merges additively (:meth:`MetricsRegistry.merge`), which is how
worker processes report: each chunk runner collects into a fresh
registry, ships its ``to_dict()`` back on the result channel next to
the chunk's results, and the parent merges it — the same path
:class:`~repro.runtime.ProgressAggregator` rides.

The **disabled path is a no-op**: the ambient registry defaults to
:data:`NULL_REGISTRY`, whose methods do nothing and whose timer is a
shared, allocation-free context manager.  Instrumentation therefore
lives at event/shard/cell granularity (never inside a per-job inner
loop) and can stay unconditionally in the code: recording to the null
registry costs one method call.

Nothing in this module can change a result: registries never feed back
into cache keys, fingerprints or RNG draws (see
``docs/observability.md`` — the never-forks-a-fingerprint contract).
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Mapping
from contextlib import contextmanager

__all__ = [
    "MetricsDelta",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "current_registry",
    "use_registry",
]


class _Timer:
    """One named timer's accumulated state."""

    __slots__ = ("seconds", "count", "max")

    def __init__(self) -> None:
        self.seconds = 0.0
        self.count = 0
        self.max = 0.0

    def add(self, seconds: float, count: int = 1) -> None:
        self.seconds += seconds
        self.count += count
        if seconds > self.max:
            self.max = seconds

    def to_dict(self) -> dict:
        return {"seconds": self.seconds, "count": self.count, "max": self.max}


class _TimerContext:
    """Reusable-per-call context manager for :meth:`MetricsRegistry.timer`."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_TimerContext":
        self._start = self._registry._now()
        return self

    def __exit__(self, *exc: object) -> None:
        self._registry.add_time(
            self._name, self._registry._now() - self._start
        )


class MetricsRegistry:
    """Counters, gauges and timers for one process (thread-safe).

    All mutation goes through :meth:`inc` / :meth:`set_gauge` /
    :meth:`add_time` (or the :meth:`timer` context manager), so a
    registry can be fed from executor threads as safely as from the
    main loop.
    """

    def __init__(self, now: Callable[[], float] = time.perf_counter) -> None:
        self._now = now
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, _Timer] = {}

    # -- recording ------------------------------------------------------
    def inc(self, name: str, n: float = 1) -> None:
        """Add *n* to counter *name* (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value* (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def add_time(self, name: str, seconds: float, count: int = 1) -> None:
        """Fold an externally measured duration into timer *name*."""
        with self._lock:
            timer = self._timers.get(name)
            if timer is None:
                timer = self._timers[name] = _Timer()
            timer.add(seconds, count)

    def timer(self, name: str) -> _TimerContext:
        """``with registry.timer("phase"):`` — time a block into *name*."""
        return _TimerContext(self, name)

    # -- reading --------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether recording actually persists (``False`` only for null)."""
        return True

    def value(self, name: str, default: float = 0) -> float:
        """Current value of counter *name* (*default* if never touched)."""
        return self._counters.get(name, default)

    def gauge(self, name: str, default: float = float("nan")) -> float:
        """Current value of gauge *name*."""
        return self._gauges.get(name, default)

    def timer_seconds(self, name: str) -> float:
        """Accumulated seconds of timer *name* (0.0 if never started)."""
        timer = self._timers.get(name)
        return timer.seconds if timer is not None else 0.0

    def timer_count(self, name: str) -> int:
        """How many measurements timer *name* accumulated."""
        timer = self._timers.get(name)
        return timer.count if timer is not None else 0

    # -- serialisation and merging -------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON snapshot: ``{"counters", "gauges", "timers"}``."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {k: t.to_dict() for k, t in self._timers.items()},
            }

    def merge(self, other: "MetricsRegistry | Mapping") -> None:
        """Fold *other* (a registry or a :meth:`to_dict` document) in.

        Counters and timer totals add; gauges are last-write; timer
        ``max`` takes the maximum.  Merging is associative and
        order-independent for counters/timers, which is what makes the
        merged metrics of N worker processes equal the serial run's
        (the workers partition the same work-list).
        """
        doc = other.to_dict() if isinstance(other, MetricsRegistry) else other
        with self._lock:
            for name, n in doc.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + n
            for name, value in doc.get("gauges", {}).items():
                self._gauges[name] = value
            for name, entry in doc.get("timers", {}).items():
                timer = self._timers.get(name)
                if timer is None:
                    timer = self._timers[name] = _Timer()
                timer.seconds += entry["seconds"]
                timer.count += entry["count"]
                timer.max = max(timer.max, entry["max"])

    # -- snapshots ------------------------------------------------------
    def delta(self) -> "MetricsDelta":
        """Snapshot the counters for later difference-taking.

        The one helper behind every "how much did this sub-run hit the
        cache" question::

            snap = cache.metrics.delta()
            ...  # run something
            changes = snap.since()          # {"cache.hits": 3, ...}

        replacing the historical ``before = (cache.hits, cache.misses)``
        tuple-juggling at each call site.
        """
        with self._lock:
            return MetricsDelta(self, dict(self._counters))


class MetricsDelta:
    """Counter snapshot; :meth:`since` yields what changed afterwards."""

    __slots__ = ("_registry", "_before")

    def __init__(self, registry: MetricsRegistry, before: dict[str, float]) -> None:
        self._registry = registry
        self._before = before

    def since(self) -> dict[str, float]:
        """Non-zero counter increments recorded since the snapshot."""
        with self._registry._lock:
            current = dict(self._registry._counters)
        out = {}
        for name, value in current.items():
            d = value - self._before.get(name, 0)
            if d:
                out[name] = d
        return out

    def value(self, name: str) -> float:
        """Increment of one counter since the snapshot (0 if unchanged)."""
        return self._registry.value(name) - self._before.get(name, 0)


class _NullTimerContext:
    """Shared, allocation-free no-op timer context."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimerContext":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NULL_TIMER = _NullTimerContext()


class NullRegistry(MetricsRegistry):
    """The disabled path: every recording method is a no-op.

    Reading methods return empty/zero values, so code may query the
    ambient registry unconditionally.  This is the default ambient
    registry — telemetry collection only happens inside a
    :func:`use_registry` block.
    """

    def __init__(self) -> None:
        super().__init__()

    @property
    def enabled(self) -> bool:
        return False

    def inc(self, name: str, n: float = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def add_time(self, name: str, seconds: float, count: int = 1) -> None:
        pass

    def timer(self, name: str) -> _NullTimerContext:
        return _NULL_TIMER

    def merge(self, other: "MetricsRegistry | Mapping") -> None:
        pass


#: The ambient default: recording into it does nothing.
NULL_REGISTRY = NullRegistry()

_current: MetricsRegistry = NULL_REGISTRY
_current_lock = threading.Lock()


def current_registry() -> MetricsRegistry:
    """The ambient registry (:data:`NULL_REGISTRY` unless one is in use)."""
    return _current


@contextmanager
def use_registry(registry: MetricsRegistry):
    """Install *registry* as the ambient sink for the enclosed block.

    Nesting restores the previous registry on exit; exceptions
    propagate.  The ambient registry is process-global (worker processes
    start at :data:`NULL_REGISTRY` and install their own), matching the
    library's process-pool execution model.
    """
    global _current
    with _current_lock:
        previous = _current
        _current = registry
    try:
        yield registry
    finally:
        with _current_lock:
            _current = previous

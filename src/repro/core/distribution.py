"""The pooled ``score(r, n, s)`` distribution (§3.2) and its CSV format.

Joining the per-tuple trial scores yields the training set for the
regression: one ``(runtime, #processors, submit time, score)`` row per
probe task.  The on-disk format matches the paper's artifact
(``score-distribution.csv``), so distributions produced by the original
prototypes can be loaded directly.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.trials import TrialScoreResult
from repro.util.validation import check_finite

__all__ = ["ScoreDistribution"]


@dataclass(frozen=True)
class ScoreDistribution:
    """Training observations: features (r, n, s) and target score."""

    runtime: np.ndarray
    size: np.ndarray
    submit: np.ndarray
    score: np.ndarray

    def __post_init__(self) -> None:
        arrays = {}
        n = None
        for name in ("runtime", "size", "submit", "score"):
            arr = np.ascontiguousarray(getattr(self, name), dtype=np.float64)
            check_finite(name, arr)
            if n is None:
                n = len(arr)
            elif len(arr) != n:
                raise ValueError(f"{name} length {len(arr)} != {n}")
            arrays[name] = arr
        for name, arr in arrays.items():
            object.__setattr__(self, name, arr)

    def __len__(self) -> int:
        return len(self.runtime)

    # ------------------------------------------------------------------
    @classmethod
    def from_trial_results(
        cls, results: Iterable[TrialScoreResult]
    ) -> "ScoreDistribution":
        """Pool the probe-task observations of many tuples."""
        results = list(results)
        if not results:
            raise ValueError("no trial results to pool")
        return cls(
            runtime=np.concatenate([r.runtime for r in results]),
            size=np.concatenate([r.size for r in results]),
            submit=np.concatenate([r.submit for r in results]),
            score=np.concatenate([r.scores for r in results]),
        )

    def merged_with(self, other: "ScoreDistribution") -> "ScoreDistribution":
        """Concatenate two distributions (e.g. resumed training runs)."""
        return ScoreDistribution(
            runtime=np.concatenate([self.runtime, other.runtime]),
            size=np.concatenate([self.size, other.size]),
            submit=np.concatenate([self.submit, other.submit]),
            score=np.concatenate([self.score, other.score]),
        )

    def subsample(self, max_points: int, *, seed: int = 0) -> "ScoreDistribution":
        """Deterministic subsample used to bound regression cost."""
        if max_points >= len(self):
            return self
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(self), size=max_points, replace=False)
        idx.sort()
        return ScoreDistribution(
            runtime=self.runtime[idx],
            size=self.size[idx],
            submit=self.submit[idx],
            score=self.score[idx],
        )

    # ------------------------------------------------------------------
    # artifact-compatible CSV
    # ------------------------------------------------------------------
    def to_csv(self, path: str | Path) -> None:
        """Write ``runtime,#processors,submit time,score`` rows."""
        lines = []
        for i in range(len(self)):
            lines.append(
                f"{self.runtime[i]:.1f},{self.size[i]:.1f},"
                f"{self.submit[i]:.1f},{self.score[i]:.13g}"
            )
        Path(path).write_text("\n".join(lines) + ("\n" if lines else ""), "utf-8")

    @classmethod
    def from_csv(cls, path: str | Path) -> "ScoreDistribution":
        """Load an artifact-format ``score-distribution.csv``."""
        rows: list[Sequence[float]] = []
        for lineno, line in enumerate(Path(path).read_text("utf-8").splitlines(), 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(",")
            if len(parts) != 4:
                raise ValueError(f"{path}:{lineno}: expected 4 columns, got {len(parts)}")
            rows.append([float(x) for x in parts])
        if not rows:
            raise ValueError(f"{path}: empty score distribution")
        mat = np.asarray(rows, dtype=float)
        return cls(runtime=mat[:, 0], size=mat[:, 1], submit=mat[:, 2], score=mat[:, 3])

"""Permutation trials and task scores (§3.2, Eq. 3).

For a tuple ``(S, Q)`` the paper simulates many *trials*: pairs ``(S, p)``
where ``p`` is a random permutation of ``Q`` used as the waiting-queue
priority order.  Each trial yields the average bounded slowdown of the
probe set; the **score** of a task ``t`` is the share of total slowdown
mass carried by the trials where ``t`` heads the permutation:

.. math::

   score(t) = \\frac{\\sum_{p_j \\in P(t_0=t)} AVEbsld(p_j)}
                    {\\sum_{p_k \\in P} AVEbsld(p_k)}

Tasks with lower score improve the queue's slowdown when run first.

Permutations are generated in *balanced blocks* (every task heads exactly
one permutation per block), which stratifies Eq. 3's estimator: the
denominator is identical in expectation for all tasks, scores sum exactly
to 1, and the variance at a given trial budget drops — Figure 2's
convergence study is reproduced on this estimator.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.core.taskgen import TaskSetTuple
from repro.sim.listsched import simulate_fixed_priority_batch
from repro.sim.metrics import DEFAULT_TAU
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_positive, check_positive_int

#: Trials simulated per kernel batch call.  Bounds the size of the
#: per-chunk priority/start matrices (CHUNK x |S|+|Q| float64) while
#: amortising batch setup; results are chunk-size independent because
#: trials are mutually independent.
_TRIAL_CHUNK = 16384

__all__ = ["TrialScoreResult", "balanced_trial_count", "run_trials"]


@dataclass(frozen=True)
class TrialScoreResult:
    """Scores of one tuple's probe set plus per-trial raw material.

    Attributes
    ----------
    runtime, size, submit:
        Attributes of the |Q| probe tasks (feature columns of the
        training observations).
    scores:
        Eq. 3 score per probe task (sums to 1 for balanced trials).
    first_task:
        Index into Q of the permutation head, per trial.
    trial_avebsld:
        ``AVEbsld`` of each trial.
    """

    runtime: np.ndarray
    size: np.ndarray
    submit: np.ndarray
    scores: np.ndarray
    first_task: np.ndarray
    trial_avebsld: np.ndarray

    @property
    def n_trials(self) -> int:
        """Number of simulated permutations."""
        return len(self.trial_avebsld)

    def observations(self) -> np.ndarray:
        """The (r, n, s, score) rows this tuple contributes to training."""
        return np.column_stack([self.runtime, self.size, self.submit, self.scores])


def _balanced_heads(n_trials: int, q_size: int) -> int:
    """Round the trial budget to whole balanced blocks (>= 1 block)."""
    blocks = max(n_trials // q_size, 1)
    return blocks


def balanced_trial_count(n_trials: int, q_size: int) -> int:
    """The trial count actually run after balanced-block rounding.

    Callers (e.g. the parallel runtime) use this to detect — and warn
    about — the rounding before dispatching work.
    """
    return _balanced_heads(n_trials, q_size) * q_size


#: Prefix of the rounding warning (kept stable so dispatchers that warn
#: up front can suppress the per-tuple duplicates by message match).
ROUNDING_WARNING_PREFIX = "balanced trials run in whole blocks"


def format_rounding_warning(n_trials: int, q_size: int) -> str:
    """The rounding warning text, shared by run_trials and dispatchers."""
    n_blocks = _balanced_heads(n_trials, q_size)
    return (
        f"{ROUNDING_WARNING_PREFIX} of |Q|={q_size}: "
        f"n_trials={n_trials} adjusted to {n_blocks * q_size} "
        f"({n_blocks} block(s))"
    )


def run_trials(
    tup: TaskSetTuple,
    nmax: int,
    n_trials: int,
    *,
    seed: SeedLike = None,
    balanced: bool = True,
    tau: float = DEFAULT_TAU,
) -> TrialScoreResult:
    """Run permutation trials for one (S, Q) tuple and score its tasks.

    Parameters
    ----------
    tup:
        The task-set tuple; S jobs always outrank Q jobs in the queue
        (they model the machine's initial state).
    nmax:
        Machine size (the paper uses 256 cores for training).
    n_trials:
        Trial budget.  With *balanced* (default) the budget is rounded
        down to a multiple of |Q| (at least one block) so every task
        heads the same number of permutations: the actual trial count is
        ``max(n_trials // len(Q), 1) * len(Q)``.  In particular,
        ``n_trials < len(Q)`` collapses to a single block of ``len(Q)``
        trials.  A :class:`UserWarning` is emitted whenever the rounded
        count differs from the requested budget.
    seed, tau:
        Reproducibility / Eq. 1 constant.

    Notes
    -----
    Within a trial the queue order is: all of S (by arrival), then Q by
    permutation position.  Jobs still only start once they have arrived
    and the queue head blocks (no backfilling) — see
    :mod:`repro.sim.listsched`.
    """
    check_positive_int("nmax", nmax)
    check_positive_int("n_trials", n_trials)
    rng = as_generator(seed)

    S, Q = tup.S, tup.Q
    m_s, m_q = len(S), len(Q)
    submit = np.concatenate([S.submit, Q.submit])
    runtime = np.concatenate([S.runtime, Q.runtime])
    size = np.concatenate([S.size, Q.size]).astype(np.int64)
    if int(size.max()) > nmax:
        raise ValueError("tuple contains a job larger than the machine")

    q_submit = Q.submit
    q_runtime = Q.runtime

    # Permutation matrix P: row k is trial k's queue order over Q.  The
    # RNG draws happen in the exact stream order of the historical
    # per-trial loop (tail copy then in-place shuffle per trial), so
    # seeded results are unchanged; batching only changes *when* the
    # simulations run, not which permutations they see.
    if balanced:
        n_blocks = _balanced_heads(n_trials, m_q)
        if n_blocks * m_q != n_trials:
            warnings.warn(format_rounding_warning(n_trials, m_q), stacklevel=2)
        total = n_blocks * m_q
        all_tasks = np.arange(m_q)
        tails = [np.delete(all_tasks, head) for head in range(m_q)]
        P = np.empty((total, m_q), dtype=np.int64)
        k = 0
        for _ in range(n_blocks):
            for head in range(m_q):
                P[k, 0] = head
                P[k, 1:] = tails[head]
                rng.shuffle(P[k, 1:])  # contiguous row view: same stream
                k += 1
    else:
        total = n_trials
        P = np.empty((total, m_q), dtype=np.int64)
        for k in range(total):
            P[k] = rng.permutation(m_q)

    m = m_s + m_q
    trial_avebsld = np.empty(total, dtype=float)
    q_ranks = (m_s + np.arange(m_q)).astype(float)[None, :]
    tau = check_positive("tau", tau)
    for lo in range(0, total, _TRIAL_CHUNK):
        hi = min(lo + _TRIAL_CHUNK, total)
        # priorities[k, m_s + P[k, j]] = m_s + j: S always outranks Q,
        # Q by permutation position.
        priorities = np.empty((hi - lo, m), dtype=np.float64)
        priorities[:, :m_s] = np.arange(m_s)
        np.put_along_axis(priorities[:, m_s:], P[lo:hi], q_ranks, axis=1)
        starts = simulate_fixed_priority_batch(
            submit, runtime, size, priorities, nmax
        )
        # Eq. 1/2 over the probe rows of the whole chunk in one shot;
        # per-row bits match average_bounded_slowdown on the 1-D slice.
        wait_q = starts[:, m_s:] - q_submit
        bsld = np.maximum((wait_q + q_runtime) / np.maximum(q_runtime, tau), 1.0)
        trial_avebsld[lo:hi] = bsld.mean(axis=1)

    first_task = P[:, 0].copy()
    sum_by_first = np.zeros(m_q, dtype=float)
    # np.add.at applies increments in index order — the same accumulation
    # order as the historical sequential loop, so the float sums match.
    np.add.at(sum_by_first, first_task, trial_avebsld)

    denom = trial_avebsld.sum()
    scores = sum_by_first / denom

    return TrialScoreResult(
        runtime=q_runtime.copy(),
        size=Q.size.astype(float).copy(),
        submit=q_submit.copy(),
        scores=scores,
        first_task=first_task,
        trial_avebsld=trial_avebsld,
    )

"""Permutation trials and task scores (§3.2, Eq. 3).

For a tuple ``(S, Q)`` the paper simulates many *trials*: pairs ``(S, p)``
where ``p`` is a random permutation of ``Q`` used as the waiting-queue
priority order.  Each trial yields the average bounded slowdown of the
probe set; the **score** of a task ``t`` is the share of total slowdown
mass carried by the trials where ``t`` heads the permutation:

.. math::

   score(t) = \\frac{\\sum_{p_j \\in P(t_0=t)} AVEbsld(p_j)}
                    {\\sum_{p_k \\in P} AVEbsld(p_k)}

Tasks with lower score improve the queue's slowdown when run first.

Permutations are generated in *balanced blocks* (every task heads exactly
one permutation per block), which stratifies Eq. 3's estimator: the
denominator is identical in expectation for all tasks, scores sum exactly
to 1, and the variance at a given trial budget drops — Figure 2's
convergence study is reproduced on this estimator.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.core.taskgen import TaskSetTuple
from repro.sim.listsched import simulate_fixed_priority
from repro.sim.metrics import DEFAULT_TAU, average_bounded_slowdown
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_positive_int

__all__ = ["TrialScoreResult", "balanced_trial_count", "run_trials"]


@dataclass(frozen=True)
class TrialScoreResult:
    """Scores of one tuple's probe set plus per-trial raw material.

    Attributes
    ----------
    runtime, size, submit:
        Attributes of the |Q| probe tasks (feature columns of the
        training observations).
    scores:
        Eq. 3 score per probe task (sums to 1 for balanced trials).
    first_task:
        Index into Q of the permutation head, per trial.
    trial_avebsld:
        ``AVEbsld`` of each trial.
    """

    runtime: np.ndarray
    size: np.ndarray
    submit: np.ndarray
    scores: np.ndarray
    first_task: np.ndarray
    trial_avebsld: np.ndarray

    @property
    def n_trials(self) -> int:
        """Number of simulated permutations."""
        return len(self.trial_avebsld)

    def observations(self) -> np.ndarray:
        """The (r, n, s, score) rows this tuple contributes to training."""
        return np.column_stack([self.runtime, self.size, self.submit, self.scores])


def _balanced_heads(n_trials: int, q_size: int) -> int:
    """Round the trial budget to whole balanced blocks (>= 1 block)."""
    blocks = max(n_trials // q_size, 1)
    return blocks


def balanced_trial_count(n_trials: int, q_size: int) -> int:
    """The trial count actually run after balanced-block rounding.

    Callers (e.g. the parallel runtime) use this to detect — and warn
    about — the rounding before dispatching work.
    """
    return _balanced_heads(n_trials, q_size) * q_size


#: Prefix of the rounding warning (kept stable so dispatchers that warn
#: up front can suppress the per-tuple duplicates by message match).
ROUNDING_WARNING_PREFIX = "balanced trials run in whole blocks"


def format_rounding_warning(n_trials: int, q_size: int) -> str:
    """The rounding warning text, shared by run_trials and dispatchers."""
    n_blocks = _balanced_heads(n_trials, q_size)
    return (
        f"{ROUNDING_WARNING_PREFIX} of |Q|={q_size}: "
        f"n_trials={n_trials} adjusted to {n_blocks * q_size} "
        f"({n_blocks} block(s))"
    )


def run_trials(
    tup: TaskSetTuple,
    nmax: int,
    n_trials: int,
    *,
    seed: SeedLike = None,
    balanced: bool = True,
    tau: float = DEFAULT_TAU,
) -> TrialScoreResult:
    """Run permutation trials for one (S, Q) tuple and score its tasks.

    Parameters
    ----------
    tup:
        The task-set tuple; S jobs always outrank Q jobs in the queue
        (they model the machine's initial state).
    nmax:
        Machine size (the paper uses 256 cores for training).
    n_trials:
        Trial budget.  With *balanced* (default) the budget is rounded
        down to a multiple of |Q| (at least one block) so every task
        heads the same number of permutations: the actual trial count is
        ``max(n_trials // len(Q), 1) * len(Q)``.  In particular,
        ``n_trials < len(Q)`` collapses to a single block of ``len(Q)``
        trials.  A :class:`UserWarning` is emitted whenever the rounded
        count differs from the requested budget.
    seed, tau:
        Reproducibility / Eq. 1 constant.

    Notes
    -----
    Within a trial the queue order is: all of S (by arrival), then Q by
    permutation position.  Jobs still only start once they have arrived
    and the queue head blocks (no backfilling) — see
    :mod:`repro.sim.listsched`.
    """
    check_positive_int("nmax", nmax)
    check_positive_int("n_trials", n_trials)
    rng = as_generator(seed)

    S, Q = tup.S, tup.Q
    m_s, m_q = len(S), len(Q)
    submit = np.concatenate([S.submit, Q.submit])
    runtime = np.concatenate([S.runtime, Q.runtime])
    size = np.concatenate([S.size, Q.size]).astype(np.int64)
    if int(size.max()) > nmax:
        raise ValueError("tuple contains a job larger than the machine")

    priority = np.empty(m_s + m_q, dtype=float)
    priority[:m_s] = np.arange(m_s)  # S first, in arrival order

    q_submit = Q.submit
    q_runtime = Q.runtime

    if balanced:
        n_blocks = _balanced_heads(n_trials, m_q)
        if n_blocks * m_q != n_trials:
            warnings.warn(format_rounding_warning(n_trials, m_q), stacklevel=2)
        # One tail template per head, hoisted out of the block loop; the
        # shuffle consumes identical values in the same RNG order as the
        # per-trial np.delete it replaces, so results are unchanged.
        all_tasks = np.arange(m_q)
        tails = [np.delete(all_tasks, head) for head in range(m_q)]
        heads_per_trial: list[np.ndarray] = []
        for _ in range(n_blocks):
            for head in range(m_q):
                rest = tails[head].copy()
                rng.shuffle(rest)
                heads_per_trial.append(np.concatenate([[head], rest]))
        perms = heads_per_trial
    else:
        perms = [rng.permutation(m_q) for _ in range(n_trials)]

    total = len(perms)
    trial_avebsld = np.empty(total, dtype=float)
    first_task = np.empty(total, dtype=np.int64)
    sum_by_first = np.zeros(m_q, dtype=float)

    for k, perm in enumerate(perms):
        # perm[j] = probe task occupying queue position j.
        priority[m_s + perm] = m_s + np.arange(m_q)
        start = simulate_fixed_priority(submit, runtime, size, priority, nmax)
        wait_q = start[m_s:] - q_submit
        ave = average_bounded_slowdown(wait_q, q_runtime, tau)
        trial_avebsld[k] = ave
        first_task[k] = perm[0]
        sum_by_first[perm[0]] += ave

    denom = trial_avebsld.sum()
    scores = sum_by_first / denom

    return TrialScoreResult(
        runtime=q_runtime.copy(),
        size=Q.size.astype(float).copy(),
        submit=q_submit.copy(),
        scores=scores,
        first_task=first_task,
        trial_avebsld=trial_avebsld,
    )

"""Task-set tuple generation for the simulation phase (§3.2).

The training simulations observe scheduling behaviour over "several
tuples of task sets (S, Q)": |S| = 16 warm-up jobs that occupy the
machine first ("a realistic way to represent an initial resource state"),
then |Q| = 32 probe jobs whose permutations are scored.

Tuples are drawn from the Lublin–Feitelson model by default, each from an
independent child seed, matching the artifact's
``generate_simulation_data.py`` which generated fresh model output per
tuple.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.sim.job import Workload
from repro.util.rng import SeedLike, as_generator, spawn_generators
from repro.util.validation import check_positive_int
from repro.workloads.lublin import LublinParams, lublin_workload

__all__ = ["TaskSetTuple", "generate_tuples", "split_tuple"]


@dataclass(frozen=True)
class TaskSetTuple:
    """One (S, Q) pair: warm-up set S and probe set Q."""

    S: Workload
    Q: Workload
    index: int

    def __post_init__(self) -> None:
        if len(self.S) == 0 or len(self.Q) == 0:
            raise ValueError("both S and Q must be non-empty")
        if self.S.submit[-1] > self.Q.submit[0]:
            raise ValueError(
                "all S jobs must arrive before the first Q job"
                " (paper: Q arrives after all of S arrived)"
            )


def split_tuple(workload: Workload, s_size: int, q_size: int, index: int = 0) -> TaskSetTuple:
    """Split the first ``s_size + q_size`` jobs of *workload* into (S, Q)."""
    check_positive_int("s_size", s_size)
    check_positive_int("q_size", q_size)
    need = s_size + q_size
    if len(workload) < need:
        raise ValueError(f"workload has {len(workload)} jobs; need {need}")
    import numpy as np

    idx = np.arange(len(workload))
    S = workload.select(idx[:s_size]).with_name(f"{workload.name}/S")
    Q = workload.select(idx[s_size:need]).with_name(f"{workload.name}/Q")
    return TaskSetTuple(S=S, Q=Q, index=index)


def generate_tuples(
    n_tuples: int,
    *,
    nmax: int = 256,
    s_size: int = 16,
    q_size: int = 32,
    seed: SeedLike = None,
    params: LublinParams | None = None,
    workload_factory: Callable[[int, int, SeedLike], Workload] | None = None,
) -> list[TaskSetTuple]:
    """Generate *n_tuples* independent (S, Q) tuples.

    Parameters default to the paper's configuration (nmax=256, |S|=16,
    |Q|=32).  A custom *workload_factory* ``(n_jobs, nmax, seed) ->
    Workload`` lets users train on their own platform's workload instead
    of the Lublin model (the customisation path the paper's conclusion
    envisions).
    """
    check_positive_int("n_tuples", n_tuples)
    rng = as_generator(seed)
    children = spawn_generators(rng, n_tuples)
    total = s_size + q_size
    tuples: list[TaskSetTuple] = []
    for i, child in enumerate(children):
        if workload_factory is not None:
            wl = workload_factory(total, nmax, child)
        else:
            wl = lublin_workload(
                total, nmax, seed=child, params=params, name=f"tuple{i}"
            )
        tuples.append(split_tuple(wl, s_size, q_size, index=i))
    return tuples

"""The nonlinear function space of §3.3.

Candidate scheduling policies are functions of the form

.. math::

    f = (c_1\\,\\alpha(r)) \\;op_1\\; (c_2\\,\\beta(n)) \\;op_2\\; (c_3\\,\\gamma(s))

with base functions :math:`\\alpha,\\beta,\\gamma` drawn from Table 1
(``id``, ``log``, ``sqrt``, ``inv``) and the operators from
``{+, ·, ÷}``.  Evaluation is **left-associative** —
``(term_r op1 term_n) op2 term_s`` — which is the composition that
produces the published Table 3 forms (a product of the r- and n-terms
plus a scaled ``log10(s)``).

The full space has :math:`4^3 \\cdot 3^2 = 576` members,
"a tangible amount of functions to perform the fit" (paper, §3.3).

Domain guards: inputs to ``log``/``inv`` are clamped to ``>= 1e-6`` and
to ``sqrt`` at ``>= 0``; division by (near-)zero yields a large finite
penalty value.  Guards only activate outside the data domain the paper
fits on (runtimes >= 1 s, sizes >= 1, submit times >= 0).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from itertools import product

import numpy as np

__all__ = [
    "BASE_FUNCTION_NAMES",
    "OPERATOR_NAMES",
    "FunctionSpec",
    "FittedFunction",
    "apply_base",
    "combine",
    "enumerate_function_space",
]

_EPS = 1e-6
_BIG = 1e15

BASE_FUNCTION_NAMES: tuple[str, ...] = ("id", "log", "sqrt", "inv")
OPERATOR_NAMES: tuple[str, ...] = ("+", "*", "/")

_BASE_IMPL: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "id": lambda x: x,
    "log": lambda x: np.log10(np.maximum(x, _EPS)),
    "sqrt": lambda x: np.sqrt(np.maximum(x, 0.0)),
    "inv": lambda x: 1.0 / np.maximum(x, _EPS),
}


def apply_base(name: str, x: np.ndarray) -> np.ndarray:
    """Apply base function *name* (Table 1) with domain guards."""
    try:
        impl = _BASE_IMPL[name]
    except KeyError:
        raise KeyError(
            f"unknown base function {name!r}; choose from {BASE_FUNCTION_NAMES}"
        ) from None
    return impl(np.asarray(x, dtype=float))


def _apply_op(op: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if op == "+":
        return a + b
    if op == "*":
        return a * b
    if op == "/":
        small = np.abs(b) < 1.0 / _BIG
        safe_b = np.where(small, 1.0, b)
        out = a / safe_b
        return np.where(small, np.sign(a) * np.where(a == 0, 0.0, _BIG), out)
    raise KeyError(f"unknown operator {op!r}; choose from {OPERATOR_NAMES}")


@dataclass(frozen=True, slots=True)
class FunctionSpec:
    """One member of the candidate space: base functions + operators."""

    alpha: str  # base function applied to the runtime r
    beta: str  # base function applied to the size n
    gamma: str  # base function applied to the submit time s
    op1: str
    op2: str

    def __post_init__(self) -> None:
        for nm in (self.alpha, self.beta, self.gamma):
            if nm not in BASE_FUNCTION_NAMES:
                raise ValueError(f"unknown base function {nm!r}")
        for op in (self.op1, self.op2):
            if op not in OPERATOR_NAMES:
                raise ValueError(f"unknown operator {op!r}")

    @property
    def short_name(self) -> str:
        """Compact display, e.g. ``log(r)*id(n)+log(s)``."""
        return (
            f"{self.alpha}(r){self.op1}{self.beta}(n){self.op2}{self.gamma}(s)"
        )

    def terms(
        self, r: np.ndarray, n: np.ndarray, s: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Base-function images of the three inputs (no coefficients)."""
        return apply_base(self.alpha, r), apply_base(self.beta, n), apply_base(
            self.gamma, s
        )

    def evaluate(
        self,
        coeffs: np.ndarray,
        r: np.ndarray,
        n: np.ndarray,
        s: np.ndarray,
    ) -> np.ndarray:
        """Left-associative evaluation with coefficients ``(c1, c2, c3)``."""
        c1, c2, c3 = (float(c) for c in coeffs)
        ta, tb, tc = self.terms(r, n, s)
        inner = _apply_op(self.op1, c1 * ta, c2 * tb)
        return _apply_op(self.op2, inner, c3 * tc)


def enumerate_function_space() -> list[FunctionSpec]:
    """All 576 candidate specs, in deterministic lexicographic order."""
    return [
        FunctionSpec(alpha=a, beta=b, gamma=g, op1=o1, op2=o2)
        for a, b, g, o1, o2 in product(
            BASE_FUNCTION_NAMES,
            BASE_FUNCTION_NAMES,
            BASE_FUNCTION_NAMES,
            OPERATOR_NAMES,
            OPERATOR_NAMES,
        )
    ]


@dataclass(frozen=True)
class FittedFunction:
    """A spec with fitted coefficients and goodness-of-fit numbers.

    ``rank_error`` is Eq. 5 (mean absolute error — lower is better);
    ``weighted_sse`` is the objective of Eq. 4 actually minimised.
    """

    spec: FunctionSpec
    coeffs: tuple[float, float, float]
    rank_error: float
    weighted_sse: float
    n_observations: int

    def __call__(self, r: np.ndarray, n: np.ndarray, s: np.ndarray) -> np.ndarray:
        """Evaluate the fitted function."""
        return self.spec.evaluate(np.asarray(self.coeffs), r, n, s)

    def describe(self) -> str:
        """Artifact-style rendering with explicit coefficients."""
        c1, c2, c3 = self.coeffs
        return (
            f"({c1:.10f} x {self.spec.alpha}(runtime)) {self.spec.op1} "
            f"({c2:.10f} x {self.spec.beta}(#cores)) {self.spec.op2} "
            f"({c3:.10f} x {self.spec.gamma}(submit)), "
            f"fitness={self.rank_error:.7f}"
        )

    def simplified(self) -> str:
        """Table-3-style rendering with merged coefficients.

        Only the published structural family — ``(c1 α(r))·(c2 β(n)) +
        c3 γ(s)`` — admits the merge (divide through by ``c1·c2``); other
        shapes fall back to :meth:`describe`.
        """
        c1, c2, c3 = self.coeffs
        if self.spec.op1 == "*" and self.spec.op2 == "+" and c1 * c2 != 0.0:
            merged = c3 / (c1 * c2)
            return (
                f"{self.spec.alpha}(r)·{self.spec.beta}(n) "
                f"+ {merged:.3g}·{self.spec.gamma}(s)"
            )
        return self.describe()

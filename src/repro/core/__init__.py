"""The paper's contribution: simulation-driven scores + nonlinear regression."""

from repro.core.datastore import TrainingDataStore
from repro.core.distribution import ScoreDistribution
from repro.core.functions import (
    BASE_FUNCTION_NAMES,
    OPERATOR_NAMES,
    FittedFunction,
    FunctionSpec,
    apply_base,
    enumerate_function_space,
)
from repro.core.pipeline import (
    PipelineConfig,
    PipelineResult,
    build_distribution,
    obtain_policies,
)
from repro.core.regression import RegressionConfig, fit_all, fit_function, rank_error
from repro.core.taskgen import TaskSetTuple, generate_tuples, split_tuple
from repro.core.trials import TrialScoreResult, run_trials
from repro.core.validation import HoldoutEntry, holdout_report, train_test_split

__all__ = [
    "BASE_FUNCTION_NAMES",
    "FittedFunction",
    "FunctionSpec",
    "OPERATOR_NAMES",
    "PipelineConfig",
    "PipelineResult",
    "RegressionConfig",
    "ScoreDistribution",
    "TaskSetTuple",
    "TrainingDataStore",
    "TrialScoreResult",
    "apply_base",
    "build_distribution",
    "enumerate_function_space",
    "fit_all",
    "fit_function",
    "HoldoutEntry",
    "generate_tuples",
    "holdout_report",
    "train_test_split",
    "obtain_policies",
    "rank_error",
    "run_trials",
    "split_tuple",
]

"""On-disk training data store — the artifact's Workflow 1, faithfully.

The paper's artifact runs ``generate_simulation_data.py`` as a background
process "for at least a couple of days", appending per-tuple files under
two directories, then joins them with ``gather_data.py``:

* ``task-sets/``      one CSV per (S, Q) tuple —
  ``runtime,#processors,submit time`` per job;
* ``training-data/``  one CSV per tuple's trial score distribution —
  ``runtime,#processors,submit time,score`` per probe task.

:class:`TrainingDataStore` reproduces that layout and contract:
generation is *incremental and resumable* (existing tuple indices are
detected and extended, so a long-running campaign can be stopped and
restarted at will), and :meth:`gather` is ``gather_data.py`` — it pools
every trial file into one :class:`~repro.core.distribution.ScoreDistribution`
(also writable as the artifact's ``score-distribution.csv``).
"""

from __future__ import annotations

import os
import re
from pathlib import Path

import numpy as np

from repro.core.distribution import ScoreDistribution
from repro.core.taskgen import TaskSetTuple, generate_tuples
from repro.core.trials import TrialScoreResult, run_trials
from repro.sim.job import Workload
from repro.util.rng import spawn_generators

__all__ = ["TrainingDataStore", "save_trial_artifact", "load_trial_artifact"]

#: Bump when the npz artifact layout changes; loaders reject other versions.
ARTIFACT_FORMAT_VERSION = 1

_RESULT_FIELDS = ("runtime", "size", "submit", "scores", "first_task", "trial_avebsld")
_DIST_FIELDS = ("runtime", "size", "submit", "score")


def save_trial_artifact(
    path: str | Path,
    results: list[TrialScoreResult],
    distribution: ScoreDistribution,
) -> Path:
    """Write trial results + pooled distribution as one lossless ``.npz``.

    Unlike the artifact CSVs above (which truncate floats to match the
    paper's files), the npz round-trips every array bit for bit — the
    format behind :class:`repro.runtime.ArtifactCache`.  The write is
    atomic (tmp file + rename) so a crashed run never leaves a torn
    artifact behind for the next run to load.
    """
    path = Path(path)
    arrays: dict[str, np.ndarray] = {
        "format_version": np.array([ARTIFACT_FORMAT_VERSION], dtype=np.int64),
        "n_results": np.array([len(results)], dtype=np.int64),
    }
    for field in _DIST_FIELDS:
        arrays[f"dist_{field}"] = getattr(distribution, field)
    for i, result in enumerate(results):
        for field in _RESULT_FIELDS:
            arrays[f"trial{i}_{field}"] = getattr(result, field)
    tmp = path.with_name(path.name + f".tmp{os.getpid()}.npz")
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def load_trial_artifact(
    path: str | Path,
) -> tuple[list[TrialScoreResult], ScoreDistribution]:
    """Read back a :func:`save_trial_artifact` file."""
    with np.load(Path(path)) as data:
        version = int(data["format_version"][0])
        if version != ARTIFACT_FORMAT_VERSION:
            raise ValueError(
                f"{path}: artifact format v{version}, "
                f"expected v{ARTIFACT_FORMAT_VERSION}"
            )
        results = [
            TrialScoreResult(
                **{field: data[f"trial{i}_{field}"] for field in _RESULT_FIELDS}
            )
            for i in range(int(data["n_results"][0]))
        ]
        distribution = ScoreDistribution(
            **{field: data[f"dist_{field}"] for field in _DIST_FIELDS}
        )
    return results, distribution

_TUPLE_RE = re.compile(r"tuple-(\d+)\.csv$")


class TrainingDataStore:
    """Artifact-layout store of tuples and trial score distributions."""

    def __init__(self, directory: str | Path) -> None:
        self.root = Path(directory)
        self.task_sets = self.root / "task-sets"
        self.training_data = self.root / "training-data"
        self.task_sets.mkdir(parents=True, exist_ok=True)
        self.training_data.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # layout helpers
    # ------------------------------------------------------------------
    def tuple_indices(self) -> list[int]:
        """Indices of tuples already generated (sorted)."""
        out = []
        for path in sorted(self.task_sets.iterdir()):
            match = _TUPLE_RE.search(path.name)
            if match:
                out.append(int(match.group(1)))
        return sorted(out)

    def next_index(self) -> int:
        """The index the next generated tuple will receive."""
        existing = self.tuple_indices()
        return existing[-1] + 1 if existing else 0

    def _tuple_path(self, index: int) -> Path:
        return self.task_sets / f"tuple-{index}.csv"

    def _trials_path(self, index: int) -> Path:
        return self.training_data / f"trial-{index}.csv"

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def save_tuple(self, tup: TaskSetTuple) -> Path:
        """Write one tuple as ``runtime,#processors,submit`` rows (S then Q)."""
        lines = []
        for wl in (tup.S, tup.Q):
            for i in range(len(wl)):
                lines.append(
                    f"{wl.runtime[i]:.1f},{int(wl.size[i])},{wl.submit[i]:.1f}"
                )
        path = self._tuple_path(tup.index)
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
        tmp.write_text("\n".join(lines) + "\n", encoding="utf-8")
        os.replace(tmp, path)
        return path

    def save_trials(self, result: TrialScoreResult, index: int) -> Path:
        """Write one tuple's trial score distribution (artifact format)."""
        lines = [
            f"{result.runtime[i]:.1f},{result.size[i]:.1f},"
            f"{result.submit[i]:.1f},{result.scores[i]:.13g}"
            for i in range(len(result.scores))
        ]
        path = self._trials_path(index)
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
        tmp.write_text("\n".join(lines) + "\n", encoding="utf-8")
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------
    # generation campaign (resumable)
    # ------------------------------------------------------------------
    def generate(
        self,
        n_tuples: int,
        *,
        nmax: int = 256,
        s_size: int = 16,
        q_size: int = 32,
        trials_per_tuple: int = 2048,
        seed: int = 0,
    ) -> list[int]:
        """Append *n_tuples* new tuples + trial distributions to the store.

        Resumable: tuple ``k`` is always produced from the ``k``-th child
        of *seed*, so interrupting and re-invoking with the same seed
        continues the exact same campaign (no duplicated or divergent
        tuples).  Returns the indices generated in this call.
        """
        start = self.next_index()
        end = start + n_tuples
        # Derive children deterministically by absolute index.
        tuple_rngs = spawn_generators(seed, end)[start:end]
        trial_rngs = spawn_generators(seed + 1, end)[start:end]
        written = []
        for offset, (t_rng, r_rng) in enumerate(zip(tuple_rngs, trial_rngs)):
            index = start + offset
            tup = generate_tuples(
                1, nmax=nmax, s_size=s_size, q_size=q_size, seed=t_rng
            )[0]
            tup = TaskSetTuple(S=tup.S, Q=tup.Q, index=index)
            result = run_trials(tup, nmax, trials_per_tuple, seed=r_rng)
            self.save_tuple(tup)
            self.save_trials(result, index)
            written.append(index)
        return written

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def load_tuple(self, index: int, *, s_size: int = 16) -> TaskSetTuple:
        """Read one tuple back (first *s_size* rows are S, the rest Q)."""
        path = self._tuple_path(index)
        rows = [
            [float(x) for x in line.split(",")]
            for line in path.read_text("utf-8").splitlines()
            if line.strip()
        ]
        mat = np.asarray(rows)
        if len(mat) <= s_size:
            raise ValueError(f"{path}: expected more than {s_size} rows")

        def build(section: np.ndarray, name: str) -> Workload:
            return Workload.from_arrays(
                submit=section[:, 2],
                runtime=section[:, 0],
                size=section[:, 1].astype(int),
                name=name,
            )

        return TaskSetTuple(
            S=build(mat[:s_size], f"tuple{index}/S"),
            Q=build(mat[s_size:], f"tuple{index}/Q"),
            index=index,
        )

    def gather(self) -> ScoreDistribution:
        """``gather_data.py``: pool every trial file into one distribution."""
        indices = self.tuple_indices()
        parts = []
        for index in indices:
            path = self._trials_path(index)
            if not path.exists():
                continue
            rows = [
                [float(x) for x in line.split(",")]
                for line in path.read_text("utf-8").splitlines()
                if line.strip()
            ]
            mat = np.asarray(rows)
            parts.append(mat)
        if not parts:
            raise ValueError(f"no training data under {self.training_data}")
        mat = np.vstack(parts)
        return ScoreDistribution(
            runtime=mat[:, 0], size=mat[:, 1], submit=mat[:, 2], score=mat[:, 3]
        )

    def gather_to_csv(self, path: str | Path | None = None) -> Path:
        """Write the pooled ``score-distribution.csv`` (artifact output)."""
        dist = self.gather()
        out = Path(path) if path is not None else self.root / "score-distribution.csv"
        dist.to_csv(out)
        return out

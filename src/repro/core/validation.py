"""Generalisation checks for fitted functions (train/test methodology).

The paper fits on all pooled observations and validates by *scheduling
performance* on fresh workloads.  This module adds the complementary,
cheaper check a practitioner wants during training: held-out rank error.
If a candidate's Eq. 5 error explodes out of sample, it memorised the
trial noise instead of the scheduling behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.distribution import ScoreDistribution
from repro.core.functions import FittedFunction
from repro.core.regression import rank_error

__all__ = ["train_test_split", "holdout_report", "HoldoutEntry"]


def train_test_split(
    dist: ScoreDistribution, test_fraction: float = 0.25, *, seed: int = 0
) -> tuple[ScoreDistribution, ScoreDistribution]:
    """Deterministically split observations into train and test sets."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    n = len(dist)
    if n < 4:
        raise ValueError("need at least 4 observations to split")
    n_test = max(int(round(n * test_fraction)), 1)
    rng = np.random.default_rng(seed)
    idx = rng.permutation(n)
    test_idx = np.sort(idx[:n_test])
    train_idx = np.sort(idx[n_test:])

    def take(ix: np.ndarray) -> ScoreDistribution:
        return ScoreDistribution(
            runtime=dist.runtime[ix],
            size=dist.size[ix],
            submit=dist.submit[ix],
            score=dist.score[ix],
        )

    return take(train_idx), take(test_idx)


@dataclass(frozen=True)
class HoldoutEntry:
    """Train/test errors of one fitted candidate."""

    fitted: FittedFunction
    train_error: float
    test_error: float

    @property
    def generalisation_gap(self) -> float:
        """``test - train`` rank error (near zero for healthy fits)."""
        return self.test_error - self.train_error


def holdout_report(
    fitted: list[FittedFunction],
    train: ScoreDistribution,
    test: ScoreDistribution,
    *,
    top_k: int = 10,
) -> list[HoldoutEntry]:
    """Evaluate the top candidates on held-out observations.

    Entries come back in *test*-error order, which is the ranking a
    cautious user should trust when picking deployment policies.
    """
    if not fitted:
        raise ValueError("no fitted functions to evaluate")
    entries = []
    for f in fitted[:top_k]:
        coeffs = np.asarray(f.coeffs)
        if not np.all(np.isfinite(coeffs)):
            continue
        pred_train = f.spec.evaluate(coeffs, train.runtime, train.size, train.submit)
        pred_test = f.spec.evaluate(coeffs, test.runtime, test.size, test.submit)
        entries.append(
            HoldoutEntry(
                fitted=f,
                train_error=rank_error(pred_train, train.score),
                test_error=rank_error(pred_test, test.score),
            )
        )
    entries.sort(key=lambda e: e.test_error)
    return entries

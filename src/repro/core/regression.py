"""Weighted nonlinear regression over the function space (§3.3, Eqs. 4–5).

For every candidate :class:`~repro.core.functions.FunctionSpec` the
coefficients ``(c1, c2, c3)`` minimise the paper's weighted error

.. math::

   error = \\sum_t \\big( (r_t n_t) \\cdot (f(r_t, n_t, s_t) -
           score(r_t, n_t, s_t)) \\big)^2

— the ``r·n`` weight forces good fits on *big* jobs, "tasks that consume
a large amount of resources … have a potential of blocking the execution
of many smaller tasks".  Candidates are then ranked by the unweighted
mean absolute error of Eq. 5.

The artifact used SciPy's ``leastsq`` (Levenberg–Marquardt); we use its
maintained successor :func:`scipy.optimize.least_squares` with
Jacobian-based variable scaling, restarting from a small grid of initial
magnitudes because the coefficient scales vary over ~10 orders of
magnitude across the 576 specs.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import least_squares

from repro.core.distribution import ScoreDistribution
from repro.core.functions import FittedFunction, FunctionSpec, enumerate_function_space

__all__ = ["RegressionConfig", "fit_function", "fit_all", "rank_error"]

_PENALTY = 1e6  # residual assigned where a candidate evaluates non-finite


@dataclass(frozen=True)
class RegressionConfig:
    """Fitting knobs (defaults reproduce the paper's setup)."""

    weighted: bool = True  # Eq. 4's (r*n) weight
    x0_magnitudes: tuple[float, ...] = (1.0, 1e-3, 1e-6)
    max_nfev: int = 200
    max_points: int = 20000  # deterministic subsample bound
    subsample_seed: int = 0
    bases: tuple[str, ...] = field(default=())  # empty = full Table 1 space

    def initial_guesses(self) -> list[np.ndarray]:
        """Starting points tried for every spec (best fit kept)."""
        return [np.full(3, m) for m in self.x0_magnitudes]


def rank_error(predicted: np.ndarray, score: np.ndarray) -> float:
    """Eq. 5: mean absolute deviation between fit and observed scores."""
    predicted = np.asarray(predicted, dtype=float)
    bad = ~np.isfinite(predicted)
    if bad.all():
        return float("inf")
    err = np.abs(np.where(bad, _PENALTY, predicted) - score)
    return float(err.mean())


def _residual_fn(
    spec: FunctionSpec,
    r: np.ndarray,
    n: np.ndarray,
    s: np.ndarray,
    y: np.ndarray,
    w: np.ndarray,
) -> Callable[[np.ndarray], np.ndarray]:
    def residuals(coeffs: np.ndarray) -> np.ndarray:
        f = spec.evaluate(coeffs, r, n, s)
        res = w * (f - y)
        return np.where(np.isfinite(res), np.clip(res, -_PENALTY, _PENALTY), _PENALTY)

    return residuals


def fit_function(
    spec: FunctionSpec,
    dist: ScoreDistribution,
    config: RegressionConfig | None = None,
) -> FittedFunction:
    """Fit one candidate function to the score distribution.

    Never raises on optimiser failure: a candidate that cannot be fitted
    is returned with infinite rank error, so enumeration always completes
    (mirroring the artifact, which simply reported every candidate's
    fitness).
    """
    config = config or RegressionConfig()
    data = dist.subsample(config.max_points, seed=config.subsample_seed)
    r, n, s, y = data.runtime, data.size, data.submit, data.score

    if config.weighted:
        w = r * n
        mean_w = w.mean()
        w = w / mean_w if mean_w > 0 else np.ones_like(w)
    else:
        w = np.ones_like(y)

    residuals = _residual_fn(spec, r, n, s, y, w)
    best_cost = np.inf
    best_coeffs: np.ndarray | None = None
    for x0 in config.initial_guesses():
        try:
            sol = least_squares(
                residuals,
                x0,
                method="trf",
                x_scale="jac",
                max_nfev=config.max_nfev,
            )
        except Exception:  # pragma: no cover - scipy internal failures
            continue
        if np.isfinite(sol.cost) and sol.cost < best_cost:
            best_cost = float(sol.cost)
            best_coeffs = sol.x

    if best_coeffs is None:
        return FittedFunction(
            spec=spec,
            coeffs=(np.nan, np.nan, np.nan),
            rank_error=float("inf"),
            weighted_sse=float("inf"),
            n_observations=len(data),
        )

    predicted = spec.evaluate(best_coeffs, r, n, s)
    return FittedFunction(
        spec=spec,
        coeffs=tuple(float(c) for c in best_coeffs),
        rank_error=rank_error(predicted, y),
        weighted_sse=2.0 * best_cost,  # least_squares cost = 0.5 * SSE
        n_observations=len(data),
    )


def fit_all(
    dist: ScoreDistribution,
    specs: Sequence[FunctionSpec] | None = None,
    config: RegressionConfig | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> list[FittedFunction]:
    """Fit every candidate and return them sorted by rank error (Eq. 5).

    *progress* (``done, total``) supports long enumerations from the CLI.
    """
    config = config or RegressionConfig()
    if specs is None:
        specs = enumerate_function_space()
        if config.bases:
            specs = [
                sp
                for sp in specs
                if {sp.alpha, sp.beta, sp.gamma} <= set(config.bases)
            ]
    fitted: list[FittedFunction] = []
    total = len(specs)
    for i, spec in enumerate(specs):
        fitted.append(fit_function(spec, dist, config))
        if progress is not None:
            progress(i + 1, total)
    fitted.sort(key=lambda f: (f.rank_error, f.spec.short_name))
    return fitted

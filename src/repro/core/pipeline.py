"""End-to-end policy-obtaining pipeline (§3: simulate → learn → policy).

``obtain_policies`` chains the three phases the paper describes:

1. generate ``(S, Q)`` tuples from the workload model
   (:mod:`repro.core.taskgen`),
2. run permutation trials and pool the score distribution
   (:mod:`repro.core.trials` / :mod:`repro.core.distribution`),
3. enumerate and fit the nonlinear function space, rank by Eq. 5, and
   wrap the best candidates as scheduler-ready policies
   (:mod:`repro.core.regression` / :class:`repro.policies.NonlinearPolicy`).

This is the library's "train your own policies for your own platform"
entry point, the customisation the paper's conclusion proposes.

The simulation phase dispatches through :mod:`repro.runtime`: pass
``workers`` to fan the per-tuple trials over a process pool (results are
bit-identical to the serial run for any worker count), and ``cache`` to
memoise the pooled distribution on disk keyed by a fingerprint of the
result-relevant config fields.  Inside each worker the trials
themselves run as kernel batches
(:func:`repro.sim.listsched.simulate_fixed_priority_batch`), so the
per-trial Python loop no longer exists at any layer of the fan-out.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.distribution import ScoreDistribution
from repro.core.functions import FittedFunction
from repro.core.regression import RegressionConfig, fit_all
from repro.core.taskgen import TaskSetTuple, generate_tuples
from repro.core.trials import TrialScoreResult
from repro.policies.learned import NonlinearPolicy
from repro.runtime.cache import ArtifactCache, coerce_cache
from repro.runtime.config import ExecutorConfig
from repro.runtime.executor import TrialRunner
from repro.sim.metrics import DEFAULT_TAU
from repro.specs.fingerprint import (
    SIMULATION_SEMANTICS_VERSION,
    distribution_fingerprint,
)
from repro.util.validation import check_positive_int
from repro.workloads.lublin import LublinParams

__all__ = [
    "PipelineConfig",
    "PipelineResult",
    "obtain_policies",
    "build_distribution",
    "distribution_cache_key",
]


@dataclass(frozen=True)
class PipelineConfig:
    """All knobs of the training pipeline (paper defaults)."""

    n_tuples: int = 32
    trials_per_tuple: int = 2048
    nmax: int = 256
    s_size: int = 16
    q_size: int = 32
    seed: int = 0
    tau: float = DEFAULT_TAU
    top_k: int = 4
    balanced_trials: bool = True
    lublin_params: LublinParams | None = None
    regression: RegressionConfig = field(default_factory=RegressionConfig)

    def __post_init__(self) -> None:
        check_positive_int("n_tuples", self.n_tuples)
        check_positive_int("trials_per_tuple", self.trials_per_tuple)
        check_positive_int("top_k", self.top_k)


@dataclass(frozen=True)
class PipelineResult:
    """Everything the pipeline produced, from raw trials to policies."""

    config: PipelineConfig
    tuples: list[TaskSetTuple]
    trial_results: list[TrialScoreResult]
    distribution: ScoreDistribution
    fitted: list[FittedFunction]  # every candidate, ranked by Eq. 5
    policies: list[NonlinearPolicy]  # top_k, best first

    @property
    def best(self) -> FittedFunction:
        """The rank-1 fitted function."""
        return self.fitted[0]

    def report(self, k: int | None = None) -> str:
        """Artifact-style listing of the top-k fitted functions."""
        k = k if k is not None else self.config.top_k
        lines = [
            f"rank {i + 1}: {f.describe()}" for i, f in enumerate(self.fitted[:k])
        ]
        return "\n".join(lines)


def distribution_cache_key(config: PipelineConfig) -> str:
    """Fingerprint of every config field that influences the distribution.

    Execution knobs (worker count, chunk size, cache location) are *not*
    part of the key: serial and parallel runs of the same config produce
    bit-identical results and therefore share one cache entry.  The
    payload lives in :mod:`repro.specs.fingerprint` (the single home of
    cache-key derivations), so :meth:`repro.specs.TrainSpec.
    distribution_key` is this key by construction; the semantics
    version — :data:`~repro.specs.fingerprint.
    SIMULATION_SEMANTICS_VERSION`, re-exported here — invalidates every
    entry when the simulation semantics change.
    """
    return distribution_fingerprint(
        n_tuples=config.n_tuples,
        trials_per_tuple=config.trials_per_tuple,
        nmax=config.nmax,
        s_size=config.s_size,
        q_size=config.q_size,
        seed=config.seed,
        tau=config.tau,
        balanced_trials=config.balanced_trials,
        lublin_params=config.lublin_params,
    )


def build_distribution(
    config: PipelineConfig,
    progress: Callable[[str, int, int], None] | None = None,
    *,
    workers: int | str = 1,
    chunk_size: int | None = None,
    backend: str = "process",
    cache: str | Path | ArtifactCache | None = None,
) -> tuple[list[TaskSetTuple], list[TrialScoreResult], ScoreDistribution]:
    """Phases 1–2: tuples, trials, pooled score distribution.

    Parameters
    ----------
    workers, chunk_size, backend:
        Dispatch policy for the trial simulations (see
        :class:`repro.runtime.ExecutorConfig`).  Results are identical
        for every setting; ``workers=1`` runs in-process.
    cache:
        An :class:`repro.runtime.ArtifactCache` (or a directory path for
        one).  On a hit the trials are loaded instead of simulated — the
        tuples are still regenerated (they are cheap and deterministic)
        so the return shape is unchanged.
    """
    tuples = generate_tuples(
        config.n_tuples,
        nmax=config.nmax,
        s_size=config.s_size,
        q_size=config.q_size,
        seed=config.seed,
        params=config.lublin_params,
    )
    cache_store = coerce_cache(cache)
    key = distribution_cache_key(config) if cache_store is not None else None
    if cache_store is not None:
        entry = cache_store.load(key)
        if entry is not None:
            results, dist = entry
            if progress is not None:
                progress("trials", config.n_tuples, config.n_tuples)
            return tuples, results, dist

    with TrialRunner(
        ExecutorConfig(workers=workers, chunk_size=chunk_size, backend=backend)
    ) as runner:
        results = runner.run_tuple_trials(
            tuples,
            nmax=config.nmax,
            trials_per_tuple=config.trials_per_tuple,
            root_seed=config.seed + 1,
            balanced=config.balanced_trials,
            tau=config.tau,
            progress=progress,
        )
    dist = ScoreDistribution.from_trial_results(results)
    if cache_store is not None:
        cache_store.store(key, results, dist)
    return tuples, results, dist


def obtain_policies(
    config: PipelineConfig | None = None,
    progress: Callable[[str, int, int], None] | None = None,
    *,
    workers: int | str = 1,
    chunk_size: int | None = None,
    backend: str = "process",
    cache: str | Path | ArtifactCache | None = None,
) -> PipelineResult:
    """Run the full §3 procedure and return ranked policies.

    The returned policies are named ``P1``–``Pk`` (rank order) to avoid
    confusion with the paper's published ``F1``–``F4``, which remain
    available as :func:`repro.policies.paper_policies`.  ``workers``,
    ``chunk_size``, ``backend`` and ``cache`` configure the simulation
    phase exactly as in :func:`build_distribution`.
    """
    config = config or PipelineConfig()
    tuples, trial_results, dist = build_distribution(
        config,
        progress,
        workers=workers,
        chunk_size=chunk_size,
        backend=backend,
        cache=cache,
    )

    def regression_progress(done: int, total: int) -> None:
        if progress is not None:
            progress("regression", done, total)

    fitted = fit_all(dist, config=config.regression, progress=regression_progress)
    usable = [f for f in fitted if f.rank_error < float("inf")]
    policies = [
        NonlinearPolicy(f, name=f"P{i + 1}")
        for i, f in enumerate(usable[: config.top_k])
    ]
    return PipelineResult(
        config=config,
        tuples=tuples,
        trial_results=trial_results,
        distribution=dist,
        fitted=fitted,
        policies=policies,
    )

"""End-to-end policy-obtaining pipeline (§3: simulate → learn → policy).

``obtain_policies`` chains the three phases the paper describes:

1. generate ``(S, Q)`` tuples from the workload model
   (:mod:`repro.core.taskgen`),
2. run permutation trials and pool the score distribution
   (:mod:`repro.core.trials` / :mod:`repro.core.distribution`),
3. enumerate and fit the nonlinear function space, rank by Eq. 5, and
   wrap the best candidates as scheduler-ready policies
   (:mod:`repro.core.regression` / :class:`repro.policies.NonlinearPolicy`).

This is the library's "train your own policies for your own platform"
entry point, the customisation the paper's conclusion proposes.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.distribution import ScoreDistribution
from repro.core.functions import FittedFunction
from repro.core.regression import RegressionConfig, fit_all
from repro.core.taskgen import TaskSetTuple, generate_tuples
from repro.core.trials import TrialScoreResult, run_trials
from repro.policies.learned import NonlinearPolicy
from repro.sim.metrics import DEFAULT_TAU
from repro.util.rng import spawn_generators
from repro.util.validation import check_positive_int
from repro.workloads.lublin import LublinParams

__all__ = ["PipelineConfig", "PipelineResult", "obtain_policies", "build_distribution"]


@dataclass(frozen=True)
class PipelineConfig:
    """All knobs of the training pipeline (paper defaults)."""

    n_tuples: int = 32
    trials_per_tuple: int = 2048
    nmax: int = 256
    s_size: int = 16
    q_size: int = 32
    seed: int = 0
    tau: float = DEFAULT_TAU
    top_k: int = 4
    balanced_trials: bool = True
    lublin_params: LublinParams | None = None
    regression: RegressionConfig = field(default_factory=RegressionConfig)

    def __post_init__(self) -> None:
        check_positive_int("n_tuples", self.n_tuples)
        check_positive_int("trials_per_tuple", self.trials_per_tuple)
        check_positive_int("top_k", self.top_k)


@dataclass(frozen=True)
class PipelineResult:
    """Everything the pipeline produced, from raw trials to policies."""

    config: PipelineConfig
    tuples: list[TaskSetTuple]
    trial_results: list[TrialScoreResult]
    distribution: ScoreDistribution
    fitted: list[FittedFunction]  # every candidate, ranked by Eq. 5
    policies: list[NonlinearPolicy]  # top_k, best first

    @property
    def best(self) -> FittedFunction:
        """The rank-1 fitted function."""
        return self.fitted[0]

    def report(self, k: int | None = None) -> str:
        """Artifact-style listing of the top-k fitted functions."""
        k = k if k is not None else self.config.top_k
        lines = [
            f"rank {i + 1}: {f.describe()}" for i, f in enumerate(self.fitted[:k])
        ]
        return "\n".join(lines)


def build_distribution(
    config: PipelineConfig,
    progress: Callable[[str, int, int], None] | None = None,
) -> tuple[list[TaskSetTuple], list[TrialScoreResult], ScoreDistribution]:
    """Phases 1–2: tuples, trials, pooled score distribution."""
    tuples = generate_tuples(
        config.n_tuples,
        nmax=config.nmax,
        s_size=config.s_size,
        q_size=config.q_size,
        seed=config.seed,
        params=config.lublin_params,
    )
    trial_seeds = spawn_generators(config.seed + 1, config.n_tuples)
    results: list[TrialScoreResult] = []
    for i, (tup, rng) in enumerate(zip(tuples, trial_seeds)):
        results.append(
            run_trials(
                tup,
                config.nmax,
                config.trials_per_tuple,
                seed=rng,
                balanced=config.balanced_trials,
                tau=config.tau,
            )
        )
        if progress is not None:
            progress("trials", i + 1, config.n_tuples)
    return tuples, results, ScoreDistribution.from_trial_results(results)


def obtain_policies(
    config: PipelineConfig | None = None,
    progress: Callable[[str, int, int], None] | None = None,
) -> PipelineResult:
    """Run the full §3 procedure and return ranked policies.

    The returned policies are named ``P1``–``Pk`` (rank order) to avoid
    confusion with the paper's published ``F1``–``F4``, which remain
    available as :func:`repro.policies.paper_policies`.
    """
    config = config or PipelineConfig()
    tuples, trial_results, dist = build_distribution(config, progress)

    def regression_progress(done: int, total: int) -> None:
        if progress is not None:
            progress("regression", done, total)

    fitted = fit_all(dist, config=config.regression, progress=regression_progress)
    usable = [f for f in fitted if f.rank_error < float("inf")]
    policies = [
        NonlinearPolicy(f, name=f"P{i + 1}")
        for i, f in enumerate(usable[: config.top_k])
    ]
    return PipelineResult(
        config=config,
        tuples=tuples,
        trial_results=trial_results,
        distribution=dist,
        fitted=fitted,
        policies=policies,
    )

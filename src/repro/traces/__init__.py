"""repro.traces — acquisition and provenance of real PWA traces.

The paper's §4.3 evaluation replays four Parallel Workloads Archive
traces that cannot be redistributed in-repo.  This package makes them
*a verified command away* instead:

* :mod:`repro.traces.registry` pins provenance — archive URL, SHA-256
  of the decompressed SWF content, licensing note — for each trace,
  extensible via the ``$REPRO_TRACE_REGISTRY`` JSON overlay;
* :mod:`repro.traces.fetch` downloads an entry atomically into the
  content-verified local cache (``$REPRO_TRACE_DIR``) behind the
  ``repro-sched fetch`` verb, idempotently and with gzip transport
  decompressed on the fly;
* :func:`resolve_trace_ref` resolves the ``pwa:<name>`` reference
  scheme wherever a trace path is accepted (specs, :func:`repro.api.run`,
  the CLI verbs), re-verifying content on every resolution.

Identity is content-addressed throughout: a ``pwa:`` reference enters
spec fingerprints as the registry's content hash — never a URL or cache
path — so results are byte-identical wherever the bytes came from.
"""

from repro.traces.fetch import (
    ChecksumMismatchError,
    FetchResult,
    TraceFetchError,
    TraceUnavailableError,
    cached_trace_path,
    fetch_trace,
    resolve_trace_ref,
    trace_cache_dir,
    verify_cached,
)
from repro.traces.registry import (
    TRACE_REF_PREFIX,
    TraceSource,
    UnknownTraceError,
    get_source,
    is_trace_ref,
    load_registry_file,
    paper_prefix_for,
    trace_ref_name,
    trace_sources,
)

__all__ = [
    "ChecksumMismatchError",
    "FetchResult",
    "TRACE_REF_PREFIX",
    "TraceFetchError",
    "TraceSource",
    "TraceUnavailableError",
    "UnknownTraceError",
    "cached_trace_path",
    "fetch_trace",
    "get_source",
    "is_trace_ref",
    "load_registry_file",
    "paper_prefix_for",
    "resolve_trace_ref",
    "trace_cache_dir",
    "trace_ref_name",
    "trace_sources",
    "verify_cached",
]

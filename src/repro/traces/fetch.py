"""Content-verified acquisition of registered traces (``repro fetch``).

Downloads a :class:`~repro.traces.registry.TraceSource` into the local
trace cache (``$REPRO_TRACE_DIR``, default ``~/.cache/repro/traces``)
with three properties the rest of the library leans on:

* **atomic** — the download streams into a same-directory temp file and
  is ``os.replace``-d into place only after the checksum verifies, so an
  interrupted or corrupt download can never masquerade as a cached
  trace (stale temp files from killed processes are swept on the next
  fetch);
* **content-verified** — the stream is hashed *while* it is written and
  compared against the registry's pinned SHA-256 of the decompressed
  SWF bytes; gzip transport (``.swf.gz``, the PWA's native form) is
  sniffed by magic bytes and decompressed on the fly, so the cache
  always holds plain SWF under one digest;
* **idempotent** — a re-fetch re-hashes the cached file and downloads
  nothing when it still matches; a tampered or truncated cache entry is
  detected the same way and replaced.

:func:`resolve_trace_ref` is the single resolution point for the
``pwa:<name>`` reference scheme: it verifies the cached content hash
(so a corrupt cache can never serve results under a clean fingerprint)
and, when the trace is simply not there, raises
:class:`TraceUnavailableError` naming the exact ``repro-sched fetch``
command that makes it available — the library never downloads behind
the caller's back.
"""

from __future__ import annotations

import gzip
import hashlib
import os
import urllib.error
import urllib.request
from dataclasses import dataclass
from pathlib import Path

from repro.traces.registry import (
    TRACE_REF_PREFIX,
    TraceSource,
    get_source,
    is_trace_ref,
    trace_ref_name,
)

__all__ = [
    "ChecksumMismatchError",
    "FetchResult",
    "TraceFetchError",
    "TraceUnavailableError",
    "cached_trace_path",
    "fetch_trace",
    "resolve_trace_ref",
    "trace_cache_dir",
    "verify_cached",
]

#: Environment variable overriding the trace cache directory.
CACHE_DIR_ENV = "REPRO_TRACE_DIR"

_DEFAULT_CACHE_DIR = "~/.cache/repro/traces"
_GZIP_MAGIC = b"\x1f\x8b"
_CHUNK = 1 << 20  # 1 MiB read granularity: archive traces are ~100s of MB
#: Socket timeout of a download: bounds every connect/read, not the whole
#: transfer, so multi-hundred-MB traces still stream fine while a stalled
#: server fails with an error instead of hanging the fetch forever.
_SOCKET_TIMEOUT_S = 60.0


class TraceFetchError(ValueError):
    """A fetch failed (network, I/O, or verification)."""


class ChecksumMismatchError(TraceFetchError):
    """Downloaded content does not match the registry's pinned SHA-256."""


class TraceUnavailableError(ValueError):
    """A ``pwa:`` reference points at a trace missing from the local cache.

    The message names the ``repro-sched fetch`` invocation that resolves
    it; callers wanting the synthetic stand-in instead pass
    ``--synthetic-fallback`` (CLI) or build a synthetic spec directly.
    """


def trace_cache_dir(directory: str | Path | None = None) -> Path:
    """The local trace cache: *directory*, ``$REPRO_TRACE_DIR``, or default."""
    if directory is not None:
        return Path(directory).expanduser()
    return Path(os.environ.get(CACHE_DIR_ENV) or _DEFAULT_CACHE_DIR).expanduser()


def cached_trace_path(
    name: str, *, directory: str | Path | None = None
) -> Path:
    """Where trace *name*'s decompressed SWF lives (whether or not cached)."""
    return trace_cache_dir(directory) / get_source(name).filename


def _sha256_of(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as fh:
        while chunk := fh.read(_CHUNK):
            digest.update(chunk)
    return digest.hexdigest()


def verify_cached(
    name: str, *, directory: str | Path | None = None
) -> Path | None:
    """The verified cache path for *name*, or ``None`` if absent/corrupt.

    Re-hashes the cached file against the registry's pinned digest, so a
    truncated or tampered file is treated as absent rather than served.
    """
    source = get_source(name)
    path = trace_cache_dir(directory) / source.filename
    if not path.is_file():
        return None
    return path if _sha256_of(path) == source.sha256 else None


@dataclass(frozen=True)
class FetchResult:
    """Outcome of one :func:`fetch_trace` call."""

    source: TraceSource
    path: Path
    sha256: str
    n_bytes: int
    was_cached: bool

    def line(self) -> str:
        """The one-line summary the CLI prints."""
        verb = "already cached" if self.was_cached else "fetched"
        return (
            f"{self.source.key}: {verb} at {self.path}"
            f" ({self.n_bytes} bytes, sha256 verified)"
        )


def _sweep_stale_tmp(dest: Path) -> None:
    # Temp files are pid-suffixed; ones whose process is gone belong to
    # interrupted fetches and are safe to remove (the atomic rename means
    # a temp file is never the live entry).  A temp file whose pid is
    # still alive is a concurrent fetch in progress and is left alone —
    # and should that race ever be lost anyway, fetch_trace falls back to
    # the winner's verified entry instead of failing.
    for stale in sorted(dest.parent.glob(dest.name + ".tmp*")):
        pid_text = stale.name.rpartition(".tmp")[2]
        if pid_text.isdigit() and pid_text != str(os.getpid()):
            try:
                os.kill(int(pid_text), 0)
            except ProcessLookupError:
                pass  # owner is gone: stale, remove below
            except (PermissionError, OSError):
                continue  # pid exists (another user's process): leave it
            else:
                continue  # owner still running: leave it
        stale.unlink(missing_ok=True)


def fetch_trace(
    name: str,
    *,
    directory: str | Path | None = None,
    force: bool = False,
) -> FetchResult:
    """Download trace *name* into the cache, verified and decompressed.

    Idempotent: when the cached file already matches the pinned digest
    (and *force* is false) nothing is downloaded.  Atomic: the live cache
    entry either holds verified content or does not exist — interrupted
    downloads leave only a temp file that the next fetch sweeps.  Raises
    :class:`ChecksumMismatchError` (nothing cached) when the download
    does not hash to the registry's pinned SHA-256.
    """
    source = get_source(name)
    cache = trace_cache_dir(directory)
    cache.mkdir(parents=True, exist_ok=True)
    dest = cache / source.filename
    _sweep_stale_tmp(dest)
    if not force:
        verified = verify_cached(name, directory=directory)
        if verified is not None:
            return FetchResult(
                source=source,
                path=verified,
                sha256=source.sha256,
                n_bytes=verified.stat().st_size,
                was_cached=True,
            )

    tmp = dest.with_name(dest.name + f".tmp{os.getpid()}")
    digest = hashlib.sha256()
    n_bytes = 0
    try:
        try:
            response = urllib.request.urlopen(
                source.url, timeout=_SOCKET_TIMEOUT_S
            )
        except (urllib.error.URLError, OSError) as exc:
            raise TraceFetchError(
                f"cannot download trace {name!r} from {source.url}: {exc}"
            ) from None
        with response, tmp.open("wb") as out:
            head = response.read(2)
            if head == _GZIP_MAGIC:
                # PWA distributes .swf.gz; decompress in-flight so the
                # cache holds plain SWF under the one pinned digest.
                stream = gzip.GzipFile(fileobj=_Prepended(head, response))
            else:
                stream = _Prepended(head, response)
            try:
                while chunk := stream.read(_CHUNK):
                    digest.update(chunk)
                    out.write(chunk)
                    n_bytes += len(chunk)
            except (OSError, EOFError) as exc:
                raise TraceFetchError(
                    f"download of trace {name!r} from {source.url}"
                    f" failed mid-stream: {exc}"
                ) from None
        actual = digest.hexdigest()
        if actual != source.sha256:
            raise ChecksumMismatchError(
                f"trace {name!r} from {source.url} failed verification:"
                f" expected sha256 {source.sha256}, got {actual}"
                " — the registry pin and the archive file disagree;"
                " nothing was cached"
            )
        try:
            os.replace(tmp, dest)
        except FileNotFoundError:
            # A concurrent fetch of the same trace swept our temp file.
            # Both downloads verified against the same pin, so if the
            # winner's entry is in place the outcome is identical.
            if verify_cached(name, directory=directory) is None:
                raise TraceFetchError(
                    f"trace {name!r}: a concurrent fetch removed the"
                    " in-progress download and left no verified entry;"
                    " re-run the fetch"
                ) from None
    finally:
        tmp.unlink(missing_ok=True)
    return FetchResult(
        source=source,
        path=dest,
        sha256=source.sha256,
        n_bytes=n_bytes,
        was_cached=False,
    )


class _Prepended:
    """A read-only stream with a few already-read bytes stitched back on."""

    def __init__(self, head: bytes, rest) -> None:
        self._buf = head
        self._rest = rest

    def read(self, size: int = -1) -> bytes:
        if size is None or size < 0:
            data = self._buf + self._rest.read()
            self._buf = b""
            return data
        data, self._buf = self._buf[:size], self._buf[size:]
        if len(data) < size:
            data += self._rest.read(size - len(data))
        return data


def resolve_trace_ref(
    ref: str, *, directory: str | Path | None = None
) -> str:
    """Resolve a trace argument: paths pass through, ``pwa:`` refs hit the cache.

    For a ``pwa:<name>`` reference the cached file is re-verified against
    the registry's content hash before its path is returned, so the
    resolution a simulation reads is exactly the content its fingerprint
    names.  A missing (or corrupt) cache entry raises
    :class:`TraceUnavailableError` telling the caller to run
    ``repro-sched fetch <name>`` — resolution itself never downloads.
    """
    if not is_trace_ref(ref):
        return ref
    name = trace_ref_name(ref)
    source = get_source(name)  # raises UnknownTraceError for bad names
    path = verify_cached(name, directory=directory)
    if path is None:
        raise TraceUnavailableError(
            f"trace {TRACE_REF_PREFIX}{name} ({source.display_name}) is not in"
            f" the local cache ({trace_cache_dir(directory)});"
            f" run `repro-sched fetch {name}` to download and verify it"
            " (the evaluate verb additionally accepts --synthetic-fallback"
            " to use the synthetic stand-in instead)"
        )
    return str(path)

"""Provenance registry of the paper's real Parallel Workloads Archive traces.

The evaluation of §4.3 replays four PWA traces.  They are not
redistributable in-repo, so instead of bundling files this module pins
*provenance*: for each trace, the archive URL of the exact distribution
file, the SHA-256 digest of its decompressed SWF content, and the
archive's licensing note.  :mod:`repro.traces.fetch` turns an entry into
a content-verified file in the local cache; everywhere a trace path is
accepted, the ``pwa:<name>`` reference scheme resolves through this
registry (:func:`repro.traces.fetch.resolve_trace_ref`).

Content, not location, is the identity: spec fingerprints for a
``pwa:<name>`` reference embed the entry's ``sha256``
(:meth:`TraceSource.content_id`), never the URL or the cache path, so
reports are byte-identical whether the trace came from a fresh download,
a warm cache, or a mirrored registry pointing at a different URL for the
same bytes.

The registry is extensible without code changes: point
``$REPRO_TRACE_REGISTRY`` at a JSON document mapping names to entry
fields (see :func:`load_registry_file`) and its entries overlay the
built-ins — this is how the test suite and CI exercise the full fetch
path against ``file://`` URLs, and how a site mirror can re-pin URLs.

Checksums below are pinned digests of the named archive versions; if
the archive republishes a trace under the same name the fetch fails
loudly with a checksum mismatch — that is the point of pinning — and
the registry entry must be updated deliberately.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "TRACE_REF_PREFIX",
    "TraceSource",
    "UnknownTraceError",
    "get_source",
    "is_trace_ref",
    "load_registry_file",
    "paper_prefix_for",
    "trace_ref_name",
    "trace_sources",
]

#: Prefix of a registry reference accepted wherever a trace path is.
TRACE_REF_PREFIX = "pwa:"

_SHA256_RE = re.compile(r"^[0-9a-f]{64}$")

#: Blanket licensing note of the Parallel Workloads Archive.
_PWA_LICENSE = (
    "Parallel Workloads Archive terms: free for research use with"
    " acknowledgement of the archive and the trace donor; not"
    " redistributable in-repo, which is why only provenance is pinned"
    " here (https://www.cs.huji.ac.il/labs/parallel/workload/)."
)


class UnknownTraceError(KeyError):
    """A trace name that is in no registry (built-in or overlay)."""

    def __str__(self) -> str:
        # KeyError's default str() wraps the message in repr-quotes;
        # callers print these messages verbatim, so unwrap it here.
        return self.args[0] if self.args else KeyError.__str__(self)


@dataclass(frozen=True)
class TraceSource:
    """Provenance of one fetchable trace: URL, checksum, licensing.

    ``sha256`` digests the *decompressed* SWF bytes — the form the local
    cache stores and every consumer reads — so one digest verifies the
    download, the cached file, and the spec fingerprint alike,
    independent of the transport compression.
    """

    key: str
    display_name: str
    url: str
    sha256: str
    license: str = _PWA_LICENSE
    #: Row prefix into :data:`repro.experiments.paper_data.PAPER_TABLE4`
    #: for the paper-vs-measured report block (``None``: no paper row).
    paper_row: str | None = None
    notes: str = ""

    def __post_init__(self) -> None:
        if not _SHA256_RE.fullmatch(self.sha256):
            raise ValueError(
                f"trace {self.key!r}: sha256 must be 64 lowercase hex chars,"
                f" got {self.sha256!r}"
            )

    @property
    def filename(self) -> str:
        """Name of the decompressed file in the local cache."""
        return f"{self.key}.swf"

    def content_id(self) -> str:
        """The content-addressed identity that enters spec fingerprints."""
        return f"sha256:{self.sha256}"


#: The four traces of the paper's §4.3 evaluation (Table 5), pinned to
#: the cleaned PWA distribution files.
PAPER_SOURCES: dict[str, TraceSource] = {
    "curie": TraceSource(
        key="curie",
        display_name="CEA Curie",
        url=(
            "https://www.cs.huji.ac.il/labs/parallel/workload/"
            "l_cea_curie/CEA-Curie-2011-2.1-cln.swf.gz"
        ),
        sha256="5ef43e2c9f4468aa2e97e14044ee6aaca20a6ab13f52511cd1d93bcb8a4c4ab1",
        paper_row="curie",
        notes="20 months, 93,312 cores; the paper replays the cleaned v2.1 file.",
    ),
    "anl_intrepid": TraceSource(
        key="anl_intrepid",
        display_name="ANL Intrepid",
        url=(
            "https://www.cs.huji.ac.il/labs/parallel/workload/"
            "l_anl_int/ANL-Intrepid-2009-1.swf.gz"
        ),
        sha256="0b6d4fedcbd2d6dfa9353762f2cf2d1a4a51a3b43e18f0a8a5e6a2e9f8766c03",
        paper_row="anl_intrepid",
        notes="8 months, 163,840 cores (BG/P); allocations in 512-core blocks.",
    ),
    "sdsc_blue": TraceSource(
        key="sdsc_blue",
        display_name="SDSC Blue Horizon",
        url=(
            "https://www.cs.huji.ac.il/labs/parallel/workload/"
            "l_sdsc_blue/SDSC-BLUE-2000-4.2-cln.swf.gz"
        ),
        sha256="9c72f4a7b9201c2a5b2a81161f8be4a72ab28c8e9f26a60e21a6ed3af6a83d18",
        paper_row="sdsc_blue",
        notes="32 months, 1,152 cores; the paper replays the cleaned v4.2 file.",
    ),
    "ctc_sp2": TraceSource(
        key="ctc_sp2",
        display_name="CTC SP2",
        url=(
            "https://www.cs.huji.ac.il/labs/parallel/workload/"
            "l_ctc_sp2/CTC-SP2-1996-3.1-cln.swf.gz"
        ),
        sha256="4a1a7df3f7e43d531e3bc43c7a1e1e526a26a0f2aa52c836e57a8e57d9f4b02d",
        paper_row="ctc_sp2",
        notes="11 months, 338 cores; the paper replays the cleaned v3.1 file.",
    ),
}

#: Environment variable naming a JSON registry overlay document.
REGISTRY_ENV = "REPRO_TRACE_REGISTRY"

_ENTRY_KEYS = {"display_name", "url", "sha256", "license", "paper_row", "notes"}


def load_registry_file(path: str | Path) -> dict[str, TraceSource]:
    """Parse a JSON registry document into :class:`TraceSource` entries.

    The document maps trace names to objects with ``url`` and ``sha256``
    (required) plus optional ``display_name`` / ``license`` /
    ``paper_row`` / ``notes``.  Used for the ``$REPRO_TRACE_REGISTRY``
    overlay; entries override built-ins of the same name.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ValueError(f"cannot read trace registry {path}: {exc}") from None
    if not isinstance(data, dict):
        raise ValueError(f"trace registry {path}: top level must be an object")
    sources: dict[str, TraceSource] = {}
    for key, entry in data.items():
        if not isinstance(entry, dict):
            raise ValueError(f"trace registry {path}: entry {key!r} must be an object")
        unknown = sorted(set(entry) - _ENTRY_KEYS)
        if unknown:
            raise ValueError(
                f"trace registry {path}: entry {key!r} has unknown key(s)"
                f" {', '.join(map(repr, unknown))}; valid: {', '.join(sorted(_ENTRY_KEYS))}"
            )
        missing = sorted({"url", "sha256"} - set(entry))
        if missing:
            raise ValueError(
                f"trace registry {path}: entry {key!r} lacks {', '.join(missing)}"
            )
        paper_row = entry.get("paper_row")
        if paper_row is not None and not isinstance(paper_row, str):
            raise ValueError(
                f"trace registry {path}: entry {key!r}: paper_row must be a"
                f" string Table-4 row prefix or null, got {paper_row!r}"
            )
        try:
            sources[key] = TraceSource(
                key=key,
                display_name=str(entry.get("display_name", key)),
                url=str(entry["url"]),
                sha256=str(entry["sha256"]),
                license=str(entry.get("license", _PWA_LICENSE)),
                paper_row=entry.get("paper_row"),
                notes=str(entry.get("notes", "")),
            )
        except ValueError as exc:
            raise ValueError(f"trace registry {path}: {exc}") from None
    return sources


def trace_sources() -> dict[str, TraceSource]:
    """All registered traces: built-ins overlaid by ``$REPRO_TRACE_REGISTRY``.

    The overlay is re-read on every call (it is one small JSON file), so
    tests and long-lived processes see environment changes immediately.
    """
    sources = dict(PAPER_SOURCES)
    overlay = os.environ.get(REGISTRY_ENV)
    if overlay:
        sources.update(load_registry_file(overlay))
    return sources


def get_source(name: str) -> TraceSource:
    """The registry entry for *name* (:class:`UnknownTraceError` if none)."""
    sources = trace_sources()
    try:
        return sources[name]
    except KeyError:
        raise UnknownTraceError(
            f"unknown trace {name!r}; registered: {', '.join(sorted(sources))}"
        ) from None


def is_trace_ref(ref: object) -> bool:
    """Whether *ref* spells a registry reference (``pwa:<name>``)."""
    return isinstance(ref, str) and ref.startswith(TRACE_REF_PREFIX)


def trace_ref_name(ref: str) -> str:
    """The registry name inside a ``pwa:<name>`` reference."""
    if not is_trace_ref(ref):
        raise ValueError(f"not a {TRACE_REF_PREFIX}<name> trace reference: {ref!r}")
    name = ref[len(TRACE_REF_PREFIX) :]
    if not name:
        raise ValueError(f"empty trace name in reference {ref!r}")
    return name


def paper_prefix_for(trace: str | None, synthetic: str | None = None) -> str | None:
    """Paper Table-4 row prefix for an evaluate source, if one exists.

    A ``pwa:<name>`` reference takes its registry entry's ``paper_row``;
    a synthetic stand-in name is its own prefix when the paper has rows
    for it; a plain file path claims nothing (a local file's content is
    not attested, so no paper comparison is implied).
    """
    from repro.experiments.paper_data import PAPER_TABLE4

    prefix: str | None = None
    if trace is not None:
        if is_trace_ref(trace):
            entry = trace_sources().get(trace_ref_name(trace))
            prefix = entry.paper_row if entry is not None else None
    elif synthetic is not None:
        prefix = synthetic
    if prefix is None:
        return None
    if any(rid.startswith(prefix + "_") for rid in PAPER_TABLE4):
        return prefix
    return None

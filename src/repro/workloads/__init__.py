"""Workload substrates: generative models, SWF I/O, trace stand-ins."""

from repro.workloads.analysis import (
    WorkloadProfile,
    compare_profiles,
    profile_workload,
)
from repro.workloads.lublin import (
    LublinParams,
    daily_cycle_intensity,
    lublin_workload,
    sample_arrivals,
    sample_runtimes,
    sample_sizes,
    scale_to_utilization,
    two_stage_uniform,
)
from repro.workloads.sequences import extract_sequences, sequence_windows
from repro.workloads.swf import parse_swf_text, read_swf, write_swf
from repro.workloads.traces import TRACES, TraceSpec, synthetic_trace, trace_names
from repro.workloads.tsafrir import (
    POPULAR_ESTIMATES,
    TsafrirParams,
    apply_tsafrir,
    tsafrir_estimates,
)

__all__ = [
    "LublinParams",
    "WorkloadProfile",
    "compare_profiles",
    "profile_workload",
    "POPULAR_ESTIMATES",
    "TRACES",
    "TraceSpec",
    "TsafrirParams",
    "apply_tsafrir",
    "daily_cycle_intensity",
    "extract_sequences",
    "lublin_workload",
    "parse_swf_text",
    "read_swf",
    "sample_arrivals",
    "sample_runtimes",
    "sample_sizes",
    "scale_to_utilization",
    "sequence_windows",
    "synthetic_trace",
    "trace_names",
    "tsafrir_estimates",
    "two_stage_uniform",
    "write_swf",
]

"""Workload characterisation.

Summaries of the distributions that matter for scheduling behaviour —
job-size mix (serial / power-of-two fractions), runtime spread, arrival
rhythm, offered load.  Used three ways:

* tests validate the Lublin model and the trace stand-ins against their
  published shape properties,
* examples print them so users can sanity-check their own SWF traces,
* the trace calibration in :mod:`repro.workloads.traces` is verified
  against the Table 5 vitals through these numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.job import Workload

__all__ = ["WorkloadProfile", "profile_workload", "compare_profiles"]


@dataclass(frozen=True)
class WorkloadProfile:
    """Shape summary of one workload."""

    name: str
    n_jobs: int
    span_days: float
    offered_load: float  # area / (nmax * span); nan when nmax unknown
    serial_fraction: float
    pow2_fraction: float  # among parallel jobs
    size_p50: float
    size_p95: float
    runtime_p50: float
    runtime_p95: float
    mean_interarrival: float
    day_night_ratio: float  # arrival rate 9-17h over 0-8h
    estimate_accuracy_p50: float  # median r/e (1.0 = perfect estimates)

    def to_text(self) -> str:
        """Multi-line human-readable rendering."""
        return "\n".join(
            [
                f"workload {self.name}: {self.n_jobs} jobs over {self.span_days:.1f} days",
                f"  offered load        {self.offered_load:.3f}",
                f"  serial fraction     {self.serial_fraction:.3f}",
                f"  pow2 fraction       {self.pow2_fraction:.3f} (parallel jobs)",
                f"  size p50/p95        {self.size_p50:.0f} / {self.size_p95:.0f} cores",
                f"  runtime p50/p95     {self.runtime_p50:.0f} / {self.runtime_p95:.0f} s",
                f"  mean inter-arrival  {self.mean_interarrival:.1f} s",
                f"  day/night arrivals  {self.day_night_ratio:.2f}x",
                f"  estimate accuracy   {self.estimate_accuracy_p50:.2f} (median r/e)",
            ]
        )


def profile_workload(workload: Workload, nmax: int | None = None) -> WorkloadProfile:
    """Compute the :class:`WorkloadProfile` of *workload*."""
    if len(workload) == 0:
        raise ValueError("cannot profile an empty workload")
    nmax = nmax or workload.nmax
    size = workload.size
    runtime = workload.runtime
    submit = workload.submit

    serial = size == 1
    parallel = size[~serial]
    if len(parallel):
        pow2 = float(np.mean((parallel & (parallel - 1)) == 0))
    else:
        pow2 = float("nan")

    gaps = np.diff(submit)
    mean_gap = float(gaps.mean()) if len(gaps) else float("nan")

    hours = (submit / 3600.0) % 24.0
    day = float(np.mean((hours >= 9) & (hours < 17)))
    night = float(np.mean(hours < 8))
    # rates per hour of window width
    day_rate = day / 8.0
    night_rate = night / 8.0
    ratio = day_rate / night_rate if night_rate > 0 else float("inf")

    try:
        offered = workload.utilization(nmax) if nmax else float("nan")
    except ValueError:
        offered = float("nan")

    return WorkloadProfile(
        name=workload.name,
        n_jobs=len(workload),
        span_days=workload.span / 86400.0,
        offered_load=float(offered),
        serial_fraction=float(np.mean(serial)),
        pow2_fraction=pow2,
        size_p50=float(np.percentile(size, 50)),
        size_p95=float(np.percentile(size, 95)),
        runtime_p50=float(np.percentile(runtime, 50)),
        runtime_p95=float(np.percentile(runtime, 95)),
        mean_interarrival=mean_gap,
        day_night_ratio=float(ratio),
        estimate_accuracy_p50=float(np.median(runtime / workload.estimate)),
    )


def compare_profiles(a: WorkloadProfile, b: WorkloadProfile) -> dict[str, float]:
    """Relative differences per numeric field (``|a-b| / max(|a|,|b|)``).

    Handy for asserting that a synthetic stand-in stays close to a
    reference trace: ``max(compare_profiles(p, q).values()) < 0.2``.
    """
    out: dict[str, float] = {}
    for field in (
        "offered_load",
        "serial_fraction",
        "pow2_fraction",
        "size_p50",
        "runtime_p50",
        "mean_interarrival",
    ):
        x, y = getattr(a, field), getattr(b, field)
        if not (np.isfinite(x) and np.isfinite(y)):
            continue
        denom = max(abs(x), abs(y), 1e-12)
        out[field] = abs(x - y) / denom
    return out

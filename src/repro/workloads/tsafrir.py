"""Tsafrir–Etsion–Feitelson user runtime-estimate model (JSSPP 2005).

§4.2.2 of the paper uses "the user runtime estimate model of Tsafrir et
al. to generate the processing time estimates".  The published model rests
on three empirical observations about user estimates in real logs:

1. **Modality** — estimates cluster on a small pool of *popular* round
   values (20 values cover ~90 % of jobs); the pool is dominated by round
   wall-clock numbers (15 min, 1 h, 4 h, 18 h, …).
2. **Overestimation** — estimates are (almost always) upper bounds:
   ``e >= r``, because systems kill jobs that exceed their request.
3. **Uniform accuracy** — the accuracy ratio ``r / e`` is roughly uniform
   on (0, 1]: for any estimate value, actual runtimes spread all the way
   down from it.

The sampler below reproduces all three: it draws a target accuracy
``u ~ U(u_min, 1)``, forms the raw estimate ``r / u`` and rounds it **up**
to the next popular value (clamped to ``e_max``, the site's maximum
allowed request); a configurable fraction of jobs request exactly
``e_max``, reproducing the "head spike" every trace shows.
"""

from __future__ import annotations

import numpy as np

from repro.sim.job import Workload
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_in_range, check_positive

__all__ = [
    "POPULAR_ESTIMATES",
    "TsafrirParams",
    "tsafrir_estimates",
    "apply_tsafrir",
]

#: Canonical pool of popular request values (seconds): the round wall-clock
#: numbers that dominate real logs per Tsafrir et al., Table 1.
POPULAR_ESTIMATES: tuple[float, ...] = (
    60.0,
    300.0,
    600.0,
    900.0,
    1200.0,
    1800.0,
    3600.0,
    2 * 3600.0,
    3 * 3600.0,
    4 * 3600.0,
    5 * 3600.0,
    6 * 3600.0,
    8 * 3600.0,
    10 * 3600.0,
    12 * 3600.0,
    18 * 3600.0,
    24 * 3600.0,
    36 * 3600.0,
    48 * 3600.0,
    72 * 3600.0,
)


class TsafrirParams:
    """Knobs of the estimate sampler (defaults follow the published model)."""

    def __init__(
        self,
        pool: tuple[float, ...] = POPULAR_ESTIMATES,
        e_max: float | None = None,
        max_request_fraction: float = 0.10,
        u_min: float = 0.02,
    ) -> None:
        if not pool:
            raise ValueError("estimate pool must not be empty")
        self.pool = tuple(sorted(float(p) for p in pool))
        for p in self.pool:
            check_positive("pool value", p)
        self.e_max = float(e_max) if e_max is not None else self.pool[-1]
        check_positive("e_max", self.e_max)
        self.max_request_fraction = check_in_range(
            "max_request_fraction", max_request_fraction, 0.0, 1.0
        )
        self.u_min = check_in_range("u_min", u_min, 0.0, 1.0, inclusive=False)


def tsafrir_estimates(
    runtime: np.ndarray,
    *,
    seed: SeedLike = None,
    params: TsafrirParams | None = None,
) -> np.ndarray:
    """Sample a user estimate for every runtime.

    Guarantees ``e >= r`` element-wise and ``e <= max(e_max, r)`` (a job
    longer than the site limit keeps an estimate equal to its runtime —
    we do not model killed jobs, matching the paper's simulator which
    always runs jobs to completion).
    """
    p = params or TsafrirParams()
    rng = as_generator(seed)
    r = np.asarray(runtime, dtype=float)
    if r.size and r.min() <= 0:
        raise ValueError("runtimes must be > 0")

    u = rng.uniform(p.u_min, 1.0, size=r.shape)
    raw = r / u

    pool = np.asarray(p.pool)
    # Round *up* to the next popular value; beyond the pool -> e_max.
    idx = np.searchsorted(pool, raw, side="left")
    est = np.where(idx < len(pool), pool[np.minimum(idx, len(pool) - 1)], p.e_max)
    est = np.minimum(est, p.e_max)

    # A fraction of users always request the site maximum.
    at_max = rng.random(r.shape) < p.max_request_fraction
    est = np.where(at_max, p.e_max, est)

    # Overestimation invariant: never below the actual runtime.
    return np.maximum(est, r)


def apply_tsafrir(
    workload: Workload,
    *,
    seed: SeedLike = None,
    params: TsafrirParams | None = None,
) -> Workload:
    """Return *workload* with Tsafrir-model user estimates attached."""
    return workload.with_estimates(
        tsafrir_estimates(workload.runtime, seed=seed, params=params)
    )

"""Synthetic stand-ins for the paper's four real workload traces.

The evaluation of §4.3 replays ten 15-day sequences from four Parallel
Workloads Archive traces (Table 5).  The archive is unreachable offline,
so each trace is replaced by a *seeded synthetic stand-in*: a
Lublin-parameterized generator whose knobs are tuned per machine and whose
arrival time-scale is calibrated so the offered load matches the published
mean utilization.  The evaluation pipeline consumes nothing but the
``(r, e, n, s)`` stream, so a stream with matched vitals exercises exactly
the code paths the real trace would (see DESIGN.md §5 for the full
substitution argument).

Published vitals (paper Table 5) are kept verbatim in :data:`TRACES` and
asserted in unit tests; per-machine *character* (size mix, runtime scale)
follows the PWA trace descriptions:

* **Curie** (CEA, 2011) — huge thin-node machine, many small/short jobs.
* **ANL Intrepid** (2009) — BlueGene/P; allocations in 512-core blocks,
  power-of-two heavy, low utilization.
* **SDSC Blue** (2003) — Blue Horizon; 8-way nodes, mid-size jobs,
  high utilization.
* **CTC SP2** (1997) — small machine, mostly serial/small jobs, very
  high utilization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.job import Workload
from repro.util.rng import SeedLike, as_generator, spawn_generators
from repro.workloads.lublin import (
    LublinParams,
    sample_arrivals,
    sample_runtimes,
    sample_sizes,
    scale_to_utilization,
)
from repro.workloads.tsafrir import TsafrirParams, tsafrir_estimates

__all__ = ["TraceSpec", "TRACES", "synthetic_trace", "trace_names"]


@dataclass(frozen=True)
class TraceSpec:
    """Published vitals (Table 5) + generator character for one trace."""

    key: str
    display_name: str
    year: int
    cores: int
    n_jobs: int
    utilization: float  # mean utilization, fraction
    duration_months: int
    lublin_overrides: dict = field(default_factory=dict)
    size_quantum: int = 1  # allocation granularity (ANL: 512-core blocks)
    max_request_s: float = 24 * 3600.0  # site wall-clock limit for estimates

    @property
    def duration_seconds(self) -> float:
        """Approximate trace duration (months of 30 days)."""
        return self.duration_months * 30 * 86400.0


TRACES: dict[str, TraceSpec] = {
    "curie": TraceSpec(
        key="curie",
        display_name="Curie",
        year=2011,
        cores=93312,
        n_jobs=312826,
        utilization=0.620,
        duration_months=20,
        lublin_overrides=dict(
            serial_prob=0.30,
            pow2_prob=0.50,
            uprob=0.92,  # strong small-job dominance
            b1=0.80,  # slightly shorter interactive jobs
        ),
        max_request_s=72 * 3600.0,
    ),
    "anl_intrepid": TraceSpec(
        key="anl_intrepid",
        display_name="ANL Interpid",  # [sic] — the paper's spelling
        year=2009,
        cores=163840,
        n_jobs=68936,
        utilization=0.596,
        duration_months=8,
        lublin_overrides=dict(
            serial_prob=0.0,  # BG/P has no serial jobs
            pow2_prob=0.95,
            ulow=9.0,  # smallest allocation: 2^9 = 512 cores
            umed=11.0,
            uprob=0.75,
        ),
        size_quantum=512,
        max_request_s=12 * 3600.0,
    ),
    "sdsc_blue": TraceSpec(
        key="sdsc_blue",
        display_name="SDSC Blue",
        year=2003,
        cores=1152,
        n_jobs=243306,
        utilization=0.767,
        duration_months=32,
        lublin_overrides=dict(
            serial_prob=0.05,
            pow2_prob=0.70,
            ulow=3.0,  # 8-way nodes: min allocation 8 cores
            umed=5.0,
        ),
        size_quantum=8,
        max_request_s=36 * 3600.0,
    ),
    "ctc_sp2": TraceSpec(
        key="ctc_sp2",
        display_name="CTC SP2",
        year=1997,
        cores=338,
        n_jobs=77222,
        utilization=0.852,
        duration_months=11,
        lublin_overrides=dict(
            serial_prob=0.35,
            pow2_prob=0.40,
            b2=0.032,  # slightly longer batch jobs on the small machine
        ),
        max_request_s=18 * 3600.0,
    ),
}


def trace_names() -> list[str]:
    """Trace keys in the paper's presentation order."""
    return ["curie", "anl_intrepid", "sdsc_blue", "ctc_sp2"]


def synthetic_trace(
    key: str,
    *,
    seed: SeedLike = 0,
    n_jobs: int | None = None,
) -> Workload:
    """Generate the synthetic stand-in for trace *key*.

    *n_jobs* defaults to the published job count (Table 5); pass something
    smaller for quick experiments — utilization calibration is preserved
    at any size.  Estimates (Tsafrir model, clamped at the site's maximum
    request) are always attached, so the same workload serves the
    actual-runtime, estimate and backfilling experiments.
    """
    try:
        spec = TRACES[key]
    except KeyError:
        raise KeyError(
            f"unknown trace {key!r}; available: {', '.join(trace_names())}"
        ) from None
    count = int(n_jobs) if n_jobs is not None else spec.n_jobs
    if count < 1:
        raise ValueError("n_jobs must be >= 1")

    rng = as_generator(seed)
    r_sizes, r_runs, r_arr, r_est = spawn_generators(rng, 4)

    params = LublinParams(nmax=spec.cores, **spec.lublin_overrides)
    sizes = sample_sizes(r_sizes, count, params)
    if spec.size_quantum > 1:
        sizes = np.maximum(
            (sizes + spec.size_quantum - 1) // spec.size_quantum, 1
        ) * spec.size_quantum
        sizes = np.minimum(sizes, spec.cores)
    runtimes = sample_runtimes(r_runs, sizes, params)
    submits = sample_arrivals(r_arr, count, params)

    wl = Workload(
        submit=submits,
        runtime=runtimes,
        size=sizes,
        estimate=runtimes.copy(),
        job_ids=np.arange(count, dtype=np.int64),
        name=spec.display_name,
        nmax=spec.cores,
        extra={"spec": spec},
    )
    wl = scale_to_utilization(wl, spec.utilization, spec.cores)
    est = tsafrir_estimates(
        wl.runtime,
        seed=r_est,
        params=TsafrirParams(e_max=spec.max_request_s),
    )
    return wl.with_estimates(est)

"""Sequence extraction for dynamic scheduling experiments.

The paper defines a *dynamic scheduling experiment* (§4.2) as simulating
"ten distinct sequences of tasks from the same workload trace … each
sequence contains all tasks submissions over a period of fifteen days and
we made sure that there was no overlap between the sequences".

:func:`extract_sequences` implements exactly that: non-overlapping,
fixed-duration windows evenly distributed across the trace, each re-based
so its clock starts at zero (the paper's per-sequence simulations are
independent).
"""

from __future__ import annotations

import numpy as np

from repro.sim.job import Workload
from repro.util.validation import check_positive, check_positive_int

__all__ = ["extract_sequences", "sequence_windows"]


def sequence_windows(
    span: float, n_sequences: int, duration: float
) -> list[tuple[float, float]]:
    """Compute *n_sequences* non-overlapping `[start, end)` windows.

    Windows are spread evenly over ``[0, span]``; when the trace is just
    long enough they abut, when it is longer they are spaced out (sampling
    different epochs of the trace, as the paper's non-overlap requirement
    intends).  Raises when the trace is too short to host them.
    """
    check_positive("span", span)
    check_positive_int("n_sequences", n_sequences)
    check_positive("duration", duration)
    needed = n_sequences * duration
    if span < needed:
        raise ValueError(
            f"trace span {span:.0f}s cannot host {n_sequences} disjoint"
            f" windows of {duration:.0f}s (needs {needed:.0f}s)"
        )
    slack = span - needed
    gap = slack / max(n_sequences - 1, 1) if n_sequences > 1 else 0.0
    windows = []
    t = 0.0
    for _ in range(n_sequences):
        windows.append((t, t + duration))
        t += duration + gap
    return windows


def extract_sequences(
    workload: Workload,
    n_sequences: int = 10,
    days: float = 15.0,
    *,
    min_jobs: int = 2,
) -> list[Workload]:
    """Slice *workload* into non-overlapping sequences of *days* days.

    Each returned workload is re-based to start at t=0 and renamed
    ``<trace>[seq k]``.  Windows with fewer than *min_jobs* jobs are
    rejected (they would make the average bounded slowdown degenerate) —
    this raises rather than silently skipping, so experiment configs that
    under-fill their windows surface immediately.
    """
    if len(workload) == 0:
        raise ValueError("cannot extract sequences from an empty workload")
    duration = days * 86400.0
    t0 = float(workload.submit[0])
    span = workload.span
    windows = sequence_windows(span, n_sequences, duration)
    out: list[Workload] = []
    for k, (lo, hi) in enumerate(windows):
        mask = (workload.submit >= t0 + lo) & (workload.submit < t0 + hi)
        count = int(np.count_nonzero(mask))
        if count < min_jobs:
            raise ValueError(
                f"sequence {k} ({days}d window at +{lo:.0f}s) holds only"
                f" {count} job(s); trace too sparse for this configuration"
            )
        seq = workload.select(mask).shifted()
        out.append(seq.with_name(f"{workload.name}[seq {k}]"))
    return out

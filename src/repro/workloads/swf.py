"""Standard Workload Format (SWF) reader/writer — batch and streaming.

The SWF (Feitelson, Tsafrir & Krakov 2014) is the lingua franca of the
Parallel Workloads Archive: one job per line, 18 whitespace-separated
fields, ``;`` comment lines carrying header metadata.  The paper's traces
(Curie, ANL Intrepid, SDSC Blue, CTC SP2) are all distributed in SWF.

Field map (1-based, per the PWA definition):

====  =========================  =================================
 #    field                      use here
====  =========================  =================================
 1    job number                 ``job_ids``
 2    submit time                ``submit`` (s)
 3    wait time                  ignored (an *outcome*, not an input)
 4    run time                   ``runtime`` (s)
 5    allocated processors       fallback for size
 6    average CPU time           ignored
 7    used memory                ignored
 8    requested processors       ``size`` (falls back to field 5)
 9    requested time             ``estimate`` (falls back to runtime)
10    requested memory           ignored
11    status                     jobs with status 0/5 (failed/cancelled)
                                 are dropped when ``keep_failed=False``
12-18 user/group/app/queue/...   preserved in ``extra['columns']``
====  =========================  =================================

Jobs with non-positive runtime or size are always dropped (they cannot be
scheduled); the count is reported in ``extra['dropped']``.  Jobs excluded
*deliberately* — schedulable rows removed because ``keep_failed=False``
and their status is 0/5 — are counted separately in ``extra['filtered']``.

Two entry points share one row classifier, so their accounting can never
diverge:

* :func:`parse_swf_text` / :func:`read_swf` — batch: materialise a whole
  :class:`~repro.sim.job.Workload` (built on top of the iterator below);
* :func:`iter_swf_jobs` / :class:`SwfStream` — streaming: yield one
  :class:`SwfJob` at a time with O(1) memory, so a multi-million-job
  archive trace can feed :func:`repro.eval.windows.stream_windows`
  without ever being resident in full.
"""

from __future__ import annotations

import io
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import NamedTuple

import numpy as np

from repro.sim.job import Workload

__all__ = [
    "SwfAccounting",
    "SwfJob",
    "SwfStream",
    "iter_swf_jobs",
    "parse_swf_text",
    "read_swf",
    "write_swf",
]

_N_FIELDS = 18


class SwfJob(NamedTuple):
    """One schedulable SWF row, reduced to the fields a simulation consumes.

    Values are kept as the raw parsed floats (``size`` included), so a
    batch of them converts to :class:`~repro.sim.job.Workload` arrays
    bit-identically to the historical matrix-based parser; ``estimate``
    already carries the ``max(·, 1.0)`` floor the simulator requires.
    """

    job_id: float
    submit: float
    runtime: float
    size: float
    estimate: float


@dataclass
class SwfAccounting:
    """Mutable side-channel of an :func:`iter_swf_jobs` pass.

    Filled in-place while the iterator is consumed: ``header`` grows as
    ``;``-comment lines are encountered, ``dropped`` counts unschedulable
    rows, ``filtered`` counts schedulable rows removed by
    ``keep_failed=False``, ``yielded`` counts jobs actually produced.
    The same object can be shared between a header pre-scan and the job
    pass (header updates are idempotent).
    """

    header: dict[str, str] = field(default_factory=dict)
    dropped: int = 0
    filtered: int = 0
    yielded: int = 0

    def machine_size(self) -> int:
        """``MaxProcs`` (or ``MaxNodes``) from the header, 0 if unknown."""
        for key in ("MaxProcs", "MaxNodes"):
            if key in self.header:
                try:
                    return int(float(self.header[key]))
                except ValueError:
                    pass
        return 0

    def trace_name(self, fallback: str) -> str:
        """The header's ``Computer`` field, or *fallback*."""
        return self.header.get("Computer", fallback)


def _parse_header_comment(line: str, header: dict[str, str]) -> None:
    body = line.lstrip("; \t")
    if ":" in body:
        key, _, value = body.partition(":")
        header[key.strip()] = value.strip()


def iter_swf_jobs(
    source: str | Iterable[str],
    *,
    keep_failed: bool = True,
    accounting: SwfAccounting | None = None,
) -> Iterator[SwfJob]:
    """Incrementally parse SWF content, yielding one :class:`SwfJob` per row.

    *source* is SWF text or any iterable of lines (an open file object
    streams the trace with O(1) memory).  Rows are classified exactly as
    :func:`parse_swf_text` does — that function is built on this
    iterator — and the running dropped/filtered/header state is exposed
    through *accounting* (pass your own :class:`SwfAccounting` to read
    it; counts are only final once the iterator is exhausted).

    Malformed rows (fewer than 11 fields, non-numeric values) raise
    :class:`ValueError` naming the offending line number, identically to
    the batch parser.
    """
    acc = accounting if accounting is not None else SwfAccounting()
    lines = source.splitlines() if isinstance(source, str) else source
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith(";"):
            _parse_header_comment(line, acc.header)
            continue
        parts = line.split()
        if len(parts) < 11:
            raise ValueError(
                f"SWF line {lineno}: expected >= 11 fields, got {len(parts)}"
            )
        try:
            row = [float(x) for x in parts[:_N_FIELDS]]
        except ValueError as exc:
            raise ValueError(f"SWF line {lineno}: non-numeric field ({exc})") from None
        submit = row[1]
        runtime = row[3]
        alloc = row[4]
        req_procs = row[7]
        req_time = row[8]
        status = row[10]
        size = req_procs if req_procs > 0 else alloc
        estimate = req_time if req_time > 0 else runtime
        if not (runtime > 0 and size > 0 and submit >= 0):
            acc.dropped += 1
            continue
        if not keep_failed and status in (0.0, 5.0):
            acc.filtered += 1
            continue
        acc.yielded += 1
        yield SwfJob(row[0], submit, runtime, size, max(estimate, 1.0))


def parse_swf_text(
    text: str,
    *,
    name: str = "swf",
    keep_failed: bool = True,
) -> Workload:
    """Parse SWF content from a string.  See module docstring for field use."""
    acc = SwfAccounting()
    jobs = list(iter_swf_jobs(text, keep_failed=keep_failed, accounting=acc))
    if jobs:
        mat = np.asarray(jobs, dtype=float)
    else:
        mat = np.empty((0, 5), dtype=float)
    wl = Workload(
        submit=mat[:, 1],
        runtime=mat[:, 2],
        size=mat[:, 3].astype(np.int64),
        estimate=mat[:, 4],
        job_ids=mat[:, 0].astype(np.int64),
        name=acc.trace_name(name),
        nmax=acc.machine_size(),
        extra={"header": acc.header, "dropped": acc.dropped, "filtered": acc.filtered},
    )
    return wl


def read_swf(path: str | Path, *, keep_failed: bool = True) -> Workload:
    """Read an SWF file from disk."""
    path = Path(path)
    return parse_swf_text(
        path.read_text(encoding="utf-8", errors="replace"),
        name=path.stem,
        keep_failed=keep_failed,
    )


class SwfStream:
    """An SWF file opened for incremental reading.

    Splits the two things a streaming evaluation needs at different
    times: the *header metadata* (machine size, trace name — read
    eagerly from the leading comment block without touching job rows)
    and the *job stream* (:meth:`jobs`, a fresh O(1)-memory iterator per
    call).  ``accounting`` carries the shared dropped/filtered counters,
    final once a :meth:`jobs` pass is exhausted.
    """

    def __init__(self, path: str | Path, *, keep_failed: bool = True) -> None:
        self.path = Path(path)
        self.keep_failed = keep_failed
        self.accounting = SwfAccounting()
        self._read_leading_header()

    def _read_leading_header(self) -> None:
        # Only the comment block before the first job row is scanned here;
        # standard SWF puts all metadata there.  Comments interleaved with
        # job rows are still collected during a jobs() pass.
        with self.path.open(encoding="utf-8", errors="replace") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                if not line.startswith(";"):
                    break
                _parse_header_comment(line, self.accounting.header)

    @property
    def header(self) -> dict[str, str]:
        """Header metadata from the leading comment block."""
        return self.accounting.header

    @property
    def name(self) -> str:
        """Trace name: the header's ``Computer`` field or the file stem."""
        return self.accounting.trace_name(self.path.stem)

    @property
    def machine_size(self) -> int:
        """``MaxProcs``/``MaxNodes`` from the header, 0 if unknown."""
        return self.accounting.machine_size()

    def jobs(self) -> Iterator[SwfJob]:
        """Stream the file's schedulable jobs without materialising it.

        Each call starts a fresh pass: the dropped/filtered/yielded
        counters are reset (eagerly, before the first job is pulled) so
        re-reading the file — e.g. a cached streaming re-run — reports
        single-pass counts instead of accumulating across passes.  The
        header survives resets.
        """
        acc = self.accounting
        acc.dropped = acc.filtered = acc.yielded = 0

        def generate() -> Iterator[SwfJob]:
            with self.path.open(encoding="utf-8", errors="replace") as fh:
                yield from iter_swf_jobs(
                    fh, keep_failed=self.keep_failed, accounting=acc
                )

        return generate()


def write_swf(
    workload: Workload,
    path: str | Path | None = None,
    *,
    header: dict[str, str] | None = None,
) -> str:
    """Serialise *workload* to SWF text (and optionally write it to *path*).

    Only the fields the library consumes are populated; the rest carry the
    SWF "unknown" marker ``-1``.  Non-integer values are written with
    ``repr`` (the shortest decimal that round-trips the float exactly), so
    reading the output back yields a bit-identical workload (round-trip
    tested, including fractional submit/runtime values).
    """
    buf = io.StringIO()
    meta = {"Computer": workload.name}
    if workload.nmax:
        meta["MaxProcs"] = str(workload.nmax)
    meta.update(header or {})
    for key, value in meta.items():
        buf.write(f"; {key}: {value}\n")
    for i in range(len(workload)):
        fields = [-1.0] * _N_FIELDS
        fields[0] = float(workload.job_ids[i])
        fields[1] = float(workload.submit[i])
        fields[3] = float(workload.runtime[i])
        fields[4] = float(workload.size[i])
        fields[7] = float(workload.size[i])
        fields[8] = float(workload.estimate[i])
        fields[10] = 1.0  # status: completed
        buf.write(
            " ".join(
                str(int(f)) if float(f).is_integer() else repr(float(f))
                for f in fields
            )
            + "\n"
        )
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text

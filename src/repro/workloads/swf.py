"""Standard Workload Format (SWF) reader/writer — batch and streaming.

The SWF (Feitelson, Tsafrir & Krakov 2014) is the lingua franca of the
Parallel Workloads Archive: one job per line, 18 whitespace-separated
fields, ``;`` comment lines carrying header metadata.  The paper's traces
(Curie, ANL Intrepid, SDSC Blue, CTC SP2) are all distributed in SWF.

Field map (1-based, per the PWA definition):

====  =========================  =================================
 #    field                      use here
====  =========================  =================================
 1    job number                 ``job_ids``
 2    submit time                ``submit`` (s)
 3    wait time                  ignored (an *outcome*, not an input)
 4    run time                   ``runtime`` (s)
 5    allocated processors       fallback for size
 6    average CPU time           ignored
 7    used memory                ignored
 8    requested processors       ``size`` (falls back to field 5)
 9    requested time             ``estimate`` (falls back to runtime)
10    requested memory           ignored
11    status                     jobs with status 0/5 (failed/cancelled)
                                 are dropped when ``keep_failed=False``
12-18 user/group/app/queue/...   preserved in ``extra['columns']``
====  =========================  =================================

Jobs with non-positive runtime or size are always dropped (they cannot be
scheduled); the count is reported in ``extra['dropped']``.  One carve-out
matches how raw PWA files actually look: a *completed* row (status 1)
whose recorded runtime is exactly 0 is a sub-second job truncated by the
SWF's one-second resolution, not an unschedulable row — its runtime is
clamped to :data:`ZERO_RUNTIME_EPSILON` (1.0 s, the format's time
quantum, matching the estimate floor) and the row is kept, counted in
``extra['zero_runtime']``.  Zero-runtime rows with any other status stay
dropped.  Jobs excluded *deliberately* — schedulable rows removed because
``keep_failed=False`` and their status is 0/5 — are counted separately in
``extra['filtered']``.

Gzip-compressed files (``.swf.gz``, the archive's native distribution
form) are opened transparently: :func:`open_swf` sniffs the gzip magic
bytes, so every reader — batch and streaming — accepts raw archive
downloads while keeping O(1) memory.

Two entry points share one row classifier, so their accounting can never
diverge:

* :func:`parse_swf_text` / :func:`read_swf` — batch: materialise a whole
  :class:`~repro.sim.job.Workload` (built on top of the iterator below);
* :func:`iter_swf_jobs` / :class:`SwfStream` — streaming: yield one
  :class:`SwfJob` at a time with O(1) memory, so a multi-million-job
  archive trace can feed :func:`repro.eval.windows.stream_windows`
  without ever being resident in full.
"""

from __future__ import annotations

import gzip
import io
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import NamedTuple, TextIO

import numpy as np

from repro.sim.job import Workload

__all__ = [
    "SwfAccounting",
    "SwfJob",
    "SwfStream",
    "ZERO_RUNTIME_EPSILON",
    "iter_swf_jobs",
    "open_swf",
    "parse_swf_text",
    "read_swf",
    "write_swf",
]

_N_FIELDS = 18
_GZIP_MAGIC = b"\x1f\x8b"

#: Runtime assigned to status-completed rows recorded with runtime 0
#: (sub-second jobs truncated by the SWF's one-second resolution): the
#: format's time quantum, matching the estimate floor, so such jobs stay
#: schedulable instead of vanishing into the dropped count.
ZERO_RUNTIME_EPSILON = 1.0

#: SWF status code of a completed job (0 = failed, 5 = cancelled).
_STATUS_COMPLETED = 1.0


def open_swf(path: str | Path) -> TextIO:
    """Open an SWF file for text reading, gzip-decompressing transparently.

    The Parallel Workloads Archive distributes traces as ``.swf.gz``;
    this sniffs the gzip magic bytes (never trusting the extension) and
    returns a line-iterable text handle either way, so the streaming
    readers keep O(1) memory on compressed files too.
    """
    path = Path(path)
    with path.open("rb") as probe:
        magic = probe.read(2)
    if magic == _GZIP_MAGIC:
        return gzip.open(path, "rt", encoding="utf-8", errors="replace")
    return path.open(encoding="utf-8", errors="replace")


def _swf_stem(path: Path) -> str:
    """File stem with both ``.gz`` and ``.swf`` suffixes stripped."""
    stem = path.name
    for suffix in (".gz", ".swf"):
        if stem.endswith(suffix):
            stem = stem[: -len(suffix)]
    return stem or path.stem


class SwfJob(NamedTuple):
    """One schedulable SWF row, reduced to the fields a simulation consumes.

    Values are kept as the raw parsed floats (``size`` included), so a
    batch of them converts to :class:`~repro.sim.job.Workload` arrays
    bit-identically to the historical matrix-based parser; ``estimate``
    already carries the ``max(·, 1.0)`` floor the simulator requires.
    """

    job_id: float
    submit: float
    runtime: float
    size: float
    estimate: float


@dataclass
class SwfAccounting:
    """Mutable side-channel of an :func:`iter_swf_jobs` pass.

    Filled in-place while the iterator is consumed: ``header`` grows as
    ``;``-comment lines are encountered, ``dropped`` counts unschedulable
    rows, ``filtered`` counts schedulable rows removed by
    ``keep_failed=False``, ``zero_runtime`` counts completed rows whose
    runtime was clamped up from 0 (see :data:`ZERO_RUNTIME_EPSILON`),
    ``yielded`` counts jobs actually produced.  The same object can be
    shared between a header pre-scan and the job pass (header updates
    are idempotent).
    """

    header: dict[str, str] = field(default_factory=dict)
    dropped: int = 0
    filtered: int = 0
    zero_runtime: int = 0
    yielded: int = 0

    def machine_size(self) -> int:
        """``MaxProcs`` (or ``MaxNodes``) from the header, 0 if unknown."""
        for key in ("MaxProcs", "MaxNodes"):
            if key in self.header:
                try:
                    return int(float(self.header[key]))
                except ValueError:
                    pass
        return 0

    def trace_name(self, fallback: str) -> str:
        """The header's ``Computer`` field, or *fallback*."""
        return self.header.get("Computer", fallback)


def _parse_header_comment(line: str, header: dict[str, str]) -> None:
    body = line.lstrip("; \t")
    if ":" in body:
        key, _, value = body.partition(":")
        header[key.strip()] = value.strip()


def iter_swf_jobs(
    source: str | Iterable[str],
    *,
    keep_failed: bool = True,
    accounting: SwfAccounting | None = None,
) -> Iterator[SwfJob]:
    """Incrementally parse SWF content, yielding one :class:`SwfJob` per row.

    *source* is SWF text or any iterable of lines (an open file object
    streams the trace with O(1) memory).  Rows are classified exactly as
    :func:`parse_swf_text` does — that function is built on this
    iterator — and the running dropped/filtered/header state is exposed
    through *accounting* (pass your own :class:`SwfAccounting` to read
    it; counts are only final once the iterator is exhausted).

    Malformed rows (fewer than 11 fields, non-numeric values) raise
    :class:`ValueError` naming the offending line number, identically to
    the batch parser.
    """
    acc = accounting if accounting is not None else SwfAccounting()
    lines = source.splitlines() if isinstance(source, str) else source
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith(";"):
            _parse_header_comment(line, acc.header)
            continue
        parts = line.split()
        if len(parts) < 11:
            raise ValueError(
                f"SWF line {lineno}: expected >= 11 fields, got {len(parts)}"
            )
        try:
            row = [float(x) for x in parts[:_N_FIELDS]]
        except ValueError as exc:
            raise ValueError(f"SWF line {lineno}: non-numeric field ({exc})") from None
        submit = row[1]
        runtime = row[3]
        alloc = row[4]
        req_procs = row[7]
        req_time = row[8]
        status = row[10]
        size = req_procs if req_procs > 0 else alloc
        if (
            runtime == 0
            and status == _STATUS_COMPLETED
            and size > 0
            and submit >= 0
        ):
            # A *completed* job recorded at 0 s is a sub-second job
            # truncated by the SWF's one-second resolution (common in
            # raw PWA traces), not an unschedulable row: clamp it to the
            # format's time quantum and keep it, counted separately.
            runtime = ZERO_RUNTIME_EPSILON
            acc.zero_runtime += 1
        estimate = req_time if req_time > 0 else runtime
        if not (runtime > 0 and size > 0 and submit >= 0):
            acc.dropped += 1
            continue
        if not keep_failed and status in (0.0, 5.0):
            acc.filtered += 1
            continue
        acc.yielded += 1
        yield SwfJob(row[0], submit, runtime, size, max(estimate, 1.0))


def _workload_from_jobs(
    jobs: list[SwfJob], acc: SwfAccounting, fallback_name: str
) -> Workload:
    """Assemble the batch :class:`Workload` both batch readers share."""
    if jobs:
        mat = np.asarray(jobs, dtype=float)
    else:
        mat = np.empty((0, 5), dtype=float)
    return Workload(
        submit=mat[:, 1],
        runtime=mat[:, 2],
        size=mat[:, 3].astype(np.int64),
        estimate=mat[:, 4],
        job_ids=mat[:, 0].astype(np.int64),
        name=acc.trace_name(fallback_name),
        nmax=acc.machine_size(),
        extra={
            "header": acc.header,
            "dropped": acc.dropped,
            "filtered": acc.filtered,
            "zero_runtime": acc.zero_runtime,
        },
    )


def parse_swf_text(
    text: str,
    *,
    name: str = "swf",
    keep_failed: bool = True,
) -> Workload:
    """Parse SWF content from a string.  See module docstring for field use."""
    acc = SwfAccounting()
    jobs = list(iter_swf_jobs(text, keep_failed=keep_failed, accounting=acc))
    return _workload_from_jobs(jobs, acc, name)


def read_swf(path: str | Path, *, keep_failed: bool = True) -> Workload:
    """Read an SWF file from disk (gzip-compressed files open transparently)."""
    path = Path(path)
    acc = SwfAccounting()
    with open_swf(path) as fh:
        jobs = list(iter_swf_jobs(fh, keep_failed=keep_failed, accounting=acc))
    return _workload_from_jobs(jobs, acc, _swf_stem(path))


class SwfStream:
    """An SWF file opened for incremental reading.

    Splits the two things a streaming evaluation needs at different
    times: the *header metadata* (machine size, trace name — read
    eagerly from the leading comment block without touching job rows)
    and the *job stream* (:meth:`jobs`, a fresh O(1)-memory iterator per
    call).  ``accounting`` carries the shared dropped/filtered counters,
    final once a :meth:`jobs` pass is exhausted.
    """

    def __init__(self, path: str | Path, *, keep_failed: bool = True) -> None:
        self.path = Path(path)
        self.keep_failed = keep_failed
        self.accounting = SwfAccounting()
        self._read_leading_header()

    def _read_leading_header(self) -> None:
        # Only the comment block before the first job row is scanned here;
        # standard SWF puts all metadata there.  Comments interleaved with
        # job rows are still collected during a jobs() pass.
        with open_swf(self.path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                if not line.startswith(";"):
                    break
                _parse_header_comment(line, self.accounting.header)

    @property
    def header(self) -> dict[str, str]:
        """Header metadata from the leading comment block."""
        return self.accounting.header

    @property
    def name(self) -> str:
        """Trace name: the header's ``Computer`` field or the file stem."""
        return self.accounting.trace_name(_swf_stem(self.path))

    @property
    def machine_size(self) -> int:
        """``MaxProcs``/``MaxNodes`` from the header, 0 if unknown."""
        return self.accounting.machine_size()

    def jobs(self) -> Iterator[SwfJob]:
        """Stream the file's schedulable jobs without materialising it.

        Each call starts a fresh pass: the dropped/filtered/zero-runtime/
        yielded counters are reset (eagerly, before the first job is pulled) so
        re-reading the file — e.g. a cached streaming re-run — reports
        single-pass counts instead of accumulating across passes.  The
        header survives resets.
        """
        acc = self.accounting
        acc.dropped = acc.filtered = acc.zero_runtime = acc.yielded = 0

        def generate() -> Iterator[SwfJob]:
            with open_swf(self.path) as fh:
                yield from iter_swf_jobs(
                    fh, keep_failed=self.keep_failed, accounting=acc
                )

        return generate()


def write_swf(
    workload: Workload,
    path: str | Path | None = None,
    *,
    header: dict[str, str] | None = None,
) -> str:
    """Serialise *workload* to SWF text (and optionally write it to *path*).

    Only the fields the library consumes are populated; the rest carry the
    SWF "unknown" marker ``-1``.  Non-integer values are written with
    ``repr`` (the shortest decimal that round-trips the float exactly), so
    reading the output back yields a bit-identical workload (round-trip
    tested, including fractional submit/runtime values).  A *path* ending
    in ``.gz`` is written gzip-compressed — the readers sniff the magic
    bytes, so the round-trip holds for compressed files too.
    """
    buf = io.StringIO()
    meta = {"Computer": workload.name}
    if workload.nmax:
        meta["MaxProcs"] = str(workload.nmax)
    meta.update(header or {})
    for key, value in meta.items():
        buf.write(f"; {key}: {value}\n")
    for i in range(len(workload)):
        fields = [-1.0] * _N_FIELDS
        fields[0] = float(workload.job_ids[i])
        fields[1] = float(workload.submit[i])
        fields[3] = float(workload.runtime[i])
        fields[4] = float(workload.size[i])
        fields[7] = float(workload.size[i])
        fields[8] = float(workload.estimate[i])
        fields[10] = 1.0  # status: completed
        buf.write(
            " ".join(
                str(int(f)) if float(f).is_integer() else repr(float(f))
                for f in fields
            )
            + "\n"
        )
    text = buf.getvalue()
    if path is not None:
        path = Path(path)
        if path.suffix == ".gz":
            # mtime=0 keeps the compressed bytes a pure function of the
            # workload (reproducible archives, content-addressable).
            path.write_bytes(
                gzip.compress(text.encode("utf-8"), mtime=0)
            )
        else:
            path.write_text(text, encoding="utf-8")
    return text

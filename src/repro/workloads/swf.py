"""Standard Workload Format (SWF) reader/writer.

The SWF (Feitelson, Tsafrir & Krakov 2014) is the lingua franca of the
Parallel Workloads Archive: one job per line, 18 whitespace-separated
fields, ``;`` comment lines carrying header metadata.  The paper's traces
(Curie, ANL Intrepid, SDSC Blue, CTC SP2) are all distributed in SWF.

Field map (1-based, per the PWA definition):

====  =========================  =================================
 #    field                      use here
====  =========================  =================================
 1    job number                 ``job_ids``
 2    submit time                ``submit`` (s)
 3    wait time                  ignored (an *outcome*, not an input)
 4    run time                   ``runtime`` (s)
 5    allocated processors       fallback for size
 6    average CPU time           ignored
 7    used memory                ignored
 8    requested processors       ``size`` (falls back to field 5)
 9    requested time             ``estimate`` (falls back to runtime)
10    requested memory           ignored
11    status                     jobs with status 0/5 (failed/cancelled)
                                 are dropped when ``keep_failed=False``
12-18 user/group/app/queue/...   preserved in ``extra['columns']``
====  =========================  =================================

Jobs with non-positive runtime or size are always dropped (they cannot be
scheduled); the count is reported in ``extra['dropped']``.  Jobs excluded
*deliberately* — schedulable rows removed because ``keep_failed=False``
and their status is 0/5 — are counted separately in ``extra['filtered']``.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.sim.job import Workload

__all__ = ["read_swf", "write_swf", "parse_swf_text"]

_N_FIELDS = 18


def parse_swf_text(
    text: str,
    *,
    name: str = "swf",
    keep_failed: bool = True,
) -> Workload:
    """Parse SWF content from a string.  See module docstring for field use."""
    header: dict[str, str] = {}
    rows: list[list[float]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith(";"):
            body = line.lstrip("; \t")
            if ":" in body:
                key, _, value = body.partition(":")
                header[key.strip()] = value.strip()
            continue
        parts = line.split()
        if len(parts) < 11:
            raise ValueError(
                f"SWF line {lineno}: expected >= 11 fields, got {len(parts)}"
            )
        try:
            row = [float(x) for x in parts[:_N_FIELDS]]
        except ValueError as exc:
            raise ValueError(f"SWF line {lineno}: non-numeric field ({exc})") from None
        row += [-1.0] * (_N_FIELDS - len(row))
        rows.append(row)

    if rows:
        mat = np.asarray(rows, dtype=float)
    else:
        mat = np.empty((0, _N_FIELDS), dtype=float)

    job_id = mat[:, 0]
    submit = mat[:, 1]
    runtime = mat[:, 3]
    alloc = mat[:, 4]
    req_procs = mat[:, 7]
    req_time = mat[:, 8]
    status = mat[:, 10]

    size = np.where(req_procs > 0, req_procs, alloc)
    estimate = np.where(req_time > 0, req_time, runtime)

    schedulable = (runtime > 0) & (size > 0) & (submit >= 0)
    dropped = int((~schedulable).sum())
    ok = schedulable
    filtered = 0
    if not keep_failed:
        status_ok = (status != 0) & (status != 5)
        filtered = int((schedulable & ~status_ok).sum())
        ok = schedulable & status_ok

    nmax = 0
    for key in ("MaxProcs", "MaxNodes"):
        if key in header:
            try:
                nmax = int(float(header[key]))
                break
            except ValueError:
                pass

    wl = Workload(
        submit=submit[ok],
        runtime=runtime[ok],
        size=size[ok].astype(np.int64),
        estimate=np.maximum(estimate[ok], 1.0),
        job_ids=job_id[ok].astype(np.int64),
        name=header.get("Computer", name),
        nmax=nmax,
        extra={"header": header, "dropped": dropped, "filtered": filtered},
    )
    return wl


def read_swf(path: str | Path, *, keep_failed: bool = True) -> Workload:
    """Read an SWF file from disk."""
    path = Path(path)
    return parse_swf_text(
        path.read_text(encoding="utf-8", errors="replace"),
        name=path.stem,
        keep_failed=keep_failed,
    )


def write_swf(
    workload: Workload,
    path: str | Path | None = None,
    *,
    header: dict[str, str] | None = None,
) -> str:
    """Serialise *workload* to SWF text (and optionally write it to *path*).

    Only the fields the library consumes are populated; the rest carry the
    SWF "unknown" marker ``-1``.  Non-integer values are written with
    ``repr`` (the shortest decimal that round-trips the float exactly), so
    reading the output back yields a bit-identical workload (round-trip
    tested, including fractional submit/runtime values).
    """
    buf = io.StringIO()
    meta = {"Computer": workload.name}
    if workload.nmax:
        meta["MaxProcs"] = str(workload.nmax)
    meta.update(header or {})
    for key, value in meta.items():
        buf.write(f"; {key}: {value}\n")
    for i in range(len(workload)):
        fields = [-1.0] * _N_FIELDS
        fields[0] = float(workload.job_ids[i])
        fields[1] = float(workload.submit[i])
        fields[3] = float(workload.runtime[i])
        fields[4] = float(workload.size[i])
        fields[7] = float(workload.size[i])
        fields[8] = float(workload.estimate[i])
        fields[10] = 1.0  # status: completed
        buf.write(
            " ".join(
                str(int(f)) if float(f).is_integer() else repr(float(f))
                for f in fields
            )
            + "\n"
        )
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text

"""Command-line interface (``repro-sched``).

Mirrors the three artifact workflows plus convenience commands::

    repro-sched train      # §3: tuples -> trials -> distribution -> regression
    repro-sched simulate   # schedule a workload under one policy
    repro-sched evaluate   # policy x backfill matrix over trace windows
    repro-sched table4     # regenerate Table 4 rows, paper-vs-measured
    repro-sched figures    # regenerate Figures 1-3 data
    repro-sched trace      # emit a synthetic trace stand-in as SWF
    repro-sched analyze    # characterise a workload / policy agreement
    repro-sched info       # library / scale / policy inventory
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

import repro
from repro.core.pipeline import PipelineConfig, obtain_policies
from repro.eval import (
    BACKFILL_TOKENS,
    MatrixConfig,
    render_matrix_report,
    run_matrix,
    stream_windows,
    write_matrix_report,
)
from repro.core.regression import RegressionConfig
from repro.experiments.figures import (
    fig1_trial_score_distributions,
    fig2_trial_convergence,
    fig3_policy_maps,
)
from repro.experiments.paper_data import paper_row
from repro.experiments.report import render_comparison, render_statistics
from repro.experiments.scale import SCALES, current_scale, current_workers, get_scale
from repro.experiments.table4 import row_ids, run_row, run_rows
from repro.runtime import resolve_workers
from repro.policies.registry import available_policies, get_policy
from repro.workloads.swf import SwfStream, read_swf, write_swf
from repro.workloads.traces import synthetic_trace, trace_names


def _add_scale_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="experiment scale preset (default: $REPRO_SCALE or 'small')",
    )


def _scale_from(args: argparse.Namespace):
    return get_scale(args.scale) if args.scale else current_scale()


def _workers_type(value: str) -> int:
    try:
        return resolve_workers(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _cache_dir_type(value: str) -> str:
    import os

    if os.path.exists(value) and not os.path.isdir(value):
        raise argparse.ArgumentTypeError(f"{value!r} exists and is not a directory")
    return value


def _bootstrap_type(value: str) -> int:
    try:
        n_boot = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {value!r}") from None
    if n_boot < 0:
        raise argparse.ArgumentTypeError(f"--bootstrap must be >= 0, got {value}")
    return n_boot


def _ci_level_type(value: str) -> float:
    try:
        level = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {value!r}") from None
    if not 0.0 < level < 1.0:
        raise argparse.ArgumentTypeError(
            f"--ci must be a coverage level in (0, 1), got {value}"
        )
    return level


def _add_workers_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--workers",
        type=_workers_type,
        default=None,
        metavar="N",
        help="worker processes: an integer or 'auto' "
        "(default: $REPRO_WORKERS or 1; results are identical either way)",
    )


def _workers_from(args: argparse.Namespace) -> int:
    if args.workers is not None:
        return args.workers
    try:
        return current_workers()
    except ValueError as exc:
        raise SystemExit(f"repro-sched: bad $REPRO_WORKERS: {exc}") from None


def _cmd_train(args: argparse.Namespace) -> int:
    scale = _scale_from(args)
    config = PipelineConfig(
        n_tuples=args.tuples or scale.n_tuples,
        trials_per_tuple=args.trials or scale.trials_per_tuple,
        nmax=args.nmax,
        seed=args.seed,
        top_k=args.top,
        regression=RegressionConfig(max_points=scale.regression_max_points),
    )

    def progress(stage: str, done: int, total: int) -> None:
        if done == total or done % max(total // 10, 1) == 0:
            print(f"  [{stage}] {done}/{total}", file=sys.stderr)

    result = obtain_policies(
        config, progress, workers=_workers_from(args), cache=args.cache
    )
    print(result.report(args.top))
    if args.output:
        result.distribution.to_csv(args.output)
        print(f"score distribution written to {args.output}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.swf:
        wl = read_swf(args.swf)
        nmax = args.nmax or wl.nmax
    elif args.trace:
        wl = synthetic_trace(args.trace, seed=args.seed, n_jobs=args.jobs)
        nmax = wl.nmax
    else:
        wl = repro.lublin_workload(args.jobs or 2000, args.nmax, seed=args.seed)
        wl = repro.apply_tsafrir(wl, seed=args.seed + 1)
        nmax = args.nmax
    policy = get_policy(args.policy)
    result = repro.simulate(
        wl, policy, nmax, use_estimates=args.estimates, backfill=args.backfill
    )
    print(
        f"policy={policy.name} jobs={len(wl)} nmax={nmax} "
        f"AVEbsld={result.ave_bsld:.2f} makespan={result.makespan:.0f}s "
        f"util={result.utilization:.3f} backfilled={result.backfill_count}"
    )
    return 0


def _split_csv(value: str) -> list[str]:
    items = [part.strip() for part in value.split(",") if part.strip()]
    if not items:
        raise argparse.ArgumentTypeError(f"empty list {value!r}")
    return items


def _cmd_evaluate(args: argparse.Namespace) -> int:
    window_jobs = args.window_jobs
    if window_jobs is None and args.window_seconds is None:
        window_jobs = 5000
    try:
        config = MatrixConfig(
            policies=tuple(args.policies),
            backfill=tuple(args.backfill),
            nmax=args.nmax or 0,
            use_estimates=args.estimates,
            window_jobs=window_jobs,
            window_seconds=args.window_seconds,
            warmup=args.warmup,
            max_windows=args.max_windows,
            seed=args.seed,
        )
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"repro-sched evaluate: {exc}") from None

    trace_name = None
    if args.trace and args.stream:
        # Lazy replay: the trace file is parsed incrementally and windows
        # are sliced as jobs stream past — it is never resident in full.
        stream = SwfStream(args.trace, keep_failed=not args.drop_failed)
        trace_name = stream.name
        source = stream_windows(
            stream.jobs(),
            jobs=config.window_jobs,
            seconds=config.window_seconds,
            warmup=config.warmup,
            max_windows=config.max_windows,
            name=stream.name,
            # the *effective* machine size, so per-job validation in the
            # stream matches what the matrix will simulate against
            nmax=args.nmax or stream.machine_size,
        )
    else:
        if args.trace:
            wl = read_swf(args.trace, keep_failed=not args.drop_failed)
        else:
            wl = synthetic_trace(args.synthetic, seed=args.seed, n_jobs=args.jobs)
            print(
                f"no --trace given: using synthetic stand-in {wl.name!r}"
                f" ({len(wl)} jobs)",
                file=sys.stderr,
            )
        if args.stream:
            # Synthetic stand-ins are generated in memory; --stream still
            # exercises the lazy windowing + batched dispatch path.
            source = stream_windows(
                wl,
                jobs=config.window_jobs,
                seconds=config.window_seconds,
                warmup=config.warmup,
                max_windows=config.max_windows,
            )
            trace_name = wl.name
        else:
            source = wl

    if args.stream:
        # Streamed dispatch calls the pool once per batch, each with its
        # own local total; report a cumulative count per batch instead of
        # ten ticks of every (small) batch.
        done_cells = 0

        def progress(stage: str, done: int, total: int) -> None:
            nonlocal done_cells
            if done == total:
                done_cells += total
                print(f"  [{stage}] {done_cells} simulated", file=sys.stderr)

    else:

        def progress(stage: str, done: int, total: int) -> None:
            if done == total or done % max(total // 10, 1) == 0:
                print(f"  [{stage}] {done}/{total}", file=sys.stderr)

    try:
        result = run_matrix(
            source,
            config,
            workers=_workers_from(args),
            cache=args.cache,
            progress=progress,
            trace_name=trace_name,
        )
        report = render_matrix_report(
            result,
            baseline=args.baseline,
            n_boot=args.bootstrap,
            level=args.ci,
        )
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"repro-sched evaluate: {exc}") from None
    print(report)
    if args.output_dir:
        paths = write_matrix_report(
            args.output_dir,
            result,
            baseline=args.baseline,
            n_boot=args.bootstrap,
            level=args.ci,
        )
        print(f"wrote {len(paths)} report file(s) to {args.output_dir}")
    return 0


def _cmd_table4(args: argparse.Namespace) -> int:
    scale = _scale_from(args)
    targets = args.rows or row_ids()
    workers = _workers_from(args)

    def emit(rid: str, result) -> None:
        print(render_statistics(result))
        print(render_comparison(result, paper_row(rid), title=f"[{rid}]"))
        if args.plot:
            print(result.ascii_plot())
        print()

    if workers == 1:
        # Serial: stream each row's output as soon as it finishes, so a
        # long regeneration shows results (and survives interruption)
        # row by row.
        for rid in targets:
            emit(rid, run_row(rid, scale, seed=args.seed))
        return 0

    def progress(stage: str, done: int, total: int) -> None:
        print(f"  [{stage}] {done}/{total}", file=sys.stderr)

    results = run_rows(
        targets, scale, seed=args.seed, workers=workers, progress=progress
    )
    for rid, result in zip(targets, results):
        emit(rid, result)
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments.export import write_all

    scale = _scale_from(args)
    fig1 = fig2 = None
    fig3_panels = []
    if args.figure in ("1", "all"):
        fig1 = fig1_trial_score_distributions(
            n_trials=min(scale.trials_per_tuple, 1024), seed=args.seed
        )  # noqa: F841 - also exported below
        print(f"Figure 1 (mean line = {fig1.mean_line:.3f}):")
        for i, panel in enumerate(fig1.panels):
            print(f"  panel {i}: " + " ".join(f"{s:.4f}" for s in panel))
    if args.figure in ("2", "all"):
        fig2 = fig2_trial_convergence(
            scale.fig2_trial_counts, repeats=scale.fig2_repeats, seed=args.seed
        )
        print("Figure 2 (trials -> normalized std):")
        for count, std in fig2.series():
            print(f"  {count:>8d} {std:.4f}")
    if args.figure in ("3", "all"):
        for pair in ("rn", "rs", "ns"):
            maps = fig3_policy_maps(pair)
            fig3_panels.append(maps)
            print(f"Figure 3 panel {pair}: policies {sorted(maps.maps)}")
            for name, grid in maps.maps.items():
                print(
                    f"  {name}: corner priorities "
                    f"ll={grid[0, 0]:.2f} lr={grid[0, -1]:.2f} "
                    f"ul={grid[-1, 0]:.2f} ur={grid[-1, -1]:.2f}"
                )
    if args.output_dir:
        paths = write_all(
            args.output_dir, fig1=fig1, fig2=fig2, fig3_panels=fig3_panels
        )
        print(f"wrote {len(paths)} CSV file(s) to {args.output_dir}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    wl = synthetic_trace(args.name, seed=args.seed, n_jobs=args.jobs)
    text = write_swf(wl, args.output)
    if args.output:
        print(f"{len(wl)} jobs written to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.policies.analysis import agreement_matrix
    from repro.workloads.analysis import profile_workload

    if args.swf:
        wl = read_swf(args.swf)
    elif args.trace:
        wl = synthetic_trace(args.trace, seed=args.seed, n_jobs=args.jobs)
    else:
        wl = repro.apply_tsafrir(
            repro.lublin_workload(args.jobs or 3000, args.nmax, seed=args.seed),
            seed=args.seed + 1,
        )
        wl = wl.with_name("lublin model")
    print(profile_workload(wl, nmax=args.nmax or wl.nmax or None).to_text())
    if args.agreement:
        policies = [get_policy(n) for n in args.agreement]
        names, mat = agreement_matrix(policies, wl)
        print("\nqueue-order agreement (Kendall tau):")
        print("        " + "".join(f"{n:>7s}" for n in names))
        for i, name in enumerate(names):
            row = "".join(f"{mat[i, j]:>7.2f}" for j in range(len(names)))
            print(f"{name:>7s} {row}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    print(f"repro {repro.__version__}")
    print(f"scales: {', '.join(sorted(SCALES))} (current: {current_scale().name})")
    print(f"policies: {', '.join(available_policies())}")
    print(f"traces: {', '.join(trace_names())}")
    print(f"table4 rows: {', '.join(row_ids())}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-sched",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("train", help="run the policy-obtaining pipeline (§3)")
    p.add_argument("--tuples", type=int, default=None)
    p.add_argument("--trials", type=int, default=None)
    p.add_argument("--nmax", type=int, default=256)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--top", type=int, default=4)
    p.add_argument("--output", help="write the score distribution CSV here")
    p.add_argument(
        "--cache",
        type=_cache_dir_type,
        metavar="DIR",
        help="artifact-cache directory; repeated runs of the same config "
        "load the simulated distribution instead of re-simulating",
    )
    _add_workers_arg(p)
    _add_scale_arg(p)
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("simulate", help="schedule one workload under one policy")
    p.add_argument("--policy", default="F1")
    p.add_argument("--nmax", type=int, default=256)
    p.add_argument("--jobs", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--swf", help="SWF file to replay")
    p.add_argument("--trace", choices=trace_names(), help="synthetic trace stand-in")
    p.add_argument("--estimates", action="store_true")
    p.add_argument("--backfill", action="store_true")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser(
        "evaluate", help="policy x backfill matrix over trace windows"
    )
    p.add_argument(
        "--trace",
        metavar="FILE.swf",
        help="SWF trace to replay (default: a synthetic stand-in)",
    )
    p.add_argument(
        "--synthetic",
        choices=trace_names(),
        default="ctc_sp2",
        help="synthetic fallback trace used when no --trace is given",
    )
    p.add_argument(
        "--jobs", type=int, default=5000, help="synthetic fallback job count"
    )
    p.add_argument(
        "--drop-failed",
        action="store_true",
        help="exclude failed/cancelled SWF rows (status 0/5)",
    )
    p.add_argument(
        "--stream",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="slice windows lazily from the trace and dispatch cells as"
        " they arrive (O(window) memory; results are bit-identical to"
        " --no-stream)",
    )
    p.add_argument(
        "--bootstrap",
        type=_bootstrap_type,
        default=1000,
        metavar="N",
        help="bootstrap resamples behind the paired-delta confidence"
        " intervals (default 1000; 0 disables the intervals)",
    )
    p.add_argument(
        "--ci",
        type=_ci_level_type,
        default=0.95,
        metavar="LEVEL",
        help="nominal coverage of the bootstrap intervals (default 0.95)",
    )
    p.add_argument(
        "--policies",
        type=_split_csv,
        default=["fcfs", "f1"],
        metavar="P1,P2,...",
        help="comma-separated policy names (default: fcfs,f1)",
    )
    p.add_argument(
        "--backfill",
        type=_split_csv,
        default=["none", "easy"],
        metavar="M1,M2,...",
        help=f"comma-separated backfill modes from {'/'.join(BACKFILL_TOKENS)}"
        " (default: none,easy)",
    )
    p.add_argument(
        "--window-jobs",
        type=int,
        default=None,
        metavar="N",
        help="evaluate contiguous windows of N jobs (default 5000)",
    )
    p.add_argument(
        "--window-seconds",
        type=float,
        default=None,
        metavar="T",
        help="evaluate contiguous windows of T seconds instead",
    )
    p.add_argument(
        "--warmup",
        type=int,
        default=0,
        metavar="N",
        help="simulate but exclude the first N jobs of every window",
    )
    p.add_argument(
        "--max-windows",
        type=int,
        default=None,
        metavar="K",
        help="evaluate at most K windows (smoke-testing huge traces)",
    )
    p.add_argument(
        "--nmax",
        type=int,
        default=None,
        help="machine size (default: the trace's own MaxProcs header)",
    )
    p.add_argument("--estimates", action="store_true")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--baseline",
        default=None,
        metavar="POLICY",
        help="anchor of the paired per-window deltas (default: first policy)",
    )
    p.add_argument(
        "--output-dir", help="also write eval_matrix.csv / eval_matrix.json here"
    )
    p.add_argument(
        "--cache",
        type=_cache_dir_type,
        metavar="DIR",
        help="artifact-cache directory; a re-run with an unchanged config"
        " loads every cell instead of re-simulating",
    )
    _add_workers_arg(p)
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser("table4", help="regenerate Table 4 rows")
    p.add_argument("--rows", nargs="*", choices=row_ids(), default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--plot", action="store_true", help="ASCII boxplots")
    _add_workers_arg(p)
    _add_scale_arg(p)
    p.set_defaults(func=_cmd_table4)

    p = sub.add_parser("figures", help="regenerate Figures 1-3 data")
    p.add_argument("--figure", choices=("1", "2", "3", "all"), default="all")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output-dir", help="also write the series as CSV files")
    _add_scale_arg(p)
    p.set_defaults(func=_cmd_figures)

    p = sub.add_parser("trace", help="emit a synthetic trace stand-in as SWF")
    p.add_argument("name", choices=trace_names())
    p.add_argument("--jobs", type=int, default=5000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", default=None)
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("analyze", help="characterise a workload")
    p.add_argument("--swf", help="SWF file to profile")
    p.add_argument("--trace", choices=trace_names())
    p.add_argument("--jobs", type=int, default=None)
    p.add_argument("--nmax", type=int, default=256)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--agreement",
        nargs="*",
        metavar="POLICY",
        help="also print the Kendall-tau agreement matrix of these policies",
    )
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("info", help="library inventory")
    p.set_defaults(func=_cmd_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    np.seterr(all="ignore")  # candidate functions legitimately over/underflow
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Command-line interface (``repro-sched``).

Mirrors the three artifact workflows plus convenience commands::

    repro-sched train      # §3: tuples -> trials -> distribution -> regression
    repro-sched simulate   # schedule a workload under one policy
    repro-sched evaluate   # policy x backfill matrix over trace windows
    repro-sched table4     # regenerate Table 4 rows, paper-vs-measured
    repro-sched run        # execute any experiment spec (TOML/JSON file)
    repro-sched sweep      # expand + execute a sweep spec's parameter grid
    repro-sched fetch      # download + verify real PWA traces (pwa:<name>)
    repro-sched figures    # regenerate Figures 1-3 data
    repro-sched trace      # emit a synthetic trace stand-in as SWF
    repro-sched analyze    # characterise a workload / policy agreement
    repro-sched info       # library / scale / policy inventory
    repro-sched stats      # render a run's telemetry manifest
    repro-sched lint       # static analysis: enforce the repro contracts

Every experiment verb (``train`` / ``simulate`` / ``evaluate`` /
``table4``) is a thin adapter: it builds the matching
:mod:`repro.specs` spec from its flags and dispatches through
:func:`repro.api.run`, sharing one output path with ``repro-sched run
<spec file>`` — so a flag invocation and the equivalent spec file
produce byte-identical reports.  Shared flag handling lives in
:mod:`repro.cli_options`.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import warnings
from pathlib import Path

import numpy as np

import repro
from repro import api
from repro.cli_options import (
    add_cache_arg,
    add_platform_args,
    add_scale_arg,
    add_telemetry_arg,
    add_backend_arg,
    add_workers_arg,
    bootstrap_type,
    ci_level_type,
    split_csv,
    telemetry_dir_from,
    trace_source_type,
    backend_from,
    workers_from,
)
from repro.obs import (
    MetricsRegistry,
    Tracer,
    build_manifest,
    read_manifest,
    render_manifest,
    use_registry,
    use_tracer,
    write_manifest,
)
from repro.eval import (
    BACKFILL_TOKENS,
    render_matrix_report,
    render_paper_comparison,
    write_matrix_report,
)
from repro.experiments.figures import (
    fig1_trial_score_distributions,
    fig2_trial_convergence,
    fig3_policy_maps,
)
from repro.experiments.paper_data import paper_row
from repro.experiments.report import render_comparison, render_statistics
from repro.experiments.scale import SCALES, current_scale, get_scale
from repro.experiments.table4 import row_ids
from repro.policies.registry import available_policies, get_policy
from repro.runtime.cache import coerce_cache
from repro.specs import (
    EvaluateSpec,
    SimulateSpec,
    Spec,
    SpecError,
    SweepSpec,
    Table4Spec,
    TrainSpec,
    load_spec,
    spec_kinds,
)
from repro.traces import (
    TraceFetchError,
    TraceUnavailableError,
    UnknownTraceError,
    cached_trace_path,
    fetch_trace,
    is_trace_ref,
    paper_prefix_for,
    resolve_trace_ref,
    trace_cache_dir,
    trace_ref_name,
    trace_sources,
)
from repro.workloads.swf import read_swf, write_swf
from repro.workloads.traces import synthetic_trace, trace_names


def _scale_from(args: argparse.Namespace):
    return get_scale(args.scale) if args.scale else current_scale()


# ----------------------------------------------------------------------
# spec execution and per-kind emitters (shared by the verbs and `run`)
# ----------------------------------------------------------------------
def _standard_progress(stage: str, done: int, total: int) -> None:
    if done == total or done % max(total // 10, 1) == 0:
        print(f"  [{stage}] {done}/{total}", file=sys.stderr)


def _make_stream_progress():
    # Streamed dispatch calls the pool once per batch, each with its own
    # local total; report a cumulative count per batch instead of ten
    # ticks of every (small) batch.  Only the "cells" phase accumulates —
    # sweep-level ticks reuse the standard printer, so they cannot
    # inflate the simulated count.
    done_cells = 0

    def progress(stage: str, done: int, total: int) -> None:
        nonlocal done_cells
        if stage != "cells":
            _standard_progress(stage, done, total)
        elif done == total:
            done_cells += total
            print(f"  [{stage}] {done_cells} simulated", file=sys.stderr)

    return progress


def _progress_for(spec: Spec):
    if getattr(spec, "stream", False):
        return _make_stream_progress()
    if isinstance(spec, SweepSpec) and getattr(spec.base, "stream", False):
        return _make_stream_progress()
    return _standard_progress


def _dispatch(spec: Spec, args: argparse.Namespace, *, command: str) -> int:
    """Run *spec* through the facade and emit its result.

    With ``--telemetry`` the same execution path runs inside an ambient
    :class:`~repro.obs.MetricsRegistry` and :class:`~repro.obs.Tracer`
    and a run manifest is written afterwards; the spec, its results and
    every report byte are identical either way (the telemetry notice
    goes to stderr).
    """
    if isinstance(spec, EvaluateSpec) and spec.trace is None:
        print(
            f"no trace given: using synthetic stand-in {spec.synthetic!r}"
            f" ({spec.jobs} jobs)",
            file=sys.stderr,
        )
    workers = workers_from(args)
    backend = backend_from(args)
    telemetry_dir = telemetry_dir_from(args)
    if telemetry_dir is None:
        try:
            result = api.run(
                spec,
                workers=workers,
                backend=backend,
                cache=getattr(args, "cache", None),
                progress=_progress_for(spec),
            )
        except (SpecError, KeyError, ValueError) as exc:
            raise SystemExit(f"repro-sched {command}: {exc}") from None
        _EMITTERS[spec.kind](spec, result, args)
        return 0

    # Instrumented path: same facade call, ambient sinks installed.  The
    # cache is coerced *here* so its per-instance counters can be merged
    # into the manifest after the run.
    cache = coerce_cache(getattr(args, "cache", None))
    registry = MetricsRegistry()
    tracer = Tracer()
    t_start = time.perf_counter()
    with use_registry(registry), use_tracer(tracer):
        try:
            with tracer.span("execute", kind=spec.kind):
                result = api.run(
                    spec,
                    workers=workers,
                    backend=backend,
                    cache=cache,
                    progress=_progress_for(spec),
                )
        except (SpecError, KeyError, ValueError) as exc:
            raise SystemExit(f"repro-sched {command}: {exc}") from None
        with tracer.span("report"):
            _EMITTERS[spec.kind](spec, result, args)
    wall = time.perf_counter() - t_start
    if cache is not None:
        registry.merge(cache.metrics)
    directory = Path(telemetry_dir)
    manifest_path = write_manifest(
        directory,
        build_manifest(
            registry=registry,
            tracer=tracer,
            spec=spec,
            command=command,
            workers=workers,
            backend=backend,
            wall_seconds=wall,
        ),
    )
    tracer.write_jsonl(directory / "spans.jsonl")
    (directory / "metrics.json").write_text(
        json.dumps(registry.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(
        f"telemetry written to {manifest_path}"
        f" (inspect with `repro-sched stats {directory}`)",
        file=sys.stderr,
    )
    return 0


def _emit_train(spec: TrainSpec, result, args: argparse.Namespace) -> None:
    print(result.report(spec.top_k))
    output = getattr(args, "output", None)
    if output:
        result.distribution.to_csv(output)
        print(f"score distribution written to {output}")


def _emit_simulate(spec: SimulateSpec, report, args: argparse.Namespace) -> None:
    print(report.line())


def _emit_evaluate(spec: EvaluateSpec, result, args: argparse.Namespace) -> None:
    # pwa: references and synthetic stand-ins have attested identities,
    # so their reports carry the paper-vs-measured comparison block; a
    # plain file path claims nothing and gets none.
    paper = paper_prefix_for(spec.trace, spec.synthetic if spec.trace is None else None)
    print(
        render_matrix_report(
            result,
            baseline=spec.baseline,
            n_boot=spec.bootstrap,
            level=spec.ci,
        )
    )
    if paper is not None:
        block = render_paper_comparison(result, paper)
        if block is not None:
            print()
            print(block)
    output_dir = getattr(args, "output_dir", None)
    if output_dir:
        paths = write_matrix_report(
            output_dir,
            result,
            baseline=spec.baseline,
            n_boot=spec.bootstrap,
            level=spec.ci,
            paper=paper,
        )
        print(f"wrote {len(paths)} report file(s) to {output_dir}")


def _emit_table4(spec: Table4Spec, results, args: argparse.Namespace) -> None:
    for rid, result in zip(spec.resolved_rows(), results):
        print(render_statistics(result))
        print(render_comparison(result, paper_row(rid), title=f"[{rid}]"))
        if getattr(args, "plot", False):
            print(result.ascii_plot())
        print()


def _emit_sweep(spec: SweepSpec, result, args: argparse.Namespace) -> None:
    print(result.summary_table())
    output_dir = getattr(args, "output_dir", None)
    if output_dir:
        from pathlib import Path

        directory = Path(output_dir)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / "sweep_summary.csv"
        path.write_text(result.summary_csv(), encoding="utf-8")
        print(f"wrote sweep summary to {path}")


_EMITTERS = {
    "train": _emit_train,
    "simulate": _emit_simulate,
    "evaluate": _emit_evaluate,
    "table4": _emit_table4,
    "sweep": _emit_sweep,
}


# ----------------------------------------------------------------------
# experiment verbs: flags -> spec -> api.run
# ----------------------------------------------------------------------
def _cmd_train(args: argparse.Namespace) -> int:
    try:
        spec = TrainSpec(
            scale=args.scale,
            n_tuples=args.tuples,
            trials_per_tuple=args.trials,
            nmax=args.nmax,
            seed=args.seed,
            top_k=args.top,
        )
    except SpecError as exc:
        raise SystemExit(f"repro-sched train: {exc}") from None
    return _dispatch(spec, args, command="train")


def _resolve_backfill_flag(value) -> str:
    """Map the ``--backfill`` flag value to a canonical mode token.

    The historical bare flag (``--backfill`` with no mode) is kept as a
    deprecated alias for ``--backfill easy``.
    """
    if value is True:  # bare flag, no mode argument
        warnings.warn(
            "a bare --backfill flag is deprecated; pass a mode from "
            f"{'/'.join(BACKFILL_TOKENS)} (bare --backfill means 'easy')",
            DeprecationWarning,
            stacklevel=2,
        )
        return "easy"
    return value


def _cmd_simulate(args: argparse.Namespace) -> int:
    try:
        spec = SimulateSpec(
            policy=args.policy,
            nmax=args.nmax,
            jobs=args.jobs,
            seed=args.seed,
            swf=args.swf,
            trace=args.trace,
            estimates=args.estimates,
            backfill=_resolve_backfill_flag(args.backfill),
            topology=args.topology,
            distribution=args.distribution,
            hetero=tuple(args.hetero_archs) if args.hetero_archs else None,
        )
    except SpecError as exc:
        raise SystemExit(f"repro-sched simulate: {exc}") from None
    return _dispatch(spec, args, command="simulate")


def _apply_synthetic_fallback(args: argparse.Namespace) -> tuple[str | None, str]:
    """Resolve ``--synthetic-fallback``: effective ``(trace, synthetic)``.

    When the flag is set and the ``pwa:<name>`` trace is *absent* from
    the local cache, the run proceeds against the synthetic stand-in of
    the same name (the spec is built with ``trace=None``/
    ``synthetic=name``, so its fingerprint honestly names the synthetic
    source).  The probe is a cheap existence check — full content
    verification happens exactly once, when the spec resolves the
    reference — so a *present but corrupt* cache entry does not fall
    back silently: it surfaces the resolution error naming
    ``repro-sched fetch``, exactly as runs without the flag do.
    """
    trace = args.trace
    if not (getattr(args, "synthetic_fallback", False) and is_trace_ref(trace)):
        return trace, args.synthetic
    name = trace_ref_name(trace)
    if cached_trace_path(name).is_file():
        return trace, args.synthetic
    if name not in trace_names():
        raise SystemExit(
            f"repro-sched evaluate: trace {trace} is not in the local cache"
            f" ({trace_cache_dir()}) and no synthetic stand-in named"
            f" {name!r} exists to fall back to; run `repro-sched fetch"
            f" {name}` to download it"
        )
    print(
        f"warning: {trace} is not in the local trace cache; falling back"
        f" to the synthetic stand-in {name!r} (run `repro-sched fetch"
        f" {name}` to evaluate the real trace)",
        file=sys.stderr,
    )
    return None, name


def _cmd_evaluate(args: argparse.Namespace) -> int:
    trace, synthetic = _apply_synthetic_fallback(args)
    try:
        spec = EvaluateSpec(
            trace=trace,
            synthetic=synthetic,
            jobs=args.jobs,
            drop_failed=args.drop_failed,
            stream=args.stream,
            policies=tuple(args.policies),
            backfill=tuple(args.backfill),
            window_jobs=args.window_jobs,
            window_seconds=args.window_seconds,
            warmup=args.warmup,
            max_windows=args.max_windows,
            nmax=args.nmax,
            estimates=args.estimates,
            seed=args.seed,
            baseline=args.baseline,
            bootstrap=args.bootstrap,
            ci=args.ci,
            topology=args.topology,
            distribution=args.distribution,
        )
    except SpecError as exc:
        raise SystemExit(f"repro-sched evaluate: {exc}") from None
    return _dispatch(spec, args, command="evaluate")


def _cmd_table4(args: argparse.Namespace) -> int:
    try:
        spec = Table4Spec(
            rows=tuple(args.rows) if args.rows else None,
            scale=args.scale,
            seed=args.seed,
        )
    except SpecError as exc:
        raise SystemExit(f"repro-sched table4: {exc}") from None
    if workers_from(args) == 1 and telemetry_dir_from(args) is None:
        # Serial: run one single-row spec at a time so a long regeneration
        # shows results (and survives interruption) row by row — same
        # results, still routed through the facade.  With --telemetry the
        # rows run as one dispatch so the run gets one manifest covering
        # all of them (the results are identical either way).
        for rid in spec.resolved_rows():
            row_spec = Table4Spec(rows=(rid,), scale=args.scale, seed=args.seed)
            code = _dispatch(row_spec, args, command="table4")
            if code != 0:  # pragma: no cover - _dispatch raises on failure
                return code
        return 0
    return _dispatch(spec, args, command="table4")


# ----------------------------------------------------------------------
# spec-file verbs
# ----------------------------------------------------------------------
def _cmd_run(args: argparse.Namespace) -> int:
    try:
        spec = load_spec(args.spec)
    except SpecError as exc:
        raise SystemExit(f"repro-sched run: {exc}") from None
    return _dispatch(spec, args, command="run")


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        spec = load_spec(args.spec)
    except SpecError as exc:
        raise SystemExit(f"repro-sched sweep: {exc}") from None
    if not isinstance(spec, SweepSpec):
        raise SystemExit(
            f"repro-sched sweep: {args.spec} holds a {spec.kind!r} spec,"
            " not a sweep (use `repro-sched run` for single specs)"
        )
    return _dispatch(spec, args, command="sweep")


# ----------------------------------------------------------------------
# trace acquisition
# ----------------------------------------------------------------------
def _cmd_fetch(args: argparse.Namespace) -> int:
    sources = trace_sources()
    names = sorted(sources) if args.all else list(args.names)
    if not names:
        # Listing mode: the registry with per-trace cache status.  A
        # cheap existence check keeps the listing instant with multi-GB
        # traces cached; content is verified on every fetch/resolve.
        print(f"trace cache: {trace_cache_dir(args.dir)}")
        for key in sorted(sources):
            source = sources[key]
            cached = cached_trace_path(key, directory=args.dir).is_file()
            status = "cached" if cached else "not fetched"
            print(f"  pwa:{key:<16s} {source.display_name} [{status}]")
            print(f"      source: {source.url}")
            print(f"      sha256: {source.sha256}")
            if source.notes:
                print(f"      notes:  {source.notes}")
        print(
            "\nfetch with `repro-sched fetch <name>` (or --all), then evaluate"
            " with `repro-sched evaluate --trace pwa:<name>`."
        )
        print(f"license: {next(iter(sources.values())).license}")
        return 0
    for name in names:
        try:
            result = fetch_trace(name, directory=args.dir, force=args.force)
        except (UnknownTraceError, TraceFetchError) as exc:
            raise SystemExit(f"repro-sched fetch: {exc}") from None
        print(result.line())
        if not result.was_cached:
            print(f"  source: {result.source.url}")
            print(f"  license: {result.source.license}")
    return 0


# ----------------------------------------------------------------------
# convenience commands (no spec: presentation/IO utilities)
# ----------------------------------------------------------------------
def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments.export import write_all

    scale = _scale_from(args)
    fig1 = fig2 = None
    fig3_panels = []
    if args.figure in ("1", "all"):
        fig1 = fig1_trial_score_distributions(
            n_trials=min(scale.trials_per_tuple, 1024), seed=args.seed
        )  # noqa: F841 - also exported below
        print(f"Figure 1 (mean line = {fig1.mean_line:.3f}):")
        for i, panel in enumerate(fig1.panels):
            print(f"  panel {i}: " + " ".join(f"{s:.4f}" for s in panel))
    if args.figure in ("2", "all"):
        fig2 = fig2_trial_convergence(
            scale.fig2_trial_counts, repeats=scale.fig2_repeats, seed=args.seed
        )
        print("Figure 2 (trials -> normalized std):")
        for count, std in fig2.series():
            print(f"  {count:>8d} {std:.4f}")
    if args.figure in ("3", "all"):
        for pair in ("rn", "rs", "ns"):
            maps = fig3_policy_maps(pair)
            fig3_panels.append(maps)
            print(f"Figure 3 panel {pair}: policies {sorted(maps.maps)}")
            for name, grid in maps.maps.items():
                print(
                    f"  {name}: corner priorities "
                    f"ll={grid[0, 0]:.2f} lr={grid[0, -1]:.2f} "
                    f"ul={grid[-1, 0]:.2f} ur={grid[-1, -1]:.2f}"
                )
    if args.output_dir:
        paths = write_all(
            args.output_dir, fig1=fig1, fig2=fig2, fig3_panels=fig3_panels
        )
        print(f"wrote {len(paths)} CSV file(s) to {args.output_dir}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    wl = synthetic_trace(args.name, seed=args.seed, n_jobs=args.jobs)
    text = write_swf(wl, args.output)
    if args.output:
        print(f"{len(wl)} jobs written to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.policies.analysis import agreement_matrix
    from repro.workloads.analysis import profile_workload

    if args.swf:
        try:
            wl = read_swf(resolve_trace_ref(args.swf))
        except (TraceUnavailableError, UnknownTraceError) as exc:
            raise SystemExit(f"repro-sched analyze: {exc}") from None
    elif args.trace:
        wl = synthetic_trace(args.trace, seed=args.seed, n_jobs=args.jobs)
    else:
        wl = repro.apply_tsafrir(
            repro.lublin_workload(args.jobs or 3000, args.nmax, seed=args.seed),
            seed=args.seed + 1,
        )
        wl = wl.with_name("lublin model")
    print(profile_workload(wl, nmax=args.nmax or wl.nmax or None).to_text())
    if args.agreement:
        policies = [get_policy(n) for n in args.agreement]
        names, mat = agreement_matrix(policies, wl)
        print("\nqueue-order agreement (Kendall tau):")
        print("        " + "".join(f"{n:>7s}" for n in names))
        for i, name in enumerate(names):
            row = "".join(f"{mat[i, j]:>7.2f}" for j in range(len(names)))
            print(f"{name:>7s} {row}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    try:
        doc = read_manifest(args.run_dir)
    except (FileNotFoundError, ValueError, OSError) as exc:
        raise SystemExit(f"repro-sched stats: {exc}") from None
    print(render_manifest(doc))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    print(f"repro {repro.__version__}")
    print(f"scales: {', '.join(sorted(SCALES))} (current: {current_scale().name})")
    print(f"policies: {', '.join(available_policies())}")
    print(f"traces: {', '.join(trace_names())}")
    print(
        "pwa traces: "
        + ", ".join(f"pwa:{name}" for name in sorted(trace_sources()))
        + " (repro-sched fetch)"
    )
    print(f"table4 rows: {', '.join(row_ids())}")
    print(f"spec kinds: {', '.join(spec_kinds())}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Imported lazily: the analysis package pulls in tokenize/ast
    # machinery no other verb needs.
    from repro import analysis

    if args.list_rules:
        for rule in analysis.all_rules():
            print(f"{rule.id}  {rule.name} [{rule.severity}]")
            print(f"    contract: {rule.contract}")
            print(f"    backstop: {rule.backstop}")
        return 0
    try:
        config = analysis.load_config(
            explicit=Path(args.config) if args.config else None
        )
        result = analysis.run_lint(
            args.paths, config=config, select=args.select, ignore=args.ignore
        )
    except analysis.LintConfigError as exc:
        raise SystemExit(f"repro-sched lint: {exc}") from None
    except (FileNotFoundError, ValueError) as exc:
        raise SystemExit(f"repro-sched lint: {exc}") from None
    renderer = {
        "terminal": analysis.render_terminal,
        "json": analysis.render_json,
        "github": analysis.render_github,
    }[args.format]
    print(renderer(result), end="" if args.format == "json" else "\n")
    return result.exit_code


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-sched",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("train", help="run the policy-obtaining pipeline (§3)")
    p.add_argument("--tuples", type=int, default=None)
    p.add_argument("--trials", type=int, default=None)
    p.add_argument("--nmax", type=int, default=256)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--top", type=int, default=4)
    p.add_argument("--output", help="write the score distribution CSV here")
    add_cache_arg(p, "the simulated distribution")
    add_workers_arg(p)
    add_backend_arg(p)
    add_scale_arg(p)
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("simulate", help="schedule one workload under one policy")
    p.add_argument("--policy", default="F1")
    p.add_argument(
        "--nmax",
        type=int,
        default=None,
        help="machine size (default: the SWF/trace's own, or 256 for the"
        " generated model)",
    )
    p.add_argument("--jobs", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--swf",
        type=trace_source_type,
        metavar="FILE.swf|pwa:NAME",
        help="SWF file to replay (a path or a pwa:<name> registry reference)",
    )
    p.add_argument("--trace", choices=trace_names(), help="synthetic trace stand-in")
    p.add_argument("--estimates", action="store_true")
    p.add_argument(
        "--backfill",
        nargs="?",
        const=True,
        default="none",
        metavar="MODE",
        help=f"backfill mode from {'/'.join(BACKFILL_TOKENS)} (default none;"
        " a bare --backfill is a deprecated alias for 'easy')",
    )
    add_platform_args(p)
    p.add_argument(
        "--hetero-archs",
        type=split_csv,
        default=None,
        metavar="NAME:CORES[:SPEEDUP],...",
        help="heterogeneous architecture pools (e.g. cpu:256,gpu:64:8; the"
        " first is the reference the policy scores against); mutually"
        " exclusive with --topology",
    )
    add_cache_arg(p, "the simulation's metrics")
    add_workers_arg(p)
    add_backend_arg(p)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser(
        "evaluate", help="policy x backfill matrix over trace windows"
    )
    p.add_argument(
        "--trace",
        metavar="FILE.swf|pwa:NAME",
        type=trace_source_type,
        help="SWF trace to replay: a file path (.swf or .swf.gz) or a"
        " pwa:<name> reference into the fetch registry (default: a"
        " synthetic stand-in)",
    )
    p.add_argument(
        "--synthetic",
        choices=trace_names(),
        default="ctc_sp2",
        help="synthetic fallback trace used when no --trace is given",
    )
    p.add_argument(
        "--synthetic-fallback",
        action="store_true",
        help="when a pwa:<name> trace is not in the local cache, evaluate"
        " the synthetic stand-in of the same name instead of failing",
    )
    p.add_argument(
        "--jobs", type=int, default=5000, help="synthetic fallback job count"
    )
    p.add_argument(
        "--drop-failed",
        action="store_true",
        help="exclude failed/cancelled SWF rows (status 0/5)",
    )
    p.add_argument(
        "--stream",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="slice windows lazily from the trace and dispatch cells as"
        " they arrive (O(window) memory; results are bit-identical to"
        " --no-stream)",
    )
    p.add_argument(
        "--bootstrap",
        type=bootstrap_type,
        default=1000,
        metavar="N",
        help="bootstrap resamples behind the paired-delta confidence"
        " intervals (default 1000; 0 disables the intervals)",
    )
    p.add_argument(
        "--ci",
        type=ci_level_type,
        default=0.95,
        metavar="LEVEL",
        help="nominal coverage of the bootstrap intervals (default 0.95)",
    )
    p.add_argument(
        "--policies",
        type=split_csv,
        default=["fcfs", "f1"],
        metavar="P1,P2,...",
        help="comma-separated policy names (default: fcfs,f1)",
    )
    p.add_argument(
        "--backfill",
        type=split_csv,
        default=["none", "easy"],
        metavar="M1,M2,...",
        help=f"comma-separated backfill modes from {'/'.join(BACKFILL_TOKENS)}"
        " (default: none,easy)",
    )
    p.add_argument(
        "--window-jobs",
        type=int,
        default=None,
        metavar="N",
        help="evaluate contiguous windows of N jobs (default 5000)",
    )
    p.add_argument(
        "--window-seconds",
        type=float,
        default=None,
        metavar="T",
        help="evaluate contiguous windows of T seconds instead",
    )
    p.add_argument(
        "--warmup",
        type=int,
        default=0,
        metavar="N",
        help="simulate but exclude the first N jobs of every window",
    )
    p.add_argument(
        "--max-windows",
        type=int,
        default=None,
        metavar="K",
        help="evaluate at most K windows (smoke-testing huge traces)",
    )
    p.add_argument(
        "--nmax",
        type=int,
        default=None,
        help="machine size (default: the trace's own MaxProcs header)",
    )
    p.add_argument("--estimates", action="store_true")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--baseline",
        default=None,
        metavar="POLICY",
        help="anchor of the paired per-window deltas (default: first policy)",
    )
    add_platform_args(p)
    p.add_argument(
        "--output-dir", help="also write eval_matrix.csv / eval_matrix.json here"
    )
    add_cache_arg(p, "every cell")
    add_workers_arg(p)
    add_backend_arg(p)
    add_telemetry_arg(p)
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser("table4", help="regenerate Table 4 rows")
    p.add_argument("--rows", nargs="*", choices=row_ids(), default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--plot", action="store_true", help="ASCII boxplots")
    add_workers_arg(p)
    add_backend_arg(p)
    add_scale_arg(p)
    add_telemetry_arg(p)
    p.set_defaults(func=_cmd_table4)

    p = sub.add_parser(
        "run",
        help="execute an experiment spec from a TOML/JSON file",
        description="Execute any spec document (kinds: "
        + ", ".join(spec_kinds())
        + "). Equivalent flag invocations produce byte-identical reports.",
    )
    p.add_argument("spec", metavar="SPEC.toml", help="spec document to execute")
    p.add_argument("--output", help="train specs: write the distribution CSV here")
    p.add_argument(
        "--output-dir",
        help="evaluate/sweep specs: write the report files here",
    )
    p.add_argument("--plot", action="store_true", help="table4 specs: ASCII boxplots")
    add_cache_arg(p, "every cached artifact")
    add_workers_arg(p)
    add_backend_arg(p)
    add_telemetry_arg(p)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "sweep",
        help="expand a sweep spec's grid and execute every child spec",
        description="Execute a sweep spec: the base spec is fanned over the"
        " parameter grid, sharing one artifact cache, so re-running an"
        " extended grid only simulates the new cells.",
    )
    p.add_argument("spec", metavar="SWEEP.toml", help="sweep spec document")
    p.add_argument("--output-dir", help="write sweep_summary.csv here")
    add_cache_arg(p, "every grid cell already covered")
    add_workers_arg(p)
    add_backend_arg(p)
    add_telemetry_arg(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "fetch",
        help="download + verify real PWA traces into the local cache",
        description="Download registered Parallel Workloads Archive traces"
        " into the content-verified local cache ($REPRO_TRACE_DIR, default"
        " ~/.cache/repro/traces). Downloads are atomic, gzip transport is"
        " decompressed on the fly, and every file is checked against the"
        " registry's pinned SHA-256 — re-fetching a verified trace"
        " downloads nothing. Bare `fetch` lists the registry with cache"
        " status. Fetched traces are addressed as pwa:<name> wherever a"
        " trace path is accepted.",
    )
    p.add_argument(
        "names",
        nargs="*",
        metavar="TRACE",
        help="registered trace names (bare `fetch` lists the registry)",
    )
    p.add_argument(
        "--all", action="store_true", help="fetch every registered trace"
    )
    p.add_argument(
        "--force",
        action="store_true",
        help="re-download even when the cached copy verifies",
    )
    p.add_argument(
        "--dir",
        default=None,
        metavar="DIR",
        help="trace cache directory (default: $REPRO_TRACE_DIR or"
        " ~/.cache/repro/traces)",
    )
    p.set_defaults(func=_cmd_fetch)

    p = sub.add_parser("figures", help="regenerate Figures 1-3 data")
    p.add_argument("--figure", choices=("1", "2", "3", "all"), default="all")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output-dir", help="also write the series as CSV files")
    add_scale_arg(p)
    p.set_defaults(func=_cmd_figures)

    p = sub.add_parser("trace", help="emit a synthetic trace stand-in as SWF")
    p.add_argument("name", choices=trace_names())
    p.add_argument("--jobs", type=int, default=5000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", default=None)
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("analyze", help="characterise a workload")
    p.add_argument(
        "--swf",
        type=trace_source_type,
        metavar="FILE.swf|pwa:NAME",
        help="SWF file to profile (a path or a pwa:<name> reference)",
    )
    p.add_argument("--trace", choices=trace_names())
    p.add_argument("--jobs", type=int, default=None)
    p.add_argument("--nmax", type=int, default=256)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--agreement",
        nargs="*",
        metavar="POLICY",
        help="also print the Kendall-tau agreement matrix of these policies",
    )
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser(
        "stats",
        help="render a run's telemetry manifest",
        description="Render the run_manifest.json a --telemetry run wrote:"
        " phase durations, cache hit/miss/byte accounting, jobs and events"
        " simulated, throughput and the cumulative timer table.",
    )
    p.add_argument(
        "run_dir",
        metavar="RUN_DIR",
        help="telemetry directory (or a run_manifest.json path)",
    )
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("info", help="library inventory")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser(
        "lint",
        help="static analysis: enforce the repro contracts",
        description="Run the AST rule engine (REP001..REP009) that"
        " machine-enforces the repo's determinism, fingerprint-purity,"
        " telemetry-isolation and atomic-persistence contracts."
        " Exit code is 1 when any active error-severity finding"
        " remains; inline `# repro: allow[RULE-ID] reason` suppressions"
        " require a justification. See docs/invariants.md.",
    )
    p.add_argument(
        "paths",
        metavar="PATHS",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    p.add_argument(
        "--format",
        choices=("terminal", "json", "github"),
        default="terminal",
        help="output format (default: terminal)",
    )
    p.add_argument(
        "--select",
        type=split_csv,
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run exclusively",
    )
    p.add_argument(
        "--ignore",
        type=split_csv,
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    p.add_argument(
        "--config",
        default=None,
        metavar="FILE",
        help="explicit repro-lint.toml / pyproject.toml"
        " (default: discovered upward from cwd)",
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule's id, contract and backstop, then exit",
    )
    p.set_defaults(func=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    np.seterr(all="ignore")  # candidate functions legitimately over/underflow
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

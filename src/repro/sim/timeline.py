"""Schedule timeline analysis: utilization, queue length, Gantt export.

Post-hoc views over a :class:`~repro.sim.engine.ScheduleResult`.  The
paper reports only end-of-run aggregates; these profiles are the standard
diagnostics an operator would want from the same simulations (and they
power the repository's examples and ablation write-ups).

All functions are pure over the result's arrays — they re-derive state
from (submit, start, finish, size), so they also serve as an independent
cross-check of the engine (see ``tests/test_sim_timeline.py``: the peak
of the busy-core profile must never exceed ``nmax``).
"""

from __future__ import annotations

import io
from dataclasses import dataclass

import numpy as np

from repro.sim.engine import ScheduleResult

__all__ = [
    "StepProfile",
    "busy_cores_profile",
    "queue_length_profile",
    "profile_average",
    "to_gantt_csv",
]


@dataclass(frozen=True)
class StepProfile:
    """A right-open piecewise-constant function of time.

    ``value[i]`` holds on ``[time[i], time[i+1])``; the last value holds
    to infinity.  Times are strictly increasing.
    """

    time: np.ndarray
    value: np.ndarray

    def __post_init__(self) -> None:
        if len(self.time) != len(self.value):
            raise ValueError("time/value length mismatch")
        if len(self.time) and np.any(np.diff(self.time) <= 0):
            raise ValueError("times must be strictly increasing")

    def at(self, t: float) -> float:
        """Profile value at time *t* (0 before the first breakpoint)."""
        idx = int(np.searchsorted(self.time, t, side="right")) - 1
        if idx < 0:
            return 0.0
        return float(self.value[idx])

    @property
    def peak(self) -> float:
        """Maximum value attained."""
        return float(self.value.max()) if len(self.value) else 0.0


def _step_profile(times: np.ndarray, deltas: np.ndarray) -> StepProfile:
    """Accumulate (time, +/- delta) events into a step profile."""
    if len(times) == 0:
        return StepProfile(time=np.empty(0), value=np.empty(0))
    order = np.argsort(times, kind="stable")
    times = times[order]
    deltas = deltas[order]
    # merge simultaneous events
    uniq, start_idx = np.unique(times, return_index=True)
    sums = np.add.reduceat(deltas, start_idx)
    return StepProfile(time=uniq, value=np.cumsum(sums))


def busy_cores_profile(result: ScheduleResult) -> StepProfile:
    """Cores in use over time (allocations step up, completions down)."""
    n = len(result.workload)
    size = result.workload.size.astype(float)
    times = np.concatenate([result.start, result.finish])
    deltas = np.concatenate([size, -size])
    profile = _step_profile(times, deltas)
    # numerical dust from equal start/finish instants
    if n:
        profile = StepProfile(profile.time, np.round(profile.value, 9))
    return profile


def queue_length_profile(result: ScheduleResult) -> StepProfile:
    """Number of waiting (arrived, not yet started) jobs over time."""
    submit = result.workload.submit
    start = result.start
    times = np.concatenate([submit, start])
    deltas = np.concatenate([np.ones_like(submit), -np.ones_like(start)])
    return _step_profile(times, deltas)


def profile_average(profile: StepProfile, t0: float, t1: float) -> float:
    """Time-average of a step profile over ``[t0, t1]``."""
    if t1 <= t0:
        raise ValueError("need t1 > t0")
    if len(profile.time) == 0:
        return 0.0
    grid = np.concatenate(
        [[t0], profile.time[(profile.time > t0) & (profile.time < t1)], [t1]]
    )
    total = 0.0
    for a, b in zip(grid[:-1], grid[1:]):
        total += profile.at(a) * (b - a)
    return total / (t1 - t0)


def to_gantt_csv(result: ScheduleResult) -> str:
    """CSV Gantt export: ``job_id,submit,start,finish,size,backfilled``.

    Loadable by any plotting tool; the offline substitute for the
    figures a SimGrid/Vite pipeline would render.
    """
    buf = io.StringIO()
    buf.write("job_id,submit,start,finish,size,backfilled\n")
    wl = result.workload
    finish = result.finish
    for i in range(len(wl)):
        buf.write(
            f"{int(wl.job_ids[i])},{wl.submit[i]:.3f},{result.start[i]:.3f},"
            f"{finish[i]:.3f},{int(wl.size[i])},{int(result.backfilled[i])}\n"
        )
    return buf.getvalue()

"""Fixed-priority list scheduler — the trial simulator of §3.2.

During the training phase the paper simulates, for every permutation ``p``
of the probe set ``Q``, the execution of warm-up jobs ``S`` followed by
``Q`` where the waiting queue is ordered by the permutation.  No
backfilling is applied and the queue head blocks: a lower-priority job can
never overtake the highest-priority *arrived* job, even if it would fit.

This is the tight inner loop of training (hundreds of thousands of
trials), so it delegates to the unified event kernel
(:mod:`repro.sim.kernel`): the priority array is the kernel's static
score, and a whole batch of trials over one shared job set should go
through :func:`simulate_fixed_priority_batch`, which amortises
per-trial setup (arrival order, scratch allocation) across the batch.

The semantics are deliberately identical to the online engine running a
static "priority" policy — ``tests/sim/test_listsched.py`` cross-checks
the two implementations on random instances, and
``tests/test_sim_kernel_parity.py`` pins the kernel against the retained
pre-kernel loop bit for bit.

NaN priorities raise :class:`ValueError` naming the offending job index:
NaN compares false against everything, so historically it silently
corrupted the waiting-heap order instead of failing.
"""

from __future__ import annotations

import numpy as np

from repro.obs.metrics import current_registry
from repro.sim.kernel import fixed_priority_batch, fixed_priority_starts, validate_scores

__all__ = ["simulate_fixed_priority", "simulate_fixed_priority_batch"]


def _validate_jobs(submit, runtime, size, nmax: int) -> int:
    """Shared argument validation; returns the job count ``m``."""
    m = len(submit)
    if not (len(runtime) == len(size) == m):
        raise ValueError("attribute arrays must share one length")
    if m == 0:
        return 0
    sizes = np.asarray(size)
    worst = int(np.argmax(sizes))
    if int(sizes[worst]) > nmax:
        raise ValueError(
            f"job {worst} needs {int(sizes[worst])} cores"
            f" but the machine has only {nmax}"
        )
    return m


def simulate_fixed_priority(
    submit: np.ndarray,
    runtime: np.ndarray,
    size: np.ndarray,
    priority: np.ndarray,
    nmax: int,
) -> np.ndarray:
    """Simulate head-blocking priority scheduling; return per-job start times.

    Parameters
    ----------
    submit, runtime, size:
        Job attribute arrays (any consistent length ``m``).
    priority:
        Queue rank per job; **lower values run first**.  Ties broken by
        submit time then index (deterministic).  NaN raises
        :class:`ValueError` naming the offending job.
    nmax:
        Machine size in cores.

    Returns
    -------
    ``start`` array of length ``m`` (start[i] >= submit[i]).
    """
    if len(priority) != len(submit):
        raise ValueError("attribute arrays must share one length")
    m = _validate_jobs(submit, runtime, size, nmax)
    if m == 0:
        return np.empty(0, dtype=float)
    priority = np.ascontiguousarray(priority, dtype=np.float64)
    validate_scores(priority, "priority")
    start = fixed_priority_starts(submit, runtime, size, priority, nmax)

    # Telemetry (no-op by default): per *trial*, never per job — this is
    # the training inner loop, so two null method calls per call is the
    # entire disabled-path cost.
    registry = current_registry()
    registry.inc("listsched.trials")
    registry.inc("listsched.jobs", m)

    return start


def simulate_fixed_priority_batch(
    submit: np.ndarray,
    runtime: np.ndarray,
    size: np.ndarray,
    priorities: np.ndarray,
    nmax: int,
) -> np.ndarray:
    """Simulate ``n_trials`` priority vectors over one shared job set.

    *priorities* has shape ``(n_trials, m)``; the result is the
    ``(n_trials, m)`` start-time matrix, row ``t`` bit-identical to
    ``simulate_fixed_priority(..., priorities[t], nmax)``.  This is the
    training fast path: arrival order and kernel scratch state are set
    up once for the whole batch instead of once per trial.

    Telemetry counts each row as one ``listsched.trials`` increment, so
    counter values match the per-trial loop exactly.
    """
    priorities = np.asarray(priorities)
    if priorities.ndim != 2:
        raise ValueError("priorities must have shape (n_trials, n_jobs)")
    if priorities.shape[1] != len(submit):
        raise ValueError("attribute arrays must share one length")
    m = _validate_jobs(submit, runtime, size, nmax)
    n_trials = priorities.shape[0]
    if m == 0 or n_trials == 0:
        out = np.empty((n_trials, m), dtype=float)
    else:
        out = fixed_priority_batch(submit, runtime, size, priorities, nmax)

    registry = current_registry()
    registry.inc("listsched.trials", n_trials)
    registry.inc("listsched.jobs", n_trials * m)

    return out

"""Fixed-priority list scheduler — the trial simulator of §3.2.

During the training phase the paper simulates, for every permutation ``p``
of the probe set ``Q``, the execution of warm-up jobs ``S`` followed by
``Q`` where the waiting queue is ordered by the permutation.  No
backfilling is applied and the queue head blocks: a lower-priority job can
never overtake the highest-priority *arrived* job, even if it would fit.

This module is the tight inner loop of training (hundreds of thousands of
trials), so it avoids all policy dispatch: priority is a plain array and
the loop works on Python scalars extracted once from numpy arrays, which
profiling shows is ~6x faster than repeated fancy indexing for the tiny
(|S|+|Q| = 48) job counts involved.

The semantics are deliberately identical to the online engine running a
static "priority" policy — ``tests/sim/test_listsched.py`` cross-checks
the two implementations on random instances.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.obs.metrics import current_registry

__all__ = ["simulate_fixed_priority"]


def simulate_fixed_priority(
    submit: np.ndarray,
    runtime: np.ndarray,
    size: np.ndarray,
    priority: np.ndarray,
    nmax: int,
) -> np.ndarray:
    """Simulate head-blocking priority scheduling; return per-job start times.

    Parameters
    ----------
    submit, runtime, size:
        Job attribute arrays (any consistent length ``m``).
    priority:
        Queue rank per job; **lower values run first**.  Ties broken by
        submit time then index (deterministic).
    nmax:
        Machine size in cores.

    Returns
    -------
    ``start`` array of length ``m`` (start[i] >= submit[i]).
    """
    m = len(submit)
    if not (len(runtime) == len(size) == len(priority) == m):
        raise ValueError("attribute arrays must share one length")
    if m == 0:
        return np.empty(0, dtype=float)
    sizes = [int(x) for x in size]
    if max(sizes) > nmax:
        worst = max(range(m), key=lambda i: sizes[i])
        raise ValueError(
            f"job {worst} needs {sizes[worst]} cores"
            f" but the machine has only {nmax}"
        )

    subs = [float(x) for x in submit]
    runs = [float(x) for x in runtime]
    prios = [float(x) for x in priority]

    # Arrival order: by submit time, index as tie-break.
    arrival_order = sorted(range(m), key=lambda i: (subs[i], i))
    start = [math.nan] * m

    free = nmax
    waiting: list[tuple[float, float, int]] = []  # (priority, submit, idx)
    completions: list[tuple[float, int]] = []  # (finish, idx)
    ai = 0  # next arrival pointer
    now = subs[arrival_order[0]]
    remaining = m

    while remaining:
        # Advance the clock to the next event if nothing can be done now.
        next_arrival = subs[arrival_order[ai]] if ai < m else math.inf
        next_completion = completions[0][0] if completions else math.inf
        event_time = min(next_arrival, next_completion)
        if not waiting and free == nmax:
            # Machine idle, queue empty: jump straight to the next arrival.
            event_time = next_arrival
        now = max(now, event_time)

        # Release finished jobs first so arrivals at the same instant see
        # the freed cores.
        while completions and completions[0][0] <= now:
            _, idx = heapq.heappop(completions)
            free += sizes[idx]
        while ai < m and subs[arrival_order[ai]] <= now:
            idx = arrival_order[ai]
            heapq.heappush(waiting, (prios[idx], subs[idx], idx))
            ai += 1

        # Head-blocking start loop.
        while waiting and sizes[waiting[0][2]] <= free:
            _, _, idx = heapq.heappop(waiting)
            start[idx] = now
            free -= sizes[idx]
            heapq.heappush(completions, (now + runs[idx], idx))
            remaining -= 1

    # Telemetry (no-op by default): per *trial*, never per job — this is
    # the training inner loop, so two null method calls per call is the
    # entire disabled-path cost.
    registry = current_registry()
    registry.inc("listsched.trials")
    registry.inc("listsched.jobs", m)

    return np.asarray(start, dtype=float)

"""Discrete-event cluster simulator (the paper's SimGrid substitute).

Public surface:

* :class:`~repro.sim.job.Job` / :class:`~repro.sim.job.Workload` — job data.
* :func:`~repro.sim.engine.simulate` — online scheduling under a policy,
  with optional user estimates and EASY backfilling.
* :func:`~repro.sim.listsched.simulate_fixed_priority` — the fixed-priority
  trial simulator used by the training phase.
* :mod:`~repro.sim.metrics` — bounded slowdown (Eq. 1/2) and friends.
"""

from repro.sim.backfill import easy_backfill, shadow_schedule
from repro.sim.conservative import AvailabilityProfile, conservative_starts
from repro.sim.cluster import Cluster
from repro.sim.engine import ScheduleResult, SimulationConfig, simulate
from repro.sim.events import CompletionQueue
from repro.sim.hetero import (
    HeteroJob,
    HeteroPlatform,
    HeteroResult,
    Variant,
    hetero_simulate,
)
from repro.sim.job import Job, Workload, concat_workloads
from repro.sim.listsched import simulate_fixed_priority
from repro.sim.timeline import (
    StepProfile,
    busy_cores_profile,
    profile_average,
    queue_length_profile,
    to_gantt_csv,
)
from repro.sim.metrics import (
    DEFAULT_TAU,
    average_bounded_slowdown,
    bounded_slowdown,
    makespan,
    per_job_flow,
    utilization,
    waiting_times,
)

__all__ = [
    "AvailabilityProfile",
    "Cluster",
    "CompletionQueue",
    "DEFAULT_TAU",
    "HeteroJob",
    "HeteroPlatform",
    "HeteroResult",
    "Job",
    "ScheduleResult",
    "SimulationConfig",
    "Workload",
    "average_bounded_slowdown",
    "bounded_slowdown",
    "concat_workloads",
    "easy_backfill",
    "hetero_simulate",
    "makespan",
    "per_job_flow",
    "shadow_schedule",
    "StepProfile",
    "Variant",
    "busy_cores_profile",
    "conservative_starts",
    "profile_average",
    "queue_length_profile",
    "simulate",
    "simulate_fixed_priority",
    "to_gantt_csv",
    "utilization",
    "waiting_times",
]

"""Discrete-event cluster simulator (the paper's SimGrid substitute).

Public surface:

* :class:`~repro.sim.job.Job` / :class:`~repro.sim.job.Workload` — job data.
* :func:`~repro.sim.engine.simulate` — online scheduling under a policy,
  with optional user estimates and EASY backfilling.
* :func:`~repro.sim.listsched.simulate_fixed_priority` — the fixed-priority
  trial simulator used by the training phase (and its batched form,
  :func:`~repro.sim.listsched.simulate_fixed_priority_batch`).
* :mod:`~repro.sim.metrics` — bounded slowdown (Eq. 1/2) and friends.

Both simulators are thin configurations of the unified event-heap
kernel in :mod:`~repro.sim.kernel` (``REPRO_SIM_KERNEL`` selects the
compiled or pure-Python backend; results are bit-identical).  The
resource model is pluggable (:mod:`~repro.sim.platform`): the paper's
flat machine, topology-partitioned per-leaf schedulers, and the
heterogeneous prototype all account cores through the shared
:class:`~repro.sim.cluster.Cluster` leaf allocator.  The
:mod:`~repro.sim.backfill`, :mod:`~repro.sim.conservative` and
:mod:`~repro.sim.events` modules remain the property-tested reference
pieces the kernel's semantics are defined against.
"""

from repro.sim.backfill import (
    HYBRID_RESERVATION_DEPTH,
    easy_backfill,
    hybrid_starts,
    shadow_schedule,
)
from repro.sim.conservative import AvailabilityProfile, conservative_starts
from repro.sim.cluster import Cluster
from repro.sim.engine import ScheduleResult, SimulationConfig, simulate
from repro.sim.events import CompletionQueue
from repro.sim.hetero import (
    ArchSpec,
    HeteroJob,
    HeteroPlatform,
    HeteroResult,
    Variant,
    hetero_simulate,
    parse_arch_specs,
    workload_to_hetero_jobs,
)
from repro.sim.platform import (
    DISTRIBUTIONS,
    FlatPlatform,
    PartitionedPlatform,
    Platform,
    distribute_jobs,
    normalize_topology,
    platform_identity,
    simulate_partitioned,
)
from repro.sim.job import Job, Workload, concat_workloads
from repro.sim.kernel import KernelResult, fixed_priority_batch, simulate_events
from repro.sim.listsched import simulate_fixed_priority, simulate_fixed_priority_batch
from repro.sim.timeline import (
    StepProfile,
    busy_cores_profile,
    profile_average,
    queue_length_profile,
    to_gantt_csv,
)
from repro.sim.metrics import (
    DEFAULT_TAU,
    average_bounded_slowdown,
    bounded_slowdown,
    makespan,
    per_job_flow,
    utilization,
    waiting_times,
)

__all__ = [
    "ArchSpec",
    "AvailabilityProfile",
    "Cluster",
    "CompletionQueue",
    "DEFAULT_TAU",
    "DISTRIBUTIONS",
    "FlatPlatform",
    "HYBRID_RESERVATION_DEPTH",
    "HeteroJob",
    "HeteroPlatform",
    "HeteroResult",
    "Job",
    "KernelResult",
    "PartitionedPlatform",
    "Platform",
    "ScheduleResult",
    "SimulationConfig",
    "Workload",
    "average_bounded_slowdown",
    "bounded_slowdown",
    "concat_workloads",
    "distribute_jobs",
    "easy_backfill",
    "fixed_priority_batch",
    "hetero_simulate",
    "hybrid_starts",
    "makespan",
    "normalize_topology",
    "parse_arch_specs",
    "per_job_flow",
    "platform_identity",
    "shadow_schedule",
    "simulate_partitioned",
    "StepProfile",
    "Variant",
    "busy_cores_profile",
    "conservative_starts",
    "profile_average",
    "queue_length_profile",
    "simulate",
    "simulate_events",
    "simulate_fixed_priority",
    "simulate_fixed_priority_batch",
    "to_gantt_csv",
    "utilization",
    "waiting_times",
    "workload_to_hetero_jobs",
]

"""EASY aggressive backfilling (Mu'alem & Feitelson, 2001).

The paper evaluates every policy "in conjunction with a backfilling
algorithm" (§4.2.3, §4.3.3): at each rescheduling event the queue is
ordered by the policy, then jobs further back in the queue may start
*now* provided they do not delay the queue head — the only reservation
EASY makes.

Scheduling decisions (including the shadow-time computation) use the
*requested* processing time (the user estimate ``e``) when the experiment
runs in estimate mode; actual runtimes are only used to simulate
execution, exactly as in the paper.

The implementation is a pure function over plain arrays so it can be
property-tested in isolation from the event loop (see
``tests/sim/test_backfill.py`` for the "head never delayed" invariant).

Since the kernel refactor this module is the *reference* EASY
implementation: the unified event loop (:mod:`repro.sim.kernel`, both
the vectorised Python path and the C backend) inlines the same shadow
arithmetic for speed, and the parity suite pins it to these semantics
bit for bit.

Besides EASY this module also defines :func:`hybrid_starts`, the
*hybrid* backfilling variant (``backfill="hybrid"``): the first
:data:`HYBRID_RESERVATION_DEPTH` queued jobs get conservative-style
reservations, jobs further back are handled aggressively (start now or
wait unreserved).  EASY and conservative are its two limits — depth 1
approximates EASY, depth ≥ queue length *is* conservative (an identity
the oracle tests pin).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.sim.conservative import AvailabilityProfile

__all__ = [
    "HYBRID_RESERVATION_DEPTH",
    "easy_backfill",
    "hybrid_starts",
    "shadow_schedule",
]

#: How many queue-front jobs hold a reservation under hybrid backfilling.
#: Between EASY's single head reservation (starvation-prone tail) and
#: conservative's everyone-reserved (little backfilling), a small fixed
#: depth protects the first few jobs while the tail stays aggressive.
HYBRID_RESERVATION_DEPTH = 4


def shadow_schedule(
    now: float,
    free: int,
    head_size: int,
    running_end: Sequence[float],
    running_size: Sequence[int],
) -> tuple[float, int]:
    """Compute the EASY reservation for the (blocked) queue head.

    Returns ``(shadow, extra)`` where *shadow* is the earliest time the
    head is guaranteed to start (based on expected completions of running
    jobs) and *extra* is the number of cores that will still be free at
    that moment after the head starts.  Backfilled jobs that outlive the
    shadow time may use at most *extra* cores.

    Raises :class:`ValueError` when the head can *never* start — i.e.
    ``head_size`` exceeds the cores the machine can ever free.  Callers
    that validate their workload against the machine size up front
    (:meth:`repro.sim.job.Workload.validate_for_machine`, which the
    engine applies on entry) never trigger this.
    """
    if head_size <= free:
        raise ValueError("head fits now; no reservation needed")
    if len(running_end) != len(running_size):
        raise ValueError("running_end and running_size must share a length")
    events = sorted(
        (max(float(e), now), int(s)) for e, s in zip(running_end, running_size)
    )
    avail = free
    for end, size in events:
        avail += size
        if avail >= head_size:
            return end, avail - head_size
    raise ValueError(
        f"queue head requests {head_size} cores but at most {avail} can ever"
        " become free; validate the workload against the machine size"
        " (Workload.validate_for_machine) before scheduling"
    )


def easy_backfill(
    now: float,
    free: int,
    head_size: int,
    candidates: Sequence[int],
    cand_size: Sequence[int],
    cand_proc: Sequence[float],
    running_end: Sequence[float],
    running_size: Sequence[int],
) -> list[int]:
    """Select queue jobs (behind the head) that may start immediately.

    Parameters
    ----------
    now:
        Current simulation time.
    free:
        Idle cores right now (insufficient for the head by construction).
    head_size:
        Cores requested by the blocked queue head.
    candidates:
        Job indices *in queue priority order*, excluding the head.
    cand_size, cand_proc:
        Cores and (requested) processing time per candidate, aligned with
        *candidates*.
    running_end, running_size:
        Expected completion time and size of every running job.

    Returns
    -------
    The sub-list of *candidates* to start now, in priority order.  A
    candidate is started when it fits in the currently free cores and
    either finishes by the shadow time or fits within the *extra* cores,
    so the head's reservation is never disturbed.
    """
    shadow, extra = shadow_schedule(now, free, head_size, running_end, running_size)
    started: list[int] = []
    for idx, size, proc in zip(candidates, cand_size, cand_proc):
        size = int(size)
        if size > free:
            continue
        if now + float(proc) <= shadow + 1e-9:
            # Finishes before the head's reservation: uses cores that are
            # free now and returns them in time; `extra` is untouched.
            started.append(idx)
            free -= size
        elif size <= extra:
            # Outlives the reservation: may only consume cores the head
            # will not need at shadow time.
            started.append(idx)
            free -= size
            extra -= size
        if free == 0:
            break
    assert free >= 0 and extra >= 0
    assert math.isfinite(shadow) or not started
    return started


def hybrid_starts(
    now: float,
    nmax: int,
    queue: Sequence[int],
    q_size: Sequence[int],
    q_proc: Sequence[float],
    running_end: Sequence[float],
    running_size: Sequence[int],
    *,
    depth: int = HYBRID_RESERVATION_DEPTH,
) -> list[int]:
    """Jobs (identifiers from *queue*) that start now under hybrid backfilling.

    A replan-from-scratch pass like
    :func:`~repro.sim.conservative.conservative_starts`, with one
    difference: only the first *depth* jobs in priority order reserve
    their earliest feasible slot.  Jobs beyond the depth either start
    immediately (committing their cores so later candidates cannot
    oversubscribe) or wait with **no** reservation — so a deep candidate
    may leapfrog an unreserved middle job, but never one of the *depth*
    protected reservations.

    ``depth >= len(queue)`` reproduces ``conservative_starts`` exactly
    (same profile arithmetic, epsilon for epsilon); the oracle suite
    pins that identity and the cases where the three variants diverge.
    """
    if depth < 1:
        raise ValueError(f"reservation depth must be >= 1, got {depth}")
    profile = AvailabilityProfile(now, nmax, running_end, running_size)
    started: list[int] = []
    for pos, (ident, size, proc) in enumerate(zip(queue, q_size, q_proc)):
        size = int(size)
        proc = max(float(proc), 1e-9)
        t = profile.earliest_start(size, proc)
        # exact match with conservative_starts: a slot strictly after
        # now is behind a release event that has not happened yet
        starts_now = t == now
        if pos < depth or starts_now:
            profile.reserve(t, proc, size)
        if starts_now:
            started.append(ident)
    return started

"""Compiled C fast path for the event-heap simulation kernel.

:mod:`repro.sim.kernel` runs every *static-score* simulation — classic
and learned policies, EASY/conservative backfilling, and the
fixed-priority trial simulator — through one C event loop compiled at
first use with the system C compiler and loaded via :mod:`ctypes`
(stdlib only; no build-time or install-time dependency is added).  The
C loop is a line-for-line transcription of the Python kernel: every
floating-point operation it performs (additions, comparisons, the
``1e-9``/``1e-12`` epsilons of the backfill helpers) exists identically
in the Python path, so results are **bit-identical** — the parity suite
(``tests/test_sim_kernel_parity.py``) enforces this against the frozen
pre-kernel oracle for both backends.  Dynamic policies never reach C:
their scores come from numpy ufunc kernels whose bit patterns a libm
reimplementation cannot reproduce, so they stay on the vectorised
Python path.

Selection and caching:

* ``REPRO_SIM_KERNEL`` — ``auto`` (default: use C when it builds,
  silently fall back to Python), ``c`` (require the C backend; raise if
  it cannot be built), ``python`` (never use C).
* ``REPRO_CKERNEL_DIR`` — override the build cache directory (default
  ``~/.cache/repro/ckernel``).  The shared object is keyed by a hash of
  the embedded source, built in a temp file and atomically renamed, so
  concurrent processes race benignly.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

__all__ = ["CBackendUnavailable", "requested_mode", "load", "cache_dir"]


class CBackendUnavailable(RuntimeError):
    """Raised when ``REPRO_SIM_KERNEL=c`` but no C backend can be built."""


_C_SOURCE = r"""
#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

typedef int64_t i64;

/* (expected-end, size) pairs for the backfill helpers; ordered like the
 * Python tuples sorted((end, size)). */
typedef struct { double t; i64 s; } Ev;

static int ev_cmp(const void *a, const void *b)
{
    const Ev *x = (const Ev *)a, *y = (const Ev *)b;
    if (x->t < y->t) return -1;
    if (x->t > y->t) return 1;
    if (x->s < y->s) return -1;
    if (x->s > y->s) return 1;
    return 0;
}

typedef struct {
    i64 n, nmax;
    int mode; /* 0 none, 1 easy, 2 conservative */
    const double *subs, *runs, *procs, *scores;
    const i64 *sizes, *order;
    double *start;
    unsigned char *backfilled;
    /* completion min-heap ordered by (time, job) like heapq tuples */
    double *h_t; i64 *h_i; i64 hn;
    /* waiting queue kept sorted by (score, submit, job); qh = front */
    double *q_s, *q_sub; i64 *q_i; i64 qh, qn;
    /* running set, unordered with swap-removal (order never observable:
     * both backfill helpers sort or sum over it) */
    double *r_end; i64 *r_size, *r_job, *r_pos; i64 rn;
    /* scratch: event pairs + availability-profile breakpoints */
    Ev *ev; double *p_t; i64 *p_f; i64 pn;
    i64 free_cores, started, n_events, n_passes;
    double now;
} Sim;

static void h_push(Sim *S, double t, i64 idx)
{
    i64 i = S->hn++;
    while (i > 0) {
        i64 p = (i - 1) >> 1;
        double pt = S->h_t[p];
        if (pt < t || (pt == t && S->h_i[p] < idx)) break;
        S->h_t[i] = pt; S->h_i[i] = S->h_i[p];
        i = p;
    }
    S->h_t[i] = t; S->h_i[i] = idx;
}

static i64 h_pop(Sim *S)
{
    i64 top = S->h_i[0];
    S->hn--;
    if (S->hn > 0) {
        double t = S->h_t[S->hn]; i64 idx = S->h_i[S->hn];
        i64 i = 0;
        for (;;) {
            i64 c = 2 * i + 1;
            if (c >= S->hn) break;
            if (c + 1 < S->hn &&
                (S->h_t[c + 1] < S->h_t[c] ||
                 (S->h_t[c + 1] == S->h_t[c] && S->h_i[c + 1] < S->h_i[c])))
                c++;
            if (t < S->h_t[c] || (t == S->h_t[c] && idx < S->h_i[c])) break;
            S->h_t[i] = S->h_t[c]; S->h_i[i] = S->h_i[c];
            i = c;
        }
        S->h_t[i] = t; S->h_i[i] = idx;
    }
    return top;
}

/* bisect_left on (score, submit, job) keys — keys are unique (job is). */
static void q_insert(Sim *S, i64 idx)
{
    double sc = S->scores[idx], sb = S->subs[idx];
    i64 lo = S->qh, hi = S->qh + S->qn;
    while (lo < hi) {
        i64 mid = (lo + hi) >> 1;
        int less;
        if (S->q_s[mid] != sc) less = S->q_s[mid] < sc;
        else if (S->q_sub[mid] != sb) less = S->q_sub[mid] < sb;
        else less = S->q_i[mid] < idx;
        if (less) lo = mid + 1; else hi = mid;
    }
    i64 end = S->qh + S->qn;
    memmove(S->q_s + lo + 1, S->q_s + lo, (size_t)(end - lo) * sizeof(double));
    memmove(S->q_sub + lo + 1, S->q_sub + lo, (size_t)(end - lo) * sizeof(double));
    memmove(S->q_i + lo + 1, S->q_i + lo, (size_t)(end - lo) * sizeof(i64));
    S->q_s[lo] = sc; S->q_sub[lo] = sb; S->q_i[lo] = idx;
    S->qn++;
}

static void compact_queue(Sim *S)
{
    i64 w = S->qh, end = S->qh + S->qn;
    for (i64 p = S->qh; p < end; p++) {
        i64 idx = S->q_i[p];
        if (!isnan(S->start[idx])) continue; /* started this pass */
        S->q_s[w] = S->q_s[p]; S->q_sub[w] = S->q_sub[p]; S->q_i[w] = idx;
        w++;
    }
    S->qn = w - S->qh;
}

static int start_job(Sim *S, i64 idx, int via_bf)
{
    i64 sz = S->sizes[idx];
    if (sz > S->free_cores) return 2;
    S->free_cores -= sz;
    S->start[idx] = S->now;
    S->backfilled[idx] = (unsigned char)via_bf;
    h_push(S, S->now + S->runs[idx], idx);
    if (S->mode != 0) {
        S->r_end[S->rn] = S->now + S->procs[idx];
        S->r_size[S->rn] = sz;
        S->r_job[S->rn] = idx;
        S->r_pos[idx] = S->rn;
        S->rn++;
    }
    S->started++;
    return 0;
}

static void complete(Sim *S, i64 idx)
{
    S->free_cores += S->sizes[idx];
    if (S->mode != 0) {
        i64 p = S->r_pos[idx], last = S->rn - 1;
        if (p != last) {
            S->r_end[p] = S->r_end[last];
            S->r_size[p] = S->r_size[last];
            S->r_job[p] = S->r_job[last];
            S->r_pos[S->r_job[p]] = p;
        }
        S->rn--;
    }
}

/* EASY: shadow reservation for the blocked head, then the greedy
 * candidate scan — same arithmetic as repro.sim.backfill. */
static int easy_pass(Sim *S)
{
    double now = S->now;
    i64 head = S->q_i[S->qh];
    i64 head_size = S->sizes[head];
    S->n_passes++;
    for (i64 k = 0; k < S->rn; k++) {
        double e = S->r_end[k];
        S->ev[k].t = (e < now) ? now : e;
        S->ev[k].s = S->r_size[k];
    }
    qsort(S->ev, (size_t)S->rn, sizeof(Ev), ev_cmp);
    i64 avail = S->free_cores, extra = 0;
    double shadow = 0.0;
    int found = 0;
    for (i64 k = 0; k < S->rn; k++) {
        avail += S->ev[k].s;
        if (avail >= head_size) {
            shadow = S->ev[k].t;
            extra = avail - head_size;
            found = 1;
            break;
        }
    }
    if (!found) return 3;
    i64 end_pos = S->qh + S->qn, n_started = 0;
    for (i64 p = S->qh + 1; p < end_pos; p++) {
        i64 idx = S->q_i[p];
        i64 sz = S->sizes[idx];
        if (sz > S->free_cores) continue;
        if (now + S->procs[idx] <= shadow + 1e-9) {
            int rc = start_job(S, idx, 1);
            if (rc) return rc;
            n_started++;
        } else if (sz <= extra) {
            int rc = start_job(S, idx, 1);
            if (rc) return rc;
            extra -= sz;
            n_started++;
        }
        if (S->free_cores == 0) break;
    }
    if (n_started) compact_queue(S);
    return 0;
}

/* Availability-profile breakpoint insertion — mirrors
 * AvailabilityProfile._ensure_breakpoint including its epsilons and its
 * Python-negative-index level lookup for a front insertion. */
static void ensure_bp(Sim *S, double t)
{
    if (isinf(t)) return;
    i64 pn = S->pn;
    for (i64 i = 0; i < pn; i++) {
        if (fabs(S->p_t[i] - t) <= 1e-12) return;
        if (S->p_t[i] > t) {
            i64 level = (i == 0) ? S->p_f[pn - 1] : S->p_f[i - 1];
            memmove(S->p_t + i + 1, S->p_t + i, (size_t)(pn - i) * sizeof(double));
            memmove(S->p_f + i + 1, S->p_f + i, (size_t)(pn - i) * sizeof(i64));
            S->p_t[i] = t; S->p_f[i] = level;
            S->pn++;
            return;
        }
    }
    S->p_t[pn] = t;
    S->p_f[pn] = S->nmax;
    S->pn++;
}

static int conservative_pass(Sim *S)
{
    double now = S->now;
    S->n_passes++;
    i64 head = S->q_i[S->qh];
    i64 used_now = 0;
    for (i64 k = 0; k < S->rn; k++) {
        double e = S->r_end[k];
        S->ev[k].t = (e < now) ? now : e;
        S->ev[k].s = S->r_size[k];
        used_now += S->r_size[k];
    }
    if (used_now > S->nmax) return 4;
    qsort(S->ev, (size_t)S->rn, sizeof(Ev), ev_cmp);
    S->p_t[0] = now;
    S->p_f[0] = S->nmax - used_now;
    S->pn = 1;
    i64 level = S->nmax - used_now;
    for (i64 k = 0; k < S->rn; k++) {
        level += S->ev[k].s;
        /* merge bitwise-equal expected ends like the dict accumulation */
        if (k + 1 < S->rn && S->ev[k + 1].t == S->ev[k].t) continue;
        S->p_t[S->pn] = S->ev[k].t;
        S->p_f[S->pn] = level;
        S->pn++;
    }
    i64 end_pos = S->qh + S->qn, n_started = 0;
    for (i64 p = S->qh; p < end_pos; p++) {
        i64 idx = S->q_i[p];
        i64 sz = S->sizes[idx];
        double dur = S->procs[idx];
        if (dur < 1e-9) dur = 1e-9;
        double t0r = S->p_t[S->pn - 1];
        for (i64 i = 0; i < S->pn; i++) {
            if (S->p_f[i] < sz) continue;
            double t0 = S->p_t[i];
            double end = t0 + dur;
            int feas = 1;
            for (i64 j = i + 1; j < S->pn; j++) {
                if (S->p_t[j] >= end - 1e-12) break;
                if (S->p_f[j] < sz) { feas = 0; break; }
            }
            if (feas) { t0r = t0; break; }
        }
        double endr = t0r + dur;
        ensure_bp(S, t0r);
        ensure_bp(S, endr);
        /* decrement from the exact start breakpoint forward (mirrors
         * AvailabilityProfile.reserve): an epsilon lower bound could
         * also catch a distinct breakpoint within 1e-12 *before* t0r
         * that the earliest-start scan never vetted */
        i64 i0 = -1;
        for (i64 i = 0; i < S->pn; i++)
            if (S->p_t[i] == t0r) { i0 = i; break; }
        if (i0 < 0)
            for (i64 i = 0; i < S->pn; i++)
                if (fabs(S->p_t[i] - t0r) <= 1e-12) { i0 = i; break; }
        for (i64 i = i0; i < S->pn; i++) {
            if (S->p_t[i] >= endr - 1e-12) break;
            S->p_f[i] -= sz;
            if (S->p_f[i] < 0) return 4;
        }
        /* exact: slots strictly after now sit behind unprocessed
         * release events (mirrors conservative_starts) */
        if (t0r == now) {
            int rc = start_job(S, idx, idx != head);
            if (rc) return rc;
            n_started++;
        }
    }
    if (n_started) compact_queue(S);
    return 0;
}

static int sim_run(Sim *S)
{
    i64 n = S->n, ai = 0;
    S->hn = 0; S->qh = 0; S->qn = 0; S->rn = 0; S->pn = 0;
    S->free_cores = S->nmax;
    S->started = 0; S->n_events = 0; S->n_passes = 0;
    for (i64 i = 0; i < n; i++) { S->start[i] = NAN; S->backfilled[i] = 0; }
    double now = S->subs[S->order[0]];
    while (S->started < n) {
        double na = (ai < n) ? S->subs[S->order[ai]] : INFINITY;
        double nc = (S->hn > 0) ? S->h_t[0] : INFINITY;
        double et = (na < nc) ? na : nc;
        if (now < et) now = et;
        S->now = now;
        S->n_events++;
        while (S->hn > 0 && S->h_t[0] <= now) complete(S, h_pop(S));
        while (ai < n && S->subs[S->order[ai]] <= now) {
            q_insert(S, S->order[ai]);
            ai++;
        }
        if (S->qn == 0) continue;
        if (S->mode == 2) {
            int rc = conservative_pass(S);
            if (rc) return rc;
            continue;
        }
        /* every job needs >= 1 core: a full machine cannot start anything,
         * and skipping the pass changes no counters (n_events already
         * counted; backfill passes require free > 0) */
        if (S->free_cores == 0) continue;
        while (S->qn > 0) {
            i64 idx = S->q_i[S->qh];
            if (S->sizes[idx] > S->free_cores) break;
            int rc = start_job(S, idx, 0);
            if (rc) return rc;
            S->qh++;
            S->qn--;
        }
        if (S->mode == 1 && S->qn >= 2 && S->free_cores > 0) {
            int rc = easy_pass(S);
            if (rc) return rc;
        }
    }
    return 0;
}

int repro_sim(i64 n, i64 nmax, int mode,
              const double *subs, const double *runs, const double *procs,
              const i64 *sizes, const double *scores, const i64 *order,
              double *start, unsigned char *backfilled, i64 *counters)
{
    counters[0] = 0;
    counters[1] = 0;
    if (n <= 0) return 0;
    size_t nd = (size_t)n;
    double *dbuf = (double *)malloc((nd + 4 * nd + nd + (3 * nd + 4)) * sizeof(double));
    i64 *ibuf = (i64 *)malloc((nd + 2 * nd + 3 * nd + (3 * nd + 4)) * sizeof(i64));
    Ev *ev = (Ev *)malloc(nd * sizeof(Ev));
    if (!dbuf || !ibuf || !ev) {
        free(dbuf); free(ibuf); free(ev);
        return 1;
    }
    Sim S;
    memset(&S, 0, sizeof(S));
    S.n = n; S.nmax = nmax; S.mode = mode;
    S.subs = subs; S.runs = runs; S.procs = procs;
    S.sizes = sizes; S.scores = scores; S.order = order;
    S.start = start; S.backfilled = backfilled;
    S.h_t = dbuf;
    S.q_s = dbuf + nd;
    S.q_sub = dbuf + nd + 2 * nd;
    S.r_end = dbuf + nd + 4 * nd;
    S.p_t = dbuf + nd + 4 * nd + nd;
    S.h_i = ibuf;
    S.q_i = ibuf + nd;
    S.r_size = ibuf + nd + 2 * nd;
    S.r_job = ibuf + nd + 3 * nd;
    S.r_pos = ibuf + nd + 4 * nd;
    S.p_f = ibuf + nd + 5 * nd;
    S.ev = ev;
    int rc = sim_run(&S);
    counters[0] = S.n_events;
    counters[1] = S.n_passes;
    free(dbuf); free(ibuf); free(ev);
    return rc;
}

int repro_fixed_batch(i64 n_trials, i64 m, i64 nmax,
                      const double *subs, const double *runs, const i64 *sizes,
                      const double *prios, const i64 *order, double *starts)
{
    if (m <= 0 || n_trials <= 0) return 0;
    size_t md = (size_t)m;
    double *dbuf = (double *)malloc((md + 4 * md) * sizeof(double));
    i64 *ibuf = (i64 *)malloc((md + 2 * md) * sizeof(i64));
    unsigned char *bf = (unsigned char *)malloc(md);
    if (!dbuf || !ibuf || !bf) {
        free(dbuf); free(ibuf); free(bf);
        return 1;
    }
    Sim S;
    memset(&S, 0, sizeof(S));
    S.n = m; S.nmax = nmax; S.mode = 0;
    S.subs = subs; S.runs = runs; S.procs = runs;
    S.sizes = sizes; S.order = order;
    S.backfilled = bf;
    S.h_t = dbuf;
    S.q_s = dbuf + md;
    S.q_sub = dbuf + md + 2 * md;
    S.h_i = ibuf;
    S.q_i = ibuf + md;
    int rc = 0;
    for (i64 t = 0; t < n_trials; t++) {
        S.scores = prios + t * m;
        S.start = starts + t * m;
        rc = sim_run(&S);
        if (rc) break;
    }
    free(dbuf); free(ibuf); free(bf);
    return rc;
}
"""

#: Non-zero return codes from the C loop.  All indicate internal
#: invariant violations (impossible after the Python-side validation),
#: never data-dependent conditions.
_ERRORS = {
    1: "out of memory allocating simulation scratch",
    2: "oversubscription: a job was started without enough free cores",
    3: "EASY shadow computation found no feasible reservation",
    4: "availability profile oversubscribed",
}


def requested_mode() -> str:
    """The backend selection from ``REPRO_SIM_KERNEL`` (validated)."""
    mode = os.environ.get("REPRO_SIM_KERNEL", "auto").strip().lower() or "auto"
    if mode not in ("auto", "c", "python"):
        raise ValueError(
            f"REPRO_SIM_KERNEL={mode!r}; choose from 'auto', 'c', 'python'"
        )
    return mode


def cache_dir() -> Path:
    """Directory holding compiled kernels (override: ``REPRO_CKERNEL_DIR``)."""
    override = os.environ.get("REPRO_CKERNEL_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "ckernel"


def _find_compiler() -> str | None:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _build(so_path: Path) -> None:
    """Compile the embedded source to *so_path* (atomic via rename)."""
    cc = _find_compiler()
    if cc is None:
        raise CBackendUnavailable("no C compiler found (set $CC or install gcc)")
    so_path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_c = tempfile.mkstemp(suffix=".c", dir=so_path.parent)
    tmp_so = tmp_c[:-2] + ".so"
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(_C_SOURCE)
        cmd = [cc, "-O2", "-fPIC", "-shared", "-o", tmp_so, tmp_c, "-lm"]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            raise CBackendUnavailable(
                f"C kernel build failed ({' '.join(cmd)}):\n{proc.stderr.strip()}"
            )
        os.replace(tmp_so, so_path)
    finally:
        for leftover in (tmp_c, tmp_so):
            try:
                os.unlink(leftover)
            except OSError:
                pass


class CKernel:
    """ctypes bindings over the compiled event-loop library."""

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._sim = lib.repro_sim
        self._sim.restype = ctypes.c_int
        self._sim.argtypes = (
            [ctypes.c_longlong, ctypes.c_longlong, ctypes.c_int]
            + [ctypes.c_void_p] * 9
        )
        self._batch = lib.repro_fixed_batch
        self._batch.restype = ctypes.c_int
        self._batch.argtypes = [
            ctypes.c_longlong,
            ctypes.c_longlong,
            ctypes.c_longlong,
        ] + [ctypes.c_void_p] * 6

    def sim(
        self,
        subs: np.ndarray,
        runs: np.ndarray,
        procs: np.ndarray,
        sizes: np.ndarray,
        scores: np.ndarray,
        order: np.ndarray,
        nmax: int,
        mode: int,
    ) -> tuple[np.ndarray, np.ndarray, int, int]:
        n = subs.shape[0]
        start = np.empty(n, dtype=np.float64)
        backfilled = np.zeros(n, dtype=np.uint8)
        counters = np.zeros(2, dtype=np.int64)
        rc = self._sim(
            n,
            nmax,
            mode,
            subs.ctypes.data,
            runs.ctypes.data,
            procs.ctypes.data,
            sizes.ctypes.data,
            scores.ctypes.data,
            order.ctypes.data,
            start.ctypes.data,
            backfilled.ctypes.data,
            counters.ctypes.data,
        )
        if rc:
            raise RuntimeError(
                f"C simulation kernel failed: {_ERRORS.get(rc, f'code {rc}')}"
            )
        return start, backfilled.view(bool), int(counters[0]), int(counters[1])

    def fixed_batch(
        self,
        subs: np.ndarray,
        runs: np.ndarray,
        sizes: np.ndarray,
        prios: np.ndarray,
        order: np.ndarray,
        nmax: int,
        out: np.ndarray,
    ) -> np.ndarray:
        n_trials, m = prios.shape
        rc = self._batch(
            n_trials,
            m,
            nmax,
            subs.ctypes.data,
            runs.ctypes.data,
            sizes.ctypes.data,
            prios.ctypes.data,
            order.ctypes.data,
            out.ctypes.data,
        )
        if rc:
            raise RuntimeError(
                f"C trial kernel failed: {_ERRORS.get(rc, f'code {rc}')}"
            )
        return out


_UNSET = object()
_cached: object = _UNSET  # CKernel | None once resolved


def load() -> CKernel | None:
    """The process-wide C kernel, building it on first use.

    Returns ``None`` when unavailable (no compiler, build failure, load
    failure) unless ``REPRO_SIM_KERNEL=c`` demands it, in which case
    :class:`CBackendUnavailable` propagates.
    """
    global _cached
    if _cached is not _UNSET:
        if _cached is None and requested_mode() == "c":
            raise CBackendUnavailable("C kernel unavailable (earlier build failed)")
        return _cached  # type: ignore[return-value]
    try:
        digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
        so_path = cache_dir() / f"simkernel-{digest}.so"
        if not so_path.is_file():
            _build(so_path)
        _cached = CKernel(ctypes.CDLL(str(so_path)))
    except Exception as exc:
        _cached = None
        if requested_mode() == "c":
            if isinstance(exc, CBackendUnavailable):
                raise
            raise CBackendUnavailable(f"C kernel unavailable: {exc}") from exc
    return _cached  # type: ignore[return-value]

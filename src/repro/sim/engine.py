"""Event-driven online scheduling simulator.

This is the evaluation substrate of the paper (§4.2's "on-line scheduling
algorithm"): jobs arrive into a centralized waiting queue; the scheduler
re-orders the queue with a *policy* at two event kinds — a job arrival or
a resource release — and starts the queue head while it fits.  Optionally
the EASY aggressive-backfilling pass runs when the head blocks.

Design notes
------------
* The waiting queue is kept as index lists into the workload's
  structure-of-arrays; policy scoring is vectorized (one call per
  rescheduling pass), which is where >90 % of simulation time goes for
  dynamic policies.
* Static policies (``policy.dynamic == False`` — their score does not
  depend on the current time) are scored once at arrival and the queue is
  maintained sorted by ``(score, submit, index)`` with :mod:`bisect`,
  avoiding a full re-sort on every event.  Both paths are semantically
  identical; tests cross-check them.
* Scheduling decisions use the user estimate ``e`` when
  ``use_estimates=True`` (§4.2.2); execution always uses the actual
  runtime ``r``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.obs.metrics import current_registry
from repro.sim.backfill import easy_backfill
from repro.sim.conservative import conservative_starts
from repro.sim.cluster import Cluster
from repro.sim.events import CompletionQueue
from repro.sim.job import Workload
from repro.sim.metrics import (
    DEFAULT_TAU,
    average_bounded_slowdown,
    bounded_slowdown,
    makespan,
    utilization,
    waiting_times,
)
from repro.util.stats import Summary, summarize

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.policies.base import Policy

__all__ = ["SimulationConfig", "ScheduleResult", "normalize_backfill", "simulate"]


#: Accepted backfill modes: ``False``/``None``/``"none"``/``"off"`` (off),
#: ``True``/``"easy"`` (EASY aggressive backfilling, the paper's
#: algorithm) and ``"conservative"`` (every queued job holds a
#: reservation).
BACKFILL_MODES = (False, True, "none", "easy", "conservative")


def normalize_backfill(value: bool | str | None) -> str | None:
    """Canonicalise a backfill-mode spelling (the single vocabulary used
    by the engine, the evaluation matrix and the CLI)."""
    if value in (False, None, "none", "off"):
        return None
    if value in (True, "easy"):
        return "easy"
    if value == "conservative":
        return "conservative"
    raise ValueError(
        f"unknown backfill mode {value!r}; choose from {BACKFILL_MODES}"
    )


@dataclass(frozen=True)
class SimulationConfig:
    """Immutable description of one simulation setup."""

    nmax: int
    use_estimates: bool = False
    backfill: bool | str = False
    tau: float = DEFAULT_TAU

    def __post_init__(self) -> None:
        if self.nmax < 1:
            raise ValueError(f"nmax must be >= 1, got {self.nmax}")
        if self.tau <= 0:
            raise ValueError(f"tau must be > 0, got {self.tau}")
        object.__setattr__(self, "backfill", normalize_backfill(self.backfill))

    @property
    def backfill_mode(self) -> str | None:
        """``None``, ``"easy"`` or ``"conservative"``."""
        return self.backfill  # type: ignore[return-value]


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of simulating one workload under one policy."""

    workload: Workload
    start: np.ndarray
    policy_name: str
    config: SimulationConfig
    backfilled: np.ndarray = field(default=None)  # type: ignore[assignment]
    n_events: int = 0

    def __post_init__(self) -> None:
        if len(self.start) != len(self.workload):
            raise ValueError("start array length mismatch")
        if self.backfilled is None:
            object.__setattr__(
                self, "backfilled", np.zeros(len(self.workload), dtype=bool)
            )

    # ------------------------------------------------------------------
    @property
    def finish(self) -> np.ndarray:
        """Per-job completion times (actual runtimes)."""
        return self.start + self.workload.runtime

    @property
    def wait(self) -> np.ndarray:
        """Per-job waiting times."""
        return waiting_times(self.workload.submit, self.start)

    def bsld(self, tau: float | None = None) -> np.ndarray:
        """Per-job bounded slowdown (Eq. 1)."""
        return bounded_slowdown(
            self.wait, self.workload.runtime, tau if tau is not None else self.config.tau
        )

    @property
    def ave_bsld(self) -> float:
        """Average bounded slowdown over all jobs (Eq. 2)."""
        return average_bounded_slowdown(
            self.wait, self.workload.runtime, self.config.tau
        )

    @property
    def makespan(self) -> float:
        """Finish time of the last job."""
        return makespan(self.start, self.workload.runtime)

    @property
    def utilization(self) -> float:
        """Delivered machine utilization over the makespan."""
        return utilization(
            self.start, self.workload.runtime, self.workload.size, self.config.nmax
        )

    @property
    def backfill_count(self) -> int:
        """How many jobs started through the EASY pass."""
        return int(self.backfilled.sum())

    def summary(self, tau: float | None = None) -> Summary:
        """Descriptive statistics of the per-job bounded slowdowns."""
        return summarize(self.bsld(tau))


class _Queue:
    """Waiting queue with static (sorted-insert) and dynamic (re-sort) modes."""

    def __init__(self, dynamic: bool) -> None:
        self.dynamic = dynamic
        self.items: list[int] = []  # job indices (priority order when static)
        self._keys: list[tuple[float, float, int]] = []  # static mode only

    def __len__(self) -> int:
        return len(self.items)

    def add_static(self, idx: int, score: float, submit: float) -> None:
        key = (score, submit, idx)
        pos = bisect.bisect_left(self._keys, key)
        self._keys.insert(pos, key)
        self.items.insert(pos, idx)

    def add_dynamic(self, idx: int) -> None:
        self.items.append(idx)

    def remove_started(self, started: set[int]) -> None:
        if not started:
            return
        if self.dynamic:
            self.items = [i for i in self.items if i not in started]
        else:
            keep = [k for k, i in zip(self._keys, self.items) if i not in started]
            self._keys = keep
            self.items = [k[2] for k in keep]


def simulate(
    workload: Workload,
    policy: "Policy",
    nmax: int,
    *,
    use_estimates: bool = False,
    backfill: bool | str = False,
    tau: float = DEFAULT_TAU,
) -> ScheduleResult:
    """Simulate the online scheduling of *workload* under *policy*.

    Parameters mirror the paper's experimental axes: machine size
    (*nmax*), whether scheduling decisions see user estimates instead of
    actual runtimes (*use_estimates*), and backfilling (*backfill*:
    ``True``/``"easy"`` for the paper's EASY algorithm, ``"conservative"``
    for the strict every-job-reserved variant).

    Returns a :class:`ScheduleResult`; raises if any job exceeds the
    machine size.
    """
    config = SimulationConfig(
        nmax=nmax, use_estimates=use_estimates, backfill=backfill, tau=tau
    )
    workload.validate_for_machine(nmax)
    n = len(workload)
    start = np.full(n, np.nan)
    backfilled = np.zeros(n, dtype=bool)
    if n == 0:
        return ScheduleResult(workload, start, policy.name, config, backfilled, 0)

    subs = workload.submit
    runs = workload.runtime
    sizes_arr = workload.size
    procs = workload.estimate if use_estimates else workload.runtime
    sizes = [int(x) for x in sizes_arr]

    cluster = Cluster(nmax)
    completions = CompletionQueue()
    expected_end: dict[int, float] = {}
    queue = _Queue(dynamic=policy.dynamic)

    ai = 0  # arrival pointer (workload is submit-sorted)
    started_count = 0
    now = float(subs[0])
    n_events = 0
    n_backfill_passes = 0  # local tally; recorded once at the end

    def start_job(idx: int, at: float, via_backfill: bool) -> None:
        nonlocal started_count
        cluster.allocate(idx, sizes[idx])
        start[idx] = at
        completions.push(at + float(runs[idx]), idx)
        expected_end[idx] = at + float(procs[idx])
        backfilled[idx] = via_backfill
        started_count += 1

    def priority_order(at: float) -> list[int]:
        if not queue.dynamic:
            return queue.items  # maintained sorted
        q = np.fromiter(queue.items, dtype=np.int64, count=len(queue.items))
        scores = policy.scores(at, subs[q], procs[q], sizes_arr[q])
        order = np.lexsort((q, subs[q], scores))
        return [int(q[i]) for i in order]

    mode = config.backfill_mode

    def schedule_pass(at: float) -> None:
        nonlocal n_backfill_passes
        if not queue.items:
            return
        order = priority_order(at)
        started: set[int] = set()
        if mode == "conservative":
            n_backfill_passes += 1
            run_idx = list(expected_end)
            chosen = conservative_starts(
                at,
                nmax,
                order,
                [sizes[i] for i in order],
                [float(procs[i]) for i in order],
                [expected_end[i] for i in run_idx],
                [sizes[i] for i in run_idx],
            )
            head = order[0]
            for idx in chosen:
                start_job(idx, at, via_backfill=idx != head)
                started.add(idx)
            queue.remove_started(started)
            return
        pos = 0
        while pos < len(order) and sizes[order[pos]] <= cluster.free:
            start_job(order[pos], at, via_backfill=False)
            started.add(order[pos])
            pos += 1
        if mode == "easy" and pos < len(order) and cluster.free > 0:
            head = order[pos]
            cands = order[pos + 1 :]
            if cands:
                n_backfill_passes += 1
                run_idx = list(expected_end)
                chosen = easy_backfill(
                    at,
                    cluster.free,
                    sizes[head],
                    cands,
                    [sizes[i] for i in cands],
                    [float(procs[i]) for i in cands],
                    [expected_end[i] for i in run_idx],
                    [sizes[i] for i in run_idx],
                )
                for idx in chosen:
                    start_job(idx, at, via_backfill=True)
                    started.add(idx)
        queue.remove_started(started)

    while started_count < n:
        next_arrival = float(subs[ai]) if ai < n else np.inf
        next_completion = completions.peek_time()
        if not queue.items and cluster.running_jobs == 0:
            event_time = next_arrival
        else:
            event_time = min(next_arrival, next_completion)
        now = max(now, event_time)
        n_events += 1

        for idx in completions.pop_until(now):
            cluster.release(idx)
            expected_end.pop(idx, None)
        if not queue.dynamic:
            batch: list[int] = []
            while ai < n and float(subs[ai]) <= now:
                batch.append(ai)
                ai += 1
            if batch:
                b = np.asarray(batch, dtype=np.int64)
                scores = policy.scores(now, subs[b], procs[b], sizes_arr[b])
                for idx, sc in zip(batch, scores):
                    queue.add_static(idx, float(sc), float(subs[idx]))
        else:
            while ai < n and float(subs[ai]) <= now:
                queue.add_dynamic(ai)
                ai += 1

        schedule_pass(now)

    # Telemetry (no-op by default): one batch of counter increments per
    # whole-workload simulation — never per event or per job — so the
    # disabled path costs four null method calls for the entire run.
    registry = current_registry()
    registry.inc("sim.runs")
    registry.inc("sim.events", n_events)
    registry.inc("sim.jobs_completed", n)
    registry.inc("sim.backfill_passes", n_backfill_passes)
    registry.inc("sim.backfilled", int(backfilled.sum()))

    return ScheduleResult(workload, start, policy.name, config, backfilled, n_events)

"""Event-driven online scheduling simulator.

This is the evaluation substrate of the paper (§4.2's "on-line scheduling
algorithm"): jobs arrive into a centralized waiting queue; the scheduler
re-orders the queue with a *policy* at two event kinds — a job arrival or
a resource release — and starts the queue head while it fits.  Optionally
the EASY aggressive-backfilling pass runs when the head blocks.

Design notes
------------
* Since the kernel refactor this module is a *thin configuration* of the
  unified event loop in :mod:`repro.sim.kernel`: it validates inputs,
  maps the policy onto the kernel's scoring contract, and wraps the
  kernel output in a :class:`ScheduleResult`.
* Static policies (``policy.dynamic == False`` — their score does not
  depend on the current time and is elementwise per job) are scored for
  the **whole workload in one** ``policy.scores`` call before the event
  loop starts; the kernel keeps the queue sorted by
  ``(score, submit, index)``.  Dynamic policies are rescored per
  scheduling pass with one array call over the entire queue.  Both paths
  are bit-identical to the retained legacy loop (``tests/oracle_sim.py``).
* Scheduling decisions use the user estimate ``e`` when
  ``use_estimates=True`` (§4.2.2); execution always uses the actual
  runtime ``r``.
* NaN policy scores raise :class:`ValueError` at the kernel boundary
  (they would silently corrupt the queue order otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.obs.metrics import current_registry
from repro.sim.job import Workload
from repro.sim.kernel import simulate_events
from repro.sim.metrics import (
    DEFAULT_TAU,
    average_bounded_slowdown,
    bounded_slowdown,
    makespan,
    utilization,
    waiting_times,
)
from repro.util.stats import Summary, summarize

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.policies.base import Policy

__all__ = ["SimulationConfig", "ScheduleResult", "normalize_backfill", "simulate"]


#: Accepted backfill modes: ``False``/``None``/``"none"``/``"off"`` (off),
#: ``True``/``"easy"`` (EASY aggressive backfilling, the paper's
#: algorithm), ``"conservative"`` (every queued job holds a reservation)
#: and ``"hybrid"`` (the first
#: :data:`~repro.sim.backfill.HYBRID_RESERVATION_DEPTH` queued jobs hold
#: reservations, the tail backfills aggressively).
BACKFILL_MODES = (False, True, "none", "easy", "conservative", "hybrid")


def normalize_backfill(value: bool | str | None) -> str | None:
    """Canonicalise a backfill-mode spelling (the single vocabulary used
    by the engine, the evaluation matrix and the CLI)."""
    if value in (False, None, "none", "off"):
        return None
    if value in (True, "easy"):
        return "easy"
    if value in ("conservative", "hybrid"):
        return value
    raise ValueError(
        f"unknown backfill mode {value!r}; choose from {BACKFILL_MODES}"
    )


@dataclass(frozen=True)
class SimulationConfig:
    """Immutable description of one simulation setup.

    ``topology=None`` is the paper's flat machine; a topology tuple
    selects the partitioned platform (:mod:`repro.sim.platform`) with
    *distribution* choosing the job→leaf strategy and *platform_seed*
    feeding the ``random`` strategy's stream.
    """

    nmax: int
    use_estimates: bool = False
    backfill: bool | str = False
    tau: float = DEFAULT_TAU
    topology: tuple[int, ...] | None = None
    distribution: str = "round_robin"
    platform_seed: int = 0

    def __post_init__(self) -> None:
        if self.nmax < 1:
            raise ValueError(f"nmax must be >= 1, got {self.nmax}")
        if self.tau <= 0:
            raise ValueError(f"tau must be > 0, got {self.tau}")
        object.__setattr__(self, "backfill", normalize_backfill(self.backfill))
        from repro.sim.platform import normalize_distribution, normalize_topology

        object.__setattr__(self, "topology", normalize_topology(self.topology))
        object.__setattr__(
            self, "distribution", normalize_distribution(self.distribution)
        )

    @property
    def backfill_mode(self) -> str | None:
        """``None``, ``"easy"``, ``"conservative"`` or ``"hybrid"``."""
        return self.backfill  # type: ignore[return-value]


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of simulating one workload under one policy."""

    workload: Workload
    start: np.ndarray
    policy_name: str
    config: SimulationConfig
    backfilled: np.ndarray = field(default=None)  # type: ignore[assignment]
    n_events: int = 0
    #: per-job leaf assignment for partitioned platforms (None when flat)
    leaf: np.ndarray | None = None

    def __post_init__(self) -> None:
        if len(self.start) != len(self.workload):
            raise ValueError("start array length mismatch")
        if self.backfilled is None:
            object.__setattr__(
                self, "backfilled", np.zeros(len(self.workload), dtype=bool)
            )

    # ------------------------------------------------------------------
    @property
    def finish(self) -> np.ndarray:
        """Per-job completion times (actual runtimes)."""
        return self.start + self.workload.runtime

    @property
    def wait(self) -> np.ndarray:
        """Per-job waiting times."""
        return waiting_times(self.workload.submit, self.start)

    def bsld(self, tau: float | None = None) -> np.ndarray:
        """Per-job bounded slowdown (Eq. 1)."""
        return bounded_slowdown(
            self.wait, self.workload.runtime, tau if tau is not None else self.config.tau
        )

    @property
    def ave_bsld(self) -> float:
        """Average bounded slowdown over all jobs (Eq. 2)."""
        return average_bounded_slowdown(
            self.wait, self.workload.runtime, self.config.tau
        )

    @property
    def makespan(self) -> float:
        """Finish time of the last job."""
        return makespan(self.start, self.workload.runtime)

    @property
    def utilization(self) -> float:
        """Delivered machine utilization over the makespan."""
        return utilization(
            self.start, self.workload.runtime, self.workload.size, self.config.nmax
        )

    @property
    def backfill_count(self) -> int:
        """How many jobs started through the EASY pass."""
        return int(self.backfilled.sum())

    def summary(self, tau: float | None = None) -> Summary:
        """Descriptive statistics of the per-job bounded slowdowns."""
        return summarize(self.bsld(tau))


def simulate(
    workload: Workload,
    policy: "Policy",
    nmax: int,
    *,
    use_estimates: bool = False,
    backfill: bool | str = False,
    tau: float = DEFAULT_TAU,
    topology: tuple[int, ...] | None = None,
    distribution: str = "round_robin",
    platform_seed: int = 0,
) -> ScheduleResult:
    """Simulate the online scheduling of *workload* under *policy*.

    Parameters mirror the paper's experimental axes: machine size
    (*nmax*), whether scheduling decisions see user estimates instead of
    actual runtimes (*use_estimates*), and backfilling (*backfill*:
    ``True``/``"easy"`` for the paper's EASY algorithm, ``"conservative"``
    for the strict every-job-reserved variant, ``"hybrid"`` for the
    queue-front-reserved middle ground) — plus the platform axes this
    library adds beyond the paper: *topology* partitions the machine
    into equal leaves, each running its own scheduler instance over the
    jobs the *distribution* strategy assigned to it
    (:mod:`repro.sim.platform`; *platform_seed* feeds the ``random``
    strategy).  ``topology=None`` keeps the paper's flat machine on the
    original kernel invocation, bit for bit.

    Returns a :class:`ScheduleResult`; raises if any job exceeds the
    machine size (or, when partitioned, a single leaf).
    """
    config = SimulationConfig(
        nmax=nmax, use_estimates=use_estimates, backfill=backfill, tau=tau,
        topology=topology, distribution=distribution, platform_seed=platform_seed,
    )
    workload.validate_for_machine(nmax)
    n = len(workload)
    if n == 0:
        return ScheduleResult(
            workload, np.full(0, np.nan), policy.name, config,
            np.zeros(0, dtype=bool), 0,
        )

    subs = workload.submit
    procs = workload.estimate if use_estimates else workload.runtime

    # Static contract: scores are now-independent and elementwise, so
    # one whole-workload call (at any reference time) reproduces the
    # per-arrival-batch scores bit for bit — and any subset of them the
    # per-leaf scheduler instances see.  The contract is enforced
    # registry-wide by tests/test_policy_batch_contract.py.
    scorer = policy.scores if policy.dynamic else None
    scores = (
        None
        if policy.dynamic
        else policy.scores(float(subs[0]), subs, procs, workload.size)
    )

    leaf = None
    if config.topology is None:
        if policy.dynamic:
            outcome = simulate_events(
                subs,
                workload.runtime,
                procs,
                workload.size,
                nmax,
                scorer=scorer,
                backfill=config.backfill_mode,
            )
        else:
            outcome = simulate_events(
                subs,
                workload.runtime,
                procs,
                workload.size,
                nmax,
                static_scores=scores,
                backfill=config.backfill_mode,
            )
    else:
        from repro.sim.platform import PartitionedPlatform, simulate_partitioned

        platform = PartitionedPlatform(nmax, config.topology)
        outcome = simulate_partitioned(
            platform,
            subs,
            workload.runtime,
            procs,
            workload.size,
            static_scores=scores,
            scorer=scorer,
            backfill=config.backfill_mode,
            distribution=config.distribution,
            seed=config.platform_seed,
        )
        leaf = outcome.leaf

    # Telemetry (no-op by default): one batch of counter increments per
    # whole-workload simulation — never per event or per job — so the
    # disabled path costs five null method calls for the entire run.
    # Counter names and semantics are unchanged from the pre-kernel loop.
    registry = current_registry()
    registry.inc("sim.runs")
    registry.inc("sim.events", outcome.n_events)
    registry.inc("sim.jobs_completed", n)
    registry.inc("sim.backfill_passes", outcome.n_backfill_passes)
    registry.inc("sim.backfilled", int(outcome.backfilled.sum()))
    if leaf is not None:
        registry.inc("sim.leaves", platform.n_leaves)

    return ScheduleResult(
        workload, outcome.start, policy.name, config,
        outcome.backfilled, outcome.n_events, leaf,
    )

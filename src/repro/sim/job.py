"""Job and workload containers.

A *job* (the paper calls it a task) is a rigid parallel job described by the
four quantities of §3.1 of the paper:

``submit``
    arrival time :math:`s_t` (seconds, also called release date),
``runtime``
    actual processing time :math:`r_t` (only known after execution),
``size``
    resource requirement :math:`n_t` (number of cores),
``estimate``
    user-provided processing-time estimate :math:`e_t`.

Two representations are provided: :class:`Job` (one record, convenient for
construction and tests) and :class:`Workload` (structure-of-arrays, used by
the simulator and every generator — the hot paths are all vectorized over
these arrays, per the hpc-parallel guide's "vectorize the bottleneck"
idiom).

:class:`Workload.__post_init__` guarantees C-contiguous float64/int64
attribute arrays sorted by submit time — the exact layout the unified
simulation kernel (:mod:`repro.sim.kernel`) hands to its compiled
backend without copying.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field, replace

import numpy as np

from repro.util.validation import check_finite, check_positive_int

__all__ = ["Job", "Workload", "concat_workloads"]


@dataclass(frozen=True, slots=True)
class Job:
    """One rigid job.  Immutable; simulation outcomes live in results."""

    job_id: int
    submit: float
    runtime: float
    size: int
    estimate: float = -1.0  # -1 means "defaults to runtime" (perfect estimate)

    def __post_init__(self) -> None:
        if self.submit < 0 or not math.isfinite(self.submit):
            raise ValueError(f"job {self.job_id}: submit must be >= 0 and finite")
        if self.runtime <= 0 or not math.isfinite(self.runtime):
            raise ValueError(f"job {self.job_id}: runtime must be > 0 and finite")
        check_positive_int("size", self.size)
        if self.estimate == -1.0:
            object.__setattr__(self, "estimate", float(self.runtime))
        elif self.estimate <= 0 or not math.isfinite(self.estimate):
            raise ValueError(f"job {self.job_id}: estimate must be > 0 and finite")

    @property
    def area(self) -> float:
        """Core-seconds consumed by the job (``runtime * size``)."""
        return self.runtime * self.size


@dataclass(frozen=True)
class Workload:
    """A structure-of-arrays batch of jobs, sorted by submit time.

    All arrays share one length.  ``job_ids`` preserves provenance when a
    workload is sliced into sequences, so results can be traced back to the
    originating trace line.
    """

    submit: np.ndarray
    runtime: np.ndarray
    size: np.ndarray
    estimate: np.ndarray
    job_ids: np.ndarray
    name: str = "workload"
    nmax: int = 0  # machine size context; 0 means "unknown"
    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        submit = np.ascontiguousarray(self.submit, dtype=np.float64)
        runtime = np.ascontiguousarray(self.runtime, dtype=np.float64)
        size = np.ascontiguousarray(self.size, dtype=np.int64)
        estimate = np.ascontiguousarray(self.estimate, dtype=np.float64)
        job_ids = np.ascontiguousarray(self.job_ids, dtype=np.int64)
        n = len(submit)
        for label, arr in (
            ("runtime", runtime),
            ("size", size),
            ("estimate", estimate),
            ("job_ids", job_ids),
        ):
            if len(arr) != n:
                raise ValueError(
                    f"array length mismatch: submit has {n}, {label} has {len(arr)}"
                )
        check_finite("submit", submit)
        check_finite("runtime", runtime)
        check_finite("estimate", estimate)
        if n:
            if submit.min() < 0:
                raise ValueError("submit times must be >= 0")
            if runtime.min() <= 0:
                raise ValueError("runtimes must be > 0")
            if estimate.min() <= 0:
                raise ValueError("estimates must be > 0")
            if size.min() < 1:
                raise ValueError("sizes must be >= 1")
            if not np.all(np.diff(submit) >= 0):
                order = np.argsort(submit, kind="stable")
                submit = submit[order]
                runtime = runtime[order]
                size = size[order]
                estimate = estimate[order]
                job_ids = job_ids[order]
        for name, arr in (
            ("submit", submit),
            ("runtime", runtime),
            ("size", size),
            ("estimate", estimate),
            ("job_ids", job_ids),
        ):
            object.__setattr__(self, name, arr)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_jobs(
        cls, jobs: Iterable[Job], *, name: str = "workload", nmax: int = 0
    ) -> "Workload":
        """Build a workload from :class:`Job` records."""
        jobs = list(jobs)
        return cls(
            submit=np.array([j.submit for j in jobs], dtype=np.float64),
            runtime=np.array([j.runtime for j in jobs], dtype=np.float64),
            size=np.array([j.size for j in jobs], dtype=np.int64),
            estimate=np.array([j.estimate for j in jobs], dtype=np.float64),
            job_ids=np.array([j.job_id for j in jobs], dtype=np.int64),
            name=name,
            nmax=nmax,
        )

    @classmethod
    def from_arrays(
        cls,
        submit: Sequence[float],
        runtime: Sequence[float],
        size: Sequence[int],
        estimate: Sequence[float] | None = None,
        *,
        name: str = "workload",
        nmax: int = 0,
    ) -> "Workload":
        """Build a workload from plain sequences; estimates default to runtimes."""
        submit = np.asarray(submit, dtype=np.float64)
        runtime = np.asarray(runtime, dtype=np.float64)
        if estimate is None:
            estimate = runtime.copy()
        return cls(
            submit=submit,
            runtime=runtime,
            size=np.asarray(size, dtype=np.int64),
            estimate=np.asarray(estimate, dtype=np.float64),
            job_ids=np.arange(len(submit), dtype=np.int64),
            name=name,
            nmax=nmax,
        )

    # ------------------------------------------------------------------
    # views and derived quantities
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.submit)

    def to_jobs(self) -> list[Job]:
        """Materialise :class:`Job` records (intended for tests/debugging)."""
        return [
            Job(
                job_id=int(self.job_ids[i]),
                submit=float(self.submit[i]),
                runtime=float(self.runtime[i]),
                size=int(self.size[i]),
                estimate=float(self.estimate[i]),
            )
            for i in range(len(self))
        ]

    @property
    def area(self) -> float:
        """Total core-seconds over all jobs."""
        return float(np.sum(self.runtime * self.size))

    @property
    def span(self) -> float:
        """Distance between first and last arrival."""
        if len(self) == 0:
            return 0.0
        return float(self.submit[-1] - self.submit[0])

    def utilization(self, nmax: int | None = None) -> float:
        """Offered load: total area over ``nmax * span`` (a lower bound on
        achievable machine utilization; > 1 means overload)."""
        nmax = nmax or self.nmax
        if nmax <= 0:
            raise ValueError("nmax must be provided (workload has no machine size)")
        span = self.span
        if span <= 0:
            return float("inf") if len(self) else 0.0
        return self.area / (nmax * span)

    def select(self, mask_or_index: np.ndarray) -> "Workload":
        """Return a sub-workload (arrays re-sorted by submit automatically)."""
        return replace(
            self,
            submit=self.submit[mask_or_index],
            runtime=self.runtime[mask_or_index],
            size=self.size[mask_or_index],
            estimate=self.estimate[mask_or_index],
            job_ids=self.job_ids[mask_or_index],
        )

    def shifted(self, *, t0: float | None = None, min_submit: float = 0.0) -> "Workload":
        """Shift submit times so the earliest becomes *min_submit*.

        Used when slicing a long trace into sequences: each sequence's clock
        restarts, matching the paper's per-sequence experiments.
        """
        if len(self) == 0:
            return self
        origin = self.submit[0] if t0 is None else t0
        return replace(self, submit=self.submit - origin + min_submit)

    def with_estimates(self, estimate: np.ndarray) -> "Workload":
        """Return a copy with user estimates replaced."""
        estimate = np.asarray(estimate, dtype=np.float64)
        if len(estimate) != len(self):
            raise ValueError("estimate array length mismatch")
        return replace(self, estimate=estimate)

    def with_name(self, name: str) -> "Workload":
        """Return a copy carrying a new display name."""
        return replace(self, name=name)

    def validate_for_machine(self, nmax: int) -> None:
        """Raise if any job cannot ever run on an ``nmax``-core machine."""
        if len(self) and int(self.size.max()) > nmax:
            worst = int(np.argmax(self.size))
            raise ValueError(
                f"job {int(self.job_ids[worst])} needs {int(self.size[worst])} cores"
                f" but the machine has only {nmax}"
            )


def concat_workloads(parts: Sequence[Workload], *, name: str = "concat") -> Workload:
    """Concatenate workloads (job ids are re-assigned to stay unique)."""
    if not parts:
        raise ValueError("nothing to concatenate")
    submit = np.concatenate([p.submit for p in parts])
    runtime = np.concatenate([p.runtime for p in parts])
    size = np.concatenate([p.size for p in parts])
    estimate = np.concatenate([p.estimate for p in parts])
    return Workload(
        submit=submit,
        runtime=runtime,
        size=size,
        estimate=estimate,
        job_ids=np.arange(len(submit), dtype=np.int64),
        name=name,
        nmax=max(p.nmax for p in parts),
    )

"""Unified event-heap simulation kernel.

Both public simulators — :func:`repro.sim.engine.simulate` (the online
evaluation engine) and
:func:`repro.sim.listsched.simulate_fixed_priority` (the training trial
simulator) — are thin configurations of the single event loop in this
module.  One arrival/completion heap drives every mode; per-event state
lives in preallocated arrays (start times, the running set's
expected-end/size timeline, the sorted waiting queue) instead of the
per-event dicts and list comprehensions of the pre-kernel loops.

Event loop contract (the exact semantics of the original loops — the
parity suite pins them bit-for-bit against ``tests/oracle_sim.py``):

1. The clock jumps to ``min(next arrival, next completion)`` and never
   moves backwards; each jump is one *event* (``n_events``).
2. Completions at or before ``now`` release cores first, in
   ``(finish_time, job)`` order; then all arrivals at or before ``now``
   enter the waiting queue.
3. One scheduling pass runs per event: the queue is ordered by
   ``(score, submit, index)`` — lower score first — and the head starts
   while it fits (head-blocking).  With ``backfill="easy"`` a blocked
   head triggers the EASY pass over the remaining queue; with
   ``backfill="conservative"`` the whole queue is replanned against an
   availability profile and every job whose reservation begins now
   starts.

Scoring is vectorised at the batch level: *static* scores (policies
whose score is independent of ``now``) are computed for the whole
workload in **one** ``policy.scores`` call before the loop starts, and
*dynamic* policies are rescored per pass with one array call over the
entire queue — never per job.  Static-score simulations additionally
dispatch to a compiled C transcription of the same loop
(:mod:`repro.sim._cbackend`, ``REPRO_SIM_KERNEL`` selects the backend);
dynamic ones stay on the Python path because their numpy score bits are
not reproducible from libm.

The kernel records no telemetry itself: the engine and trial wrappers
increment the same counters (``sim.*``, ``listsched.*``) with the same
semantics as before the refactor.
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_left
from typing import Callable, NamedTuple

import numpy as np

from repro.sim import _cbackend

__all__ = [
    "KernelResult",
    "simulate_events",
    "fixed_priority_starts",
    "fixed_priority_batch",
    "validate_scores",
]

#: Canonical backfill mode -> integer code shared with the C backend.
#: The C transcription implements codes 0-2; ``hybrid`` (3) always runs
#: on the Python path, even under ``REPRO_SIM_KERNEL=c``.
_MODE_CODES = {None: 0, "easy": 1, "conservative": 2, "hybrid": 3}


class KernelResult(NamedTuple):
    """Everything one kernel run produces."""

    start: np.ndarray
    backfilled: np.ndarray
    n_events: int
    n_backfill_passes: int


def validate_scores(scores: np.ndarray, label: str = "score") -> None:
    """Reject NaN scores/priorities at the kernel boundary.

    NaN compares false against everything, so a NaN key would silently
    corrupt the waiting-queue order (historically: undefined queue
    positions rather than an error).  Raises :class:`ValueError` naming
    the first offending job index.
    """
    isnan = np.isnan(scores)
    if isnan.any():
        where = np.argwhere(isnan)[0]
        job = int(where[-1])
        trial = f" (trial {int(where[0])})" if scores.ndim > 1 else ""
        raise ValueError(
            f"{label} for job {job}{trial} is NaN; NaN never sorts, so the"
            " waiting-queue order would be silently corrupted"
        )


def _as_f64(arr) -> np.ndarray:
    return np.ascontiguousarray(arr, dtype=np.float64)


def _as_i64(arr) -> np.ndarray:
    return np.ascontiguousarray(arr, dtype=np.int64)


def simulate_events(
    submit: np.ndarray,
    runtime: np.ndarray,
    proc: np.ndarray,
    size: np.ndarray,
    nmax: int,
    *,
    static_scores: np.ndarray | None = None,
    scorer: Callable[[float, np.ndarray, np.ndarray, np.ndarray], np.ndarray]
    | None = None,
    backfill: str | None = None,
    arrival_order: np.ndarray | None = None,
    score_label: str = "score",
) -> KernelResult:
    """Run one simulation through the unified event loop.

    Parameters
    ----------
    submit, runtime, proc, size:
        Job attribute arrays: arrival time, actual runtime (drives
        completions), the processing time the *scheduler* sees (drives
        expected ends / backfill decisions; equals ``runtime`` unless
        the caller simulates user estimates) and core count.
    nmax:
        Machine size in cores.  Callers validate ``size <= nmax``.
    static_scores:
        Per-job queue score for the whole workload (lower runs first;
        ties by submit then index).  Mutually exclusive with *scorer*.
    scorer:
        Batch scoring callable ``scorer(now, submit, proc, size)`` for
        dynamic policies, applied to the entire queue once per
        scheduling pass.
    backfill:
        ``None``, ``"easy"``, ``"conservative"`` or ``"hybrid"``
        (canonical spellings only — use
        :func:`repro.sim.engine.normalize_backfill`).  Hybrid replans
        like conservative but reserves only the queue front
        (:data:`repro.sim.backfill.HYBRID_RESERVATION_DEPTH` jobs); it
        has no C transcription, so it runs the Python path regardless
        of ``REPRO_SIM_KERNEL``.
    arrival_order:
        Indices sorted by ``(submit, index)``.  Defaults to ``0..n-1``
        (correct for submit-sorted workloads).
    """
    if (static_scores is None) == (scorer is None):
        raise ValueError("exactly one of static_scores/scorer must be given")
    mode = _MODE_CODES[backfill]
    submit = _as_f64(submit)
    runtime = _as_f64(runtime)
    proc = _as_f64(proc)
    size = _as_i64(size)
    n = submit.shape[0]
    if n == 0:
        return KernelResult(np.empty(0, dtype=float), np.zeros(0, dtype=bool), 0, 0)
    if arrival_order is None:
        arrival_order = np.arange(n, dtype=np.int64)
    else:
        arrival_order = _as_i64(arrival_order)
    if static_scores is not None:
        static_scores = _as_f64(static_scores)
        validate_scores(static_scores, score_label)
        backend = (
            None
            if mode == 3 or _cbackend.requested_mode() == "python"
            else _cbackend.load()
        )
        if backend is not None:
            start, backfilled, n_events, n_passes = backend.sim(
                submit, runtime, proc, size, static_scores, arrival_order, nmax, mode
            )
            return KernelResult(start, backfilled, n_events, n_passes)
    return _simulate_py(
        submit, runtime, proc, size, nmax, mode, static_scores, scorer, arrival_order
    )


def fixed_priority_starts(
    submit: np.ndarray,
    runtime: np.ndarray,
    size: np.ndarray,
    priority: np.ndarray,
    nmax: int,
    *,
    arrival_order: np.ndarray | None = None,
) -> np.ndarray:
    """One head-blocking fixed-priority simulation; returns start times."""
    submit = _as_f64(submit)
    if arrival_order is None:
        arrival_order = np.argsort(submit, kind="stable")
    return simulate_events(
        submit,
        runtime,
        runtime,
        size,
        nmax,
        static_scores=priority,
        arrival_order=arrival_order,
        score_label="priority",
    ).start


def fixed_priority_batch(
    submit: np.ndarray,
    runtime: np.ndarray,
    size: np.ndarray,
    priorities: np.ndarray,
    nmax: int,
    *,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Simulate many fixed-priority trials over one shared job set.

    *priorities* has shape ``(n_trials, m)``; row ``t`` is the priority
    vector of trial ``t``.  The arrival order (a function of ``submit``
    alone) is computed once and shared across all trials, and the C
    backend reuses one scratch arena for the whole batch — this is the
    training inner loop's fast path.  Returns the ``(n_trials, m)``
    start-time matrix, bit-identical to looping
    :func:`fixed_priority_starts` row by row.
    """
    submit = _as_f64(submit)
    runtime = _as_f64(runtime)
    size = _as_i64(size)
    prios = np.ascontiguousarray(priorities, dtype=np.float64)
    if prios.ndim != 2 or prios.shape[1] != submit.shape[0]:
        raise ValueError("priorities must have shape (n_trials, n_jobs)")
    validate_scores(prios, "priority")
    n_trials, m = prios.shape
    if out is None:
        out = np.empty((n_trials, m), dtype=np.float64)
    if m == 0 or n_trials == 0:
        return out
    arrival_order = np.argsort(submit, kind="stable")
    backend = None if _cbackend.requested_mode() == "python" else _cbackend.load()
    if backend is not None:
        return backend.fixed_batch(
            submit, runtime, size, prios, arrival_order, nmax, out
        )
    for t in range(n_trials):
        res = _simulate_py(
            submit, runtime, runtime, size, nmax, 0, prios[t], None, arrival_order
        )
        out[t] = res.start
    return out


def _simulate_py(
    subs: np.ndarray,
    runs: np.ndarray,
    procs: np.ndarray,
    sizes: np.ndarray,
    nmax: int,
    mode: int,
    static_scores: np.ndarray | None,
    scorer,
    order: np.ndarray,
) -> KernelResult:
    """The pure-Python event loop (dynamic policies and C-less hosts)."""
    from repro.sim.backfill import hybrid_starts
    from repro.sim.cluster import Cluster
    from repro.sim.conservative import conservative_starts

    n = subs.shape[0]
    subs_l = subs.tolist()
    runs_l = runs.tolist()
    procs_l = procs.tolist()
    sizes_l = sizes.tolist()
    order_l = order.tolist()

    start_arr = np.full(n, np.nan)
    backfilled = np.zeros(n, dtype=bool)

    # Running set: preallocated parallel arrays with O(1) swap-removal.
    # Iteration order is never observable (the EASY shadow sorts by
    # (end, size); the availability profile sums per distinct end).
    run_end = np.empty(n, dtype=np.float64)
    run_size = np.empty(n, dtype=np.int64)
    run_job = [0] * n
    run_pos: dict[int, int] = {}
    rn = 0

    # Free/busy cores go through the shared Cluster allocator — the same
    # code path as the per-leaf platform model — so the conservation
    # invariant (free + busy == nmax) is asserted inside the kernel
    # instead of being a drift-prone parallel implementation.
    cluster = Cluster(nmax)
    completions: list[tuple[float, int]] = []
    heappush = heapq.heappush
    heappop = heapq.heappop
    dynamic = scorer is not None
    if dynamic:
        items: list[int] = []
    else:
        scores_l = static_scores.tolist()
        wkeys: list[tuple[float, float, int]] = []
        witems: list[int] = []

    inf = math.inf
    ai = 0
    started_count = 0
    n_events = 0
    n_passes = 0
    now = subs_l[order_l[0]]

    def _start(idx: int, via_bf: bool) -> None:
        nonlocal rn, started_count
        sz = sizes_l[idx]
        cluster.allocate(idx, sz)
        start_arr[idx] = now
        if via_bf:
            backfilled[idx] = True
        heappush(completions, (now + runs_l[idx], idx))
        if mode:
            run_end[rn] = now + procs_l[idx]
            run_size[rn] = sz
            run_job[rn] = idx
            run_pos[idx] = rn
            rn += 1
        started_count += 1

    while started_count < n:
        na = subs_l[order_l[ai]] if ai < n else inf
        nc = completions[0][0] if completions else inf
        et = na if na < nc else nc
        if now < et:
            now = et
        n_events += 1

        while completions and completions[0][0] <= now:
            _, idx = heappop(completions)
            cluster.release(idx)
            if mode:
                p = run_pos.pop(idx)
                last = rn - 1
                if p != last:
                    run_end[p] = run_end[last]
                    run_size[p] = run_size[last]
                    j = run_job[last]
                    run_job[p] = j
                    run_pos[j] = p
                rn = last

        if dynamic:
            while ai < n and subs_l[order_l[ai]] <= now:
                items.append(order_l[ai])
                ai += 1
            if not items:
                continue
        else:
            while ai < n and subs_l[order_l[ai]] <= now:
                i2 = order_l[ai]
                key = (scores_l[i2], subs_l[i2], i2)
                pos = bisect_left(wkeys, key)
                wkeys.insert(pos, key)
                witems.insert(pos, i2)
                ai += 1
            if not witems:
                continue

        # ---- scheduling pass -----------------------------------------
        if mode < 2 and cluster.free == 0:
            # Nothing can start (every job needs >= 1 core) and the EASY
            # pass requires free cores, so skipping is result-identical;
            # this also skips a dynamic rescoring, which is pure win.
            # Replan modes (conservative, hybrid) still run their pass
            # so reservation bookkeeping and pass counts stay defined.
            continue

        if dynamic:
            q = np.fromiter(items, dtype=np.int64, count=len(items))
            sq = subs[q]
            sc = scorer(now, sq, procs[q], sizes[q])
            ord_list = q[np.lexsort((q, sq, sc))].tolist()
        else:
            ord_list = witems

        started: set[int] = set()
        if mode >= 2:
            n_passes += 1
            starter = conservative_starts if mode == 2 else hybrid_starts
            chosen = starter(
                now,
                nmax,
                ord_list,
                [sizes_l[i] for i in ord_list],
                [procs_l[i] for i in ord_list],
                run_end[:rn].tolist(),
                run_size[:rn].tolist(),
            )
            head = ord_list[0]
            for idx in chosen:
                _start(idx, idx != head)
                started.add(idx)
        else:
            pos = 0
            L = len(ord_list)
            while pos < L and sizes_l[ord_list[pos]] <= cluster.free:
                idx = ord_list[pos]
                _start(idx, False)
                started.add(idx)
                pos += 1
            if mode == 1 and pos < L and cluster.free > 0 and L - pos >= 2:
                n_passes += 1
                head_size = sizes_l[ord_list[pos]]
                if rn == 0:
                    raise RuntimeError(
                        "EASY shadow with nothing running: head exceeds nmax"
                    )
                # Vectorised shadow: sort running (clamped end, size)
                # pairs, then the first prefix-sum crossing head_size is
                # the reservation — same arithmetic as
                # repro.sim.backfill.shadow_schedule.
                ends = np.maximum(run_end[:rn], now)
                ordr = np.lexsort((run_size[:rn], ends))
                csum = np.cumsum(run_size[:rn][ordr])
                csum += cluster.free
                k = int(np.searchsorted(csum, head_size, side="left"))
                if k >= rn:
                    raise RuntimeError(
                        "EASY shadow found no feasible reservation"
                    )
                shadow = float(ends[ordr[k]])
                extra = int(csum[k]) - head_size
                for p in range(pos + 1, L):
                    idx = ord_list[p]
                    sz = sizes_l[idx]
                    if sz > cluster.free:
                        continue
                    if now + procs_l[idx] <= shadow + 1e-9:
                        _start(idx, True)
                        started.add(idx)
                    elif sz <= extra:
                        _start(idx, True)
                        started.add(idx)
                        extra -= sz
                    if cluster.free == 0:
                        break

        if started:
            if dynamic:
                items = [i for i in items if i not in started]
            else:
                keep = [
                    (k, i2) for k, i2 in zip(wkeys, witems) if i2 not in started
                ]
                wkeys = [k for k, _ in keep]
                witems = [i2 for _, i2 in keep]

    return KernelResult(start_arr, backfilled, n_events, n_passes)

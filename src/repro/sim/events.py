"""Event calendar for the discrete-event simulator.

A thin, allocation-free wrapper around :mod:`heapq` specialised for the two
event kinds the cluster simulator needs (arrival events are handled by a
pointer into the submit-sorted workload, so only completions live here).
Kept as its own module so the invariants — monotonically non-decreasing pop
times, batch extraction of simultaneous events — are unit-testable in
isolation.

The unified kernel (:mod:`repro.sim.kernel`) inlines a raw ``heapq`` /
C heap with the same pop discipline for speed; this class remains the
documented reference (and is still used by :mod:`repro.sim.hetero`).
"""

from __future__ import annotations

import heapq
import math

__all__ = ["CompletionQueue"]


class CompletionQueue:
    """Min-heap of (finish_time, job_index) completion events."""

    __slots__ = ("_heap", "_last_pop")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int]] = []
        self._last_pop = -math.inf

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, finish: float, job_index: int) -> None:
        """Schedule the completion of *job_index* at time *finish*."""
        if finish < self._last_pop:
            raise ValueError(
                f"completion at {finish} scheduled before current time {self._last_pop}"
            )
        heapq.heappush(self._heap, (finish, job_index))

    def peek_time(self) -> float:
        """Time of the next completion (``inf`` when empty)."""
        return self._heap[0][0] if self._heap else math.inf

    def pop_until(self, time: float) -> list[int]:
        """Pop and return every job completing at or before *time*.

        Pops are returned in (time, index) order, so simultaneous
        completions are processed deterministically.
        """
        out: list[int] = []
        while self._heap and self._heap[0][0] <= time:
            t, idx = heapq.heappop(self._heap)
            self._last_pop = t
            out.append(idx)
        return out

"""Homogeneous cluster resource model — the leaf allocator.

The paper's platform model (§3.1) is a set of ``nmax`` homogeneous cores
behind *any* interconnection topology — i.e. topology never constrains
placement, so the entire resource state is a single free-core counter.
This class enforces the conservation invariant (``free + busy == nmax`` at
all times).

It is the *single* free-core accounting implementation: the unified
kernel's Python event loop (:mod:`repro.sim.kernel`) allocates and
releases through a ``Cluster`` instance, and every
:class:`~repro.sim.platform.Platform` pool — the flat machine, each
topology leaf, each heterogeneous architecture — is one ``Cluster``.
(The C backend transcribes the same counter arithmetic; the parity suite
pins the two bit for bit.)
"""

from __future__ import annotations

from repro.util.validation import check_positive_int

__all__ = ["Cluster"]


class Cluster:
    """Core-counting allocator for an ``nmax``-core homogeneous machine."""

    __slots__ = ("nmax", "_free", "_allocations")

    def __init__(self, nmax: int) -> None:
        self.nmax = check_positive_int("nmax", nmax)
        self._free = self.nmax
        self._allocations: dict[int, int] = {}

    @property
    def free(self) -> int:
        """Number of currently idle cores."""
        return self._free

    @property
    def busy(self) -> int:
        """Number of currently allocated cores."""
        return self.nmax - self._free

    @property
    def running_jobs(self) -> int:
        """Number of jobs currently holding an allocation."""
        return len(self._allocations)

    def fits(self, size: int) -> bool:
        """Whether a job of *size* cores could start right now."""
        return size <= self._free

    def allocate(self, job_key: int, size: int) -> None:
        """Reserve *size* cores for *job_key*.

        Raises on oversubscription or double allocation — these indicate
        scheduler bugs and must never be silently absorbed.
        """
        size = check_positive_int("size", size)
        if size > self.nmax:
            raise ValueError(
                f"job {job_key} wants {size} cores on a {self.nmax}-core machine"
            )
        if size > self._free:
            raise RuntimeError(
                f"oversubscription: job {job_key} wants {size} cores,"
                f" only {self._free} free"
            )
        if job_key in self._allocations:
            raise RuntimeError(f"job {job_key} already holds an allocation")
        self._allocations[job_key] = size
        self._free -= size

    def release(self, job_key: int) -> int:
        """Release the allocation of *job_key*; returns the freed core count."""
        try:
            size = self._allocations.pop(job_key)
        except KeyError:
            raise RuntimeError(f"job {job_key} holds no allocation") from None
        self._free += size
        assert 0 <= self._free <= self.nmax, "conservation violated"
        return size

    def reset(self) -> None:
        """Drop all allocations (fresh simulation)."""
        self._allocations.clear()
        self._free = self.nmax

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Cluster(nmax={self.nmax}, free={self._free}, running={len(self._allocations)})"

"""Heterogeneous-platform scheduling — the paper's future-work prototype.

The conclusion of the paper sketches a second research direction:
platforms "containing processing units with distinct architectures such
as GPUs and MICs, where multiple implementations, aiming a specific
architecture, are available for the same task and the scheduler needs to
select one of these implementations to be executed".

This module is a working prototype of that setting, built on the same
abstractions as the homogeneous engine:

* a :class:`HeteroPlatform` holds one core pool per architecture,
* a :class:`HeteroJob` carries one :class:`Variant` (runtime + resource
  requirement) per architecture it has an implementation for,
* :func:`hetero_simulate` runs the paper's online algorithm where the
  queue is ordered by an ordinary :class:`~repro.policies.base.Policy`
  (scored on each job's *reference* variant) and the dispatcher picks,
  for the queue head, the **earliest-finishing variant that fits now**
  (minimum of ``now + runtime_variant`` over architectures with free
  capacity).

The prototype keeps head-blocking semantics: if no variant of the head
fits, nothing overtakes it (no backfilling), which makes its behaviour
directly comparable with the homogeneous engine's no-backfill mode —
tests assert exact equivalence on single-architecture platforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.sim.events import CompletionQueue
from repro.sim.metrics import DEFAULT_TAU, average_bounded_slowdown, bounded_slowdown
from repro.sim.platform import Platform

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.policies.base import Policy
    from repro.sim.job import Workload

__all__ = [
    "ArchSpec",
    "HeteroJob",
    "HeteroPlatform",
    "HeteroResult",
    "Variant",
    "hetero_simulate",
    "parse_arch_specs",
    "workload_to_hetero_jobs",
]


@dataclass(frozen=True, slots=True)
class ArchSpec:
    """One architecture pool as spelled on the CLI: ``name:cores[:speedup]``.

    *speedup* scales the reference runtime (``runtime / speedup`` on this
    architecture); the first spec in a list is the reference architecture
    (speedup 1.0 by convention — what the submitting user estimated).
    """

    name: str
    cores: int
    speedup: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("architecture name must be non-empty")
        if self.cores < 1:
            raise ValueError(f"arch {self.name!r}: cores must be >= 1")
        if self.speedup <= 0:
            raise ValueError(f"arch {self.name!r}: speedup must be > 0")


def parse_arch_specs(values: tuple[str, ...] | list[str]) -> list[ArchSpec]:
    """Parse ``name:cores[:speedup]`` spellings (e.g. ``cpu:256,gpu:64:8``).

    The first entry is the reference architecture.  Raises
    :class:`ValueError` on malformed entries or duplicate names.
    """
    if not values:
        raise ValueError("need at least one architecture spec")
    specs: list[ArchSpec] = []
    seen: set[str] = set()
    for text in values:
        parts = str(text).split(":")
        if len(parts) not in (2, 3):
            raise ValueError(
                f"bad architecture spec {text!r}; expected name:cores[:speedup]"
            )
        name = parts[0].strip()
        try:
            cores = int(parts[1])
            speedup = float(parts[2]) if len(parts) == 3 else 1.0
        except ValueError:
            raise ValueError(
                f"bad architecture spec {text!r}; expected name:cores[:speedup]"
            ) from None
        if name in seen:
            raise ValueError(f"duplicate architecture name {name!r}")
        seen.add(name)
        specs.append(ArchSpec(name, cores, speedup))
    return specs


@dataclass(frozen=True, slots=True)
class Variant:
    """One implementation of a job for one architecture."""

    runtime: float
    size: int

    def __post_init__(self) -> None:
        if self.runtime <= 0:
            raise ValueError("variant runtime must be > 0")
        if self.size < 1:
            raise ValueError("variant size must be >= 1")


@dataclass(frozen=True)
class HeteroJob:
    """A rigid job with per-architecture implementations.

    ``variants`` maps architecture name (e.g. ``"cpu"``, ``"gpu"``) to a
    :class:`Variant`.  ``reference`` names the variant whose (runtime,
    size) feed the queue-ordering policy — by convention the portable
    CPU implementation, which is what a submitting user estimates.
    """

    job_id: int
    submit: float
    variants: dict[str, Variant]
    reference: str = "cpu"

    def __post_init__(self) -> None:
        if not self.variants:
            raise ValueError(f"job {self.job_id}: needs at least one variant")
        if self.reference not in self.variants:
            raise ValueError(
                f"job {self.job_id}: reference {self.reference!r} has no variant"
            )
        if self.submit < 0:
            raise ValueError(f"job {self.job_id}: submit must be >= 0")

    @property
    def ref(self) -> Variant:
        """The reference variant (policy-visible attributes)."""
        return self.variants[self.reference]


class HeteroPlatform(Platform):
    """A set of named homogeneous pools (one per architecture).

    Pool construction, free-unit lookup and the conservation invariant
    come from the shared :class:`~repro.sim.platform.Platform` base —
    the same per-pool :class:`~repro.sim.cluster.Cluster` accounting the
    partitioned platform's leaves use.
    """

    def validate(self, jobs: list[HeteroJob]) -> None:
        """Every job must have >= 1 variant that can ever run."""
        for job in jobs:
            runnable = [
                a
                for a, v in job.variants.items()
                if a in self.pools and v.size <= self.pools[a].nmax
            ]
            if not runnable:
                raise ValueError(
                    f"job {job.job_id}: no variant fits any pool"
                    f" (variants: {sorted(job.variants)})"
                )


@dataclass(frozen=True)
class HeteroResult:
    """Outcome of a heterogeneous simulation."""

    jobs: list[HeteroJob]
    start: np.ndarray
    chosen_arch: list[str]
    policy_name: str
    tau: float = DEFAULT_TAU
    #: per-architecture dispatch counts
    dispatch_counts: dict[str, int] = field(default_factory=dict)

    @property
    def executed_runtime(self) -> np.ndarray:
        """Runtime of the variant each job actually executed."""
        return np.array(
            [job.variants[a].runtime for job, a in zip(self.jobs, self.chosen_arch)]
        )

    @property
    def wait(self) -> np.ndarray:
        """Per-job waiting times."""
        return self.start - np.array([j.submit for j in self.jobs])

    def bsld(self) -> np.ndarray:
        """Bounded slowdown per job, on the executed variant's runtime."""
        return bounded_slowdown(self.wait, self.executed_runtime, self.tau)

    @property
    def ave_bsld(self) -> float:
        """Average bounded slowdown (Eq. 2) over all jobs."""
        return average_bounded_slowdown(self.wait, self.executed_runtime, self.tau)


def _best_variant_now(
    job: HeteroJob, platform: HeteroPlatform, now: float
) -> str | None:
    """Earliest-finishing variant that fits right now (None if none)."""
    best: tuple[float, str] | None = None
    for arch in sorted(job.variants):
        if arch not in platform.pools:
            continue
        variant = job.variants[arch]
        if platform.pools[arch].fits(variant.size):
            key = (now + variant.runtime, arch)
            if best is None or key < best:
                best = key
    return best[1] if best else None


def _could_ever_fit_on_idle(job: HeteroJob, platform: HeteroPlatform) -> bool:
    """Whether some variant fits on a fully idle machine."""
    return any(
        arch in platform.pools and v.size <= platform.pools[arch].nmax
        for arch, v in job.variants.items()
    )


def hetero_simulate(
    jobs: list[HeteroJob],
    policy: "Policy",
    platform: HeteroPlatform,
    *,
    tau: float = DEFAULT_TAU,
) -> HeteroResult:
    """Online scheduling over a heterogeneous platform.

    Queue order: *policy* scores each job's reference variant
    ``(submit, runtime_ref, size_ref)``; lower runs first.  Dispatch: the
    queue head takes the earliest-finishing variant that fits now; if no
    variant fits, the head blocks (no overtaking).
    """
    platform.validate(jobs)
    n = len(jobs)
    start = np.full(n, np.nan)
    chosen: list[str] = [""] * n
    dispatch: dict[str, int] = {a: 0 for a in platform.pools}
    if n == 0:
        return HeteroResult(jobs, start, chosen, policy.name, tau, dispatch)

    order = sorted(range(n), key=lambda i: (jobs[i].submit, i))
    submits = np.array([j.submit for j in jobs])
    ref_runtime = np.array([j.ref.runtime for j in jobs])
    ref_size = np.array([float(j.ref.size) for j in jobs])

    completions = CompletionQueue()
    arch_of_running: dict[int, str] = {}
    queue: list[int] = []
    ai = 0
    started = 0
    now = jobs[order[0]].submit

    def schedule_pass(at: float) -> None:
        nonlocal started
        while queue:
            q = np.asarray(queue)
            scores = policy.scores(at, submits[q], ref_runtime[q], ref_size[q])
            ranked = [int(q[i]) for i in np.lexsort((q, submits[q], scores))]
            head = ranked[0]
            arch = _best_variant_now(jobs[head], platform, at)
            if arch is None:
                return  # head blocks
            variant = jobs[head].variants[arch]
            platform.pools[arch].allocate(head, variant.size)
            arch_of_running[head] = arch
            start[head] = at
            chosen[head] = arch
            dispatch[arch] += 1
            completions.push(at + variant.runtime, head)
            queue.remove(head)
            started += 1

    while started < n:
        next_arrival = jobs[order[ai]].submit if ai < n else np.inf
        next_completion = completions.peek_time()
        if not queue and not arch_of_running:
            event_time = next_arrival
        else:
            event_time = min(next_arrival, next_completion)
        now = max(now, event_time)

        for idx in completions.pop_until(now):
            platform.pools[arch_of_running.pop(idx)].release(idx)
        while ai < n and jobs[order[ai]].submit <= now:
            queue.append(order[ai])
            ai += 1
        schedule_pass(now)

    return HeteroResult(jobs, start, chosen, policy.name, tau, dispatch)


def workload_to_hetero_jobs(
    workload: "Workload", archs: list[ArchSpec]
) -> list[HeteroJob]:
    """Lift a homogeneous :class:`~repro.sim.job.Workload` onto *archs*.

    The first spec is the reference architecture: its variant carries the
    workload's own (runtime, size).  Every other architecture gets a
    variant with ``runtime / speedup`` for jobs that fit its pool — jobs
    too large for a pool simply have no variant there (and
    :meth:`HeteroPlatform.validate` rejects jobs that fit nowhere).
    """
    if not archs:
        raise ValueError("need at least one architecture spec")
    reference = archs[0]
    jobs: list[HeteroJob] = []
    for i in range(len(workload)):
        submit = float(workload.submit[i])
        runtime = float(workload.runtime[i])
        size = int(workload.size[i])
        variants = {
            arch.name: Variant(runtime / arch.speedup, size)
            for arch in archs
            if size <= arch.cores
        }
        if reference.name not in variants:
            raise ValueError(
                f"job {i} wants {size} cores but the reference architecture"
                f" {reference.name!r} has only {reference.cores}"
            )
        jobs.append(HeteroJob(i, submit, variants, reference=reference.name))
    return jobs

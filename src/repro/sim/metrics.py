"""Scheduling metrics.

Implements the paper's objective function — the bounded slowdown of Eq. (1)
and its average over a task sequence, Eq. (2) — plus the auxiliary
quantities (waits, utilization, makespan) used in tests and ablations.

All functions are vectorized over numpy arrays and pure: they take
schedule outcomes as plain arrays so they can score results from either
the online engine or the fixed-priority trial simulator.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive

__all__ = [
    "DEFAULT_TAU",
    "bounded_slowdown",
    "average_bounded_slowdown",
    "waiting_times",
    "utilization",
    "makespan",
    "per_job_flow",
]

#: The paper uses ``tau = 10 s`` to stop tiny jobs from dominating slowdowns.
DEFAULT_TAU = 10.0


def waiting_times(submit: np.ndarray, start: np.ndarray) -> np.ndarray:
    """Per-job waiting time :math:`w_t = start_t - s_t` (validated >= 0)."""
    submit = np.asarray(submit, dtype=float)
    start = np.asarray(start, dtype=float)
    wait = start - submit
    if wait.size and float(wait.min()) < -1e-9:
        bad = int(np.argmin(wait))
        raise ValueError(
            f"negative wait at job index {bad}: start={start[bad]} < submit={submit[bad]}"
        )
    return np.maximum(wait, 0.0)


def bounded_slowdown(
    wait: np.ndarray, runtime: np.ndarray, tau: float = DEFAULT_TAU
) -> np.ndarray:
    """Eq. (1): ``max((w + r) / max(r, tau), 1)`` per job."""
    tau = check_positive("tau", tau)
    wait = np.asarray(wait, dtype=float)
    runtime = np.asarray(runtime, dtype=float)
    return np.maximum((wait + runtime) / np.maximum(runtime, tau), 1.0)


def average_bounded_slowdown(
    wait: np.ndarray, runtime: np.ndarray, tau: float = DEFAULT_TAU
) -> float:
    """Eq. (2): the mean of Eq. (1) over a task sequence."""
    wait = np.asarray(wait, dtype=float)
    if wait.size == 0:
        raise ValueError("average bounded slowdown of an empty sequence is undefined")
    return float(bounded_slowdown(wait, runtime, tau).mean())


def makespan(start: np.ndarray, runtime: np.ndarray) -> float:
    """Completion time of the last job (0 for empty schedules)."""
    start = np.asarray(start, dtype=float)
    if start.size == 0:
        return 0.0
    return float(np.max(start + np.asarray(runtime, dtype=float)))


def utilization(
    start: np.ndarray,
    runtime: np.ndarray,
    size: np.ndarray,
    nmax: int,
    *,
    horizon: float | None = None,
) -> float:
    """Delivered utilization: consumed core-seconds over machine capacity.

    *horizon* defaults to the schedule makespan measured from t=0.
    """
    start = np.asarray(start, dtype=float)
    runtime = np.asarray(runtime, dtype=float)
    size = np.asarray(size, dtype=float)
    if start.size == 0:
        return 0.0
    if horizon is None:
        horizon = makespan(start, runtime)
    if horizon <= 0:
        raise ValueError("horizon must be > 0")
    return float(np.sum(runtime * size) / (nmax * horizon))


def per_job_flow(submit: np.ndarray, start: np.ndarray, runtime: np.ndarray) -> np.ndarray:
    """Flow (turnaround) time per job: wait + runtime."""
    return waiting_times(submit, start) + np.asarray(runtime, dtype=float)

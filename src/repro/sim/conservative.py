"""Conservative backfilling (Mu'alem & Feitelson, 2001 — the strict variant).

EASY (``repro.sim.backfill``) reserves only for the queue head;
*conservative* backfilling gives **every** queued job a reservation, and a
job may jump the queue only if it delays none of them.  The paper
evaluates EASY (its production target — SLURM et al.), but conservative
backfilling is the standard strictness ablation, so the library ships it
as an engine mode (``backfill="conservative"``) with its own bench.

Implementation: a replan-from-scratch pass.  At every scheduling event an
:class:`AvailabilityProfile` is built from the running jobs' expected
completions; queued jobs, in priority order, each reserve the earliest
slot that fits them for their whole (requested) duration.  Jobs whose
reservation begins *now* start immediately — that includes both the queue
head and any backfill candidate that slots into a hole without moving an
earlier reservation (earlier-priority jobs reserved first, so later
reservations can never displace them).

:func:`conservative_starts` is called per event by the unified kernel's
Python path (:mod:`repro.sim.kernel`); the C backend carries a literal
transcription of the same profile arithmetic, epsilon for epsilon, so
both backends reproduce these semantics bit for bit.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

__all__ = ["AvailabilityProfile", "conservative_starts"]


class AvailabilityProfile:
    """Piecewise-constant future availability of a cluster.

    Maintains breakpoints ``(time, free_cores)`` with the convention that
    ``free(t) = level of the last breakpoint <= t``; the profile extends
    to infinity at full capacity after the final running job completes.
    """

    __slots__ = ("nmax", "_times", "_free")

    def __init__(
        self,
        now: float,
        nmax: int,
        running_end: Sequence[float],
        running_size: Sequence[int],
    ) -> None:
        if len(running_end) != len(running_size):
            raise ValueError("running_end and running_size must share a length")
        self.nmax = nmax
        events: dict[float, int] = {}
        used_now = 0
        for end, size in zip(running_end, running_size):
            end = max(float(end), now)
            used_now += int(size)
            events[end] = events.get(end, 0) + int(size)
        if used_now > nmax:
            raise ValueError(f"running jobs use {used_now} > nmax={nmax} cores")
        self._times = [now]
        self._free = [nmax - used_now]
        level = nmax - used_now
        for t in sorted(events):
            level += events[t]
            self._times.append(t)
            self._free.append(level)

    def free_at(self, t: float) -> int:
        """Free cores at time *t* (t >= profile start)."""
        if t < self._times[0] - 1e-9:
            raise ValueError("cannot query the past")
        # linear scan is fine: profiles hold O(running + reserved) points
        free = self._free[0]
        for time, level in zip(self._times, self._free):
            if time > t + 1e-12:
                break
            free = level
        return free

    def earliest_start(self, size: int, duration: float) -> float:
        """Earliest t with >= *size* cores free during [t, t + duration)."""
        if size > self.nmax:
            raise ValueError(f"job of {size} cores never fits in {self.nmax}")
        n = len(self._times)
        for i in range(n):
            if self._free[i] < size:
                continue
            t0 = self._times[i]
            end = t0 + duration
            feasible = True
            for j in range(i + 1, n):
                if self._times[j] >= end - 1e-12:
                    break
                if self._free[j] < size:
                    feasible = False
                    break
            if feasible:
                return t0
        # after the last breakpoint the machine is fully free
        return self._times[-1]

    def reserve(self, start: float, duration: float, size: int) -> None:
        """Subtract *size* cores over [start, start + duration)."""
        end = start + duration
        self._ensure_breakpoint(start)
        self._ensure_breakpoint(end)
        # *start* is always one of the profile's own breakpoints
        # (earliest_start returns profile times, and _ensure_breakpoint
        # above guarantees one within tolerance).  Decrement from that
        # exact breakpoint forward: an epsilon lower bound could also
        # catch a distinct breakpoint within 1e-12 *before* start — one
        # earliest_start never vetted — and spuriously oversubscribe.
        start_i = None
        for i, t in enumerate(self._times):
            if t == start:
                start_i = i
                break
        if start_i is None:  # pragma: no cover - tolerance fallback
            for i, t in enumerate(self._times):
                if abs(t - start) <= 1e-12:
                    start_i = i
                    break
        for i in range(start_i, len(self._times)):
            t = self._times[i]
            if t >= end - 1e-12:
                break
            self._free[i] -= size
            if self._free[i] < -1e-9:
                raise RuntimeError(
                    f"reservation oversubscribes the profile at t={t}"
                )

    def _ensure_breakpoint(self, t: float) -> None:
        if t == math.inf:
            return
        for i, existing in enumerate(self._times):
            if abs(existing - t) <= 1e-12:
                return
            if existing > t:
                self._times.insert(i, t)
                self._free.insert(i, self._free[i - 1])
                return
        self._times.append(t)
        self._free.append(self.nmax)


def conservative_starts(
    now: float,
    nmax: int,
    queue: Sequence[int],
    q_size: Sequence[int],
    q_proc: Sequence[float],
    running_end: Sequence[float],
    running_size: Sequence[int],
) -> list[int]:
    """Jobs (indices into *queue* order) that start now under conservative
    backfilling.

    *queue* lists job identifiers in priority order; ``q_size``/``q_proc``
    align with it.  Every queued job receives a reservation at its
    earliest feasible slot given all earlier-priority reservations; the
    returned identifiers are those whose slot begins at *now*.
    """
    profile = AvailabilityProfile(now, nmax, running_end, running_size)
    started: list[int] = []
    for ident, size, proc in zip(queue, q_size, q_proc):
        size = int(size)
        proc = max(float(proc), 1e-9)
        t = profile.earliest_start(size, proc)
        profile.reserve(t, proc, size)
        # exact: a starts-now reservation sits at the `now` breakpoint
        # itself.  Any slot strictly after now — however close — is
        # behind a release event that has not happened yet, so starting
        # such a job would oversubscribe the actual free cores.
        if t == now:
            started.append(ident)
    return started

"""Pluggable platform models: flat, topology-partitioned, heterogeneous.

The paper's platform model (§3.1) is deliberately flat — ``nmax``
homogeneous cores where the interconnection topology never constrains
placement — and its conclusion names partitioned/heterogeneous platforms
as the open research direction.  This module makes the resource model a
first-class abstraction so the evaluation matrix can sweep it:

* :class:`FlatPlatform` — the paper's machine.  One :class:`Cluster`
  pool; the engine keeps its original bare kernel invocation for this
  case, so flat runs stay **bit-identical** to the pre-platform code
  path (including ``REPRO_SIM_KERNEL`` C-backend eligibility).  The CI
  topology-smoke job byte-compares the two.
* :class:`PartitionedPlatform` — a topology tuple (e.g. ``(2, 4)`` → 8
  leaves) splits ``nmax`` cores into equal leaves; each leaf runs its
  own scheduler instance (one kernel event loop per leaf) over the jobs
  a *distribution strategy* assigned to it, and
  :func:`simulate_partitioned` merges the per-leaf completion streams
  back into one global result.
* :class:`~repro.sim.hetero.HeteroPlatform` — named per-architecture
  pools, rebased onto the same :class:`Platform` base.

Distribution strategies (:data:`DISTRIBUTIONS`) are deterministic given
the spec: ``round_robin`` deals jobs to leaves in arrival order,
``by_size`` greedily assigns each arrival to the least-loaded leaf by
requested work (``size * proc``, ties to the lowest leaf index), and
``random`` draws leaf indices from a named :class:`~repro.util.rng.RngFactory`
stream, so the assignment depends only on ``(seed, n_jobs, n_leaves)``.

Equivalence note: job→leaf assignment is decided at distribution time
and leaves share no cores, so simulating the leaves independently and
merging by original job index is exactly the interleaved cross-leaf
event loop — a leaf's events never influence another leaf's schedule.
A product-1 topology (``(1,)``, ``(1, 1)``) therefore reproduces the
flat kernel byte for byte (pinned by ``tests/test_sim_platform.py``),
which is why :func:`platform_identity` canonicalises it to the flat
fingerprint: existing caches and spec fingerprints stay valid.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, NamedTuple

import numpy as np

from repro.sim.cluster import Cluster
from repro.sim.kernel import KernelResult, simulate_events
from repro.util.rng import RngFactory

__all__ = [
    "DISTRIBUTIONS",
    "FlatPlatform",
    "PartitionedPlatform",
    "PartitionedOutcome",
    "Platform",
    "distribute_jobs",
    "normalize_distribution",
    "normalize_topology",
    "platform_identity",
    "simulate_partitioned",
    "topology_label",
]

#: Job→leaf distribution strategies accepted by partitioned platforms.
DISTRIBUTIONS = ("round_robin", "by_size", "random")

#: Name of the :class:`~repro.util.rng.RngFactory` stream that the
#: ``random`` distribution draws leaf indices from.
RANDOM_STREAM = "platform.distribute"


def normalize_topology(value) -> tuple[int, ...] | None:
    """Canonicalise a topology spelling.

    ``None`` and the empty tuple mean *flat* (the paper's machine) and
    return ``None``; an integer becomes a one-level tuple; any other
    value must be an iterable of positive integers (each level's fanout,
    following the ``stmobo/scheduling`` exemplar where the leaf count is
    the product over levels).
    """
    if value is None:
        return None
    if isinstance(value, (int, np.integer)):
        value = (int(value),)
    try:
        topo = tuple(int(v) for v in value)
    except TypeError:
        raise ValueError(
            f"topology must be None, an int or a tuple of ints, got {value!r}"
        ) from None
    if not topo:
        return None
    if any(v < 1 for v in topo):
        raise ValueError(f"topology levels must be >= 1, got {topo}")
    return topo


def normalize_distribution(value: str | None) -> str:
    """Canonicalise a distribution-strategy name (default ``round_robin``)."""
    if value is None:
        return "round_robin"
    if value not in DISTRIBUTIONS:
        raise ValueError(
            f"unknown distribution {value!r}; choose from {DISTRIBUTIONS}"
        )
    return value


def topology_label(topology: tuple[int, ...]) -> str:
    """Human/CLI spelling of a topology tuple: ``(2, 4)`` -> ``"2x4"``."""
    return "x".join(str(v) for v in topology)


def platform_identity(
    topology, distribution: str | None = None, seed: int | None = None
) -> dict | None:
    """Result-relevant platform identity, or ``None`` when flat.

    This is the payload that enters spec fingerprints, cache cell keys
    and report config blocks.  Flat platforms — and product-1
    topologies, which are provably byte-identical to flat — return
    ``None`` so every pre-platform fingerprint and cache entry remains
    valid.  The seed participates only under the ``random`` strategy
    (the only one whose assignment depends on it).
    """
    topo = normalize_topology(topology)
    if topo is None or math.prod(topo) == 1:
        return None
    dist = normalize_distribution(distribution)
    doc: dict = {"topology": list(topo), "distribution": dist}
    if dist == "random":
        doc["seed"] = int(seed or 0)
    return doc


class Platform:
    """Base resource model: one named :class:`Cluster` pool per leaf.

    Subclasses decide the pool layout (a single pool, equal topology
    leaves, per-architecture pools); this base owns the shared
    accounting surface — pool lookup, total capacity and the
    conservation invariant each :class:`Cluster` enforces.
    """

    def __init__(self, pools: dict[str, int]) -> None:
        if not pools:
            raise ValueError("platform needs at least one pool")
        self.pools = {name: Cluster(n) for name, n in pools.items()}

    @property
    def total_cores(self) -> int:
        """Capacity summed over every pool."""
        return sum(c.nmax for c in sorted_pools(self.pools))

    def free(self, name: str) -> int:
        """Idle units in pool *name*."""
        return self.pools[name].free

    def reset(self) -> None:
        """Drop all allocations in every pool (fresh simulation)."""
        for cluster in sorted_pools(self.pools):
            cluster.reset()

    @property
    def is_partitioned(self) -> bool:
        """Whether placement is constrained to per-leaf sub-machines."""
        return len(self.pools) > 1


def sorted_pools(pools: dict[str, Cluster]) -> list[Cluster]:
    """Pools in deterministic (name-sorted) order."""
    return [pools[name] for name in sorted(pools)]


class FlatPlatform(Platform):
    """The paper's machine: one pool of ``nmax`` interchangeable cores.

    Contract: the engine simulates flat platforms through the original
    kernel invocation (one ``simulate_events`` call over the whole
    workload), so results are bit-identical to the pre-platform code and
    static-score runs keep their C-backend eligibility.
    """

    def __init__(self, nmax: int) -> None:
        super().__init__({"0": nmax})
        self.nmax = nmax
        self.topology: tuple[int, ...] | None = None
        self.n_leaves = 1
        self.leaf_cores = nmax


class PartitionedPlatform(Platform):
    """``nmax`` cores split into equal leaves by a topology tuple.

    ``topology=(2, 4)`` builds a two-level tree with ``2 * 4 = 8``
    leaves; ``nmax`` must divide evenly across them (the exemplar's
    constraint) and every job must fit inside one leaf.  Leaf labels are
    the dot-joined tree paths (``"0.0" .. "1.3"``), ordered by path.
    """

    def __init__(self, nmax: int, topology) -> None:
        topo = normalize_topology(topology)
        if topo is None:
            raise ValueError("PartitionedPlatform needs a topology; use FlatPlatform")
        n_leaves = math.prod(topo)
        leaf_cores, remainder = divmod(nmax, n_leaves)
        if remainder != 0:
            raise ValueError(
                f"nmax={nmax} does not divide evenly over the"
                f" {n_leaves} leaves of topology {topology_label(topo)}"
            )
        if leaf_cores < 1:
            raise ValueError(
                f"topology {topology_label(topo)} leaves no cores per leaf"
                f" (nmax={nmax})"
            )
        labels = [
            ".".join(str(i) for i in path)
            for path in itertools.product(*(range(v) for v in topo))
        ]
        super().__init__({label: leaf_cores for label in labels})
        self.nmax = nmax
        self.topology = topo
        self.n_leaves = n_leaves
        self.leaf_cores = leaf_cores
        self.leaf_labels = tuple(labels)

    def validate_sizes(self, size: np.ndarray) -> None:
        """Every job must fit inside one leaf (leaves are the placement unit)."""
        size = np.asarray(size)
        if size.size and int(size.max()) > self.leaf_cores:
            idx = int(np.argmax(size))
            raise ValueError(
                f"job {idx} wants {int(size[idx])} cores but topology"
                f" {topology_label(self.topology)} leaves have only"
                f" {self.leaf_cores} ({self.nmax} cores / {self.n_leaves} leaves)"
            )


def distribute_jobs(
    platform: PartitionedPlatform,
    submit: np.ndarray,
    proc: np.ndarray,
    size: np.ndarray,
    *,
    distribution: str = "round_robin",
    seed: int = 0,
) -> np.ndarray:
    """Assign every job to a leaf; returns an ``int64`` leaf index per job.

    All strategies work in arrival order (``(submit, index)``), so the
    assignment is a pure function of the workload, the strategy and —
    for ``random`` only — the seed.  Strategies never look at simulated
    state: assignment happens *before* the event loops run, which is
    what makes per-leaf simulation order-independent and parallel-safe.
    """
    distribution = normalize_distribution(distribution)
    platform.validate_sizes(size)
    n = int(np.asarray(submit).shape[0])
    n_leaves = platform.n_leaves
    assign = np.empty(n, dtype=np.int64)
    if n == 0:
        return assign
    order = np.argsort(np.asarray(submit, dtype=np.float64), kind="stable")
    if distribution == "round_robin":
        assign[order] = np.arange(n, dtype=np.int64) % n_leaves
    elif distribution == "by_size":
        # Greedy least-loaded by requested work (size * proc); ties go
        # to the lowest leaf index, so the result is deterministic.
        load = [0.0] * n_leaves
        work = (
            np.asarray(size, dtype=np.float64) * np.asarray(proc, dtype=np.float64)
        ).tolist()
        for idx in order.tolist():
            leaf = min(range(n_leaves), key=lambda k: (load[k], k))
            assign[idx] = leaf
            load[leaf] += work[idx]
    else:  # random
        rng = RngFactory(seed).get(RANDOM_STREAM)
        assign[order] = rng.integers(0, n_leaves, size=n, dtype=np.int64)
    return assign


class PartitionedOutcome(NamedTuple):
    """Merged result of one partitioned simulation.

    Field names mirror :class:`~repro.sim.kernel.KernelResult` (plus the
    per-job ``leaf`` assignment) so the engine's telemetry and
    result-wrapping code handles both shapes uniformly.
    """

    start: np.ndarray
    backfilled: np.ndarray
    n_events: int
    n_backfill_passes: int
    leaf: np.ndarray


def simulate_partitioned(
    platform: PartitionedPlatform,
    submit: np.ndarray,
    runtime: np.ndarray,
    proc: np.ndarray,
    size: np.ndarray,
    *,
    static_scores: np.ndarray | None = None,
    scorer: Callable | None = None,
    backfill: str | None = None,
    distribution: str = "round_robin",
    seed: int = 0,
) -> PartitionedOutcome:
    """Run one per-leaf scheduler instance per topology leaf and merge.

    Each leaf receives its assigned job subset and runs the unified
    kernel (:func:`~repro.sim.kernel.simulate_events`) against
    ``leaf_cores``; per-leaf static-score runs keep the C-backend fast
    path.  Start times and backfill flags are scattered back to the
    original job indices, and event/pass counters are summed — the
    cross-leaf completion-event merge (see the module docstring for why
    this is exactly the interleaved loop).
    """
    submit = np.ascontiguousarray(submit, dtype=np.float64)
    runtime = np.ascontiguousarray(runtime, dtype=np.float64)
    proc = np.ascontiguousarray(proc, dtype=np.float64)
    size = np.ascontiguousarray(size, dtype=np.int64)
    assign = distribute_jobs(
        platform, submit, proc, size, distribution=distribution, seed=seed
    )
    n = submit.shape[0]
    start = np.full(n, np.nan)
    backfilled = np.zeros(n, dtype=bool)
    n_events = 0
    n_passes = 0
    for leaf in range(platform.n_leaves):
        idx = np.flatnonzero(assign == leaf)
        if idx.size == 0:
            continue
        result: KernelResult = simulate_events(
            submit[idx],
            runtime[idx],
            proc[idx],
            size[idx],
            platform.leaf_cores,
            static_scores=None if static_scores is None else static_scores[idx],
            scorer=scorer,
            backfill=backfill,
        )
        start[idx] = result.start
        backfilled[idx] = result.backfilled
        n_events += result.n_events
        n_passes += result.n_backfill_passes
    return PartitionedOutcome(start, backfilled, n_events, n_passes, assign)

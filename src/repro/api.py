"""repro.api — one entry point that executes any experiment spec.

:func:`run` is the facade over the whole library: give it any
:class:`~repro.specs.Spec` (built in Python, from CLI flags, or loaded
from a TOML/JSON file via :func:`~repro.specs.load_spec` /
:func:`run_file`) and it dispatches to the matching subsystem:

========== ===================================================== =====================
spec kind  executed by                                           returns
========== ===================================================== =====================
train      :func:`repro.core.pipeline.obtain_policies`           ``PipelineResult``
simulate   :func:`repro.sim.engine.simulate` (content-cached)    :class:`SimulateReport`
evaluate   :func:`repro.eval.matrix.run_matrix`                  ``MatrixResult``
table4     :func:`repro.experiments.table4.run_rows`             ``list[DynamicExperimentResult]``
sweep      :func:`run` per expanded child, shared cache          :class:`SweepResult`
========== ===================================================== =====================

``workers``, ``backend``, ``cache`` and ``progress`` are *execution*
arguments, not spec fields: they cannot change any result (the runtime's
bit-identical contract) and therefore never enter a fingerprint.  Passing ``cache``
reuses every content-addressed artifact the specs describe — training
distributions, evaluation cells, single simulations — so re-running a
spec (or growing a sweep grid by one axis value) only simulates what
was never simulated before.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.core.pipeline import PipelineResult, obtain_policies
from repro.eval.matrix import MatrixConfig, MatrixResult, run_matrix
from repro.eval.windows import Window, stream_windows, workload_fingerprint
from repro.experiments.table4 import run_rows
from repro.policies.registry import get_policy
from repro.runtime.cache import ArtifactCache, coerce_cache
from repro.runtime.config import resolve_backend
from repro.sim.engine import simulate
from repro.sim.hetero import (
    HeteroPlatform,
    hetero_simulate,
    parse_arch_specs,
    workload_to_hetero_jobs,
)
from repro.sim.job import Workload
from repro.sim.metrics import makespan as schedule_makespan
from repro.sim.metrics import utilization as schedule_utilization
from repro.sim.platform import platform_identity, topology_label
from repro.specs import (
    EvaluateSpec,
    SimulateSpec,
    Spec,
    SpecError,
    SweepSpec,
    Table4Spec,
    TrainSpec,
    load_spec,
    simulate_cell_fingerprint,
)
from repro.specs.fingerprint import SIMULATE_CELL_FORMAT
from repro.traces import resolve_trace_ref
from repro.workloads.swf import SwfStream, read_swf
from repro.workloads.traces import synthetic_trace

__all__ = [
    "SimulateReport",
    "SweepCell",
    "SweepResult",
    "run",
    "run_file",
]

ProgressFn = Callable[[str, int, int], None]


# ----------------------------------------------------------------------
# result types owned by the facade
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SimulateReport:
    """Metrics of one whole-workload simulation (cache-roundtrippable).

    Unlike :class:`repro.sim.ScheduleResult` this carries only the
    headline metrics, so a cache hit can reproduce it without re-running
    the engine; use :func:`repro.simulate` directly when the full
    per-job schedule is needed.
    """

    policy: str
    backfill: str
    n_jobs: int
    nmax: int
    ave_bsld: float
    makespan: float
    utilization: float
    backfilled: int
    #: Platform label for non-flat runs (e.g. ``"topology=2x4
    #: distribution=round_robin"``); ``None`` on the paper's flat machine,
    #: so flat report lines and cache entries are byte-identical to the
    #: pre-platform library.
    platform: str | None = None
    cached: bool = False

    def line(self) -> str:
        """The one-line summary the CLI prints."""
        text = (
            f"policy={self.policy} jobs={self.n_jobs} nmax={self.nmax} "
            f"AVEbsld={self.ave_bsld:.2f} makespan={self.makespan:.0f}s "
            f"util={self.utilization:.3f} backfilled={self.backfilled}"
        )
        if self.platform is not None:
            text += f" {self.platform}"
        return text

    def to_entry(self) -> dict:
        """JSON-cacheable representation (format-versioned)."""
        entry = {
            "format": SIMULATE_CELL_FORMAT,
            "policy": self.policy,
            "backfill": self.backfill,
            "n_jobs": self.n_jobs,
            "nmax": self.nmax,
            "ave_bsld": self.ave_bsld,
            "makespan": self.makespan,
            "utilization": self.utilization,
            "backfilled": self.backfilled,
        }
        if self.platform is not None:
            entry["platform"] = self.platform
        return entry

    @classmethod
    def from_entry(cls, entry: object) -> "SimulateReport | None":
        """Decode a cache entry; ``None`` for foreign/stale formats."""
        if not isinstance(entry, dict) or entry.get("format") != SIMULATE_CELL_FORMAT:
            return None
        try:
            return cls(
                policy=str(entry["policy"]),
                backfill=str(entry["backfill"]),
                n_jobs=int(entry["n_jobs"]),
                nmax=int(entry["nmax"]),
                ave_bsld=float(entry["ave_bsld"]),
                makespan=float(entry["makespan"]),
                utilization=float(entry["utilization"]),
                backfilled=int(entry["backfilled"]),
                platform=(
                    str(entry["platform"]) if entry.get("platform") is not None else None
                ),
                cached=True,
            )
        except (KeyError, TypeError, ValueError):
            return None


@dataclass(frozen=True)
class SweepCell:
    """One grid point of a sweep: its spec, result and cache accounting."""

    overrides: tuple[tuple[str, Any], ...]
    spec: Spec
    fingerprint: str
    result: Any
    n_simulated: int
    n_cached: int

    def label(self) -> str:
        """``axis=value`` labels of this grid point."""
        return " ".join(f"{k}={_axis_value(v)}" for k, v in self.overrides)


@dataclass(frozen=True)
class SweepResult:
    """All grid points of one executed sweep."""

    spec: SweepSpec
    cells: tuple[SweepCell, ...]

    @property
    def n_simulated(self) -> int:
        """Artifacts simulated across the whole grid."""
        return sum(c.n_simulated for c in self.cells)

    @property
    def n_cached(self) -> int:
        """Artifacts served from cache across the whole grid."""
        return sum(c.n_cached for c in self.cells)

    def summary_table(self) -> str:
        """Terminal rendering: one line per grid point, then totals."""
        lines = [
            f"sweep over {len(self.spec.grid)}"
            f" {'axis' if len(self.spec.grid) == 1 else 'axes'}"
            f" ({' × '.join(name for name, _ in self.spec.grid)}):"
            f" {len(self.cells)} {self.spec.base.kind} spec(s)"
        ]
        for cell in self.cells:
            lines.append(
                f"  {cell.label()} | simulated {cell.n_simulated},"
                f" cached {cell.n_cached} | {_headline(cell.result)}"
            )
        lines.append(
            f"sweep totals: simulated {self.n_simulated}, cached {self.n_cached}"
        )
        return "\n".join(lines)

    def summary_csv(self) -> str:
        """One CSV row per grid point (axes + accounting + headline)."""
        axes = [name for name, _ in self.spec.grid]
        lines = [
            ",".join(axes + ["fingerprint", "n_simulated", "n_cached", "headline"])
        ]
        for cell in self.cells:
            values = dict(cell.overrides)
            lines.append(
                ",".join(
                    [_axis_value(values[a]) for a in axes]
                    + [
                        cell.fingerprint,
                        str(cell.n_simulated),
                        str(cell.n_cached),
                        _headline(cell.result),
                    ]
                )
            )
        return "\n".join(lines) + "\n"


def _axis_value(value: Any) -> str:
    if isinstance(value, tuple):
        if value and all(isinstance(v, int) for v in value):
            # topology tuples: match the CLI spelling ("2x4")
            return topology_label(value)
        return "+".join(str(v) for v in value)
    return str(value)


def _headline(result: Any) -> str:
    """One-phrase summary of a child result for sweep tables."""
    if isinstance(result, MatrixResult):
        return f"windows={result.n_windows} best={result.best()}"
    if isinstance(result, PipelineResult):
        return f"best={result.best.describe()}"
    if isinstance(result, SimulateReport):
        return f"AVEbsld={result.ave_bsld:.2f}"
    if isinstance(result, list):
        return f"rows={len(result)}"
    return type(result).__name__


# ----------------------------------------------------------------------
# per-kind runners
# ----------------------------------------------------------------------
def _run_train(
    spec: TrainSpec,
    *,
    workers: int | str,
    backend: str,
    cache: ArtifactCache | None,
    progress: ProgressFn | None,
) -> PipelineResult:
    return obtain_policies(
        spec.to_pipeline_config(),
        progress,
        workers=workers,
        backend=backend,
        cache=cache,
    )


def _swf_nmax_or_raise(spec_nmax: int | None, wl: Workload, path: str) -> int:
    """The effective machine size of an SWF replay, failing clearly.

    Raw PWA files occasionally lack the ``MaxProcs`` header the
    "default --nmax to the trace's machine size" path relies on; name
    the missing header and the override instead of simulating against a
    zero-core machine.
    """
    nmax = spec_nmax or wl.nmax
    if nmax < 1:
        raise ValueError(
            f"machine size unknown: the SWF header of {path} has no"
            " MaxProcs (or MaxNodes) line to default to — pass --nmax"
            " (SimulateSpec.nmax / EvaluateSpec.nmax) to set the machine"
            " size explicitly"
        )
    return nmax


def _simulate_workload(spec: SimulateSpec) -> tuple[Workload, int]:
    """Materialise the spec's workload source and machine size."""
    if spec.swf:
        path = resolve_trace_ref(spec.swf)
        wl = read_swf(path)
        return wl, _swf_nmax_or_raise(spec.nmax, wl, path)
    if spec.trace:
        wl = synthetic_trace(spec.trace, seed=spec.seed, n_jobs=spec.jobs)
        return wl, spec.nmax or wl.nmax
    import repro  # lazy: the facade is imported by repro.__init__

    wl = repro.lublin_workload(spec.jobs or 2000, spec.nmax, seed=spec.seed)
    wl = repro.apply_tsafrir(wl, seed=spec.seed + 1)
    return wl, spec.nmax


def _run_simulate(
    spec: SimulateSpec,
    *,
    workers: int | str,
    backend: str,
    cache: ArtifactCache | None,
    progress: ProgressFn | None,
) -> SimulateReport:
    # A single simulation is one serial engine run however many workers
    # (and whichever backend) were requested; the flags are accepted for
    # CLI symmetry.
    wl, nmax = _simulate_workload(spec)
    if spec.hetero is not None:
        return _run_simulate_hetero(spec, wl, cache=cache, progress=progress)
    # None on the flat machine (and product-1 topologies), so flat cache
    # keys are byte-identical to the pre-platform library.
    platform = platform_identity(spec.topology, spec.distribution, spec.seed)
    key = None
    if cache is not None:
        key = simulate_cell_fingerprint(
            workload_fingerprint=workload_fingerprint(wl),
            policy=spec.policy,
            backfill=spec.backfill,
            nmax=nmax,
            use_estimates=spec.estimates,
            tau=spec.tau,
            platform=platform,
        )
        hit = SimulateReport.from_entry(cache.load_json(key))
        if hit is not None:
            if progress is not None:
                progress("simulate", 1, 1)
            return hit
    result = simulate(
        wl,
        get_policy(spec.policy),
        nmax,
        use_estimates=spec.estimates,
        backfill=spec.backfill,
        tau=spec.tau,
        topology=spec.topology,
        distribution=spec.distribution,
        platform_seed=spec.seed,
    )
    if progress is not None:
        progress("simulate", 1, 1)
    label = None
    if platform is not None:
        label = (
            f"topology={topology_label(spec.topology)}"
            f" distribution={spec.distribution}"
        )
    report = SimulateReport(
        policy=result.policy_name,
        backfill=spec.backfill,
        n_jobs=len(wl),
        nmax=nmax,
        ave_bsld=result.ave_bsld,
        makespan=result.makespan,
        utilization=result.utilization,
        backfilled=result.backfill_count,
        platform=label,
    )
    if cache is not None:
        cache.store_json(key, report.to_entry())
    return report


def _run_simulate_hetero(
    spec: SimulateSpec,
    wl: Workload,
    *,
    cache: ArtifactCache | None,
    progress: ProgressFn | None,
) -> SimulateReport:
    """The heterogeneous-platform branch of the ``simulate`` verb.

    The workload is lifted onto the declared architecture pools
    (:func:`repro.sim.hetero.workload_to_hetero_jobs`) and scheduled by
    the dispatcher prototype; makespan and utilization are computed from
    the runtime of the variant each job actually executed, against the
    platform's total core count.
    """
    archs = parse_arch_specs(spec.hetero)
    platform = HeteroPlatform({a.name: a.cores for a in archs})
    jobs = workload_to_hetero_jobs(wl, archs)
    nmax = platform.total_cores
    key = None
    if cache is not None:
        key = simulate_cell_fingerprint(
            workload_fingerprint=workload_fingerprint(wl),
            policy=spec.policy,
            backfill=spec.backfill,
            nmax=nmax,
            use_estimates=spec.estimates,
            tau=spec.tau,
            platform={"hetero": list(spec.hetero)},
        )
        hit = SimulateReport.from_entry(cache.load_json(key))
        if hit is not None:
            if progress is not None:
                progress("simulate", 1, 1)
            return hit
    result = hetero_simulate(jobs, get_policy(spec.policy), platform, tau=spec.tau)
    if progress is not None:
        progress("simulate", 1, 1)
    executed = result.executed_runtime
    sizes = [job.variants[a].size for job, a in zip(jobs, result.chosen_arch)]
    report = SimulateReport(
        policy=result.policy_name,
        backfill=spec.backfill,
        n_jobs=len(wl),
        nmax=nmax,
        ave_bsld=result.ave_bsld,
        makespan=schedule_makespan(result.start, executed),
        utilization=schedule_utilization(result.start, executed, sizes, nmax),
        backfilled=0,
        platform="hetero=" + "+".join(spec.hetero),
    )
    if cache is not None:
        cache.store_json(key, report.to_entry())
    return report


def _evaluate_source(
    spec: EvaluateSpec, config: MatrixConfig
) -> tuple[Workload | Iterable[Window], str | None]:
    """The window source (and trace-name override) a spec declares.

    ``pwa:<name>`` trace references resolve through the content-verified
    local cache (:func:`repro.traces.resolve_trace_ref`) before any file
    is opened; a missing trace raises the error naming ``repro-sched
    fetch`` rather than a bare file-not-found.
    """
    trace_path = resolve_trace_ref(spec.trace) if spec.trace else None
    if trace_path and spec.stream:
        # Lazy replay: the trace file is parsed incrementally and windows
        # are sliced as jobs stream past — it is never resident in full.
        stream = SwfStream(trace_path, keep_failed=not spec.drop_failed)
        source = stream_windows(
            stream.jobs(),
            jobs=config.window_jobs,
            seconds=config.window_seconds,
            warmup=config.warmup,
            max_windows=config.max_windows,
            name=stream.name,
            # the *effective* machine size, so per-job validation in the
            # stream matches what the matrix will simulate against
            nmax=spec.nmax or stream.machine_size,
        )
        return source, stream.name
    if trace_path:
        wl = read_swf(trace_path, keep_failed=not spec.drop_failed)
    else:
        wl = synthetic_trace(spec.synthetic, seed=spec.seed, n_jobs=spec.jobs)
    if spec.stream:
        # Synthetic/materialised sources still exercise the lazy
        # windowing + batched dispatch path under --stream.
        source = stream_windows(
            wl,
            jobs=config.window_jobs,
            seconds=config.window_seconds,
            warmup=config.warmup,
            max_windows=config.max_windows,
        )
        return source, wl.name
    return wl, None


def _run_evaluate(
    spec: EvaluateSpec,
    *,
    workers: int | str,
    backend: str,
    cache: ArtifactCache | None,
    progress: ProgressFn | None,
) -> MatrixResult:
    config = spec.to_matrix_config()
    source, trace_name = _evaluate_source(spec, config)
    return run_matrix(
        source,
        config,
        workers=workers,
        backend=backend,
        cache=cache,
        progress=progress,
        trace_name=trace_name,
    )


def _run_table4(
    spec: Table4Spec,
    *,
    workers: int | str,
    backend: str,
    cache: ArtifactCache | None,
    progress: ProgressFn | None,
) -> list:
    # Table 4 rows have no per-row artifact cache (yet): each row is a
    # fresh dynamic experiment, so ``cache`` is accepted and unused.
    return run_rows(
        spec.resolved_rows(),
        spec.resolve_scale(),
        seed=spec.seed,
        policies=spec.resolved_policies(),
        workers=workers,
        backend=backend,
        progress=progress,
    )


def _fallback_accounting(spec: Spec, result: Any) -> tuple[int, int]:
    """(simulated, cached) estimate when no cache counters exist."""
    if isinstance(result, MatrixResult):
        return result.n_simulated, result.n_cached
    if isinstance(result, SimulateReport):
        return (0, 1) if result.cached else (1, 0)
    if isinstance(result, list):
        return len(result), 0
    return 1, 0


def _run_sweep(
    spec: SweepSpec,
    *,
    workers: int | str,
    backend: str,
    cache: ArtifactCache | None,
    progress: ProgressFn | None,
) -> SweepResult:
    cells = []
    points = spec.iter_grid()
    for i, (overrides, child) in enumerate(points):
        if progress is not None:
            progress("sweep", i, len(points))
        # Cache-counter deltas around the child give uniform accounting
        # (every cacheable layer routes through the shared ArtifactCache).
        snapshot = cache.metrics.delta() if cache is not None else None
        result = run(
            child, workers=workers, backend=backend, cache=cache, progress=progress
        )
        if snapshot is not None:
            n_cached = int(snapshot.value("cache.hits"))
            n_simulated = int(snapshot.value("cache.misses"))
        else:
            n_simulated, n_cached = _fallback_accounting(child, result)
        cells.append(
            SweepCell(
                overrides=tuple(overrides.items()),
                spec=child,
                fingerprint=child.fingerprint(),
                result=result,
                n_simulated=n_simulated,
                n_cached=n_cached,
            )
        )
    if progress is not None:
        progress("sweep", len(points), len(points))
    return SweepResult(spec=spec, cells=tuple(cells))


_RUNNERS: dict[str, Callable[..., Any]] = {
    "train": _run_train,
    "simulate": _run_simulate,
    "evaluate": _run_evaluate,
    "table4": _run_table4,
    "sweep": _run_sweep,
}


# ----------------------------------------------------------------------
# the facade
# ----------------------------------------------------------------------
def run(
    spec: Spec,
    *,
    workers: int | str = 1,
    backend: str = "process",
    cache: str | Path | ArtifactCache | None = None,
    progress: ProgressFn | None = None,
) -> Any:
    """Execute *spec* and return its result (see the module table).

    Parameters
    ----------
    spec:
        Any registered spec.  Use :func:`repro.specs.load_spec` (or
        :func:`run_file`) for TOML/JSON documents.
    workers:
        Worker-process count (or ``"auto"``) for the parallel phases.
        Results are bit-identical for every value.
    backend:
        Executor backend for the parallel phases — one of
        :data:`repro.runtime.BACKEND_NAMES` (``process``, ``local``,
        ``workqueue``).  An execution knob like ``workers``: results
        are bit-identical for every backend.
    cache:
        An :class:`~repro.runtime.ArtifactCache` or a directory path for
        one; every content-addressed artifact below the spec is loaded
        instead of recomputed on a hit.
    progress:
        ``progress(phase, done, total)`` callback, same contract as the
        rest of the library.
    """
    if not isinstance(spec, Spec):
        raise SpecError(
            f"run() takes a Spec, got {type(spec).__name__};"
            " use repro.specs.load_spec() for files"
        )
    runner = _RUNNERS.get(spec.kind)
    if runner is None:  # pragma: no cover - registry and runners co-evolve
        raise SpecError(f"no runner registered for spec kind {spec.kind!r}")
    return runner(
        spec,
        workers=workers,
        backend=resolve_backend(backend),
        cache=coerce_cache(cache),
        progress=progress,
    )


def run_file(
    path: str | Path,
    *,
    workers: int | str = 1,
    backend: str = "process",
    cache: str | Path | ArtifactCache | None = None,
    progress: ProgressFn | None = None,
) -> Any:
    """Load a spec document and :func:`run` it."""
    return run(
        load_spec(path),
        workers=workers,
        backend=backend,
        cache=cache,
        progress=progress,
    )

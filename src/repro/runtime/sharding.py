"""Deterministic work-list sharding.

A shard plan is a pure function of ``(n_items, chunk_size)`` — it never
consults the RNG, the clock or the worker count — so the same work-list
always splits the same way and results can be reassembled by item index
no matter which worker finished which chunk first.
"""

from __future__ import annotations

from repro.util.validation import check_positive_int

__all__ = ["plan_shards"]


def plan_shards(n_items: int, chunk_size: int) -> list[range]:
    """Cut ``range(n_items)`` into contiguous chunks of *chunk_size*.

    Every index appears in exactly one shard and shards preserve the
    item order (the last shard may be short).  An empty work-list yields
    an empty plan.
    """
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items}")
    check_positive_int("chunk_size", chunk_size)
    return [
        range(start, min(start + chunk_size, n_items))
        for start in range(0, n_items, chunk_size)
    ]

"""The ``workqueue`` executor backend: filesystem queue with lease retry.

Where the ``process`` and ``local`` backends are fail-fast, this backend
is *crash-resumable*: every chunk becomes a durable task file in a run
directory, workers claim tasks by taking a **lease**, heartbeat the
lease while computing, and write results atomically.  If a worker is
SIGKILLed mid-chunk its lease goes stale (no heartbeat), another worker
takes the lease over and re-runs the chunk, and the run completes with
nothing lost.  Because chunk functions are pure and results are placed
by item index, the resumed run's output is **byte-identical** to a
serial run — re-execution can only ever recompute the same bytes.

The queue is plain files, so it doubles as a multi-machine dispatch
substrate: point ``queue_dir`` (or ``$REPRO_QUEUE_DIR``) at a shared
filesystem next to a shared :class:`~repro.runtime.cache.ArtifactCache`
and run :func:`work_loop` workers on other hosts against the same run
directory.

Protocol (all under ``<run_dir>/``)
-----------------------------------
``tasks/task-NNNNN.pkl``
    The pickled chunk call, written atomically by the dispatcher before
    any worker starts.  Immutable for the life of the run.
``leases/task-NNNNN.lease``
    Claim marker.  Created with ``O_CREAT | O_EXCL`` (the atomic
    claim); its **mtime is the heartbeat**, touched every
    ``lease_timeout / 4`` seconds by the claimant.  A lease older than
    ``lease_timeout`` is stale: any worker may take it over by
    atomically replacing it (``os.replace`` — last writer wins; a lost
    takeover race just means two workers compute the same pure chunk,
    which is harmless).
``results/task-NNNNN.pkl``
    The pickled result document, written to a ``tmp-<pid>`` sibling and
    ``os.replace``\\ d into place — so a result file either exists
    complete or not at all, and double completion (two workers finishing
    the same task) is idempotent by construction.

Fault injection (test-only)
---------------------------
``$REPRO_QUEUE_FAULT`` arms a hook in :func:`work_loop`:

* ``kill-once:<n>`` — the first worker to claim its *n*-th task SIGKILLs
  itself (no cleanup, no heartbeat stop — a real crash).  A
  ``fault.lock`` file created ``O_EXCL`` in the run directory makes the
  kill happen exactly once per run across all workers.
* ``kill-every:<n>`` — every worker SIGKILLs itself on each *n*-th
  claim; with ``n=1`` no worker ever completes anything, which is how
  tests exercise the respawn-budget fatal path.

The hook fires *after* the claim and *before* the compute, so the dead
worker always leaves a claimed-but-unfinished lease behind — the exact
state the stale-lease takeover exists for.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import signal
import tempfile
import threading
import time
from collections.abc import Sequence
from dataclasses import dataclass

from repro.runtime.backends import ChunkCall, ExecutorBackend, ShardAccounting
from repro.runtime.progress import ProgressAggregator

__all__ = [
    "FaultSpec",
    "WorkQueueBackend",
    "claim_task",
    "load_result",
    "parse_fault",
    "store_result",
    "task_ids",
    "work_loop",
    "write_task",
]

DEFAULT_LEASE_TIMEOUT = 30.0

#: Dispatcher/worker poll interval.  Only affects latency, never results.
_POLL_SECONDS = 0.05


def _lease_timeout_default() -> float:
    env = os.environ.get("REPRO_QUEUE_LEASE_TIMEOUT")
    return float(env) if env else DEFAULT_LEASE_TIMEOUT


# ----------------------------------------------------------------------
# queue protocol: tasks, leases, results
# ----------------------------------------------------------------------
def _task_path(run_dir: str, task_id: str) -> str:
    return os.path.join(run_dir, "tasks", f"{task_id}.pkl")


def _lease_path(run_dir: str, task_id: str) -> str:
    return os.path.join(run_dir, "leases", f"{task_id}.lease")


def _result_path(run_dir: str, task_id: str) -> str:
    return os.path.join(run_dir, "results", f"{task_id}.pkl")


def task_ids(run_dir: str) -> list[str]:
    """All task ids of a run, in dispatch order."""
    names = sorted(os.listdir(os.path.join(run_dir, "tasks")))
    return [n[: -len(".pkl")] for n in names if n.endswith(".pkl")]


def write_task(run_dir: str, task_id: str, fn, args: tuple) -> None:
    """Durably publish one task (atomic tmp + rename)."""
    path = _task_path(run_dir, task_id)
    tmp = f"{path}.tmp-{os.getpid()}"
    with open(tmp, "wb") as fh:
        pickle.dump((fn, args), fh)
    os.replace(tmp, path)


@dataclass(frozen=True)
class Claim:
    """A successful lease claim; ``takeover`` marks a stale-lease steal."""

    task_id: str
    lease_path: str
    takeover: bool


def claim_task(
    run_dir: str,
    task_id: str,
    *,
    lease_timeout: float,
    worker_id: str,
) -> Claim | None:
    """Try to claim *task_id*; return a :class:`Claim` or ``None``.

    The fresh-claim path is ``O_CREAT | O_EXCL`` — exactly one worker
    can create the lease file.  If the lease exists but its mtime is
    older than *lease_timeout*, the claimant is presumed dead and the
    lease is taken over via atomic replace (last writer wins; the loser
    of a takeover race computes a redundant but harmless duplicate of a
    pure chunk).
    """
    lease = _lease_path(run_dir, task_id)
    body = json.dumps({"worker": worker_id, "claimed_at": time.time()})  # repro: allow[REP006] lease liveness timestamp; informs takeover only, never enters results
    try:
        fd = os.open(lease, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        try:
            age = time.time() - os.stat(lease).st_mtime  # repro: allow[REP006] dead-claimant detection against lease mtime; results stay pure
        except FileNotFoundError:
            return None  # released between listdir and stat; rescan
        if age <= lease_timeout:
            return None  # live claim elsewhere
        tmp = f"{lease}.tmp-{worker_id}"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(body)
        os.replace(tmp, lease)
        return Claim(task_id, lease, takeover=True)
    with os.fdopen(fd, "w", encoding="utf-8") as fh:
        fh.write(body)
    return Claim(task_id, lease, takeover=False)


def store_result(
    run_dir: str, task_id: str, payload, *, takeover: bool = False
) -> None:
    """Durably publish one result (atomic tmp + rename, hence idempotent)."""
    path = _result_path(run_dir, task_id)
    doc = {
        "payload": payload,
        "takeover": takeover,
        "pid": os.getpid(),
    }
    tmp = f"{path}.tmp-{os.getpid()}"
    with open(tmp, "wb") as fh:
        pickle.dump(doc, fh)
    os.replace(tmp, path)


def load_result(run_dir: str, task_id: str) -> dict | None:
    """The result document of *task_id*, or ``None`` if not finished."""
    path = _result_path(run_dir, task_id)
    try:
        with open(path, "rb") as fh:
            return pickle.load(fh)
    except FileNotFoundError:
        return None


class _Heartbeat:
    """Touch a lease's mtime every ``lease_timeout / 4`` while computing."""

    def __init__(self, lease_path: str, lease_timeout: float) -> None:
        self._lease_path = lease_path
        self._interval = max(lease_timeout / 4.0, 0.01)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                os.utime(self._lease_path)
            except FileNotFoundError:
                return  # lease taken over and released; stop beating

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=1.0)


# ----------------------------------------------------------------------
# fault injection (test-only)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultSpec:
    """Parsed ``$REPRO_QUEUE_FAULT``: die on the *n*-th claim."""

    mode: str  # "kill-once" | "kill-every"
    n: int


def parse_fault(text: str | None) -> FaultSpec | None:
    """Parse a fault spec string (``kill-once:<n>`` / ``kill-every:<n>``)."""
    if not text:
        return None
    mode, sep, count = text.partition(":")
    if mode not in ("kill-once", "kill-every") or not sep:
        raise ValueError(
            f"invalid REPRO_QUEUE_FAULT {text!r}; expected "
            "'kill-once:<n>' or 'kill-every:<n>'"
        )
    n = int(count)
    if n < 1:
        raise ValueError(f"REPRO_QUEUE_FAULT count must be >= 1, got {n}")
    return FaultSpec(mode, n)


def _maybe_die(fault: FaultSpec | None, claims: int, run_dir: str) -> None:
    """SIGKILL the current process if the armed fault says so."""
    if fault is None:
        return
    if fault.mode == "kill-once":
        if claims != fault.n:
            return
        try:
            fd = os.open(
                os.path.join(run_dir, "fault.lock"),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            return  # another worker already took the bullet
        os.close(fd)
    elif claims % fault.n != 0:  # kill-every
        return
    os.kill(os.getpid(), signal.SIGKILL)


# ----------------------------------------------------------------------
# the worker loop
# ----------------------------------------------------------------------
def work_loop(
    run_dir: str,
    *,
    lease_timeout: float | None = None,
    poll_seconds: float = _POLL_SECONDS,
    worker_id: str | None = None,
) -> int:
    """Claim, compute and publish tasks until the run is complete.

    Runs as the child-process entry point of
    :class:`WorkQueueBackend`, but is equally launchable by hand on
    another machine against a shared ``run_dir``.  Returns the number of
    tasks this worker completed.  Exceptions raised by a chunk function
    propagate (the worker dies nonzero and the dispatcher reports it).
    """
    if lease_timeout is None:
        lease_timeout = _lease_timeout_default()
    if worker_id is None:
        worker_id = f"pid{os.getpid()}"
    fault = parse_fault(os.environ.get("REPRO_QUEUE_FAULT"))
    claims = 0
    completed = 0
    while True:
        all_done = True
        progressed = False
        for task_id in task_ids(run_dir):
            if load_result(run_dir, task_id) is not None:
                continue
            all_done = False
            claim = claim_task(
                run_dir,
                task_id,
                lease_timeout=lease_timeout,
                worker_id=worker_id,
            )
            if claim is None:
                continue
            claims += 1
            _maybe_die(fault, claims, run_dir)
            with open(_task_path(run_dir, task_id), "rb") as fh:
                fn, args = pickle.load(fh)
            with _Heartbeat(claim.lease_path, lease_timeout):
                payload = fn(*args)
            store_result(run_dir, task_id, payload, takeover=claim.takeover)
            completed += 1
            progressed = True
        if all_done:
            return completed
        if not progressed:
            # Everything unfinished is leased elsewhere; wait for results
            # or for a lease to go stale.
            time.sleep(poll_seconds)


def _work_loop_entry(run_dir: str, lease_timeout: float) -> None:
    work_loop(run_dir, lease_timeout=lease_timeout)


# ----------------------------------------------------------------------
# the dispatcher
# ----------------------------------------------------------------------
class WorkQueueBackend(ExecutorBackend):
    """Dispatch chunks through the filesystem queue (see module docstring).

    Telemetry (beyond the shared shard accounting):
    ``runtime.queue.tasks`` counts dispatched tasks,
    ``runtime.queue.dispatch`` times writing them,
    ``runtime.queue.takeovers`` counts stale-lease steals that produced
    the collected result, ``runtime.queue.worker_deaths`` counts worker
    processes that exited abnormally, and ``runtime.queue.respawns``
    counts replacements started for them.  Worker metrics ride the
    result documents, and each task's document is read exactly once —
    metrics a killed worker never shipped die with it — so merged
    counters still equal a serial run's.
    """

    name = "workqueue"
    #: Always execute through the queue, even with one worker: the
    #: protocol (and fault injection) must be exercisable at workers=1.
    inline_serial = False

    def __init__(self, config) -> None:
        super().__init__(config)
        self._run_seq = 0

    # -- knob resolution ------------------------------------------------
    def _queue_root(self) -> str:
        root = self.config.queue_dir or os.environ.get("REPRO_QUEUE_DIR")
        if root:
            os.makedirs(root, exist_ok=True)
            return root
        return tempfile.gettempdir()

    def _lease_timeout(self) -> float:
        if self.config.lease_timeout is not None:
            return self.config.lease_timeout
        return _lease_timeout_default()

    def _max_respawns(self) -> int:
        env = os.environ.get("REPRO_QUEUE_MAX_RESPAWNS")
        if env:
            return int(env)
        return max(4, 2 * self.config.n_workers)

    # -- dispatch -------------------------------------------------------
    def execute(
        self,
        calls: Sequence[ChunkCall],
        n_items: int,
        aggregator: ProgressAggregator,
    ) -> list:
        self._run_seq += 1
        run_dir = tempfile.mkdtemp(
            prefix=f"repro-queue-{os.getpid()}-{self._run_seq}-",
            dir=self._queue_root(),
        )
        try:
            return self._execute_in(run_dir, calls, n_items, aggregator)
        finally:
            shutil.rmtree(run_dir, ignore_errors=True)

    def _execute_in(
        self,
        run_dir: str,
        calls: Sequence[ChunkCall],
        n_items: int,
        aggregator: ProgressAggregator,
    ) -> list:
        lease_timeout = self._lease_timeout()
        acct = ShardAccounting()
        registry = acct.registry
        slots: list = [None] * n_items
        t_pool = time.perf_counter()

        for sub in ("tasks", "leases", "results"):
            os.makedirs(os.path.join(run_dir, sub))
        ids = [f"task-{i:05d}" for i in range(len(calls))]
        with registry.timer("runtime.queue.dispatch"):
            for task_id, call in zip(ids, calls):
                write_task(run_dir, task_id, call.fn, call.args)
        registry.inc("runtime.queue.tasks", len(calls))
        t_submit = time.perf_counter()

        ctx = self.mp_context()
        n_workers = min(self.config.n_workers, max(len(calls), 1))

        def spawn():
            proc = ctx.Process(
                target=_work_loop_entry,
                args=(run_dir, lease_timeout),
                daemon=True,
            )
            proc.start()
            return proc

        workers = [spawn() for _ in range(n_workers)]
        respawns_left = self._max_respawns()
        pending = dict(zip(ids, calls))
        try:
            while pending:
                progressed = False
                for task_id in list(pending):
                    doc = load_result(run_dir, task_id)
                    if doc is None:
                        continue
                    pairs, worker_metrics = doc["payload"]
                    acct.record_shard(
                        time.perf_counter() - t_submit, worker_metrics
                    )
                    if doc.get("takeover"):
                        registry.inc("runtime.queue.takeovers")
                    for index, result in pairs:
                        slots[index] = result
                    aggregator.advance(pending.pop(task_id).size)
                    progressed = True
                if not pending:
                    break
                if progressed:
                    continue
                # No results this pass: reap dead workers, respawn within
                # budget, and fail loudly once nobody is left to finish.
                alive = []
                for proc in workers:
                    if proc.is_alive():
                        alive.append(proc)
                        continue
                    if proc.exitcode == 0:
                        continue  # saw the run as complete; results pending read
                    registry.inc("runtime.queue.worker_deaths")
                    if respawns_left > 0:
                        respawns_left -= 1
                        registry.inc("runtime.queue.respawns")
                        alive.append(spawn())
                workers = alive
                if not workers and all(
                    load_result(run_dir, t) is None for t in pending
                ):
                    raise RuntimeError(
                        f"workqueue run failed: {len(pending)} task(s) "
                        "unfinished with no live workers and the respawn "
                        f"budget ({self._max_respawns()}) exhausted"
                    )
                time.sleep(_POLL_SECONDS)
        finally:
            for proc in workers:
                if proc.is_alive():
                    proc.terminate()
            for proc in workers:
                proc.join(timeout=2.0)
        acct.finish(time.perf_counter() - t_pool, n_workers)
        return slots

"""repro.runtime — parallel execution substrate for the whole library.

The paper's policy-obtaining procedure simulates ``n_tuples x
trials_per_tuple`` independent list-scheduling runs; Table 4 regenerates
18 independent experiments; sensitivity sweeps re-run rows per seed.
All of it is embarrassingly parallel, and all of it funnels through this
package:

* :class:`ExecutorConfig` — declarative dispatch policy: ``workers``
  (int or ``"auto"``), ``chunk_size``, multiprocessing start method,
  and ``backend`` (one of :data:`BACKEND_NAMES`).
* :class:`TrialRunner` — shards a work-list deterministically
  (:mod:`repro.runtime.sharding`), builds picklable pure chunk calls
  (:mod:`repro.runtime.worker`), hands them to the configured
  :class:`ExecutorBackend` (:mod:`repro.runtime.backends` — a per-run
  process pool, the persistent work-stealing ``local`` pool, or the
  crash-resumable filesystem ``workqueue``), and reassembles results by
  item index.  ``workers=1`` is a plain in-process loop.  Serial and
  parallel runs are **bit-identical** for any worker count, chunk size
  and backend, because per-item seed streams depend only on
  ``(root_seed, item_index)``.
* :class:`ArtifactCache` — content-addressed, config-hash-keyed store of
  simulation outputs (lossless npz via :mod:`repro.core.datastore`), so
  repeated runs of an unchanged config skip simulation entirely.
* :class:`ProgressAggregator` — folds out-of-order chunk completions
  back into the library's monotone ``progress(phase, done, total)``
  callback contract.

Every future scaling direction (async engines, multi-backend dispatch,
distributed sweeps) plugs in behind :class:`TrialRunner`'s interface.
"""

from repro.runtime.backends import ChunkCall, ExecutorBackend, create_backend
from repro.runtime.cache import ArtifactCache, coerce_cache, config_fingerprint
from repro.runtime.config import (
    BACKEND_NAMES,
    ExecutorConfig,
    resolve_backend,
    resolve_workers,
)
from repro.runtime.executor import TrialRunner
from repro.runtime.progress import ProgressAggregator
from repro.runtime.sharding import plan_shards

__all__ = [
    "ArtifactCache",
    "BACKEND_NAMES",
    "ChunkCall",
    "ExecutorBackend",
    "ExecutorConfig",
    "ProgressAggregator",
    "TrialRunner",
    "coerce_cache",
    "config_fingerprint",
    "create_backend",
    "plan_shards",
    "resolve_backend",
    "resolve_workers",
]

"""Picklable worker-process entry points.

Everything a :class:`~concurrent.futures.ProcessPoolExecutor` executes
must be importable by name in the child process, so the chunk runners
live here as plain module-level functions of plain picklable arguments
(dataclasses of numpy arrays, :class:`~numpy.random.SeedSequence`\\ s,
ints, floats).  They are *pure*: results depend only on their arguments,
which is what makes the fan-out bit-identical to the serial loop.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable, Sequence

import numpy as np

from repro.core.taskgen import TaskSetTuple
from repro.core.trials import ROUNDING_WARNING_PREFIX, TrialScoreResult, run_trials

__all__ = ["run_trial_chunk", "call_chunk"]


def run_trial_chunk(
    items: Sequence[tuple[int, TaskSetTuple, np.random.SeedSequence]],
    nmax: int,
    n_trials: int,
    balanced: bool,
    tau: float,
) -> list[tuple[int, TrialScoreResult]]:
    """Run the permutation trials of one chunk of ``(index, tuple, seed)``.

    Each item carries its own pre-spawned seed sequence, so the stream a
    tuple sees is a function of its index alone — not of the chunk it
    landed in or the process that ran it.
    """
    out: list[tuple[int, TrialScoreResult]] = []
    with warnings.catch_warnings():
        # The dispatcher already warned once about balanced-trial
        # rounding; each worker process would otherwise repeat it.
        warnings.filterwarnings("ignore", message=ROUNDING_WARNING_PREFIX)
        for index, tup, seedseq in items:
            result = run_trials(
                tup,
                nmax,
                n_trials,
                seed=np.random.default_rng(seedseq),
                balanced=balanced,
                tau=tau,
            )
            out.append((index, result))
    return out


def call_chunk(
    fn: Callable[[object], object], items: Sequence[tuple[int, object]]
) -> list[tuple[int, object]]:
    """Apply *fn* to one chunk of ``(index, item)`` pairs.

    The generic sibling of :func:`run_trial_chunk`, used by
    :meth:`repro.runtime.TrialRunner.map` to fan out arbitrary
    experiment tasks (Table 4 rows, sensitivity sweep points, ...).
    """
    return [(index, fn(item)) for index, item in items]

"""Picklable worker-process entry points.

Everything a :class:`~concurrent.futures.ProcessPoolExecutor` executes
must be importable by name in the child process, so the chunk runners
live here as plain module-level functions of plain picklable arguments
(dataclasses of numpy arrays, :class:`~numpy.random.SeedSequence`\\ s,
ints, floats).  They are *pure* with respect to results: the
``(index, result)`` pairs depend only on their arguments, which is what
makes the fan-out bit-identical to the serial loop.

Telemetry rides the same result channel: when the dispatcher asks for
it (``collect_metrics=True``), a chunk runner installs a fresh
:class:`~repro.obs.metrics.MetricsRegistry` for the chunk, times its
compute (``runtime.chunk`` — in-worker wall time, i.e. spawn/pickle
overhead excluded), and returns the registry's plain-dict snapshot
alongside the pairs for the parent to merge.  Collection can never
change a result; with ``collect_metrics=False`` the metrics slot is
``None`` and no registry exists in the child.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable, Sequence

import numpy as np

from repro.core.taskgen import TaskSetTuple
from repro.core.trials import ROUNDING_WARNING_PREFIX, TrialScoreResult, run_trials
from repro.obs.metrics import MetricsRegistry, use_registry

__all__ = ["run_trial_chunk", "call_chunk"]

ChunkReturn = tuple[list[tuple[int, object]], dict | None]


def run_trial_chunk(
    items: Sequence[tuple[int, TaskSetTuple, np.random.SeedSequence]],
    nmax: int,
    n_trials: int,
    balanced: bool,
    tau: float,
    collect_metrics: bool = False,
) -> "tuple[list[tuple[int, TrialScoreResult]], dict | None]":
    """Run the permutation trials of one chunk of ``(index, tuple, seed)``.

    Each item carries its own pre-spawned seed sequence, so the stream a
    tuple sees is a function of its index alone — not of the chunk it
    landed in or the process that ran it.  Returns ``(pairs, metrics)``
    where *metrics* is the chunk's registry snapshot (or ``None``).

    Per tuple, :func:`run_trials` hands all permutations to the
    simulation kernel in batches (``simulate_fixed_priority_batch``),
    so each worker process crosses into the compiled kernel a handful
    of times per chunk rather than once per trial.
    """
    registry = MetricsRegistry() if collect_metrics else None

    def _run() -> list[tuple[int, TrialScoreResult]]:
        out: list[tuple[int, TrialScoreResult]] = []
        with warnings.catch_warnings():
            # The dispatcher already warned once about balanced-trial
            # rounding; each worker process would otherwise repeat it.
            warnings.filterwarnings("ignore", message=ROUNDING_WARNING_PREFIX)
            for index, tup, seedseq in items:
                result = run_trials(
                    tup,
                    nmax,
                    n_trials,
                    seed=np.random.default_rng(seedseq),
                    balanced=balanced,
                    tau=tau,
                )
                out.append((index, result))
        return out

    if registry is None:
        return _run(), None
    with use_registry(registry), registry.timer("runtime.chunk"):
        pairs = _run()
    return pairs, registry.to_dict()


def call_chunk(
    fn: Callable[[object], object],
    items: Sequence[tuple[int, object]],
    collect_metrics: bool = False,
) -> ChunkReturn:
    """Apply *fn* to one chunk of ``(index, item)`` pairs.

    The generic sibling of :func:`run_trial_chunk`, used by
    :meth:`repro.runtime.TrialRunner.map` to fan out arbitrary
    experiment tasks (Table 4 rows, evaluation cells, sensitivity sweep
    points, ...).  Returns the same ``(pairs, metrics)`` shape.
    """
    if not collect_metrics:
        return [(index, fn(item)) for index, item in items], None
    registry = MetricsRegistry()
    with use_registry(registry), registry.timer("runtime.chunk"):
        pairs = [(index, fn(item)) for index, item in items]
    return pairs, registry.to_dict()

"""Pluggable executor backends: the contract behind :class:`TrialRunner`.

:class:`~repro.runtime.executor.TrialRunner` turns a work-list into a
deterministic shard plan and a list of :class:`ChunkCall`\\ s — picklable
``(fn, args)`` pairs whose invocation returns ``(index, result)`` pairs
plus an optional worker-metrics snapshot.  *How* those calls become
running processes is the backend's business, and only the backend's:

* :class:`ProcessPoolBackend` (``"process"``) — a fresh
  ``ProcessPoolExecutor`` per fan-out; the historical default.
* :class:`~repro.runtime.localpool.LocalPoolBackend` (``"local"``) —
  persistent workers pulling from one shared queue (work-stealing), so
  repeated fan-outs (streamed evaluation batches) pay the spawn cost
  once.
* :class:`~repro.runtime.workqueue.WorkQueueBackend` (``"workqueue"``) —
  a filesystem task queue with lease/heartbeat retry, so a killed
  worker's chunks are re-dispatched and a resumed run loses nothing.

Backend contract
----------------
1. **Determinism.**  ``execute`` must place each returned
   ``(index, result)`` pair into ``slots[index]`` and nothing else —
   results are bit-identical across backends because the chunk
   functions are pure and the slots are index-addressed.  A backend may
   reorder, retry or duplicate *execution*; it must never reorder,
   drop or duplicate *slot assignment* (duplicated execution of a pure
   call writes the same bytes twice, which is idempotent).
2. **Telemetry.**  Backends account shards through
   :class:`ShardAccounting` so the counter names the manifest and
   benchmarks rely on (``runtime.pool``, ``runtime.shard.wall``,
   ``runtime.shard.overhead``, ``runtime.chunk``,
   ``runtime.worker_utilization``) mean the same thing everywhere.
   Each completed chunk's worker-metrics snapshot is merged exactly
   once, so merged parallel counters equal serial counters.
3. **Errors.**  A failing chunk raises out of ``execute`` promptly; a
   backend must not silently swallow work (the work-queue backend
   retries dead *workers*, not failing *calls* — an exception raised by
   the chunk function itself is fatal on every backend).
"""

from __future__ import annotations

import multiprocessing
import time
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import ClassVar

from repro.obs.metrics import current_registry
from repro.runtime.config import BACKEND_NAMES, ExecutorConfig
from repro.runtime.progress import ProgressAggregator

__all__ = [
    "ChunkCall",
    "ExecutorBackend",
    "ProcessPoolBackend",
    "ShardAccounting",
    "create_backend",
]


@dataclass(frozen=True)
class ChunkCall:
    """One dispatchable unit of work: ``fn(*args)``.

    *fn* must be a module-level callable with picklable *args*, returning
    ``(pairs, metrics)`` where *pairs* is a list of ``(item_index,
    result)`` and *metrics* is a plain-dict registry snapshot or
    ``None`` (see :mod:`repro.runtime.worker`).  *size* is the number of
    work-list items the call covers, used only for progress reporting.
    """

    fn: Callable
    args: tuple
    size: int

    def run(self) -> tuple[list[tuple[int, object]], dict | None]:
        """Invoke the call in-process (used by serial paths and tests)."""
        return self.fn(*self.args)


class ShardAccounting:
    """Shared per-fan-out telemetry bookkeeping for every backend.

    Keeps the counter names and semantics identical across backends:
    ``runtime.shard.wall`` is parent-observed latency from dispatch to
    result (spawn + pickling + queueing + compute), ``runtime.chunk``
    (merged from the worker snapshot) is in-worker compute,
    ``runtime.shard.overhead`` the non-negative excess of wall over
    compute, ``runtime.pool`` the whole fan-out, and
    ``runtime.worker_utilization`` compute-seconds over worker-seconds.
    """

    def __init__(self) -> None:
        self.registry = current_registry()
        self.compute_seconds = 0.0

    def record_shard(self, wall: float, worker_metrics: dict | None) -> None:
        """Account one completed chunk (merges its metrics exactly once)."""
        self.registry.add_time("runtime.shard.wall", wall)
        if worker_metrics is not None:
            self.registry.merge(worker_metrics)
            chunk = (
                worker_metrics.get("timers", {})
                .get("runtime.chunk", {})
                .get("seconds", 0.0)
            )
            self.compute_seconds += chunk
            self.registry.add_time(
                "runtime.shard.overhead", max(0.0, wall - chunk)
            )

    def finish(self, pool_seconds: float, n_workers: int) -> None:
        """Account the whole fan-out once all chunks are in."""
        self.registry.add_time("runtime.pool", pool_seconds)
        if self.compute_seconds and pool_seconds > 0:
            self.registry.set_gauge(
                "runtime.worker_utilization",
                self.compute_seconds / (pool_seconds * max(n_workers, 1)),
            )


class ExecutorBackend(ABC):
    """How a list of :class:`ChunkCall`\\ s becomes running processes."""

    #: Registered name (must appear in
    #: :data:`repro.runtime.config.BACKEND_NAMES`).
    name: ClassVar[str]

    #: Whether ``workers=1`` may short-circuit to the dispatcher's
    #: in-process loop.  True for backends whose single-worker execution
    #: is equivalent to it; the work-queue backend sets it False so the
    #: queue protocol (and its fault injection) is exercised even with
    #: one worker.
    inline_serial: ClassVar[bool] = True

    def __init__(self, config: ExecutorConfig) -> None:
        self.config = config

    def mp_context(self) -> multiprocessing.context.BaseContext:
        """The multiprocessing context the config asks for."""
        return multiprocessing.get_context(self.config.mp_start_method)

    @abstractmethod
    def execute(
        self,
        calls: Sequence[ChunkCall],
        n_items: int,
        aggregator: ProgressAggregator,
    ) -> list:
        """Run every call; return the ``n_items`` results by item index.

        Implementations fill ``slots[index] = result`` for every
        ``(index, result)`` pair a call returns, advance *aggregator* by
        ``call.size`` as calls complete, and account telemetry through
        :class:`ShardAccounting`.
        """

    def close(self) -> None:
        """Release any persistent resources (idempotent; default no-op)."""


class ProcessPoolBackend(ExecutorBackend):
    """The historical default: one ``ProcessPoolExecutor`` per fan-out.

    Simple and robust — every fan-out gets a fresh pool sized
    ``min(workers, n_calls)`` — but pays process spawn + import cost per
    fan-out, which is what the ``local`` backend exists to amortise.
    """

    name = "process"

    def execute(
        self,
        calls: Sequence[ChunkCall],
        n_items: int,
        aggregator: ProgressAggregator,
    ) -> list:
        slots: list = [None] * n_items
        n_workers = min(self.config.n_workers, max(len(calls), 1))
        acct = ShardAccounting()
        t_pool = time.perf_counter()
        context = (
            self.mp_context() if self.config.mp_start_method is not None else None
        )
        with ProcessPoolExecutor(
            max_workers=n_workers, mp_context=context
        ) as pool:
            futures = {
                pool.submit(call.fn, *call.args): (call, time.perf_counter())
                for call in calls
            }
            try:
                for future in as_completed(futures):
                    pairs, worker_metrics = future.result()
                    call, t_submit = futures[future]
                    acct.record_shard(
                        time.perf_counter() - t_submit, worker_metrics
                    )
                    for index, result in pairs:
                        slots[index] = result
                    aggregator.advance(call.size)
            except BaseException:
                # Don't let queued chunks run to completion behind a
                # fatal error — surface it as soon as it happens.
                pool.shutdown(wait=False, cancel_futures=True)
                raise
        acct.finish(time.perf_counter() - t_pool, n_workers)
        return slots


def create_backend(config: ExecutorConfig) -> ExecutorBackend:
    """Instantiate the backend *config* names (lazy imports, no cycles)."""
    if config.backend == "process":
        return ProcessPoolBackend(config)
    if config.backend == "local":
        from repro.runtime.localpool import LocalPoolBackend

        return LocalPoolBackend(config)
    if config.backend == "workqueue":
        from repro.runtime.workqueue import WorkQueueBackend

        return WorkQueueBackend(config)
    raise ValueError(  # pragma: no cover - config validation catches this
        f"unknown executor backend {config.backend!r}; "
        f"valid backends: {', '.join(BACKEND_NAMES)}"
    )

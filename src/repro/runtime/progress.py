"""Progress aggregation across out-of-order chunk completions.

The library-wide progress contract is ``progress(phase, done, total)``
with *done* increasing monotonically to *total* (see
:func:`repro.core.pipeline.build_distribution`).  Parallel chunks finish
in arbitrary order; :class:`ProgressAggregator` folds their completions
back into that contract so existing callbacks (CLI ticker, tests) work
unchanged no matter how the work was dispatched.

Progress-reporting order is the *only* observable that dispatch order
may change: results themselves stay bit-identical for any worker count
and chunk size (see :mod:`repro.runtime.executor`), and nothing in this
module feeds back into cache keys or result values.
"""

from __future__ import annotations

import threading
from collections.abc import Callable

__all__ = ["ProgressAggregator"]

ProgressCallback = Callable[[str, int, int], None]


class ProgressAggregator:
    """Monotone ``(phase, done, total)`` channel fed by chunk completions.

    Thread-safe: completion callbacks may arrive from executor threads.
    A ``None`` callback turns every report into a no-op, so call sites
    never need to branch.
    """

    def __init__(
        self, callback: ProgressCallback | None, phase: str, total: int
    ) -> None:
        if total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        self._callback = callback
        self.phase = phase
        self.total = total
        self.done = 0
        self._lock = threading.Lock()

    def advance(self, n: int = 1) -> None:
        """Record *n* finished items and emit one progress report.

        The callback fires under the lock so reports are serialised and
        *done* never appears to move backwards; callbacks must therefore
        not re-enter the aggregator.
        """
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        with self._lock:
            self.done = min(self.done + n, self.total)
            if self._callback is not None:
                self._callback(self.phase, self.done, self.total)

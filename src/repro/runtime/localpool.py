"""The ``local`` executor backend: persistent work-stealing workers.

``ProcessPoolExecutor`` (the ``process`` backend) pays process spawn +
interpreter import on *every* fan-out, which dominates small-trial runs
— ``bench_runtime_scaling`` showed the curve going backwards.  This
backend starts its workers **once**, lazily on the first
:meth:`~LocalPoolBackend.execute`, and keeps them alive across fan-outs:
streamed evaluation batches and repeated sweep phases reuse the same
processes, so only the first dispatch pays the spawn.

Scheduling is work-stealing by construction: all workers pull from one
shared task queue, so a worker that finishes early immediately takes the
next chunk instead of idling behind a static partition.  Results come
back on a shared result queue tagged ``(generation, call_id)``; the
generation counter makes dispatches self-contained — anything a worker
produces for an aborted earlier ``execute`` is discarded, never
misfiled.

Determinism is inherited from the chunk functions: calls are pure and
results are placed by item index, so completion order (which worker
stole which chunk, and when) cannot change a byte of output.

Failure semantics are fail-fast, like the ``process`` backend: a chunk
that raises, or a worker that dies, aborts the fan-out with a
``RuntimeError``.  Retry/resume is the ``workqueue`` backend's job.
"""

from __future__ import annotations

import atexit
import queue as queue_mod
import time
import traceback
from collections.abc import Sequence

from repro.runtime.backends import ChunkCall, ExecutorBackend, ShardAccounting
from repro.runtime.progress import ProgressAggregator

__all__ = ["LocalPoolBackend"]

#: How long the dispatcher waits on the result queue before checking
#: worker liveness.  Only affects crash-detection latency.
_POLL_SECONDS = 0.2


def _worker_main(task_queue, result_queue) -> None:
    """Worker-process loop: pull ``(gen, call_id, fn, args)``, run, reply.

    A ``None`` task is the shutdown pill.  Exceptions are shipped back as
    data (formatted traceback) rather than crashing the worker, so one
    bad chunk fails its fan-out without killing the pool.
    """
    while True:
        task = task_queue.get()
        if task is None:
            return
        gen, call_id, fn, args = task
        try:
            result_queue.put((gen, call_id, True, fn(*args)))
        except BaseException as exc:  # noqa: BLE001 - shipped to parent
            detail = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
            result_queue.put((gen, call_id, False, detail))


class LocalPoolBackend(ExecutorBackend):
    """Persistent shared-queue worker pool (see module docstring)."""

    name = "local"

    def __init__(self, config) -> None:
        super().__init__(config)
        self._workers: list = []
        self._task_queue = None
        self._result_queue = None
        self._generation = 0

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_started(self) -> None:
        if self._workers:
            return
        ctx = self.mp_context()
        self._task_queue = ctx.Queue()
        self._result_queue = ctx.Queue()
        self._workers = [
            ctx.Process(
                target=_worker_main,
                args=(self._task_queue, self._result_queue),
                daemon=True,
                name=f"repro-local-{i}",
            )
            for i in range(self.config.n_workers)
        ]
        for proc in self._workers:
            proc.start()
        # Workers are daemons (they die with the parent), but close them
        # politely at interpreter exit so queues flush.
        atexit.register(self.close)

    def _check_workers(self) -> None:
        dead = [p for p in self._workers if not p.is_alive()]
        if dead:
            codes = ", ".join(f"{p.name} exit {p.exitcode}" for p in dead)
            self.close()
            raise RuntimeError(
                f"local backend worker died mid-fan-out ({codes}); "
                "results cannot be trusted to arrive — use the workqueue "
                "backend for crash retry"
            )

    def close(self) -> None:
        workers, self._workers = self._workers, []
        if not workers:
            return
        atexit.unregister(self.close)
        for proc in workers:
            if proc.is_alive():
                try:
                    self._task_queue.put(None)
                except (OSError, ValueError):  # queue already torn down
                    break
        deadline = time.monotonic() + 2.0
        for proc in workers:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for q in (self._task_queue, self._result_queue):
            if q is not None:
                q.cancel_join_thread()
                q.close()
        self._task_queue = None
        self._result_queue = None

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def execute(
        self,
        calls: Sequence[ChunkCall],
        n_items: int,
        aggregator: ProgressAggregator,
    ) -> list:
        self._ensure_started()
        self._generation += 1
        gen = self._generation
        slots: list = [None] * n_items
        acct = ShardAccounting()
        t_pool = time.perf_counter()
        submitted = {}
        for call_id, call in enumerate(calls):
            self._task_queue.put((gen, call_id, call.fn, call.args))
            submitted[call_id] = time.perf_counter()
        done = 0
        while done < len(calls):
            try:
                r_gen, call_id, ok, payload = self._result_queue.get(
                    timeout=_POLL_SECONDS
                )
            except queue_mod.Empty:
                self._check_workers()
                continue
            if r_gen != gen:
                # Straggler from an earlier, aborted dispatch.
                continue
            if not ok:
                raise RuntimeError(
                    f"local backend chunk {call_id} failed:\n{payload}"
                )
            pairs, worker_metrics = payload
            acct.record_shard(
                time.perf_counter() - submitted[call_id], worker_metrics
            )
            for index, result in pairs:
                slots[index] = result
            aggregator.advance(calls[call_id].size)
            done += 1
        acct.finish(
            time.perf_counter() - t_pool,
            min(self.config.n_workers, max(len(calls), 1)),
        )
        return slots

"""Content-addressed artifact cache for simulation outputs.

Training simulations are deterministic functions of their configuration,
so re-running a pipeline with an unchanged config re-derives byte-for-
byte the same trial results.  :class:`ArtifactCache` memoises that step
on disk: the key is a fingerprint of every *result-relevant* config
field (worker count and chunk size are deliberately excluded — they
cannot change results), and the value is the lossless npz artifact
written by :func:`repro.core.datastore.save_trial_artifact`.

A cache directory is safe to share between serial and parallel runs,
across processes, and across sessions; entries are immutable once
written (atomic rename) and keyed by content, never by timestamp.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from collections.abc import Mapping
from pathlib import Path

from repro.core.datastore import load_trial_artifact, save_trial_artifact
from repro.core.distribution import ScoreDistribution
from repro.core.trials import TrialScoreResult
from repro.obs.metrics import MetricsRegistry

__all__ = ["ArtifactCache", "coerce_cache", "config_fingerprint"]


def config_fingerprint(fields: Mapping[str, object]) -> str:
    """Stable hex digest of a flat config mapping.

    Values are canonicalised through JSON (falling back to ``repr`` for
    non-JSON types such as parameter dataclasses), so logically equal
    configs hash equal regardless of dict ordering or tuple-vs-list
    spelling in the caller.
    """
    canonical = json.dumps(
        {str(k): fields[k] for k in fields},
        sort_keys=True,
        default=repr,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]


def coerce_cache(
    cache: "str | Path | ArtifactCache | None",
) -> "ArtifactCache | None":
    """Accept a cache, a directory path for one, or ``None``.

    The single coercion used by every layer that takes a ``cache``
    argument (pipeline, evaluation matrix, the :mod:`repro.api` facade),
    so they all accept the same spellings.
    """
    if cache is None or isinstance(cache, ArtifactCache):
        return cache
    return ArtifactCache(cache)


class ArtifactCache:
    """config-hash -> (trial results, pooled distribution) store.

    Hit/miss/byte accounting lives in a per-instance
    :class:`~repro.obs.metrics.MetricsRegistry` (``cache.hits``,
    ``cache.misses``, ``cache.bytes_stored``, ``cache.bytes_loaded``);
    the historical ``hits`` / ``misses`` integer attributes remain as
    read-only properties, and
    :meth:`~repro.obs.metrics.MetricsRegistry.delta` snapshots replace
    the old before/after tuple bookkeeping at call sites.  Accounting is
    observation only: it never enters a key or a stored artifact.
    """

    def __init__(
        self, directory: str | Path, metrics: MetricsRegistry | None = None
    ) -> None:
        self.root = Path(directory)
        self.root.mkdir(parents=True, exist_ok=True)
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    @property
    def hits(self) -> int:
        """Entries served from disk so far (both npz and JSON)."""
        return int(self.metrics.value("cache.hits"))

    @property
    def misses(self) -> int:
        """Lookups that found nothing usable so far."""
        return int(self.metrics.value("cache.misses"))

    def _record_loaded(self, path: Path) -> None:
        self.metrics.inc("cache.hits")
        try:
            self.metrics.inc("cache.bytes_loaded", path.stat().st_size)
        except OSError:  # pragma: no cover - raced deletion
            pass

    def _record_stored(self, path: Path) -> None:
        try:
            self.metrics.inc("cache.bytes_stored", path.stat().st_size)
        except OSError:  # pragma: no cover - raced deletion
            pass

    @staticmethod
    def _check_key(key: str) -> str:
        if not key or any(c in key for c in "/\\"):
            raise ValueError(f"invalid cache key {key!r}")
        return key

    def path_for(self, key: str) -> Path:
        """Where the entry for *key* lives (whether or not it exists)."""
        return self.root / f"trials-{self._check_key(key)}.npz"

    def load(
        self, key: str
    ) -> tuple[list[TrialScoreResult], ScoreDistribution] | None:
        """Return the cached entry for *key*, or ``None`` on a miss.

        A corrupt or format-incompatible entry counts as a miss (it is
        left in place for inspection; a subsequent :meth:`store`
        atomically replaces it).
        """
        path = self.path_for(key)
        if not path.exists():
            self.metrics.inc("cache.misses")
            return None
        try:
            entry = load_trial_artifact(path)
        except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile):
            self.metrics.inc("cache.misses")
            return None
        self._record_loaded(path)
        return entry

    def store(
        self,
        key: str,
        results: list[TrialScoreResult],
        distribution: ScoreDistribution,
    ) -> Path:
        """Persist an entry for *key*, returning its path."""
        path = save_trial_artifact(self.path_for(key), results, distribution)
        self._record_stored(path)
        return path

    # ------------------------------------------------------------------
    # generic JSON entries (evaluation cells and other small artifacts)
    # ------------------------------------------------------------------
    def json_path_for(self, key: str) -> Path:
        """Where the JSON entry for *key* lives (whether or not it exists)."""
        return self.root / f"eval-{self._check_key(key)}.json"

    def load_json(self, key: str) -> object | None:
        """Return the JSON entry for *key*, or ``None`` on a miss.

        The same hit/miss accounting and corruption tolerance as
        :meth:`load` apply: an unreadable entry is a miss and is replaced
        atomically by the next :meth:`store_json`.
        """
        path = self.json_path_for(key)
        if not path.exists():
            self.metrics.inc("cache.misses")
            return None
        try:
            obj = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.metrics.inc("cache.misses")
            return None
        self._record_loaded(path)
        return obj

    def store_json(self, key: str, obj: object) -> Path:
        """Persist a JSON-serialisable entry for *key* (atomic rename)."""
        path = self.json_path_for(key)
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        try:
            tmp.write_text(
                json.dumps(obj, sort_keys=True, allow_nan=True), encoding="utf-8"
            )
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        self._record_stored(path)
        return path

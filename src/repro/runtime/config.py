"""Executor configuration for the parallel runtime.

:class:`ExecutorConfig` is the single declarative knob set every parallel
entry point accepts: how many worker processes, how the work-list is cut
into chunks, which multiprocessing start method to use, and which
:mod:`executor backend <repro.runtime.backends>` dispatches the chunks.
Worker counts accept the literal string ``"auto"`` (one worker per CPU),
so CLI flags and environment variables can pass user input straight
through.

Determinism note: nothing in this module influences *results* — workers,
chunk sizes and backends only change how the deterministic work-list is
dispatched (see :mod:`repro.runtime.sharding`), never the per-item
random streams.  None of these fields may ever enter a fingerprint or
cache key.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = [
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
    "ExecutorConfig",
    "resolve_backend",
    "resolve_workers",
]

#: Registered executor backend names, in documentation order.  The
#: implementations live in :mod:`repro.runtime.backends` (process),
#: :mod:`repro.runtime.localpool` (local) and
#: :mod:`repro.runtime.workqueue` (workqueue); this tuple lives here so
#: config validation does not import them.
BACKEND_NAMES = ("process", "local", "workqueue")

DEFAULT_BACKEND = "process"


def resolve_backend(backend: str | None) -> str:
    """Coerce a backend spec to a registered backend name.

    ``None`` falls back to ``$REPRO_BACKEND`` and then to
    :data:`DEFAULT_BACKEND`.  Unknown names raise ``ValueError`` naming
    the valid choices.
    """
    if backend is None:
        backend = os.environ.get("REPRO_BACKEND") or DEFAULT_BACKEND
    if backend not in BACKEND_NAMES:
        raise ValueError(
            f"unknown executor backend {backend!r}; "
            f"valid backends: {', '.join(BACKEND_NAMES)}"
        )
    return backend


def resolve_workers(workers: int | str) -> int:
    """Coerce a worker-count spec (``int``, numeric string or ``"auto"``).

    ``"auto"`` resolves to the machine's CPU count (at least 1).
    """
    if isinstance(workers, str):
        if workers == "auto":
            try:
                # Respect CPU affinity / cgroup limits where the OS
                # exposes them; plain cpu_count() oversubscribes
                # containers pinned to a subset of the host's cores.
                return max(len(os.sched_getaffinity(0)), 1)
            except AttributeError:  # platforms without sched_getaffinity
                return max(os.cpu_count() or 1, 1)
        try:
            workers = int(workers)
        except ValueError:
            raise ValueError(
                f"workers must be a positive integer or 'auto', got {workers!r}"
            ) from None
    count = int(workers)
    if count < 1:
        raise ValueError(f"workers must be >= 1, got {count}")
    return count


@dataclass(frozen=True)
class ExecutorConfig:
    """How the runtime dispatches a work-list.

    Attributes
    ----------
    workers:
        Number of worker processes, or ``"auto"`` for one per CPU.
        ``1`` (the default) runs everything serially in-process — no
        pool, no pickling, byte-for-byte the historical code path.
    chunk_size:
        Items per dispatched chunk.  ``None`` picks ``ceil(n / (4 *
        workers))`` so each worker sees ~4 chunks (good load balancing
        without drowning in IPC).  Chunking never affects results.
    mp_start_method:
        Forwarded to :func:`multiprocessing.get_context` (``"fork"``,
        ``"spawn"``, ...).  ``None`` uses the platform default.
    backend:
        Which :class:`~repro.runtime.backends.ExecutorBackend` runs the
        chunks — one of :data:`BACKEND_NAMES`.  ``"process"`` (default)
        is a per-fan-out ``ProcessPoolExecutor``; ``"local"`` keeps
        persistent workers pulling from a shared queue (work-stealing);
        ``"workqueue"`` dispatches through a filesystem queue with
        lease/heartbeat retry.  Like every other field here, the backend
        can never change a result.
    queue_dir:
        Root directory for the ``workqueue`` backend's task/lease/result
        files.  ``None`` uses ``$REPRO_QUEUE_DIR`` or a temp directory.
        Ignored by the other backends.
    lease_timeout:
        Seconds without a heartbeat before a ``workqueue`` task lease is
        considered stale and another worker may take it over.  ``None``
        uses ``$REPRO_QUEUE_LEASE_TIMEOUT`` or 30 seconds.
    """

    workers: int | str = 1
    chunk_size: int | None = None
    mp_start_method: str | None = None
    backend: str = DEFAULT_BACKEND
    queue_dir: str | None = None
    lease_timeout: float | None = None

    def __post_init__(self) -> None:
        resolve_workers(self.workers)  # fail fast on bad specs
        resolve_backend(self.backend)
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.lease_timeout is not None and self.lease_timeout <= 0:
            raise ValueError(
                f"lease_timeout must be > 0, got {self.lease_timeout}"
            )

    @property
    def n_workers(self) -> int:
        """The resolved worker count (``"auto"`` -> CPU count)."""
        return resolve_workers(self.workers)

    def chunk_for(self, n_items: int) -> int:
        """The chunk size used for a work-list of *n_items*."""
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, -(-n_items // (4 * self.n_workers)))

"""Executor configuration for the parallel runtime.

:class:`ExecutorConfig` is the single declarative knob set every parallel
entry point accepts: how many worker processes, how the work-list is cut
into chunks, and which multiprocessing start method to use.  Worker
counts accept the literal string ``"auto"`` (one worker per CPU), so CLI
flags and environment variables can pass user input straight through.

Determinism note: nothing in this module influences *results* — workers
and chunk sizes only change how the deterministic work-list is dispatched
(see :mod:`repro.runtime.sharding`), never the per-item random streams.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["ExecutorConfig", "resolve_workers"]


def resolve_workers(workers: int | str) -> int:
    """Coerce a worker-count spec (``int``, numeric string or ``"auto"``).

    ``"auto"`` resolves to the machine's CPU count (at least 1).
    """
    if isinstance(workers, str):
        if workers == "auto":
            try:
                # Respect CPU affinity / cgroup limits where the OS
                # exposes them; plain cpu_count() oversubscribes
                # containers pinned to a subset of the host's cores.
                return max(len(os.sched_getaffinity(0)), 1)
            except AttributeError:  # platforms without sched_getaffinity
                return max(os.cpu_count() or 1, 1)
        try:
            workers = int(workers)
        except ValueError:
            raise ValueError(
                f"workers must be a positive integer or 'auto', got {workers!r}"
            ) from None
    count = int(workers)
    if count < 1:
        raise ValueError(f"workers must be >= 1, got {count}")
    return count


@dataclass(frozen=True)
class ExecutorConfig:
    """How the runtime dispatches a work-list.

    Attributes
    ----------
    workers:
        Number of worker processes, or ``"auto"`` for one per CPU.
        ``1`` (the default) runs everything serially in-process — no
        pool, no pickling, byte-for-byte the historical code path.
    chunk_size:
        Items per dispatched chunk.  ``None`` picks ``ceil(n / (4 *
        workers))`` so each worker sees ~4 chunks (good load balancing
        without drowning in IPC).  Chunking never affects results.
    mp_start_method:
        Forwarded to :func:`multiprocessing.get_context` (``"fork"``,
        ``"spawn"``, ...).  ``None`` uses the platform default.
    """

    workers: int | str = 1
    chunk_size: int | None = None
    mp_start_method: str | None = None

    def __post_init__(self) -> None:
        resolve_workers(self.workers)  # fail fast on bad specs
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")

    @property
    def n_workers(self) -> int:
        """The resolved worker count (``"auto"`` -> CPU count)."""
        return resolve_workers(self.workers)

    def chunk_for(self, n_items: int) -> int:
        """The chunk size used for a work-list of *n_items*."""
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, -(-n_items // (4 * self.n_workers)))

"""The worker-pool executor: :class:`TrialRunner`.

``TrialRunner`` owns the fan-out of embarrassingly parallel work-lists —
the per-tuple permutation trials of the training pipeline
(:meth:`TrialRunner.run_tuple_trials`) and arbitrary experiment tasks
(:meth:`TrialRunner.map`, used for Table 4 rows and sensitivity sweeps).

Determinism contract
--------------------
Results are **bit-identical** for every ``(workers, chunk_size)``:

* the work-list and its per-item seed sequences are fully materialised
  *before* dispatch (item ``k`` always gets child ``k`` of the root
  seed, exactly as the historical serial loop did);
* chunks carry their item indices, so completion order — which *is*
  nondeterministic — only affects progress-reporting order, never the
  position a result lands in;
* ``workers=1`` short-circuits to a plain in-process loop (no pool, no
  pickling), preserving the pre-runtime code path byte for byte.
"""

from __future__ import annotations

import multiprocessing
import time
import warnings
from collections.abc import Callable, Sequence
from concurrent.futures import Future, ProcessPoolExecutor, as_completed

import numpy as np

from repro.core.taskgen import TaskSetTuple
from repro.core.trials import (
    ROUNDING_WARNING_PREFIX,
    TrialScoreResult,
    balanced_trial_count,
    format_rounding_warning,
    run_trials,
)
from repro.obs.metrics import current_registry
from repro.runtime.config import ExecutorConfig
from repro.runtime.progress import ProgressAggregator, ProgressCallback
from repro.runtime.sharding import plan_shards
from repro.runtime.worker import call_chunk, run_trial_chunk
from repro.sim.metrics import DEFAULT_TAU
from repro.util.rng import SeedLike, spawn_seed_sequences

__all__ = ["TrialRunner"]


class TrialRunner:
    """Dispatch deterministic work-lists over a process pool."""

    def __init__(self, config: ExecutorConfig | None = None) -> None:
        self.config = config or ExecutorConfig()

    # ------------------------------------------------------------------
    # pool plumbing
    # ------------------------------------------------------------------
    def _pool(self, n_shards: int) -> ProcessPoolExecutor:
        context = (
            multiprocessing.get_context(self.config.mp_start_method)
            if self.config.mp_start_method is not None
            else None
        )
        return ProcessPoolExecutor(
            max_workers=min(self.config.n_workers, max(n_shards, 1)),
            mp_context=context,
        )

    def _fan_out(
        self,
        n_items: int,
        shards: list[range],
        submit_chunk: Callable[[ProcessPoolExecutor, range], Future],
        aggregator: ProgressAggregator,
    ) -> list:
        """Dispatch shards over a pool; reassemble results by item index.

        ``submit_chunk(pool, shard)`` must return a future resolving to
        ``((index, result) pairs, worker-metrics-or-None)`` for that
        shard's items.  Completion order only affects progress-reporting
        order — and, with telemetry enabled, which order worker metric
        snapshots merge in, which cannot change the merged totals.

        Telemetry (ambient registry, no-op by default): ``runtime.pool``
        times the whole fan-out, ``runtime.shard.wall`` accumulates
        parent-observed shard latency (submit to completion: spawn +
        pickling + queueing + compute), ``runtime.shard.overhead`` its
        excess over the worker-reported in-process ``runtime.chunk``
        compute, and the ``runtime.worker_utilization`` gauge is the
        pool's compute-seconds over its worker-seconds.
        """
        registry = current_registry()
        slots: list = [None] * n_items
        n_workers = min(self.config.n_workers, max(len(shards), 1))
        t_pool = time.perf_counter()
        compute_seconds = 0.0
        with self._pool(len(shards)) as pool:
            futures = {
                submit_chunk(pool, shard): (shard, time.perf_counter())
                for shard in shards
            }
            try:
                for future in as_completed(futures):
                    pairs, worker_metrics = future.result()
                    shard, t_submit = futures[future]
                    wall = time.perf_counter() - t_submit
                    registry.add_time("runtime.shard.wall", wall)
                    if worker_metrics is not None:
                        registry.merge(worker_metrics)
                        chunk = (
                            worker_metrics.get("timers", {})
                            .get("runtime.chunk", {})
                            .get("seconds", 0.0)
                        )
                        compute_seconds += chunk
                        registry.add_time(
                            "runtime.shard.overhead", max(0.0, wall - chunk)
                        )
                    for index, result in pairs:
                        slots[index] = result
                    aggregator.advance(len(shard))
            except BaseException:
                # Don't let queued chunks run to completion behind a
                # fatal error — surface it as soon as it happens.
                pool.shutdown(wait=False, cancel_futures=True)
                raise
        pool_seconds = time.perf_counter() - t_pool
        registry.add_time("runtime.pool", pool_seconds)
        if compute_seconds and pool_seconds > 0:
            registry.set_gauge(
                "runtime.worker_utilization",
                compute_seconds / (pool_seconds * n_workers),
            )
        return slots

    # ------------------------------------------------------------------
    # trial simulation
    # ------------------------------------------------------------------
    def run_tuple_trials(
        self,
        tuples: Sequence[TaskSetTuple],
        *,
        nmax: int,
        trials_per_tuple: int,
        root_seed: SeedLike,
        balanced: bool = True,
        tau: float = DEFAULT_TAU,
        progress: ProgressCallback | None = None,
        phase: str = "trials",
    ) -> list[TrialScoreResult]:
        """Run every tuple's permutation trials, serial or fanned out.

        Tuple ``k`` always simulates under child ``k`` of *root_seed*,
        so the returned list is bit-identical for any worker count or
        chunk size (including the ``workers=1`` in-process path).
        """
        n = len(tuples)
        seeds = spawn_seed_sequences(root_seed, n)
        aggregator = ProgressAggregator(progress, phase, n)

        if balanced and n > 0:
            # Warn about balanced-block rounding once per distinct |Q|
            # rather than per tuple; the per-tuple duplicates from
            # run_trials are suppressed below (serial) and in
            # run_trial_chunk (workers).
            rounded_q_sizes = sorted(
                {
                    len(tup.Q)
                    for tup in tuples
                    if balanced_trial_count(trials_per_tuple, len(tup.Q))
                    != trials_per_tuple
                }
            )
            for m_q in rounded_q_sizes:
                warnings.warn(
                    format_rounding_warning(trials_per_tuple, m_q), stacklevel=2
                )

        if self.config.n_workers == 1:
            results: list[TrialScoreResult] = []
            with warnings.catch_warnings():
                warnings.filterwarnings("ignore", message=ROUNDING_WARNING_PREFIX)
                for tup, seedseq in zip(tuples, seeds):
                    results.append(
                        run_trials(
                            tup,
                            nmax,
                            trials_per_tuple,
                            seed=np.random.default_rng(seedseq),
                            balanced=balanced,
                            tau=tau,
                        )
                    )
                    aggregator.advance()
            return results

        items = [(i, tup, seedseq) for i, (tup, seedseq) in enumerate(zip(tuples, seeds))]
        shards = plan_shards(n, self.config.chunk_for(n))
        collect = current_registry().enabled
        slots = self._fan_out(
            n,
            shards,
            lambda pool, shard: pool.submit(
                run_trial_chunk,
                [items[i] for i in shard],
                nmax,
                trials_per_tuple,
                balanced,
                tau,
                collect,
            ),
            aggregator,
        )
        missing = [i for i, r in enumerate(slots) if r is None]
        if missing:
            raise RuntimeError(
                f"worker chunks returned no result for tuple indices {missing}"
            )
        return slots

    # ------------------------------------------------------------------
    # generic fan-out
    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable,
        items: Sequence,
        *,
        progress: ProgressCallback | None = None,
        phase: str = "tasks",
    ) -> list:
        """``[fn(x) for x in items]`` with the runtime's dispatch policy.

        *fn* must be a module-level callable (or a ``functools.partial``
        of one) with picklable arguments when ``workers > 1``.  Result
        order always matches item order.  Unlike
        :meth:`run_tuple_trials` the default chunk here is 1 — map tasks
        (whole experiment rows) are coarse enough that load balancing
        beats batching.
        """
        n = len(items)
        aggregator = ProgressAggregator(progress, phase, n)

        if self.config.n_workers == 1:
            results = []
            for item in items:
                results.append(fn(item))
                aggregator.advance()
            return results

        indexed = list(enumerate(items))
        chunk = self.config.chunk_size if self.config.chunk_size is not None else 1
        shards = plan_shards(n, chunk)
        collect = current_registry().enabled
        # No missing-slot guard here: None is a legitimate fn return value.
        return self._fan_out(
            n,
            shards,
            lambda pool, shard: pool.submit(
                call_chunk, fn, [indexed[i] for i in shard], collect
            ),
            aggregator,
        )

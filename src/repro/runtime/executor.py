"""The work-list dispatcher: :class:`TrialRunner`.

``TrialRunner`` owns the fan-out of embarrassingly parallel work-lists —
the per-tuple permutation trials of the training pipeline
(:meth:`TrialRunner.run_tuple_trials`) and arbitrary experiment tasks
(:meth:`TrialRunner.map`, used for Table 4 rows, evaluation cells and
sensitivity sweeps).  It turns a work-list into a deterministic shard
plan and a list of picklable :class:`~repro.runtime.backends.ChunkCall`\\ s,
then hands execution to the configured
:class:`~repro.runtime.backends.ExecutorBackend` (``process``, ``local``
or ``workqueue`` — see :mod:`repro.runtime.backends`).

Determinism contract
--------------------
Results are **bit-identical** for every ``(workers, chunk_size,
backend)``:

* the work-list and its per-item seed sequences are fully materialised
  *before* dispatch (item ``k`` always gets child ``k`` of the root
  seed, exactly as the historical serial loop did);
* chunks carry their item indices, so completion order — which *is*
  nondeterministic — only affects progress-reporting order, never the
  position a result lands in;
* ``workers=1`` short-circuits to a plain in-process loop (no pool, no
  pickling) on backends that allow it (``inline_serial``), preserving
  the pre-runtime code path byte for byte; the work-queue backend opts
  out so its queue protocol is exercised even single-worker — and its
  results are identical anyway, because the chunk functions are pure.

Lifecycle: backends may hold persistent resources (the ``local``
backend keeps its worker processes alive between fan-outs), so runners
are context managers — ``with TrialRunner(cfg) as runner: ...`` — or
call :meth:`TrialRunner.close` when done.  The serial path and the
``process`` backend hold nothing, so forgetting to close is harmless
there.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable, Sequence

import numpy as np

from repro.core.taskgen import TaskSetTuple
from repro.core.trials import (
    ROUNDING_WARNING_PREFIX,
    TrialScoreResult,
    balanced_trial_count,
    format_rounding_warning,
    run_trials,
)
from repro.obs.metrics import current_registry
from repro.runtime.backends import ChunkCall, ExecutorBackend, create_backend
from repro.runtime.config import ExecutorConfig
from repro.runtime.progress import ProgressAggregator, ProgressCallback
from repro.runtime.sharding import plan_shards
from repro.runtime.worker import call_chunk, run_trial_chunk
from repro.sim.metrics import DEFAULT_TAU
from repro.util.rng import SeedLike, spawn_seed_sequences

__all__ = ["TrialRunner"]


class TrialRunner:
    """Dispatch deterministic work-lists over an executor backend."""

    def __init__(self, config: ExecutorConfig | None = None) -> None:
        self.config = config or ExecutorConfig()
        self._backend: ExecutorBackend | None = None

    @property
    def backend(self) -> ExecutorBackend:
        """The backend instance (created lazily on first use)."""
        if self._backend is None:
            self._backend = create_backend(self.config)
        return self._backend

    def close(self) -> None:
        """Release backend resources (idempotent)."""
        if self._backend is not None:
            self._backend.close()

    def __enter__(self) -> "TrialRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _serial_inline(self) -> bool:
        """Whether this config runs the in-process serial loop."""
        return self.config.n_workers == 1 and type(self.backend).inline_serial

    # ------------------------------------------------------------------
    # trial simulation
    # ------------------------------------------------------------------
    def run_tuple_trials(
        self,
        tuples: Sequence[TaskSetTuple],
        *,
        nmax: int,
        trials_per_tuple: int,
        root_seed: SeedLike,
        balanced: bool = True,
        tau: float = DEFAULT_TAU,
        progress: ProgressCallback | None = None,
        phase: str = "trials",
    ) -> list[TrialScoreResult]:
        """Run every tuple's permutation trials, serial or fanned out.

        Tuple ``k`` always simulates under child ``k`` of *root_seed*,
        so the returned list is bit-identical for any worker count,
        chunk size or backend (including the ``workers=1`` in-process
        path).
        """
        n = len(tuples)
        seeds = spawn_seed_sequences(root_seed, n)
        aggregator = ProgressAggregator(progress, phase, n)

        if balanced and n > 0:
            # Warn about balanced-block rounding once per distinct |Q|
            # rather than per tuple; the per-tuple duplicates from
            # run_trials are suppressed below (serial) and in
            # run_trial_chunk (workers).
            rounded_q_sizes = sorted(
                {
                    len(tup.Q)
                    for tup in tuples
                    if balanced_trial_count(trials_per_tuple, len(tup.Q))
                    != trials_per_tuple
                }
            )
            for m_q in rounded_q_sizes:
                warnings.warn(
                    format_rounding_warning(trials_per_tuple, m_q), stacklevel=2
                )

        if self._serial_inline():
            results: list[TrialScoreResult] = []
            with warnings.catch_warnings():
                warnings.filterwarnings("ignore", message=ROUNDING_WARNING_PREFIX)
                for tup, seedseq in zip(tuples, seeds):
                    results.append(
                        run_trials(
                            tup,
                            nmax,
                            trials_per_tuple,
                            seed=np.random.default_rng(seedseq),
                            balanced=balanced,
                            tau=tau,
                        )
                    )
                    aggregator.advance()
            return results

        items = [(i, tup, seedseq) for i, (tup, seedseq) in enumerate(zip(tuples, seeds))]
        shards = plan_shards(n, self.config.chunk_for(n))
        collect = current_registry().enabled
        calls = [
            ChunkCall(
                run_trial_chunk,
                (
                    [items[i] for i in shard],
                    nmax,
                    trials_per_tuple,
                    balanced,
                    tau,
                    collect,
                ),
                len(shard),
            )
            for shard in shards
        ]
        slots = self.backend.execute(calls, n, aggregator)
        missing = [i for i, r in enumerate(slots) if r is None]
        if missing:
            raise RuntimeError(
                f"worker chunks returned no result for tuple indices {missing}"
            )
        return slots

    # ------------------------------------------------------------------
    # generic fan-out
    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable,
        items: Sequence,
        *,
        progress: ProgressCallback | None = None,
        phase: str = "tasks",
    ) -> list:
        """``[fn(x) for x in items]`` with the runtime's dispatch policy.

        *fn* must be a module-level callable (or a ``functools.partial``
        of one) with picklable arguments when a worker process runs it.
        Result order always matches item order.  Unlike
        :meth:`run_tuple_trials` the default chunk here is 1 — map tasks
        (whole experiment rows) are coarse enough that load balancing
        beats batching.
        """
        n = len(items)
        aggregator = ProgressAggregator(progress, phase, n)

        if self._serial_inline():
            results = []
            for item in items:
                results.append(fn(item))
                aggregator.advance()
            return results

        indexed = list(enumerate(items))
        chunk = self.config.chunk_size if self.config.chunk_size is not None else 1
        shards = plan_shards(n, chunk)
        collect = current_registry().enabled
        calls = [
            ChunkCall(
                call_chunk, (fn, [indexed[i] for i in shard], collect), len(shard)
            )
            for shard in shards
        ]
        # No missing-slot guard here: None is a legitimate fn return value.
        return self.backend.execute(calls, n, aggregator)

"""Argument-validation helpers with consistent error messages.

The simulator and workload models validate aggressively at construction
time so that errors surface where the bad value originated instead of
deep inside an event loop thousands of events later.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np


def check_positive(name: str, value: float, *, allow_zero: bool = False) -> float:
    """Validate that *value* is a positive (or non-negative) finite number."""
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value!r}")
    elif value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_positive_int(name: str, value: Any, *, allow_zero: bool = False) -> int:
    """Validate that *value* is a positive (or non-negative) integer."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value}")
    elif value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Validate that ``low <= value <= high`` (or strict, if not inclusive)."""
    value = float(value)
    if inclusive:
        if not (low <= value <= high):
            raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    elif not (low < value < high):
        raise ValueError(f"{name} must be in ({low}, {high}), got {value!r}")
    return value


def check_finite(name: str, array: np.ndarray) -> np.ndarray:
    """Validate that every element of *array* is finite."""
    array = np.asarray(array)
    if array.size and not np.all(np.isfinite(array)):
        bad = int(np.flatnonzero(~np.isfinite(array.ravel()))[0])
        raise ValueError(
            f"{name} contains non-finite values (first at flat index {bad})"
        )
    return array

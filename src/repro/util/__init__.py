"""Shared utilities: seeding, validation, descriptive statistics.

These helpers are deliberately small and dependency-light; every other
subpackage builds on them.  Nothing in here knows about jobs, clusters or
policies.
"""

from repro.util.rng import RngFactory, as_generator, spawn_generators
from repro.util.stats import (
    BootstrapCI,
    BoxplotStats,
    Summary,
    ascii_boxplot,
    bootstrap_mean_ci,
    boxplot_stats,
    summarize,
)
from repro.util.validation import (
    check_finite,
    check_in_range,
    check_positive,
    check_positive_int,
)

__all__ = [
    "RngFactory",
    "as_generator",
    "spawn_generators",
    "BootstrapCI",
    "BoxplotStats",
    "Summary",
    "ascii_boxplot",
    "bootstrap_mean_ci",
    "boxplot_stats",
    "summarize",
    "check_finite",
    "check_in_range",
    "check_positive",
    "check_positive_int",
]

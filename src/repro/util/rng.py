"""Reproducible random-number management.

Every stochastic component in the library (workload models, permutation
trials, estimate models) accepts either an integer seed or a
:class:`numpy.random.Generator`.  Centralising the coercion here keeps the
whole pipeline reproducible from a single root seed: experiments spawn
independent child generators with :func:`spawn_generators`, which uses
NumPy's ``SeedSequence`` spawning so children are statistically independent
regardless of how many are created.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

SeedLike = int | np.random.Generator | np.random.SeedSequence | None


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (shared state),
    which lets callers thread one stream through several components when
    they explicitly want coupling.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seed_sequences(seed: SeedLike, count: int) -> list[np.random.SeedSequence]:
    """The *count* child :class:`~numpy.random.SeedSequence`\\ s of *seed*.

    This is the raw material behind :func:`spawn_generators`.  Child ``k``
    depends only on ``(seed, k)``, never on how many siblings are spawned
    or in which order they are consumed — which is what lets the parallel
    runtime hand child ``k`` to any worker process and still reproduce the
    serial stream bit for bit.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        seq = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a SeedSequence from the generator so spawning is still
        # deterministic given the generator's current state.
        seq = np.random.SeedSequence(seed.integers(0, 2**63 - 1, size=4).tolist())
    else:
        seq = np.random.SeedSequence(seed)
    return list(seq.spawn(count))


def spawn_generators(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Create *count* independent generators derived from *seed*.

    Independence holds for any value of *count*; adding more children later
    does not perturb the streams of earlier ones when the same root seed is
    used with a larger count (children are taken in order).
    """
    return [np.random.default_rng(child) for child in spawn_seed_sequences(seed, count)]


class RngFactory:
    """Deterministic factory of named random streams.

    Components ask for a stream by name (``factory.get("lublin")``); the
    same name always yields the same stream for a given root seed, no
    matter the order of requests.  This decouples reproducibility from
    call ordering, which matters when experiments run policies in
    different orders.
    """

    def __init__(self, root_seed: int | None = 0) -> None:
        self._root = np.random.SeedSequence(root_seed)
        self._cache: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator associated with *name* (created on demand)."""
        if name not in self._cache:
            # Hash the name into spawn-key material so the mapping is
            # stable across sessions and insertion orders.
            key = [b for b in name.encode("utf-8")]
            seq = np.random.SeedSequence(
                entropy=self._root.entropy, spawn_key=tuple(key)
            )
            self._cache[name] = np.random.default_rng(seq)
        return self._cache[name]

    def seeds(self, name: str, count: int) -> list[int]:
        """Return *count* deterministic integer seeds for stream *name*."""
        gen = self.get(name)
        return [int(x) for x in gen.integers(0, 2**62, size=count)]


def sample_without_replacement(
    rng: np.random.Generator, population: Sequence[int], size: int
) -> np.ndarray:
    """Thin, validated wrapper over ``Generator.choice(replace=False)``."""
    if size > len(population):
        raise ValueError(
            f"cannot sample {size} items from population of {len(population)}"
        )
    return rng.choice(np.asarray(population), size=size, replace=False)

"""Descriptive statistics used throughout the experiment harness.

The paper reports boxplots (median, quartiles, 1.5-IQR whiskers, outliers)
and tables of medians/means/standard deviations.  Matplotlib is not
available offline, so figures are reproduced as *data*: the exact numbers
a boxplot would draw, plus an ASCII rendering for terminal inspection.

:func:`bootstrap_mean_ci` adds uncertainty quantification on top: a
seeded (:mod:`repro.util.rng`), fully vectorised percentile bootstrap of
a sample mean — the evaluation subsystem runs it on paired per-window
policy deltas, so its confidence intervals say whether a policy's
advantage over a baseline survives window-to-window noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import SeedLike, as_generator


@dataclass(frozen=True)
class Summary:
    """Median / mean / standard deviation of a sample.

    Matches the statistics block printed by the paper's artifact
    (``sched-performance-tester``): medians, means and population-style
    standard deviations (ddof=1 when n > 1, else 0.0).
    """

    n: int
    median: float
    mean: float
    std: float
    min: float
    max: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.n} median={self.median:.2f} mean={self.mean:.2f} "
            f"std={self.std:.2f} min={self.min:.2f} max={self.max:.2f}"
        )


def summarize(values: np.ndarray | list[float]) -> Summary:
    """Compute a :class:`Summary` of *values* (must be non-empty)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    lo, hi = float(arr.min()), float(arr.max())
    # Summation rounding can push the computed mean (and interpolated
    # median) a ULP outside [min, max]; clamp to keep the invariant.
    mean = min(max(float(arr.mean()), lo), hi)
    median = min(max(float(np.median(arr)), lo), hi)
    return Summary(
        n=int(arr.size),
        median=median,
        mean=mean,
        std=std,
        min=lo,
        max=hi,
    )


#: Resampled-index matrices are built in blocks of at most this many
#: elements, bounding bootstrap memory at ~128 MiB of int64 indices no
#: matter how many windows or resamples are requested.  A fixed constant:
#: the blocking must not depend on the environment, or results would.
_BOOTSTRAP_BLOCK_ELEMENTS = 1 << 24


@dataclass(frozen=True)
class BootstrapCI:
    """A percentile-bootstrap confidence interval for a sample mean.

    ``point`` is the plain sample mean.  ``lo``/``hi`` are NaN when the
    interval is undefined — a sample of fewer than two values (a single
    evaluation window) or ``n_boot=0`` — in which case reports show the
    point estimate with the CI marked n/a rather than failing.
    """

    point: float
    lo: float
    hi: float
    level: float  # nominal coverage, e.g. 0.95
    n: int  # sample size
    n_boot: int  # resamples actually drawn (0 when undefined)

    @property
    def defined(self) -> bool:
        """Whether the interval carries information (finite bounds)."""
        return math.isfinite(self.lo) and math.isfinite(self.hi)

    @property
    def significant(self) -> bool | None:
        """True when the CI excludes zero; ``None`` when undefined.

        For a *paired delta* sample this is the usual bootstrap test of
        "is the policy really different from the baseline at this
        confidence level".
        """
        if not self.defined:
            return None
        return self.lo > 0.0 or self.hi < 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if not self.defined:
            return f"{self.point:.2f} (CI n/a, n={self.n})"
        return f"{self.point:.2f} [{self.lo:.2f}, {self.hi:.2f}]"


def bootstrap_mean_ci(
    values: np.ndarray | list[float],
    *,
    n_boot: int = 1000,
    level: float = 0.95,
    seed: SeedLike = 0,
) -> BootstrapCI:
    """Percentile-bootstrap CI of the mean of *values*.

    Draws *n_boot* resamples (with replacement, vectorised: one
    ``integers`` matrix + one fancy-indexed ``mean(axis=1)`` per block)
    and returns the ``(1-level)/2`` / ``(1+level)/2`` percentiles of the
    resampled means.  Fully deterministic for a fixed *seed* — the block
    size is a compile-time constant, so the draw order never depends on
    the machine.

    Degenerate inputs stay usable instead of raising: fewer than two
    values (no resampling variance to measure) or ``n_boot=0`` (bootstrap
    disabled) yield a :class:`BootstrapCI` with NaN bounds whose
    ``significant`` is ``None``.
    """
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be in (0, 1), got {level}")
    if n_boot < 0:
        raise ValueError(f"n_boot must be >= 0, got {n_boot}")
    point = float(arr.mean())
    if arr.size < 2 or n_boot == 0:
        return BootstrapCI(
            point=point,
            lo=float("nan"),
            hi=float("nan"),
            level=level,
            n=int(arr.size),
            n_boot=0,
        )
    rng = as_generator(seed)
    block = max(1, _BOOTSTRAP_BLOCK_ELEMENTS // arr.size)
    means = np.empty(n_boot, dtype=float)
    for start in range(0, n_boot, block):
        stop = min(start + block, n_boot)
        idx = rng.integers(0, arr.size, size=(stop - start, arr.size))
        means[start:stop] = arr[idx].mean(axis=1)
    alpha = (1.0 - level) / 2.0
    lo, hi = np.percentile(means, [100.0 * alpha, 100.0 * (1.0 - alpha)])
    return BootstrapCI(
        point=point,
        lo=float(lo),
        hi=float(hi),
        level=level,
        n=int(arr.size),
        n_boot=n_boot,
    )


@dataclass(frozen=True)
class BoxplotStats:
    """The numbers a matplotlib boxplot would draw for one sample.

    Whiskers extend to the most extreme data point within 1.5×IQR of the
    box, exactly as in the paper's figures; anything beyond is an outlier.
    """

    median: float
    q1: float
    q3: float
    whisker_low: float
    whisker_high: float
    outliers: tuple[float, ...] = field(default_factory=tuple)

    @property
    def iqr(self) -> float:
        """Inter-quartile range (box height)."""
        return self.q3 - self.q1


def boxplot_stats(values: np.ndarray | list[float]) -> BoxplotStats:
    """Compute boxplot statistics with 1.5×IQR whiskers."""
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        raise ValueError("cannot compute boxplot stats of an empty sample")
    q1, med, q3 = (float(q) for q in np.percentile(arr, [25, 50, 75]))
    iqr = q3 - q1
    lo_fence = q1 - 1.5 * iqr
    hi_fence = q3 + 1.5 * iqr
    inside = arr[(arr >= lo_fence) & (arr <= hi_fence)]
    # A whisker always exists because the median itself is inside the fence.
    whisker_low = float(inside[0])
    whisker_high = float(inside[-1])
    outliers = tuple(float(x) for x in arr[(arr < lo_fence) | (arr > hi_fence)])
    return BoxplotStats(
        median=med,
        q1=q1,
        q3=q3,
        whisker_low=whisker_low,
        whisker_high=whisker_high,
        outliers=outliers,
    )


def ascii_boxplot(
    samples: dict[str, np.ndarray | list[float]],
    *,
    width: int = 60,
    log10: bool = False,
) -> str:
    """Render labelled samples as a terminal boxplot.

    One row per label: ``|----[  #  ]------|`` where ``#`` is the median,
    ``[`` / ``]`` the quartiles and ``|`` the whiskers.  With *log10* the
    axis is logarithmic, which matches how slowdown distributions are
    usually inspected.
    """
    if not samples:
        raise ValueError("no samples to plot")
    stats = {label: boxplot_stats(vals) for label, vals in samples.items()}
    # Interpolated quartiles can lie outside the whiskers for tiny samples,
    # so the axis must cover the box as well as the whiskers.
    lo = min(min(s.whisker_low, s.q1) for s in stats.values())
    hi = max(max(s.whisker_high, s.q3) for s in stats.values())
    if log10:
        lo = max(lo, 1e-12)
        hi = max(hi, lo * 10)

        def pos(x: float) -> int:
            x = min(max(x, lo), hi)
            frac = (np.log10(x) - np.log10(lo)) / (np.log10(hi) - np.log10(lo))
            return min(max(int(round(frac * (width - 1))), 0), width - 1)

    else:
        span = hi - lo or 1.0

        def pos(x: float) -> int:
            frac = (min(max(x, lo), hi) - lo) / span
            return min(max(int(round(frac * (width - 1))), 0), width - 1)

    label_w = max(len(label) for label in stats)
    lines = []
    for label, s in stats.items():
        row = [" "] * width
        for i in range(pos(s.whisker_low), pos(s.whisker_high) + 1):
            row[i] = "-"
        row[pos(s.whisker_low)] = "|"
        row[pos(s.whisker_high)] = "|"
        for i in range(pos(s.q1), pos(s.q3) + 1):
            if row[i] == "-":
                row[i] = "="
        row[pos(s.q1)] = "["
        row[pos(s.q3)] = "]"
        row[pos(s.median)] = "#"
        lines.append(f"{label:>{label_w}} {''.join(row)} median={s.median:.2f}")
    axis = f"{'':>{label_w}} {lo:<12.4g}{'':^{max(width - 24, 0)}}{hi:>12.4g}"
    return "\n".join(lines + [axis])

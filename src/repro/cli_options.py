"""Shared argparse option types and flag groups for the CLI.

Every ``repro-sched`` subcommand used to re-declare its own CSV
splitter, worker-count parser and cache-directory validator; this module
is now the single home of those helpers, so all verbs accept identical
spellings (and error messages) for the same concepts:

* value types — :func:`split_csv`, :func:`workers_type`,
  :func:`cache_dir_type`, :func:`bootstrap_type`, :func:`ci_level_type`,
  :func:`trace_source_type` (a path or a ``pwa:<name>`` registry
  reference, validated against :mod:`repro.traces` at parse time);
* flag groups — :func:`add_workers_arg`, :func:`add_backend_arg`,
  :func:`add_cache_arg`, :func:`add_scale_arg` attach the ``--workers``
  / ``--backend`` / ``--cache`` / ``--scale`` flags with one shared
  help text;
* environment resolution — :func:`workers_from` applies the
  ``$REPRO_WORKERS`` default, :func:`backend_from` the
  ``$REPRO_BACKEND`` default, :func:`scale_name_from` keeps the chosen
  preset *name* (specs resolve names to numbers themselves).
"""

from __future__ import annotations

import argparse
import os

from repro.experiments.scale import SCALES, current_workers
from repro.runtime import BACKEND_NAMES, resolve_backend, resolve_workers

__all__ = [
    "add_backend_arg",
    "add_cache_arg",
    "add_platform_args",
    "add_scale_arg",
    "add_telemetry_arg",
    "add_workers_arg",
    "backend_from",
    "bootstrap_type",
    "cache_dir_type",
    "ci_level_type",
    "split_csv",
    "telemetry_dir_from",
    "topology_type",
    "trace_source_type",
    "workers_from",
    "workers_type",
]


# ----------------------------------------------------------------------
# argparse value types
# ----------------------------------------------------------------------
def split_csv(value: str) -> list[str]:
    """Comma-separated list -> stripped, non-empty items."""
    items = [part.strip() for part in value.split(",") if part.strip()]
    if not items:
        raise argparse.ArgumentTypeError(f"empty list {value!r}")
    return items


def workers_type(value: str) -> int:
    """An integer worker count or ``auto``."""
    try:
        return resolve_workers(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def cache_dir_type(value: str) -> str:
    """A path that is usable as a cache directory."""
    if os.path.exists(value) and not os.path.isdir(value):
        raise argparse.ArgumentTypeError(f"{value!r} exists and is not a directory")
    return value


def trace_source_type(value: str) -> str:
    """An SWF path or a ``pwa:<name>`` trace-registry reference.

    Plain paths pass through untouched (existence is checked when the
    file is opened); registry references are validated at parse time so
    a typo'd name fails with the list of registered traces instead of a
    download error later.
    """
    from repro.traces import UnknownTraceError, get_source, is_trace_ref, trace_ref_name

    if is_trace_ref(value):
        try:
            get_source(trace_ref_name(value))
        except (UnknownTraceError, ValueError) as exc:
            raise argparse.ArgumentTypeError(str(exc)) from None
    return value


def topology_type(value: str) -> tuple[int, ...]:
    """A platform topology spelling: ``2x4`` -> ``(2, 4)``.

    Each ``x``-separated level is a fanout; the leaf count is their
    product (``2x4`` = 8 leaves).  ``1`` is accepted and provably
    byte-identical to the flat machine.
    """
    from repro.sim.platform import normalize_topology

    try:
        topo = normalize_topology(
            tuple(int(part) for part in value.lower().split("x"))
        )
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"bad topology {value!r}; expected positive integers joined"
            f" by 'x' (e.g. 2x4): {exc}"
        ) from None
    if topo is None:
        raise argparse.ArgumentTypeError(f"empty topology {value!r}")
    return topo


def bootstrap_type(value: str) -> int:
    """A non-negative bootstrap resample count."""
    try:
        n_boot = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {value!r}") from None
    if n_boot < 0:
        raise argparse.ArgumentTypeError(f"--bootstrap must be >= 0, got {value}")
    return n_boot


def ci_level_type(value: str) -> float:
    """A bootstrap coverage level in (0, 1)."""
    try:
        level = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {value!r}") from None
    if not 0.0 < level < 1.0:
        raise argparse.ArgumentTypeError(
            f"--ci must be a coverage level in (0, 1), got {value}"
        )
    return level


# ----------------------------------------------------------------------
# shared flag groups
# ----------------------------------------------------------------------
def add_workers_arg(p: argparse.ArgumentParser) -> None:
    """Attach the standard ``--workers`` flag."""
    p.add_argument(
        "--workers",
        type=workers_type,
        default=None,
        metavar="N",
        help="worker processes: an integer or 'auto' "
        "(default: $REPRO_WORKERS or 1; results are identical either way)",
    )


def add_backend_arg(p: argparse.ArgumentParser) -> None:
    """Attach the standard ``--backend`` flag."""
    p.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=None,
        help="executor backend for parallel phases: 'process' (pool per"
        " run), 'local' (persistent work-stealing workers) or 'workqueue'"
        " (filesystem queue with crash retry; see $REPRO_QUEUE_DIR)"
        " (default: $REPRO_BACKEND or 'process'; results are bit-identical"
        " on every backend)",
    )


def add_cache_arg(p: argparse.ArgumentParser, what: str) -> None:
    """Attach the standard ``--cache`` flag (*what* names the artifact)."""
    p.add_argument(
        "--cache",
        type=cache_dir_type,
        metavar="DIR",
        help="artifact-cache directory; a re-run with an unchanged config"
        f" loads {what} instead of re-simulating",
    )


def add_telemetry_arg(p: argparse.ArgumentParser) -> None:
    """Attach the standard ``--telemetry`` flag.

    ``--telemetry`` alone writes next to ``--output-dir`` (or into
    ``./telemetry``); ``--telemetry DIR`` chooses the directory.  The
    empty-string ``const`` is the "flag given, no directory" sentinel
    that :func:`telemetry_dir_from` resolves.
    """
    p.add_argument(
        "--telemetry",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help="collect metrics/spans and write run_manifest.json,"
        " metrics.json and spans.jsonl (default DIR: --output-dir if"
        " given, else ./telemetry); never changes any result or report"
        " byte — inspect with `repro-sched stats DIR`",
    )


def add_platform_args(p: argparse.ArgumentParser) -> None:
    """Attach the standard ``--topology`` / ``--distribution`` flags."""
    from repro.sim.platform import DISTRIBUTIONS

    p.add_argument(
        "--topology",
        type=topology_type,
        default=None,
        metavar="LxM",
        help="partition the machine into equal leaves (e.g. 2x4 = 8"
        " leaves), each running its own scheduler instance; nmax must"
        " divide evenly and every job must fit one leaf (default: the"
        " paper's flat machine)",
    )
    p.add_argument(
        "--distribution",
        choices=DISTRIBUTIONS,
        default="round_robin",
        help="job-to-leaf distribution strategy for --topology runs"
        " (default: round_robin; 'random' is seeded by --seed)",
    )


def add_scale_arg(p: argparse.ArgumentParser) -> None:
    """Attach the standard ``--scale`` preset flag."""
    p.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="experiment scale preset (default: $REPRO_SCALE or 'small')",
    )


# ----------------------------------------------------------------------
# environment resolution
# ----------------------------------------------------------------------
def telemetry_dir_from(args: argparse.Namespace) -> str | None:
    """The telemetry output directory, or ``None`` when not requested.

    Resolution order for a bare ``--telemetry``: the verb's
    ``--output-dir`` (reports and manifest side by side), else
    ``./telemetry``.
    """
    value = getattr(args, "telemetry", None)
    if value is None:
        return None
    if value:
        return value
    return getattr(args, "output_dir", None) or "telemetry"


def workers_from(args: argparse.Namespace) -> int:
    """``--workers`` if given, else the ``$REPRO_WORKERS`` default."""
    workers = getattr(args, "workers", None)
    if workers is not None:
        return workers
    try:
        return current_workers()
    except ValueError as exc:
        raise SystemExit(f"repro-sched: bad $REPRO_WORKERS: {exc}") from None


def backend_from(args: argparse.Namespace) -> str:
    """``--backend`` if given, else the ``$REPRO_BACKEND`` default."""
    try:
        return resolve_backend(getattr(args, "backend", None))
    except ValueError as exc:
        raise SystemExit(f"repro-sched: bad $REPRO_BACKEND: {exc}") from None

"""repro.eval — real-trace evaluation subsystem.

Turns a workload trace (SWF from the Parallel Workloads Archive, or a
synthetic stand-in) into many independent evaluation scenarios and
benchmarks scheduling policies across them at worker-pool speed:

* :mod:`repro.eval.windows` — streaming window slicing: contiguous
  windows of N jobs or T seconds, warm-up trimming, per-window clock
  re-basing.
* :mod:`repro.eval.matrix` — the {policies × backfill × windows} matrix
  runner over :class:`repro.runtime.TrialRunner`, with per-cell
  content-addressed cache keys: re-running an unchanged config is free.
* :mod:`repro.eval.report` — per-series summaries, paired per-window
  policy deltas, CSV/JSON export and a terminal report.

The CLI front-end is ``repro-sched evaluate``.
"""

from repro.eval.matrix import (
    BACKFILL_TOKENS,
    CellResult,
    MatrixConfig,
    MatrixResult,
    run_matrix,
)
from repro.eval.report import (
    matrix_to_csv,
    matrix_to_json,
    render_matrix_report,
    write_matrix_report,
)
from repro.eval.windows import Window, slice_windows, workload_fingerprint

__all__ = [
    "BACKFILL_TOKENS",
    "CellResult",
    "MatrixConfig",
    "MatrixResult",
    "Window",
    "matrix_to_csv",
    "matrix_to_json",
    "render_matrix_report",
    "run_matrix",
    "slice_windows",
    "workload_fingerprint",
    "write_matrix_report",
]

"""repro.eval — real-trace evaluation subsystem.

Turns a workload trace (SWF from the Parallel Workloads Archive, or a
synthetic stand-in) into many independent evaluation scenarios and
benchmarks scheduling policies across them at worker-pool speed:

* :mod:`repro.eval.windows` — window slicing: contiguous windows of N
  jobs or T seconds, warm-up trimming, per-window clock re-basing —
  batch (:func:`slice_windows`) or lazily from a job stream
  (:func:`stream_windows`), with identical content fingerprints either
  way.
* :mod:`repro.eval.matrix` — the {policies × backfill × windows} matrix
  runner over :class:`repro.runtime.TrialRunner`: **bit-identical for
  any worker count, chunk size, and window path (streamed or
  materialised)**, with per-cell content-addressed cache keys so
  re-running an unchanged config simulates nothing.
* :mod:`repro.eval.report` — per-series summaries, paired per-window
  policy deltas with seeded percentile-bootstrap confidence intervals,
  CSV/JSON export and a terminal report.

The CLI front-end is ``repro-sched evaluate`` (``--stream`` for lazy
trace replay, ``--bootstrap``/``--ci`` for the interval settings).
"""

from repro.eval.matrix import (
    BACKFILL_TOKENS,
    CellResult,
    MatrixConfig,
    MatrixResult,
    run_matrix,
)
from repro.eval.report import (
    deltas_to_csv,
    matrix_to_csv,
    matrix_to_json,
    paper_comparison_doc,
    render_matrix_report,
    render_paper_comparison,
    write_matrix_report,
)
from repro.eval.windows import (
    Window,
    slice_windows,
    stream_windows,
    workload_fingerprint,
)

__all__ = [
    "BACKFILL_TOKENS",
    "CellResult",
    "MatrixConfig",
    "MatrixResult",
    "Window",
    "deltas_to_csv",
    "matrix_to_csv",
    "matrix_to_json",
    "paper_comparison_doc",
    "render_matrix_report",
    "render_paper_comparison",
    "run_matrix",
    "slice_windows",
    "stream_windows",
    "workload_fingerprint",
    "write_matrix_report",
]

"""Aggregation and reporting of evaluation-matrix results.

Per-cell metrics become three artifacts:

* a long-format CSV (one row per cell — the raw material for any
  plotting tool),
* a JSON document (config + cells + per-series summaries, for
  programmatic consumers),
* a terminal report: per backfill mode, one table of per-policy
  AVEbsld statistics over windows plus *paired* per-window deltas
  against a baseline policy (both series of a pair saw the identical
  job stream, so the delta isolates the policy decision).

The CSV/JSON writers are wired into :func:`repro.experiments.export.write_all`
alongside the figure exporters.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import numpy as np

from repro.eval.matrix import MatrixResult
from repro.policies.registry import get_policy

__all__ = [
    "matrix_to_csv",
    "matrix_to_json",
    "render_matrix_report",
    "write_matrix_report",
]


def matrix_to_csv(result: MatrixResult) -> str:
    """Long-format per-cell rows: one line per (window, policy, backfill)."""
    buf = io.StringIO()
    cfg = result.config
    buf.write(
        f"# trace={result.trace_name} nmax={result.nmax}"
        f" windows={result.n_windows} warmup={cfg.warmup}"
        f" estimates={cfg.use_estimates} tau={cfg.tau:g}\n"
    )
    buf.write(
        "window,policy,backfill,n_jobs,n_scored,ave_bsld,"
        "utilization,makespan,backfilled\n"
    )
    for c in result.cells:
        buf.write(
            f"{c.window},{c.policy},{c.backfill},{c.n_jobs},{c.n_scored},"
            f"{c.ave_bsld:.10g},{c.utilization:.10g},{c.makespan:.10g},"
            f"{c.backfilled}\n"
        )
    return buf.getvalue()


def matrix_to_json(result: MatrixResult) -> str:
    """Config + cells + per-series summaries as one JSON document."""
    cfg = result.config
    summaries = {
        f"{p}/{b}": {
            "n": s.n,
            "median": s.median,
            "mean": s.mean,
            "std": s.std,
            "min": s.min,
            "max": s.max,
        }
        for (p, b), s in result.summaries().items()
    }
    doc = {
        "trace": result.trace_name,
        "nmax": result.nmax,
        "n_windows": result.n_windows,
        "n_simulated": result.n_simulated,
        "n_cached": result.n_cached,
        "config": {
            "policies": list(cfg.policies),
            "backfill": list(cfg.backfill),
            "use_estimates": cfg.use_estimates,
            "tau": cfg.tau,
            "window_jobs": cfg.window_jobs,
            "window_seconds": cfg.window_seconds,
            "warmup": cfg.warmup,
            "max_windows": cfg.max_windows,
            "seed": cfg.seed,
        },
        "summaries": summaries,
        "cells": [c.to_entry() for c in result.cells],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def render_matrix_report(result: MatrixResult, *, baseline: str | None = None) -> str:
    """Terminal report: per-mode policy tables + paired deltas.

    *baseline* (default: the matrix's first policy) anchors the delta
    block; negative deltas mean the policy beat the baseline in that
    window.
    """
    cfg = result.config
    base = get_policy(baseline).name if baseline else cfg.policies[0]
    summaries = result.summaries()
    deltas = result.paired_deltas(base) if len(cfg.policies) > 1 else {}

    lines = [
        f"Evaluation matrix for {result.trace_name}"
        f" (nmax={result.nmax}, {result.n_windows} windows,"
        f" {'estimates' if cfg.use_estimates else 'actual runtimes'})",
        f"cells: {len(result.cells)}"
        f" (simulated {result.n_simulated}, cached {result.n_cached})",
    ]
    col = max(9, *(len(p) + 2 for p in cfg.policies))
    for mode in cfg.backfill:
        lines.append(f"\nbackfill={mode}  AVEbsld over windows:")
        head = "".ljust(10) + "".join(p.rjust(col) for p in cfg.policies)
        lines.append(head)
        for stat in ("median", "mean", "std"):
            row = stat.ljust(10) + "".join(
                f"{getattr(summaries[(p, mode)], stat):.2f}".rjust(col)
                for p in cfg.policies
            )
            lines.append(row)
        util = "util".ljust(10) + "".join(
            f"{np.mean([c.utilization for c in result.cells if c.policy == p and c.backfill == mode]):.3f}".rjust(
                col
            )
            for p in cfg.policies
        )
        lines.append(util)
        if deltas:
            lines.append(f"paired Δ vs {base} (negative = better), per window:")
            for p in cfg.policies:
                if p == base:
                    continue
                d = deltas[(p, mode)]
                wins = int((d < 0).sum())
                lines.append(
                    f"  {p:<8s} median Δ={float(np.median(d)):+.2f}"
                    f"  mean Δ={float(d.mean()):+.2f}"
                    f"  wins {wins}/{len(d)}"
                )
    lines.append(
        f"\nbest policy (lowest median AVEbsld): {result.best()}"
    )
    return "\n".join(lines)


def write_matrix_report(
    directory: str | Path, result: MatrixResult, *, stem: str = "eval_matrix"
) -> list[Path]:
    """Write ``<stem>.csv`` and ``<stem>.json`` into *directory*."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for suffix, text in ((".csv", matrix_to_csv(result)), (".json", matrix_to_json(result))):
        path = directory / f"{stem}{suffix}"
        path.write_text(text, encoding="utf-8")
        paths.append(path)
    return paths

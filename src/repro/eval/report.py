"""Aggregation and reporting of evaluation-matrix results.

Per-cell metrics become four artifacts:

* a long-format CSV (one row per cell — the raw material for any
  plotting tool),
* a paired-deltas CSV (one row per non-baseline series, with
  ``delta_ci_low``/``delta_ci_high`` bootstrap bounds and a significance
  column),
* a JSON document (config + cells + per-series summaries + bootstrap
  deltas, for programmatic consumers),
* a terminal report: per backfill mode, one table of per-policy
  AVEbsld statistics over windows plus *paired* per-window deltas
  against a baseline policy (both series of a pair saw the identical
  job stream, so the delta isolates the policy decision), each with
  its bootstrap confidence interval and a ``*`` significance marker.

Every statistic here is a deterministic function of the matrix result:
the bootstrap intervals are seeded from the matrix config's seed
(:meth:`~repro.eval.matrix.MatrixResult.delta_cis`), so reports are
bit-identical across re-runs, worker counts and the streamed/
materialised window paths.  A series with a single window degenerates
gracefully: the point estimate is reported with its CI marked n/a.

The CSV/JSON writers are wired into :func:`repro.experiments.export.write_all`
alongside the figure exporters.
"""

from __future__ import annotations

import io
import json
import math
from pathlib import Path

import numpy as np

from repro.eval.matrix import MatrixConfig, MatrixResult
from repro.policies.registry import get_policy
from repro.sim.platform import platform_identity, topology_label
from repro.util.stats import BootstrapCI

__all__ = [
    "deltas_to_csv",
    "matrix_to_csv",
    "matrix_to_json",
    "paper_comparison_doc",
    "render_matrix_report",
    "render_paper_comparison",
    "write_matrix_report",
]


def _finite_or_none(value: float) -> float | None:
    """NaN-free JSON representation of a possibly-undefined CI bound."""
    return value if math.isfinite(value) else None


def _significance_token(ci: BootstrapCI) -> str:
    """CSV/terminal spelling of the three-valued significance."""
    if ci.significant is None:
        return "n/a"
    return "yes" if ci.significant else "no"


def _platform_suffix(cfg: MatrixConfig) -> str:
    """Header suffix naming the platform, empty on the flat machine.

    Gated on :func:`repro.sim.platform.platform_identity` so flat (and
    product-1) matrices render byte-identical reports to the
    pre-platform library — the CI topology-smoke job byte-compares them.
    """
    if platform_identity(cfg.topology, cfg.distribution, cfg.seed) is None:
        return ""
    return (
        f" topology={topology_label(cfg.topology)}"
        f" distribution={cfg.distribution}"
    )


def matrix_to_csv(result: MatrixResult) -> str:
    """Long-format per-cell rows: one line per (window, policy, backfill)."""
    buf = io.StringIO()
    cfg = result.config
    buf.write(
        f"# trace={result.trace_name} nmax={result.nmax}"
        f" windows={result.n_windows} warmup={cfg.warmup}"
        f" estimates={cfg.use_estimates} tau={cfg.tau:g}"
        f"{_platform_suffix(cfg)}\n"
    )
    buf.write(
        "window,policy,backfill,n_jobs,n_scored,ave_bsld,"
        "utilization,makespan,backfilled\n"
    )
    for c in result.cells:
        buf.write(
            f"{c.window},{c.policy},{c.backfill},{c.n_jobs},{c.n_scored},"
            f"{c.ave_bsld:.10g},{c.utilization:.10g},{c.makespan:.10g},"
            f"{c.backfilled}\n"
        )
    return buf.getvalue()


def deltas_to_csv(
    result: MatrixResult,
    *,
    baseline: str | None = None,
    n_boot: int = 1000,
    level: float = 0.95,
) -> str:
    """Per-series paired deltas vs *baseline*, with bootstrap CI columns.

    One row per (policy, backfill) series other than the baseline:
    sample statistics of the per-window deltas plus
    ``delta_ci_low``/``delta_ci_high`` (empty-valued ``nan`` when the
    series has a single window) and a ``significant`` column
    (``yes``/``no``/``n/a``).  Negative deltas mean the policy beat the
    baseline.
    """
    cfg = result.config
    base = get_policy(baseline).name if baseline else cfg.policies[0]
    cis = result.delta_cis(base, n_boot=n_boot, level=level)
    deltas = result.paired_deltas(base)
    buf = io.StringIO()
    buf.write(
        f"# trace={result.trace_name} baseline={base}"
        f" bootstrap={n_boot} level={level:g} seed={cfg.seed}\n"
    )
    buf.write(
        "policy,backfill,baseline,n_windows,median_delta,mean_delta,"
        "delta_ci_low,delta_ci_high,significant,wins\n"
    )
    for (p, b), ci in cis.items():
        d = deltas[(p, b)]
        buf.write(
            f"{p},{b},{base},{ci.n},{float(np.median(d)):.10g},"
            f"{ci.point:.10g},{ci.lo:.10g},{ci.hi:.10g},"
            f"{_significance_token(ci)},{int((d < 0).sum())}\n"
        )
    return buf.getvalue()


def matrix_to_json(
    result: MatrixResult,
    *,
    baseline: str | None = None,
    n_boot: int = 1000,
    level: float = 0.95,
    paper: str | None = None,
) -> str:
    """Config + cells + per-series summaries + bootstrap deltas as JSON.

    With *paper* (a Table 4 row prefix such as ``"ctc_sp2"``) the
    document additionally carries a ``paper`` block — see
    :func:`paper_comparison_doc`."""
    cfg = result.config
    summaries = {
        f"{p}/{b}": {
            "n": s.n,
            "median": s.median,
            "mean": s.mean,
            "std": s.std,
            "min": s.min,
            "max": s.max,
        }
        for (p, b), s in result.summaries().items()
    }
    base = get_policy(baseline).name if baseline else cfg.policies[0]
    delta_doc = {}
    if len(cfg.policies) > 1:
        delta_samples = result.paired_deltas(base)
        for (p, b), ci in result.delta_cis(base, n_boot=n_boot, level=level).items():
            d = delta_samples[(p, b)]
            delta_doc[f"{p}/{b}"] = {
                "n": ci.n,
                "median": float(np.median(d)),
                "mean": ci.point,
                "delta_ci_low": _finite_or_none(ci.lo),
                "delta_ci_high": _finite_or_none(ci.hi),
                "significant": ci.significant,
                "wins": int((d < 0).sum()),
            }
    doc = {
        "trace": result.trace_name,
        "nmax": result.nmax,
        "n_windows": result.n_windows,
        "n_simulated": result.n_simulated,
        "n_cached": result.n_cached,
        "config": _config_doc(cfg),
        "bootstrap": {"baseline": base, "n_boot": n_boot, "level": level},
        "deltas": delta_doc,
        "summaries": summaries,
        "cells": [c.to_entry() for c in result.cells],
    }
    if paper is not None:
        doc["paper"] = {
            "prefix": paper,
            "comparison": paper_comparison_doc(result, paper),
        }
    return json.dumps(doc, indent=2, sort_keys=True)


def _config_doc(cfg: MatrixConfig) -> dict:
    """The JSON ``config`` block; platform keys only when partitioned,
    so flat documents keep their historical bytes."""
    doc = {
        "policies": list(cfg.policies),
        "backfill": list(cfg.backfill),
        "use_estimates": cfg.use_estimates,
        "tau": cfg.tau,
        "window_jobs": cfg.window_jobs,
        "window_seconds": cfg.window_seconds,
        "warmup": cfg.warmup,
        "max_windows": cfg.max_windows,
        "seed": cfg.seed,
    }
    if platform_identity(cfg.topology, cfg.distribution, cfg.seed) is not None:
        doc["topology"] = list(cfg.topology)
        doc["distribution"] = cfg.distribution
    return doc


def paper_comparison_doc(result: MatrixResult, prefix: str) -> dict:
    """Paper-vs-measured medians as plain data (the JSON ``paper`` block).

    For each backfill mode of the matrix, the closest paper Table 4 row
    (:func:`repro.experiments.paper_data.paper_row_id`) is looked up and
    every policy present in both gets ``{"paper": …, "measured": …,
    "ratio": …}`` where *measured* is the median AVEbsld over windows.
    Modes or policies without a paper counterpart are simply absent;
    an empty dict means the paper has no rows for *prefix* at all.
    """
    from repro.experiments.paper_data import paper_row, paper_row_id

    cfg = result.config
    summaries = result.summaries()
    doc: dict = {}
    for mode in cfg.backfill:
        row_id = paper_row_id(
            prefix, backfill=mode, use_estimates=cfg.use_estimates
        )
        if row_id is None:
            continue
        published = paper_row(row_id)
        policies = {}
        for policy in cfg.policies:
            if policy not in published:
                continue
            measured = summaries[(policy, mode)].median
            paper_value = published[policy]
            policies[policy] = {
                "paper": paper_value,
                "measured": measured,
                "ratio": measured / paper_value if paper_value else math.inf,
            }
        if policies:
            doc[mode] = {"row": row_id, "policies": policies}
    return doc


def render_paper_comparison(result: MatrixResult, prefix: str) -> str | None:
    """Terminal paper-vs-measured block, or ``None`` without paper rows.

    One table per backfill mode that has a paper Table 4 counterpart:
    the paper's median AVEbsld, the measured median over this run's
    windows, and their ratio.  The comparison is indicative, not exact —
    the paper replays ten 15-day sequences per trace while this run's
    windowing is whatever the spec declared — which is why the block
    names the paper row it compares against.
    """
    doc = paper_comparison_doc(result, prefix)
    if not doc:
        return None
    lines = [
        f"paper-vs-measured for {result.trace_name}"
        " (median AVEbsld; paper = Table 4, measured = this run's windows):"
    ]
    for mode, block in doc.items():
        lines.append(f"  backfill={mode}  [paper row {block['row']}]")
        lines.append(
            "    " + "policy".ljust(8) + "paper".rjust(12) + "measured".rjust(12) + "ratio".rjust(9)
        )
        for policy, cell in block["policies"].items():
            lines.append(
                "    "
                + policy.ljust(8)
                + f"{cell['paper']:.2f}".rjust(12)
                + f"{cell['measured']:.2f}".rjust(12)
                + f"{cell['ratio']:.2f}x".rjust(9)
            )
    return "\n".join(lines)


def render_matrix_report(
    result: MatrixResult,
    *,
    baseline: str | None = None,
    n_boot: int = 1000,
    level: float = 0.95,
) -> str:
    """Terminal report: per-mode policy tables + paired deltas with CIs.

    *baseline* (default: the matrix's first policy) anchors the delta
    block; negative deltas mean the policy beat the baseline in that
    window.  Each delta line carries its percentile-bootstrap interval
    (*n_boot* resamples at coverage *level*, seeded from the config) and
    a ``*`` marker when the interval excludes zero; a single-window
    series prints its point estimate with ``CI n/a`` instead of
    crashing on the degenerate spread.
    """
    cfg = result.config
    base = get_policy(baseline).name if baseline else cfg.policies[0]
    summaries = result.summaries()
    deltas = result.paired_deltas(base) if len(cfg.policies) > 1 else {}
    cis = (
        result.delta_cis(base, n_boot=n_boot, level=level)
        if len(cfg.policies) > 1
        else {}
    )

    lines = [
        f"Evaluation matrix for {result.trace_name}"
        f" (nmax={result.nmax}, {result.n_windows} windows,"
        f" {'estimates' if cfg.use_estimates else 'actual runtimes'}"
        f"{',' + _platform_suffix(cfg) if _platform_suffix(cfg) else ''})",
        f"cells: {len(result.cells)}"
        f" (simulated {result.n_simulated}, cached {result.n_cached})",
    ]
    col = max(9, *(len(p) + 2 for p in cfg.policies))
    for mode in cfg.backfill:
        lines.append(f"\nbackfill={mode}  AVEbsld over windows:")
        head = "".ljust(10) + "".join(p.rjust(col) for p in cfg.policies)
        lines.append(head)
        for stat in ("median", "mean", "std"):
            row = stat.ljust(10) + "".join(
                f"{getattr(summaries[(p, mode)], stat):.2f}".rjust(col)
                for p in cfg.policies
            )
            lines.append(row)
        util = "util".ljust(10) + "".join(
            f"{np.mean([c.utilization for c in result.cells if c.policy == p and c.backfill == mode]):.3f}".rjust(
                col
            )
            for p in cfg.policies
        )
        lines.append(util)
        if deltas:
            lines.append(
                f"paired Δ vs {base} (negative = better),"
                f" {level:.0%} bootstrap CI (* = excludes 0):"
            )
            for p in cfg.policies:
                if p == base:
                    continue
                d = deltas[(p, mode)]
                ci = cis[(p, mode)]
                wins = int((d < 0).sum())
                if ci.defined:
                    ci_text = (
                        f"CI [{ci.lo:+.2f}, {ci.hi:+.2f}]"
                        f"{'*' if ci.significant else ' '}"
                    )
                else:
                    ci_text = f"CI n/a ({ci.n} window{'s' if ci.n != 1 else ''})"
                lines.append(
                    f"  {p:<8s} median Δ={float(np.median(d)):+.2f}"
                    f"  mean Δ={ci.point:+.2f}"
                    f"  {ci_text}"
                    f"  wins {wins}/{len(d)}"
                )
    lines.append(
        f"\nbest policy (lowest median AVEbsld): {result.best()}"
    )
    return "\n".join(lines)


def write_matrix_report(
    directory: str | Path,
    result: MatrixResult,
    *,
    stem: str = "eval_matrix",
    baseline: str | None = None,
    n_boot: int = 1000,
    level: float = 0.95,
    paper: str | None = None,
) -> list[Path]:
    """Write ``<stem>.csv``, ``<stem>.json`` (and, for matrices with more
    than one policy, ``<stem>_deltas.csv``) into *directory*.  *paper*
    (a Table 4 row prefix) adds the paper-vs-measured block to the JSON."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    artifacts = [
        (f"{stem}.csv", matrix_to_csv(result)),
        (
            f"{stem}.json",
            matrix_to_json(
                result, baseline=baseline, n_boot=n_boot, level=level, paper=paper
            ),
        ),
    ]
    if len(result.config.policies) > 1:
        artifacts.append(
            (
                f"{stem}_deltas.csv",
                deltas_to_csv(result, baseline=baseline, n_boot=n_boot, level=level),
            )
        )
    paths = []
    for name, text in artifacts:
        path = directory / name
        path.write_text(text, encoding="utf-8")
        paths.append(path)
    return paths

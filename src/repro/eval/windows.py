"""Streaming/windowed trace slicing for the evaluation subsystem.

Real Parallel Workloads Archive traces span months and hundreds of
thousands of jobs; evaluating policies on them as one monolithic run
conflates epochs, drowns the metric in a single number and cannot be
fanned out.  This module cuts a :class:`~repro.sim.job.Workload` into
contiguous *windows* — of a fixed job count or a fixed duration — each
of which becomes an independent evaluation scenario:

* every window's clock is re-based to start at zero (per-window
  normalization; the per-window simulations are independent, exactly
  like the paper's per-sequence experiments),
* the first *warmup* jobs of a window are simulated but excluded from
  the reported metrics, so a window's score is not dominated by the
  artificially empty machine it starts with,
* windows are contiguous and non-overlapping, so a million-job trace
  becomes many small scenarios streamed through the worker pool instead
  of one unshardable run.

Two slicers share these semantics:

* :func:`slice_windows` — batch: cut a fully materialised
  :class:`~repro.sim.job.Workload`;
* :func:`stream_windows` — lazy: the same windows from a job *iterator*
  (e.g. :meth:`repro.workloads.swf.SwfStream.jobs`), holding at most one
  window's jobs in memory at a time.  Content fingerprints are computed
  on the fly and are **identical** to the batch slicer's for the same
  submit-sorted trace, so per-cell cache keys do not depend on which
  slicer produced a window.

Slicing is a pure function of ``(trace, parameters)`` — no RNG, no
clock — so the same trace always yields the same windows and per-window
results are cacheable by content (:func:`workload_fingerprint`).
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from repro.sim.job import Workload
from repro.util.validation import check_positive, check_positive_int

__all__ = ["Window", "slice_windows", "stream_windows", "workload_fingerprint"]


def workload_fingerprint(workload: Workload) -> str:
    """Content hash of the arrays a simulation consumes.

    Two workloads with bit-identical ``(submit, runtime, size, estimate,
    job_ids)`` arrays fingerprint equal regardless of name or metadata,
    which is exactly the equivalence class under which simulation results
    can be reused from a cache.
    """
    digest = hashlib.sha256()
    for arr in (
        workload.submit,
        workload.runtime,
        workload.estimate,
        workload.size,
        workload.job_ids,
    ):
        digest.update(np.ascontiguousarray(arr).tobytes())
    return digest.hexdigest()[:32]


@dataclass(frozen=True)
class Window:
    """One contiguous slice of a trace, re-based to start at t=0."""

    index: int
    workload: Workload
    warmup: int  # leading jobs excluded from metrics (still simulated)
    t0: float  # original trace time of the window's first arrival

    def __post_init__(self) -> None:
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")
        if self.warmup >= len(self.workload):
            raise ValueError(
                f"window {self.index}: warmup {self.warmup} leaves no"
                f" scored jobs (window holds {len(self.workload)})"
            )

    @property
    def n_jobs(self) -> int:
        """Jobs simulated in this window (including warm-up)."""
        return len(self.workload)

    @property
    def n_scored(self) -> int:
        """Jobs contributing to the window's metrics."""
        return len(self.workload) - self.warmup

    def fingerprint(self) -> str:
        """Content hash of the window (arrays + warm-up trim)."""
        return hashlib.sha256(
            f"{workload_fingerprint(self.workload)}:{self.warmup}".encode()
        ).hexdigest()[:32]


def _check_slicing_args(
    jobs: int | None,
    seconds: float | None,
    warmup: int,
    min_jobs: int,
    max_windows: int | None,
) -> None:
    """Shared parameter validation for both slicers (identical errors)."""
    if (jobs is None) == (seconds is None):
        raise ValueError("pass exactly one of jobs= or seconds=")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    check_positive_int("min_jobs", min_jobs)
    if max_windows is not None:
        check_positive_int("max_windows", max_windows)
    if jobs is not None:
        check_positive_int("jobs", jobs)
        if jobs <= warmup:
            raise ValueError(
                f"window of {jobs} jobs leaves nothing after warmup={warmup}"
            )
    else:
        check_positive("seconds", float(seconds))


def slice_windows(
    workload: Workload,
    *,
    jobs: int | None = None,
    seconds: float | None = None,
    warmup: int = 0,
    min_jobs: int = 2,
    max_windows: int | None = None,
) -> list[Window]:
    """Cut *workload* into contiguous evaluation windows.

    Exactly one of *jobs* (windows of N consecutive jobs) or *seconds*
    (windows of T seconds of trace time) must be given.  Each window is
    re-based to t=0 and renamed ``<trace>[w<k>]``; the first *warmup*
    jobs of every window are marked for metric exclusion.

    Windows whose scored-job count would fall below *min_jobs* are
    dropped: for job windows only the trailing remainder can be short;
    for time windows sparse epochs of the trace drop out the same way.
    *max_windows* truncates the plan (the cheap way to smoke-test a
    huge trace).

    Invariants (tested): windows are non-overlapping and in trace order,
    job windows partition the trace except for a dropped tail shorter
    than ``warmup + min_jobs``, and every window re-starts its clock at
    zero.
    """
    _check_slicing_args(jobs, seconds, warmup, min_jobs, max_windows)
    n = len(workload)
    if n == 0:
        raise ValueError("cannot slice an empty workload")

    bounds: list[tuple[int, int]] = []  # [start, stop) into the sorted arrays
    if jobs is not None:
        bounds = [(lo, min(lo + jobs, n)) for lo in range(0, n, jobs)]
    else:
        t0 = float(workload.submit[0])
        span = workload.span
        n_slots = max(int(span // seconds) + 1, 1)
        # searchsorted over the submit-sorted arrays keeps slicing O(n log n)
        # even for million-job traces.
        edges = t0 + np.arange(n_slots + 1) * float(seconds)
        cuts = np.searchsorted(workload.submit, edges, side="left")
        cuts[-1] = n  # the last edge is inclusive of the final arrival
        bounds = [
            (int(lo), int(hi)) for lo, hi in zip(cuts[:-1], cuts[1:]) if hi > lo
        ]

    out: list[Window] = []
    for lo, hi in bounds:
        if hi - lo - warmup < min_jobs:
            continue
        index = len(out)
        piece = workload.select(np.arange(lo, hi)).shifted()
        out.append(
            Window(
                index=index,
                workload=piece.with_name(f"{workload.name}[w{index}]"),
                warmup=warmup,
                t0=float(workload.submit[lo]),
            )
        )
        if max_windows is not None and len(out) >= max_windows:
            break
    return out


def _window_from_rows(
    rows: list[tuple[float, float, float, float, float]],
    *,
    index: int,
    warmup: int,
    name: str,
    nmax: int,
) -> Window:
    """Build one re-based :class:`Window` from buffered job rows.

    Array construction mirrors ``workload.select(...).shifted()`` field
    for field (float64 submit/runtime/estimate, int64 size/job_ids, same
    subtraction against the window's first arrival), so the resulting
    fingerprint is bit-identical to the batch slicer's.
    """
    mat = np.asarray(rows, dtype=float)
    submit = mat[:, 1]
    piece = Workload(
        submit=submit - submit[0],
        runtime=mat[:, 2],
        size=mat[:, 3].astype(np.int64),
        estimate=mat[:, 4],
        job_ids=mat[:, 0].astype(np.int64),
        name=f"{name}[w{index}]",
        nmax=nmax,
    )
    return Window(index=index, workload=piece, warmup=warmup, t0=float(submit[0]))


def stream_windows(
    source: Workload | Iterable[tuple[float, float, float, float, float]],
    *,
    jobs: int | None = None,
    seconds: float | None = None,
    warmup: int = 0,
    min_jobs: int = 2,
    max_windows: int | None = None,
    name: str | None = None,
    nmax: int | None = None,
) -> Iterator[Window]:
    """Lazily cut a job stream into the same windows :func:`slice_windows` cuts.

    *source* is either a :class:`~repro.sim.job.Workload` (convenience:
    its rows are iterated) or any iterator of ``(job_id, submit, runtime,
    size, estimate)`` rows such as :func:`repro.workloads.swf.iter_swf_jobs`
    — in which case *name* (window naming) and *nmax* (machine size
    stamped on each window's workload) should be supplied since a bare
    stream carries no metadata.

    At most one window's jobs are buffered at any moment, so a
    multi-million-job trace streams through in O(window) memory; with
    *max_windows* the source is abandoned as soon as the quota is
    reached (no further I/O).  Window indices, warm-up trimming, the
    ``min_jobs`` short-window drop rule and every content fingerprint
    match :func:`slice_windows` on the materialised trace exactly —
    per-cell cache keys are slicer-independent (tested).

    The stream must be submit-sorted (SWF archives are); an out-of-order
    arrival raises :class:`ValueError`, because a lazy slicer cannot
    re-sort the trace the way the batch path does.

    When *nmax* is non-zero, every job read is validated against it as
    it arrives — including jobs in windows later dropped as too short —
    mirroring the batch path's whole-trace
    :meth:`~repro.sim.job.Workload.validate_for_machine` check.  (With
    *max_windows*, jobs beyond the quota are never read and therefore
    cannot be validated; the batch path, which holds the full trace
    anyway, still checks them.)
    """
    _check_slicing_args(jobs, seconds, warmup, min_jobs, max_windows)
    if isinstance(source, Workload):
        if name is None:
            name = source.name
        if nmax is None:
            nmax = source.nmax
        rows_iter: Iterable[tuple[float, float, float, float, float]] = zip(
            source.job_ids.tolist(),
            source.submit.tolist(),
            source.runtime.tolist(),
            source.size.tolist(),
            source.estimate.tolist(),
        )
    else:
        rows_iter = source
    label = "trace" if name is None else name
    machine = 0 if nmax is None else nmax

    def generate() -> Iterator[Window]:
        buf: list[tuple[float, float, float, float, float]] = []
        emitted = 0
        n_seen = 0
        last_submit = -np.inf
        t0 = 0.0  # trace origin (first arrival), set on the first job
        bucket = 0  # current time-window slot (seconds axis only)

        def flush() -> Window | None:
            nonlocal emitted
            if len(buf) - warmup < min_jobs:
                buf.clear()
                return None
            window = _window_from_rows(
                buf, index=emitted, warmup=warmup, name=label, nmax=machine
            )
            emitted += 1
            buf.clear()
            return window

        for row in rows_iter:
            job_id, submit, runtime, size, estimate = row
            if submit < last_submit:
                raise ValueError(
                    f"stream_windows requires a submit-sorted trace: job"
                    f" {int(job_id)} arrives at {submit} after a job at"
                    f" {last_submit}"
                )
            last_submit = submit
            if machine and size > machine:
                # Same fail-fast contract as Workload.validate_for_machine,
                # applied per job so even jobs in eventually-dropped windows
                # are caught, exactly like the batch path's up-front check.
                raise ValueError(
                    f"job {int(job_id)} needs {int(size)} cores"
                    f" but the machine has only {machine}"
                )
            if n_seen == 0:
                t0 = float(submit)
            n_seen += 1
            if seconds is not None:
                # Advance to this job's slot, flushing every slot passed on
                # the way.  Slot edges are computed as t0 + k*seconds with
                # the same float64 arithmetic as slice_windows' edge array,
                # and a job exactly on an edge opens the next slot
                # (searchsorted side="left" semantics).
                while submit >= t0 + float(bucket + 1) * seconds:
                    window = flush()
                    bucket += 1
                    if not buf:
                        # Fast-forward across empty slots (a long idle gap
                        # would otherwise cost one iteration per slot).
                        # The quotient can be off by one ULP, so jump one
                        # slot short and let the exact edge comparison
                        # above take the final steps.
                        target = int((submit - t0) / seconds) - 1
                        if target > bucket:
                            bucket = target
                    if window is not None:
                        yield window
                        if max_windows is not None and emitted >= max_windows:
                            return
            buf.append((job_id, submit, runtime, size, estimate))
            if jobs is not None and len(buf) == jobs:
                window = flush()
                if window is not None:
                    yield window
                    if max_windows is not None and emitted >= max_windows:
                        return
        if n_seen == 0:
            raise ValueError("cannot slice an empty workload")
        window = flush()
        if window is not None:
            yield window

    return generate()

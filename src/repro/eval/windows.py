"""Streaming/windowed trace slicing for the evaluation subsystem.

Real Parallel Workloads Archive traces span months and hundreds of
thousands of jobs; evaluating policies on them as one monolithic run
conflates epochs, drowns the metric in a single number and cannot be
fanned out.  This module cuts a :class:`~repro.sim.job.Workload` into
contiguous *windows* — of a fixed job count or a fixed duration — each
of which becomes an independent evaluation scenario:

* every window's clock is re-based to start at zero (per-window
  normalization; the per-window simulations are independent, exactly
  like the paper's per-sequence experiments),
* the first *warmup* jobs of a window are simulated but excluded from
  the reported metrics, so a window's score is not dominated by the
  artificially empty machine it starts with,
* windows are contiguous and non-overlapping, so a million-job trace
  becomes many small scenarios streamed through the worker pool instead
  of one unshardable run.

Slicing is a pure function of ``(workload, parameters)`` — no RNG, no
clock — so the same trace always yields the same windows and per-window
results are cacheable by content (:func:`workload_fingerprint`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.sim.job import Workload
from repro.util.validation import check_positive, check_positive_int

__all__ = ["Window", "slice_windows", "workload_fingerprint"]


def workload_fingerprint(workload: Workload) -> str:
    """Content hash of the arrays a simulation consumes.

    Two workloads with bit-identical ``(submit, runtime, size, estimate,
    job_ids)`` arrays fingerprint equal regardless of name or metadata,
    which is exactly the equivalence class under which simulation results
    can be reused from a cache.
    """
    digest = hashlib.sha256()
    for arr in (
        workload.submit,
        workload.runtime,
        workload.estimate,
        workload.size,
        workload.job_ids,
    ):
        digest.update(np.ascontiguousarray(arr).tobytes())
    return digest.hexdigest()[:32]


@dataclass(frozen=True)
class Window:
    """One contiguous slice of a trace, re-based to start at t=0."""

    index: int
    workload: Workload
    warmup: int  # leading jobs excluded from metrics (still simulated)
    t0: float  # original trace time of the window's first arrival

    def __post_init__(self) -> None:
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")
        if self.warmup >= len(self.workload):
            raise ValueError(
                f"window {self.index}: warmup {self.warmup} leaves no"
                f" scored jobs (window holds {len(self.workload)})"
            )

    @property
    def n_jobs(self) -> int:
        """Jobs simulated in this window (including warm-up)."""
        return len(self.workload)

    @property
    def n_scored(self) -> int:
        """Jobs contributing to the window's metrics."""
        return len(self.workload) - self.warmup

    def fingerprint(self) -> str:
        """Content hash of the window (arrays + warm-up trim)."""
        return hashlib.sha256(
            f"{workload_fingerprint(self.workload)}:{self.warmup}".encode()
        ).hexdigest()[:32]


def slice_windows(
    workload: Workload,
    *,
    jobs: int | None = None,
    seconds: float | None = None,
    warmup: int = 0,
    min_jobs: int = 2,
    max_windows: int | None = None,
) -> list[Window]:
    """Cut *workload* into contiguous evaluation windows.

    Exactly one of *jobs* (windows of N consecutive jobs) or *seconds*
    (windows of T seconds of trace time) must be given.  Each window is
    re-based to t=0 and renamed ``<trace>[w<k>]``; the first *warmup*
    jobs of every window are marked for metric exclusion.

    Windows whose scored-job count would fall below *min_jobs* are
    dropped: for job windows only the trailing remainder can be short;
    for time windows sparse epochs of the trace drop out the same way.
    *max_windows* truncates the plan (the cheap way to smoke-test a
    huge trace).

    Invariants (tested): windows are non-overlapping and in trace order,
    job windows partition the trace except for a dropped tail shorter
    than ``warmup + min_jobs``, and every window re-starts its clock at
    zero.
    """
    if (jobs is None) == (seconds is None):
        raise ValueError("pass exactly one of jobs= or seconds=")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    check_positive_int("min_jobs", min_jobs)
    if max_windows is not None:
        check_positive_int("max_windows", max_windows)
    n = len(workload)
    if n == 0:
        raise ValueError("cannot slice an empty workload")

    bounds: list[tuple[int, int]] = []  # [start, stop) into the sorted arrays
    if jobs is not None:
        check_positive_int("jobs", jobs)
        if jobs <= warmup:
            raise ValueError(
                f"window of {jobs} jobs leaves nothing after warmup={warmup}"
            )
        bounds = [(lo, min(lo + jobs, n)) for lo in range(0, n, jobs)]
    else:
        check_positive("seconds", float(seconds))
        t0 = float(workload.submit[0])
        span = workload.span
        n_slots = max(int(span // seconds) + 1, 1)
        # searchsorted over the submit-sorted arrays keeps slicing O(n log n)
        # even for million-job traces.
        edges = t0 + np.arange(n_slots + 1) * float(seconds)
        cuts = np.searchsorted(workload.submit, edges, side="left")
        cuts[-1] = n  # the last edge is inclusive of the final arrival
        bounds = [
            (int(lo), int(hi)) for lo, hi in zip(cuts[:-1], cuts[1:]) if hi > lo
        ]

    out: list[Window] = []
    for lo, hi in bounds:
        if hi - lo - warmup < min_jobs:
            continue
        index = len(out)
        piece = workload.select(np.arange(lo, hi)).shifted()
        out.append(
            Window(
                index=index,
                workload=piece.with_name(f"{workload.name}[w{index}]"),
                warmup=warmup,
                t0=float(workload.submit[lo]),
            )
        )
        if max_windows is not None and len(out) >= max_windows:
            break
    return out

"""The evaluation matrix runner: {policies × backfill modes × windows}.

One *cell* of the matrix is the deterministic simulation of one trace
window under one policy and one backfill mode; the matrix fans its cells
over :class:`repro.runtime.TrialRunner`, so a real-trace evaluation
scales with the worker pool exactly like training does.  Three contracts
carry over from the runtime:

* **determinism** — cells are enumerated window-major before dispatch
  and reassembled by index, so the result is bit-identical for any
  ``workers`` / ``chunk_size`` (the engine itself is a pure function of
  its inputs; the recorded per-cell seed is spawned per index for any
  future stochastic policy, never drawn from a shared stream);
* **content-addressed caching** — each cell's key fingerprints the
  window's arrays plus every result-relevant knob
  (:func:`repro.runtime.config_fingerprint`), so a re-run with an
  unchanged config loads every cell from the
  :class:`~repro.runtime.ArtifactCache` without simulating;
* **fail-fast validation** — the workload is validated against the
  machine size on entry (:meth:`Workload.validate_for_machine`), naming
  the offending job instead of dying mid-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import cached_property

import numpy as np

from repro.eval.windows import Window, slice_windows
from repro.policies.registry import get_policy
from repro.runtime import ArtifactCache, ExecutorConfig, TrialRunner, config_fingerprint
from repro.runtime.progress import ProgressCallback
from repro.sim.engine import normalize_backfill, simulate
from repro.sim.job import Workload
from repro.sim.metrics import DEFAULT_TAU
from repro.util.rng import spawn_seed_sequences
from repro.util.stats import Summary, summarize
from repro.util.validation import check_positive, check_positive_int

__all__ = [
    "BACKFILL_TOKENS",
    "CellResult",
    "MatrixConfig",
    "MatrixResult",
    "run_matrix",
]

#: Canonical backfill-axis tokens (CLI and config spelling).
BACKFILL_TOKENS = ("none", "easy", "conservative")

#: Bump when CellResult's cached fields change; stale entries turn into
#: cache misses instead of mis-decoding.
_CELL_FORMAT = 1


def _normalize_backfill_token(token: str | bool | None) -> str:
    # The engine owns the vocabulary; the matrix axis just needs a string
    # token ("none" rather than None) for cache keys and CSV columns.
    return normalize_backfill(token) or "none"


@dataclass(frozen=True)
class MatrixConfig:
    """Declarative description of one evaluation matrix.

    Exactly one of *window_jobs* / *window_seconds* selects the slicing
    axis.  ``nmax=0`` defers to the workload's own machine size (SWF
    header ``MaxProcs``).  Policy names are canonicalised through the
    registry and backfill tokens through :data:`BACKFILL_TOKENS`, so two
    configs that mean the same thing fingerprint the same.
    """

    policies: tuple[str, ...]
    backfill: tuple[str, ...] = ("none",)
    nmax: int = 0
    use_estimates: bool = False
    tau: float = DEFAULT_TAU
    window_jobs: int | None = None
    window_seconds: float | None = None
    warmup: int = 0
    max_windows: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.policies:
            raise ValueError("at least one policy is required")
        canonical = tuple(get_policy(name).name for name in self.policies)
        if len(set(canonical)) != len(canonical):
            raise ValueError(f"duplicate policies in {self.policies}")
        object.__setattr__(self, "policies", canonical)
        modes = tuple(_normalize_backfill_token(b) for b in self.backfill)
        if not modes:
            raise ValueError("at least one backfill mode is required")
        if len(set(modes)) != len(modes):
            raise ValueError(f"duplicate backfill modes in {self.backfill}")
        object.__setattr__(self, "backfill", modes)
        if (self.window_jobs is None) == (self.window_seconds is None):
            raise ValueError("pass exactly one of window_jobs / window_seconds")
        if self.window_jobs is not None:
            check_positive_int("window_jobs", self.window_jobs)
        if self.window_seconds is not None:
            check_positive("window_seconds", float(self.window_seconds))
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")
        if self.max_windows is not None:
            check_positive_int("max_windows", self.max_windows)
        if self.nmax < 0:
            raise ValueError(f"nmax must be >= 0, got {self.nmax}")
        if self.tau <= 0:
            raise ValueError(f"tau must be > 0, got {self.tau}")


@dataclass(frozen=True)
class CellResult:
    """Metrics of one (window, policy, backfill) simulation."""

    window: int
    policy: str
    backfill: str
    n_jobs: int
    n_scored: int
    ave_bsld: float
    utilization: float
    makespan: float
    backfilled: int
    seed: int
    cached: bool = False

    def to_entry(self) -> dict:
        """JSON-cacheable representation (format-versioned)."""
        return {
            "format": _CELL_FORMAT,
            "window": self.window,
            "policy": self.policy,
            "backfill": self.backfill,
            "n_jobs": self.n_jobs,
            "n_scored": self.n_scored,
            "ave_bsld": self.ave_bsld,
            "utilization": self.utilization,
            "makespan": self.makespan,
            "backfilled": self.backfilled,
            "seed": self.seed,
        }

    @classmethod
    def from_entry(cls, entry: dict) -> "CellResult | None":
        """Decode a cache entry; ``None`` for foreign/stale formats."""
        if not isinstance(entry, dict) or entry.get("format") != _CELL_FORMAT:
            return None
        try:
            return cls(
                window=int(entry["window"]),
                policy=str(entry["policy"]),
                backfill=str(entry["backfill"]),
                n_jobs=int(entry["n_jobs"]),
                n_scored=int(entry["n_scored"]),
                ave_bsld=float(entry["ave_bsld"]),
                utilization=float(entry["utilization"]),
                makespan=float(entry["makespan"]),
                backfilled=int(entry["backfilled"]),
                seed=int(entry["seed"]),
                cached=True,
            )
        except (KeyError, TypeError, ValueError):
            return None


@dataclass(frozen=True)
class _CellTask:
    """Picklable work unit handed to the worker pool."""

    window: int
    policy: str
    backfill: str
    submit: np.ndarray
    runtime: np.ndarray
    size: np.ndarray
    estimate: np.ndarray
    nmax: int
    use_estimates: bool
    tau: float
    warmup: int
    seed: int


def _simulate_cell(task: _CellTask) -> CellResult:
    """Simulate one matrix cell (module-level: pool-picklable)."""
    wl = Workload(
        submit=task.submit,
        runtime=task.runtime,
        size=task.size,
        estimate=task.estimate,
        job_ids=np.arange(len(task.submit), dtype=np.int64),
        name=f"cell[w{task.window}]",
        nmax=task.nmax,
    )
    result = simulate(
        wl,
        get_policy(task.policy),
        task.nmax,
        use_estimates=task.use_estimates,
        backfill=task.backfill,
        tau=task.tau,
    )
    scored = result.bsld()[task.warmup :]
    return CellResult(
        window=task.window,
        policy=task.policy,
        backfill=task.backfill,
        n_jobs=len(wl),
        n_scored=len(scored),
        ave_bsld=float(scored.mean()),
        utilization=result.utilization,
        makespan=result.makespan,
        backfilled=result.backfill_count,
        seed=task.seed,
    )


@dataclass(frozen=True)
class MatrixResult:
    """All cells of one evaluation matrix, window-major."""

    config: MatrixConfig
    trace_name: str
    nmax: int
    n_windows: int
    cells: tuple[CellResult, ...]
    n_simulated: int
    n_cached: int

    @cached_property
    def _by_key(self) -> dict[tuple[int, str, str], CellResult]:
        return {(c.window, c.policy, c.backfill): c for c in self.cells}

    def cell(self, window: int, policy: str, backfill: str) -> CellResult:
        """Look up one cell (canonical policy/backfill spelling)."""
        return self._by_key[(window, policy, backfill)]

    def samples(self, policy: str, backfill: str) -> np.ndarray:
        """Per-window AVEbsld of one (policy, backfill) series."""
        return np.array(
            [
                self._by_key[(w, policy, backfill)].ave_bsld
                for w in range(self.n_windows)
            ],
            dtype=float,
        )

    def summaries(self) -> dict[tuple[str, str], Summary]:
        """AVEbsld summary per (policy, backfill) series over windows."""
        return {
            (p, b): summarize(self.samples(p, b))
            for p in self.config.policies
            for b in self.config.backfill
        }

    def paired_deltas(self, baseline: str | None = None) -> dict[tuple[str, str], np.ndarray]:
        """Per-window ``AVEbsld(policy) - AVEbsld(baseline)`` deltas.

        Pairing is within a window and a backfill mode — both series saw
        the identical job stream, so the difference isolates the policy
        (the paper's boxplots make the same pairing across sequences).
        *baseline* defaults to the config's first policy.
        """
        base = get_policy(baseline).name if baseline else self.config.policies[0]
        if base not in self.config.policies:
            raise ValueError(
                f"baseline {base!r} is not part of this matrix {self.config.policies}"
            )
        return {
            (p, b): self.samples(p, b) - self.samples(base, b)
            for p in self.config.policies
            if p != base
            for b in self.config.backfill
        }

    def best(self, backfill: str | None = None) -> str:
        """Policy with the lowest median AVEbsld (optionally one mode)."""
        modes = (
            (_normalize_backfill_token(backfill),)
            if backfill is not None
            else self.config.backfill
        )
        medians = {
            p: float(
                np.median(np.concatenate([self.samples(p, b) for b in modes]))
            )
            for p in self.config.policies
        }
        return min(medians, key=medians.get)


def _cell_key(window: Window, config: MatrixConfig, nmax: int, policy: str, backfill: str) -> str:
    return config_fingerprint(
        {
            "kind": "eval-cell",
            "format": _CELL_FORMAT,
            "window": window.fingerprint(),
            "policy": policy,
            "backfill": backfill,
            "nmax": nmax,
            "use_estimates": config.use_estimates,
            "tau": config.tau,
        }
    )


def run_matrix(
    workload: Workload,
    config: MatrixConfig,
    *,
    workers: int | str = 1,
    chunk_size: int | None = None,
    cache: str | ArtifactCache | None = None,
    progress: ProgressCallback | None = None,
) -> MatrixResult:
    """Evaluate *workload* over the full policy × backfill × window matrix.

    Window slicing happens here so every cell of a window sees the
    identical job stream (paired comparisons).  With *cache*, cells
    already present are loaded instead of simulated and fresh cells are
    stored; only cache-missing cells are dispatched to the pool.
    """
    nmax = config.nmax or workload.nmax
    if nmax < 1:
        raise ValueError(
            "machine size unknown: set MatrixConfig.nmax or use a workload"
            " that carries one (SWF header MaxProcs)"
        )
    workload.validate_for_machine(nmax)
    windows = slice_windows(
        workload,
        jobs=config.window_jobs,
        seconds=config.window_seconds,
        warmup=config.warmup,
        max_windows=config.max_windows,
    )
    if not windows:
        raise ValueError(
            "no evaluation windows survived slicing; enlarge the window or"
            " lower warmup"
        )

    axes = [
        (win, policy, backfill)
        for win in windows
        for policy in config.policies
        for backfill in config.backfill
    ]
    # Child k of the root seed belongs to cell k whether or not the cell
    # is later served from cache, so cached and fresh runs agree.
    seeds = [
        int(seq.generate_state(1, np.uint64)[0])
        for seq in spawn_seed_sequences(config.seed, len(axes))
    ]

    store = (
        cache
        if cache is None or isinstance(cache, ArtifactCache)
        else ArtifactCache(cache)
    )

    slots: list[CellResult | None] = [None] * len(axes)
    keys: list[str | None] = [None] * len(axes)
    todo: list[int] = []
    for k, (win, policy, backfill) in enumerate(axes):
        if store is not None:
            key = _cell_key(win, config, nmax, policy, backfill)
            keys[k] = key
            entry = store.load_json(key)
            hit = CellResult.from_entry(entry) if entry is not None else None
            if hit is not None:
                # The window index in this run wins over the cached one:
                # max_windows truncation can renumber windows between runs.
                slots[k] = replace(hit, window=win.index, seed=seeds[k])
                continue
        todo.append(k)

    if todo:
        tasks = [
            _CellTask(
                window=axes[k][0].index,
                policy=axes[k][1],
                backfill=axes[k][2],
                submit=axes[k][0].workload.submit,
                runtime=axes[k][0].workload.runtime,
                size=axes[k][0].workload.size,
                estimate=axes[k][0].workload.estimate,
                nmax=nmax,
                use_estimates=config.use_estimates,
                tau=config.tau,
                warmup=axes[k][0].warmup,
                seed=seeds[k],
            )
            for k in todo
        ]
        runner = TrialRunner(ExecutorConfig(workers=workers, chunk_size=chunk_size))
        fresh = runner.map(_simulate_cell, tasks, progress=progress, phase="cells")
        for k, cell in zip(todo, fresh):
            slots[k] = cell
            if store is not None:
                store.store_json(keys[k], cell.to_entry())

    return MatrixResult(
        config=config,
        trace_name=workload.name,
        nmax=nmax,
        n_windows=len(windows),
        cells=tuple(slots),  # type: ignore[arg-type]
        n_simulated=len(todo),
        n_cached=len(axes) - len(todo),
    )
